# Empty compiler generated dependencies file for bench_ablation_multiplexing.
# This may be replaced when dependencies are built.
