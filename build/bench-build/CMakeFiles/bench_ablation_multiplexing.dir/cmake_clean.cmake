file(REMOVE_RECURSE
  "../bench/bench_ablation_multiplexing"
  "../bench/bench_ablation_multiplexing.pdb"
  "CMakeFiles/bench_ablation_multiplexing.dir/bench_ablation_multiplexing.cpp.o"
  "CMakeFiles/bench_ablation_multiplexing.dir/bench_ablation_multiplexing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
