file(REMOVE_RECURSE
  "../bench/bench_multiclass"
  "../bench/bench_multiclass.pdb"
  "CMakeFiles/bench_multiclass.dir/bench_multiclass.cpp.o"
  "CMakeFiles/bench_multiclass.dir/bench_multiclass.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
