# Empty dependencies file for bench_multiclass.
# This may be replaced when dependencies are built.
