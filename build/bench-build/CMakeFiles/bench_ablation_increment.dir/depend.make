# Empty dependencies file for bench_ablation_increment.
# This may be replaced when dependencies are built.
