file(REMOVE_RECURSE
  "../bench/bench_ablation_increment"
  "../bench/bench_ablation_increment.pdb"
  "CMakeFiles/bench_ablation_increment.dir/bench_ablation_increment.cpp.o"
  "CMakeFiles/bench_ablation_increment.dir/bench_ablation_increment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_increment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
