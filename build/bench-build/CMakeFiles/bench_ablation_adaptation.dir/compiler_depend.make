# Empty compiler generated dependencies file for bench_ablation_adaptation.
# This may be replaced when dependencies are built.
