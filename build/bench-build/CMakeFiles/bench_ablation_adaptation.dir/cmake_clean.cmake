file(REMOVE_RECURSE
  "../bench/bench_ablation_adaptation"
  "../bench/bench_ablation_adaptation.pdb"
  "CMakeFiles/bench_ablation_adaptation.dir/bench_ablation_adaptation.cpp.o"
  "CMakeFiles/bench_ablation_adaptation.dir/bench_ablation_adaptation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
