# Empty dependencies file for test_passage.
# This may be replaced when dependencies are built.
