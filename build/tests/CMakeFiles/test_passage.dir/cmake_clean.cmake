file(REMOVE_RECURSE
  "CMakeFiles/test_passage.dir/test_passage.cpp.o"
  "CMakeFiles/test_passage.dir/test_passage.cpp.o.d"
  "test_passage"
  "test_passage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
