# Empty compiler generated dependencies file for test_markov.
# This may be replaced when dependencies are built.
