file(REMOVE_RECURSE
  "CMakeFiles/test_markov.dir/test_markov.cpp.o"
  "CMakeFiles/test_markov.dir/test_markov.cpp.o.d"
  "test_markov"
  "test_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
