file(REMOVE_RECURSE
  "CMakeFiles/test_regular.dir/test_regular.cpp.o"
  "CMakeFiles/test_regular.dir/test_regular.cpp.o.d"
  "test_regular"
  "test_regular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
