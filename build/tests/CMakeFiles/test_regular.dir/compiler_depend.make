# Empty compiler generated dependencies file for test_regular.
# This may be replaced when dependencies are built.
