file(REMOVE_RECURSE
  "CMakeFiles/test_revenue.dir/test_revenue.cpp.o"
  "CMakeFiles/test_revenue.dir/test_revenue.cpp.o.d"
  "test_revenue"
  "test_revenue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_revenue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
