# Empty dependencies file for test_revenue.
# This may be replaced when dependencies are built.
