# Empty compiler generated dependencies file for test_multiclass.
# This may be replaced when dependencies are built.
