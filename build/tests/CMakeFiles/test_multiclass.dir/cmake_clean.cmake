file(REMOVE_RECURSE
  "CMakeFiles/test_multiclass.dir/test_multiclass.cpp.o"
  "CMakeFiles/test_multiclass.dir/test_multiclass.cpp.o.d"
  "test_multiclass"
  "test_multiclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
