
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/test_sim.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eqos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eqos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eqos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/eqos_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/eqos_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/eqos_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eqos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
