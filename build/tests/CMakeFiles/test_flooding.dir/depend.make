# Empty dependencies file for test_flooding.
# This may be replaced when dependencies are built.
