file(REMOVE_RECURSE
  "CMakeFiles/test_flooding.dir/test_flooding.cpp.o"
  "CMakeFiles/test_flooding.dir/test_flooding.cpp.o.d"
  "test_flooding"
  "test_flooding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flooding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
