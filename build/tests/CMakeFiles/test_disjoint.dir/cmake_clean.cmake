file(REMOVE_RECURSE
  "CMakeFiles/test_disjoint.dir/test_disjoint.cpp.o"
  "CMakeFiles/test_disjoint.dir/test_disjoint.cpp.o.d"
  "test_disjoint"
  "test_disjoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disjoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
