# Empty compiler generated dependencies file for test_disjoint.
# This may be replaced when dependencies are built.
