file(REMOVE_RECURSE
  "CMakeFiles/test_rewards_io.dir/test_rewards_io.cpp.o"
  "CMakeFiles/test_rewards_io.dir/test_rewards_io.cpp.o.d"
  "test_rewards_io"
  "test_rewards_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rewards_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
