# Empty compiler generated dependencies file for test_rewards_io.
# This may be replaced when dependencies are built.
