file(REMOVE_RECURSE
  "CMakeFiles/test_backup.dir/test_backup.cpp.o"
  "CMakeFiles/test_backup.dir/test_backup.cpp.o.d"
  "test_backup"
  "test_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
