# Empty dependencies file for test_backup.
# This may be replaced when dependencies are built.
