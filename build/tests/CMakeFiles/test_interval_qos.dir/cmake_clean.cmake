file(REMOVE_RECURSE
  "CMakeFiles/test_interval_qos.dir/test_interval_qos.cpp.o"
  "CMakeFiles/test_interval_qos.dir/test_interval_qos.cpp.o.d"
  "test_interval_qos"
  "test_interval_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
