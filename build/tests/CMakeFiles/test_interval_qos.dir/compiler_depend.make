# Empty compiler generated dependencies file for test_interval_qos.
# This may be replaced when dependencies are built.
