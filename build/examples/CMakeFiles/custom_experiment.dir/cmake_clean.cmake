file(REMOVE_RECURSE
  "CMakeFiles/custom_experiment.dir/custom_experiment.cpp.o"
  "CMakeFiles/custom_experiment.dir/custom_experiment.cpp.o.d"
  "custom_experiment"
  "custom_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
