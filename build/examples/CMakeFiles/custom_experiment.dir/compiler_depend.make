# Empty compiler generated dependencies file for custom_experiment.
# This may be replaced when dependencies are built.
