# Empty dependencies file for video_service.
# This may be replaced when dependencies are built.
