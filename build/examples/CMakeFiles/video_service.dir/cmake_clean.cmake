file(REMOVE_RECURSE
  "CMakeFiles/video_service.dir/video_service.cpp.o"
  "CMakeFiles/video_service.dir/video_service.cpp.o.d"
  "video_service"
  "video_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
