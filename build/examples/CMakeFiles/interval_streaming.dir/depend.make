# Empty dependencies file for interval_streaming.
# This may be replaced when dependencies are built.
