file(REMOVE_RECURSE
  "CMakeFiles/interval_streaming.dir/interval_streaming.cpp.o"
  "CMakeFiles/interval_streaming.dir/interval_streaming.cpp.o.d"
  "interval_streaming"
  "interval_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
