# Empty compiler generated dependencies file for eqos_matrix.
# This may be replaced when dependencies are built.
