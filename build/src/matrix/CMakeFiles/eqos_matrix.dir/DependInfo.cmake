
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/dense.cpp" "src/matrix/CMakeFiles/eqos_matrix.dir/dense.cpp.o" "gcc" "src/matrix/CMakeFiles/eqos_matrix.dir/dense.cpp.o.d"
  "/root/repo/src/matrix/gth.cpp" "src/matrix/CMakeFiles/eqos_matrix.dir/gth.cpp.o" "gcc" "src/matrix/CMakeFiles/eqos_matrix.dir/gth.cpp.o.d"
  "/root/repo/src/matrix/lu.cpp" "src/matrix/CMakeFiles/eqos_matrix.dir/lu.cpp.o" "gcc" "src/matrix/CMakeFiles/eqos_matrix.dir/lu.cpp.o.d"
  "/root/repo/src/matrix/sparse.cpp" "src/matrix/CMakeFiles/eqos_matrix.dir/sparse.cpp.o" "gcc" "src/matrix/CMakeFiles/eqos_matrix.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eqos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
