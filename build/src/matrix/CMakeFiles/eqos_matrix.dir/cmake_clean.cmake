file(REMOVE_RECURSE
  "CMakeFiles/eqos_matrix.dir/dense.cpp.o"
  "CMakeFiles/eqos_matrix.dir/dense.cpp.o.d"
  "CMakeFiles/eqos_matrix.dir/gth.cpp.o"
  "CMakeFiles/eqos_matrix.dir/gth.cpp.o.d"
  "CMakeFiles/eqos_matrix.dir/lu.cpp.o"
  "CMakeFiles/eqos_matrix.dir/lu.cpp.o.d"
  "CMakeFiles/eqos_matrix.dir/sparse.cpp.o"
  "CMakeFiles/eqos_matrix.dir/sparse.cpp.o.d"
  "libeqos_matrix.a"
  "libeqos_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqos_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
