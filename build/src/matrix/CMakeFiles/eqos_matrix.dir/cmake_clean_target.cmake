file(REMOVE_RECURSE
  "libeqos_matrix.a"
)
