# Empty dependencies file for eqos_sim.
# This may be replaced when dependencies are built.
