file(REMOVE_RECURSE
  "CMakeFiles/eqos_sim.dir/event_queue.cpp.o"
  "CMakeFiles/eqos_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/eqos_sim.dir/recorder.cpp.o"
  "CMakeFiles/eqos_sim.dir/recorder.cpp.o.d"
  "CMakeFiles/eqos_sim.dir/simulator.cpp.o"
  "CMakeFiles/eqos_sim.dir/simulator.cpp.o.d"
  "libeqos_sim.a"
  "libeqos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
