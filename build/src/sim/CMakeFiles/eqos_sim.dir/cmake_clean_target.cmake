file(REMOVE_RECURSE
  "libeqos_sim.a"
)
