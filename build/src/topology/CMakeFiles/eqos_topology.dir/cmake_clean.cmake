file(REMOVE_RECURSE
  "CMakeFiles/eqos_topology.dir/bridges.cpp.o"
  "CMakeFiles/eqos_topology.dir/bridges.cpp.o.d"
  "CMakeFiles/eqos_topology.dir/disjoint.cpp.o"
  "CMakeFiles/eqos_topology.dir/disjoint.cpp.o.d"
  "CMakeFiles/eqos_topology.dir/graph.cpp.o"
  "CMakeFiles/eqos_topology.dir/graph.cpp.o.d"
  "CMakeFiles/eqos_topology.dir/io.cpp.o"
  "CMakeFiles/eqos_topology.dir/io.cpp.o.d"
  "CMakeFiles/eqos_topology.dir/metrics.cpp.o"
  "CMakeFiles/eqos_topology.dir/metrics.cpp.o.d"
  "CMakeFiles/eqos_topology.dir/paths.cpp.o"
  "CMakeFiles/eqos_topology.dir/paths.cpp.o.d"
  "CMakeFiles/eqos_topology.dir/regular.cpp.o"
  "CMakeFiles/eqos_topology.dir/regular.cpp.o.d"
  "CMakeFiles/eqos_topology.dir/transit_stub.cpp.o"
  "CMakeFiles/eqos_topology.dir/transit_stub.cpp.o.d"
  "CMakeFiles/eqos_topology.dir/waxman.cpp.o"
  "CMakeFiles/eqos_topology.dir/waxman.cpp.o.d"
  "libeqos_topology.a"
  "libeqos_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqos_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
