# Empty dependencies file for eqos_topology.
# This may be replaced when dependencies are built.
