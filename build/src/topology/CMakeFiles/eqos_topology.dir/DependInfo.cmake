
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/bridges.cpp" "src/topology/CMakeFiles/eqos_topology.dir/bridges.cpp.o" "gcc" "src/topology/CMakeFiles/eqos_topology.dir/bridges.cpp.o.d"
  "/root/repo/src/topology/disjoint.cpp" "src/topology/CMakeFiles/eqos_topology.dir/disjoint.cpp.o" "gcc" "src/topology/CMakeFiles/eqos_topology.dir/disjoint.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/topology/CMakeFiles/eqos_topology.dir/graph.cpp.o" "gcc" "src/topology/CMakeFiles/eqos_topology.dir/graph.cpp.o.d"
  "/root/repo/src/topology/io.cpp" "src/topology/CMakeFiles/eqos_topology.dir/io.cpp.o" "gcc" "src/topology/CMakeFiles/eqos_topology.dir/io.cpp.o.d"
  "/root/repo/src/topology/metrics.cpp" "src/topology/CMakeFiles/eqos_topology.dir/metrics.cpp.o" "gcc" "src/topology/CMakeFiles/eqos_topology.dir/metrics.cpp.o.d"
  "/root/repo/src/topology/paths.cpp" "src/topology/CMakeFiles/eqos_topology.dir/paths.cpp.o" "gcc" "src/topology/CMakeFiles/eqos_topology.dir/paths.cpp.o.d"
  "/root/repo/src/topology/regular.cpp" "src/topology/CMakeFiles/eqos_topology.dir/regular.cpp.o" "gcc" "src/topology/CMakeFiles/eqos_topology.dir/regular.cpp.o.d"
  "/root/repo/src/topology/transit_stub.cpp" "src/topology/CMakeFiles/eqos_topology.dir/transit_stub.cpp.o" "gcc" "src/topology/CMakeFiles/eqos_topology.dir/transit_stub.cpp.o.d"
  "/root/repo/src/topology/waxman.cpp" "src/topology/CMakeFiles/eqos_topology.dir/waxman.cpp.o" "gcc" "src/topology/CMakeFiles/eqos_topology.dir/waxman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eqos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
