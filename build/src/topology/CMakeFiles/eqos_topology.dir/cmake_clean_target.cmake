file(REMOVE_RECURSE
  "libeqos_topology.a"
)
