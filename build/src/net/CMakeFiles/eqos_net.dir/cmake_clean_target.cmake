file(REMOVE_RECURSE
  "libeqos_net.a"
)
