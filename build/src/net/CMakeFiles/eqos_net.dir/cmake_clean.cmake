file(REMOVE_RECURSE
  "CMakeFiles/eqos_net.dir/backup.cpp.o"
  "CMakeFiles/eqos_net.dir/backup.cpp.o.d"
  "CMakeFiles/eqos_net.dir/flooding.cpp.o"
  "CMakeFiles/eqos_net.dir/flooding.cpp.o.d"
  "CMakeFiles/eqos_net.dir/interval_qos.cpp.o"
  "CMakeFiles/eqos_net.dir/interval_qos.cpp.o.d"
  "CMakeFiles/eqos_net.dir/link_state.cpp.o"
  "CMakeFiles/eqos_net.dir/link_state.cpp.o.d"
  "CMakeFiles/eqos_net.dir/network.cpp.o"
  "CMakeFiles/eqos_net.dir/network.cpp.o.d"
  "CMakeFiles/eqos_net.dir/qos.cpp.o"
  "CMakeFiles/eqos_net.dir/qos.cpp.o.d"
  "CMakeFiles/eqos_net.dir/revenue.cpp.o"
  "CMakeFiles/eqos_net.dir/revenue.cpp.o.d"
  "CMakeFiles/eqos_net.dir/routing.cpp.o"
  "CMakeFiles/eqos_net.dir/routing.cpp.o.d"
  "libeqos_net.a"
  "libeqos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
