
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/backup.cpp" "src/net/CMakeFiles/eqos_net.dir/backup.cpp.o" "gcc" "src/net/CMakeFiles/eqos_net.dir/backup.cpp.o.d"
  "/root/repo/src/net/flooding.cpp" "src/net/CMakeFiles/eqos_net.dir/flooding.cpp.o" "gcc" "src/net/CMakeFiles/eqos_net.dir/flooding.cpp.o.d"
  "/root/repo/src/net/interval_qos.cpp" "src/net/CMakeFiles/eqos_net.dir/interval_qos.cpp.o" "gcc" "src/net/CMakeFiles/eqos_net.dir/interval_qos.cpp.o.d"
  "/root/repo/src/net/link_state.cpp" "src/net/CMakeFiles/eqos_net.dir/link_state.cpp.o" "gcc" "src/net/CMakeFiles/eqos_net.dir/link_state.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/eqos_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/eqos_net.dir/network.cpp.o.d"
  "/root/repo/src/net/qos.cpp" "src/net/CMakeFiles/eqos_net.dir/qos.cpp.o" "gcc" "src/net/CMakeFiles/eqos_net.dir/qos.cpp.o.d"
  "/root/repo/src/net/revenue.cpp" "src/net/CMakeFiles/eqos_net.dir/revenue.cpp.o" "gcc" "src/net/CMakeFiles/eqos_net.dir/revenue.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/net/CMakeFiles/eqos_net.dir/routing.cpp.o" "gcc" "src/net/CMakeFiles/eqos_net.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/eqos_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eqos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
