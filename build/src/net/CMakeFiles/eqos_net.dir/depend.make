# Empty dependencies file for eqos_net.
# This may be replaced when dependencies are built.
