file(REMOVE_RECURSE
  "libeqos_util.a"
)
