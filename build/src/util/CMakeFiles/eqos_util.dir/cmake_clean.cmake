file(REMOVE_RECURSE
  "CMakeFiles/eqos_util.dir/log.cpp.o"
  "CMakeFiles/eqos_util.dir/log.cpp.o.d"
  "CMakeFiles/eqos_util.dir/rng.cpp.o"
  "CMakeFiles/eqos_util.dir/rng.cpp.o.d"
  "CMakeFiles/eqos_util.dir/stats.cpp.o"
  "CMakeFiles/eqos_util.dir/stats.cpp.o.d"
  "CMakeFiles/eqos_util.dir/table.cpp.o"
  "CMakeFiles/eqos_util.dir/table.cpp.o.d"
  "libeqos_util.a"
  "libeqos_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqos_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
