# Empty compiler generated dependencies file for eqos_util.
# This may be replaced when dependencies are built.
