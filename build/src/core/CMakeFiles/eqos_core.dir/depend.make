# Empty dependencies file for eqos_core.
# This may be replaced when dependencies are built.
