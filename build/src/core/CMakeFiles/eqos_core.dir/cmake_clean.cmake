file(REMOVE_RECURSE
  "CMakeFiles/eqos_core.dir/analyzer.cpp.o"
  "CMakeFiles/eqos_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/eqos_core.dir/experiment.cpp.o"
  "CMakeFiles/eqos_core.dir/experiment.cpp.o.d"
  "CMakeFiles/eqos_core.dir/ideal.cpp.o"
  "CMakeFiles/eqos_core.dir/ideal.cpp.o.d"
  "libeqos_core.a"
  "libeqos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
