file(REMOVE_RECURSE
  "libeqos_core.a"
)
