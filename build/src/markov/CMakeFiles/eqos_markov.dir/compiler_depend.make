# Empty compiler generated dependencies file for eqos_markov.
# This may be replaced when dependencies are built.
