file(REMOVE_RECURSE
  "libeqos_markov.a"
)
