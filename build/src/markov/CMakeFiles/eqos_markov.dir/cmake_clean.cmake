file(REMOVE_RECURSE
  "CMakeFiles/eqos_markov.dir/bandwidth_chain.cpp.o"
  "CMakeFiles/eqos_markov.dir/bandwidth_chain.cpp.o.d"
  "CMakeFiles/eqos_markov.dir/classify.cpp.o"
  "CMakeFiles/eqos_markov.dir/classify.cpp.o.d"
  "CMakeFiles/eqos_markov.dir/ctmc.cpp.o"
  "CMakeFiles/eqos_markov.dir/ctmc.cpp.o.d"
  "CMakeFiles/eqos_markov.dir/dtmc.cpp.o"
  "CMakeFiles/eqos_markov.dir/dtmc.cpp.o.d"
  "CMakeFiles/eqos_markov.dir/passage.cpp.o"
  "CMakeFiles/eqos_markov.dir/passage.cpp.o.d"
  "CMakeFiles/eqos_markov.dir/rewards.cpp.o"
  "CMakeFiles/eqos_markov.dir/rewards.cpp.o.d"
  "libeqos_markov.a"
  "libeqos_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqos_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
