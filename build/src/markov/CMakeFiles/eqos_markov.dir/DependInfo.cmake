
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/bandwidth_chain.cpp" "src/markov/CMakeFiles/eqos_markov.dir/bandwidth_chain.cpp.o" "gcc" "src/markov/CMakeFiles/eqos_markov.dir/bandwidth_chain.cpp.o.d"
  "/root/repo/src/markov/classify.cpp" "src/markov/CMakeFiles/eqos_markov.dir/classify.cpp.o" "gcc" "src/markov/CMakeFiles/eqos_markov.dir/classify.cpp.o.d"
  "/root/repo/src/markov/ctmc.cpp" "src/markov/CMakeFiles/eqos_markov.dir/ctmc.cpp.o" "gcc" "src/markov/CMakeFiles/eqos_markov.dir/ctmc.cpp.o.d"
  "/root/repo/src/markov/dtmc.cpp" "src/markov/CMakeFiles/eqos_markov.dir/dtmc.cpp.o" "gcc" "src/markov/CMakeFiles/eqos_markov.dir/dtmc.cpp.o.d"
  "/root/repo/src/markov/passage.cpp" "src/markov/CMakeFiles/eqos_markov.dir/passage.cpp.o" "gcc" "src/markov/CMakeFiles/eqos_markov.dir/passage.cpp.o.d"
  "/root/repo/src/markov/rewards.cpp" "src/markov/CMakeFiles/eqos_markov.dir/rewards.cpp.o" "gcc" "src/markov/CMakeFiles/eqos_markov.dir/rewards.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/eqos_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eqos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
