// Unit tests for regular topologies, exact chaining probabilities, and
// bridge analysis — including the cross-validation the paper's Section 3.3
// suggests: on a regular topology the chaining probability is a pure
// function of the topology, so the simulator's measured Pf must match the
// exact combinatorial value.
#include <gtest/gtest.h>

#include <cmath>

#include "net/network.hpp"
#include "sim/recorder.hpp"
#include "sim/simulator.hpp"
#include "topology/bridges.hpp"
#include "topology/metrics.hpp"
#include "topology/paths.hpp"
#include "topology/regular.hpp"
#include "topology/waxman.hpp"

namespace eqos::topology {
namespace {

// ---- Generators -------------------------------------------------------------

TEST(Regular, RingStructure) {
  const Graph g = generate_ring(8);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_links(), 8u);
  for (NodeId i = 0; i < 8; ++i) EXPECT_EQ(g.degree(i), 2u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 4u);
  EXPECT_THROW(generate_ring(2), std::invalid_argument);
}

TEST(Regular, TorusStructure) {
  const Graph g = generate_torus(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.num_links(), 40u);  // 2 links per node
  for (NodeId i = 0; i < 20; ++i) EXPECT_EQ(g.degree(i), 4u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_THROW(generate_torus(2, 5), std::invalid_argument);
}

TEST(Regular, StarStructure) {
  const Graph g = generate_star(6);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_links(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_EQ(diameter(g), 2u);
}

TEST(Regular, CompleteStructure) {
  const Graph g = generate_complete(6);
  EXPECT_EQ(g.num_links(), 15u);
  EXPECT_EQ(diameter(g), 1u);
}

// ---- Exact chaining probability -------------------------------------------------

TEST(Regular, StarChainingIsCertain) {
  // Every route crosses the hub... but leaf-hub routes use distinct spokes.
  // Two random channels share a link iff they share a spoke.  For K = 3
  // leaves the pairs are (hub,leaf) x3 and (leaf,leaf) x3; enumerate by hand:
  // route(hub,i) = {spoke_i}; route(i,j) = {spoke_i, spoke_j}.
  const Graph g = generate_star(3);
  const double pf = exact_direct_chaining_probability(g);
  // 6 routes; count sharing ordered pairs (including diagonal): computed by
  // brute force below for independence from the implementation.
  std::vector<util::DynamicBitset> routes;
  for (NodeId a = 0; a < g.num_nodes(); ++a)
    for (NodeId b = a + 1; b < g.num_nodes(); ++b)
      routes.push_back(shortest_path(g, a, b)->link_set(g.num_links()));
  std::size_t sharing = 0;
  for (const auto& r1 : routes)
    for (const auto& r2 : routes)
      if (r1.intersects(r2)) ++sharing;
  EXPECT_NEAR(pf, static_cast<double>(sharing) / 36.0, 1e-12);
}

TEST(Regular, CompleteGraphChainingIsMinimal) {
  // All routes are single distinct links: channels share a link only when
  // they connect the same pair -> Pf = 1 / #pairs.
  const Graph g = generate_complete(8);
  const double pf = exact_direct_chaining_probability(g);
  EXPECT_NEAR(pf, 1.0 / 28.0, 1e-12);
}

TEST(Regular, RingChainingApproachesOneHalf) {
  // Two random shortest arcs on a ring have fractional lengths ~U(0, 1/2);
  // P(overlap) -> E[x + y] = 1/2 from below as the ring grows.
  const double pf8 = exact_direct_chaining_probability(generate_ring(8));
  const double pf16 = exact_direct_chaining_probability(generate_ring(16));
  const double pf32 = exact_direct_chaining_probability(generate_ring(32));
  EXPECT_LT(pf8, pf16);
  EXPECT_LT(pf16, pf32);
  EXPECT_LT(pf32, 0.5);
  EXPECT_GT(pf32, 0.4);
}

TEST(Regular, ExactAverageHops) {
  // Complete graph: everything is one hop.
  EXPECT_NEAR(exact_average_hops(generate_complete(6)), 1.0, 1e-12);
  // Star: hub-leaf = 1 (K pairs), leaf-leaf = 2 (K choose 2 pairs).
  const double k = 5.0;
  const double expected = (k * 1.0 + (k * (k - 1) / 2.0) * 2.0) / (k + k * (k - 1) / 2.0);
  EXPECT_NEAR(exact_average_hops(generate_star(5)), expected, 1e-12);
}

TEST(Regular, MeasuredPfMatchesExactOnTorus) {
  // The Section 3.3 cross-check: run the full simulator on a regular
  // topology at light load (so routing stays shortest-path) and compare the
  // recorder's Pf with the exact combinatorial value.
  const Graph g = generate_torus(5, 5);
  const double exact = exact_direct_chaining_probability(g);

  net::NetworkConfig ncfg;
  ncfg.link_capacity_kbps = 100'000.0;  // effectively uncontended
  ncfg.require_backup = false;          // backups do not affect Pf
  // Use plain BFS shortest routing so the simulator picks exactly the
  // routes the combinatorial computation enumerates (widest-shortest would
  // deliberately spread equal-hop channels apart and lower Pf).
  ncfg.route_policy = net::RoutePolicy::kShortest;
  net::Network network(g, ncfg);
  sim::WorkloadConfig w;
  w.qos = net::ElasticQosSpec{100.0, 500.0, 50.0, 1.0};
  w.seed = 11;
  sim::Simulator sim(network, w);
  sim.populate(60);
  sim::TransitionRecorder rec(w.qos, sim.now());
  sim.attach_recorder(&rec);
  sim.run_events(4000);
  const auto est = rec.estimates(sim.now(), network);
  // Statistical + tie-break noise tolerance: 15% relative.
  EXPECT_NEAR(est.pf, exact, 0.15 * exact)
      << "measured " << est.pf << " vs exact " << exact;
}

// ---- Bridges --------------------------------------------------------------------

TEST(Bridges, RingHasNone) {
  EXPECT_TRUE(find_bridges(generate_ring(10)).empty());
  EXPECT_TRUE(is_two_edge_connected(generate_ring(10)));
  EXPECT_DOUBLE_EQ(bridge_separated_pair_fraction(generate_ring(10)), 0.0);
}

TEST(Bridges, StarIsAllBridges) {
  const Graph g = generate_star(5);
  EXPECT_EQ(find_bridges(g).size(), 5u);
  EXPECT_FALSE(is_two_edge_connected(g));
  EXPECT_DOUBLE_EQ(bridge_separated_pair_fraction(g), 1.0);
}

TEST(Bridges, BarbellHasOneBridge) {
  // Two triangles joined by one edge.
  Graph g(6);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 0);
  g.add_link(3, 4);
  g.add_link(4, 5);
  g.add_link(5, 3);
  const LinkId bridge = g.add_link(2, 3);
  const auto bridges = find_bridges(g);
  ASSERT_EQ(bridges.size(), 1u);
  EXPECT_EQ(bridges[0], bridge);
  // 3 x 3 cross pairs of 15 total.
  EXPECT_NEAR(bridge_separated_pair_fraction(g), 9.0 / 15.0, 1e-12);
}

TEST(Bridges, PathGraphEveryEdgeIsBridge) {
  Graph g(5);
  for (NodeId i = 0; i + 1 < 5; ++i) g.add_link(i, i + 1);
  EXPECT_EQ(find_bridges(g).size(), 4u);
}

TEST(Bridges, DisconnectedGraphIsNotTwoEdgeConnected) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  EXPECT_FALSE(is_two_edge_connected(g));
}

TEST(Bridges, RoutingFallbackTriggersExactlyOnBridgePairs) {
  // On a barbell, fully-disjoint backups exist iff the pair is inside one
  // triangle; cross pairs only get maximally-disjoint backups.
  Graph g(6);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 0);
  g.add_link(3, 4);
  g.add_link(4, 5);
  g.add_link(5, 3);
  g.add_link(2, 3);
  net::Network net(g, net::NetworkConfig{});
  const net::ElasticQosSpec qos{100.0, 500.0, 50.0, 1.0};

  const auto inside = net.request_connection(0, 1, qos);
  ASSERT_TRUE(inside.accepted);
  EXPECT_EQ(inside.backup_overlap_links, 0u);

  const auto across = net.request_connection(0, 5, qos);
  ASSERT_TRUE(across.accepted);
  EXPECT_GE(across.backup_overlap_links, 1u);  // the bridge is unavoidable
  net.validate_invariants();
}

TEST(Bridges, WaxmanConnectedComponentsJoinsCreateBridges) {
  // Sparse Waxman + ensure_connected stitches components with bridges; the
  // detector should find at least the stitched links.
  const Graph g = generate_waxman({60, 0.12, 0.1, true}, 3);
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(find_bridges(g).empty());
}

}  // namespace
}  // namespace eqos::topology
