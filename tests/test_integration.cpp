// Cross-module integration and property tests.
//
// These tests exercise the full stack — topology generation, network
// operation, simulation, parameter estimation, chain solving — and assert
// the paper's qualitative findings as invariants:
//   * more load => lower average bandwidth (Figure 2's monotone shape)
//   * analytic model tracks simulation (Figure 2's agreement)
//   * increment size barely matters (Table 1)
//   * tiny failure rates have no visible effect (Figure 4)
//   * transit-stub networks saturate earlier than random networks (Table 1)
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "topology/metrics.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"

namespace eqos {
namespace {

net::ElasticQosSpec paper_qos(double increment = 50.0) {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = increment;
  return q;
}

core::ExperimentConfig base_config(std::size_t connections, double increment = 50.0) {
  core::ExperimentConfig cfg;
  cfg.workload.qos = paper_qos(increment);
  cfg.workload.arrival_rate = 1e-3;
  cfg.workload.termination_rate = 1e-3;
  cfg.workload.seed = 4242;
  cfg.target_connections = connections;
  cfg.warmup_events = 150;
  cfg.measure_events = 700;
  return cfg;
}

const topology::Graph& paper_graph() {
  static const topology::Graph g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  return g;
}

TEST(Integration, BandwidthDecreasesWithLoad) {
  double previous = 501.0;
  for (std::size_t n : {500u, 2000u, 4000u, 6000u}) {
    const auto r = core::run_experiment(paper_graph(), base_config(n));
    EXPECT_LE(r.sim_mean_bandwidth_kbps, previous + 15.0) << "load " << n;
    previous = r.sim_mean_bandwidth_kbps;
  }
  EXPECT_LT(previous, 300.0);  // heavy load ends well below bmax
}

TEST(Integration, AnalyticTracksSimulationAcrossLoads) {
  for (std::size_t n : {2500u, 4500u}) {
    const auto r = core::run_experiment(paper_graph(), base_config(n));
    const double rel =
        std::abs(r.analytic_paper_kbps - r.sim_mean_bandwidth_kbps) /
        r.sim_mean_bandwidth_kbps;
    EXPECT_LT(rel, 0.35) << "load " << n << " sim=" << r.sim_mean_bandwidth_kbps
                         << " analytic=" << r.analytic_paper_kbps;
  }
}

TEST(Integration, IncrementSizeBarelyMatters) {
  // Table 1: 5-state (delta=100) vs 9-state (delta=50) agree on average.
  const auto fine = core::run_experiment(paper_graph(), base_config(3000, 50.0));
  const auto coarse = core::run_experiment(paper_graph(), base_config(3000, 100.0));
  EXPECT_NEAR(fine.sim_mean_bandwidth_kbps, coarse.sim_mean_bandwidth_kbps,
              0.15 * fine.sim_mean_bandwidth_kbps);
}

TEST(Integration, TinyFailureRateHasNoVisibleEffect) {
  // Figure 4: gamma in [1e-7, 1e-5] << lambda leaves the average unchanged.
  auto cfg = base_config(2000);
  const auto baseline = core::run_experiment(paper_graph(), cfg);
  cfg.workload.failure_rate = 1e-5;
  cfg.workload.repair_rate = 1e-2;
  const auto with_failures = core::run_experiment(paper_graph(), cfg);
  EXPECT_NEAR(with_failures.sim_mean_bandwidth_kbps, baseline.sim_mean_bandwidth_kbps,
              0.06 * baseline.sim_mean_bandwidth_kbps);
}

TEST(Integration, TransitStubSaturatesEarlier) {
  // Table 1's "Tier" column: the same offered load yields far fewer
  // established connections on a transit-stub topology.
  const auto ts = topology::generate_transit_stub({}, 7);
  auto cfg = base_config(3000);
  cfg.warmup_events = 100;
  cfg.measure_events = 300;
  const auto tier = core::run_experiment(ts.graph, cfg);
  const auto random = core::run_experiment(paper_graph(), cfg);
  EXPECT_LT(tier.established, random.established / 2);
  EXPECT_GT(tier.attempted, tier.established);  // rejections happened
}

TEST(Integration, EveryConnectionStaysWithinQosRange) {
  auto cfg = base_config(3000);
  net::Network net(paper_graph(), cfg.network);
  sim::Simulator sim(net, cfg.workload);
  sim.populate(cfg.target_connections);
  sim.run_events(500);
  for (net::ConnectionId id : net.active_ids()) {
    const auto& c = net.connection(id);
    EXPECT_GE(c.reserved_kbps(), 100.0 - 1e-9);
    EXPECT_LE(c.reserved_kbps(), 500.0 + 1e-9);
  }
  net.validate_invariants();
}

TEST(Integration, OccupancyMatchesSteadyStateLoosely) {
  // The chain's stationary vector should resemble the empirical occupancy
  // (this is exactly the paper's modeling-accuracy claim).
  const auto r = core::run_experiment(paper_graph(), base_config(4000));
  const auto& occ = r.estimates.occupancy;
  const auto& pi = r.paper_analysis.steady_state;
  ASSERT_EQ(occ.size(), pi.size());
  // Compare the means rather than pointwise (finite window).
  double occ_mean = 0.0;
  double pi_mean = 0.0;
  for (std::size_t i = 0; i < occ.size(); ++i) {
    const double bw = 100.0 + 50.0 * static_cast<double>(i);
    occ_mean += occ[i] * bw;
    pi_mean += pi[i] * bw;
  }
  EXPECT_NEAR(pi_mean, occ_mean, 0.35 * occ_mean);
}

TEST(Integration, MultiplexingAblation) {
  // Disabling backup multiplexing reduces the number of connections the
  // network can hold (tight capacity makes the reservation cost visible).
  auto cfg = base_config(2000);
  cfg.network.link_capacity_kbps = 3000.0;
  cfg.warmup_events = 50;
  cfg.measure_events = 200;
  const auto mux = core::run_experiment(paper_graph(), cfg);
  cfg.network.backup_multiplexing = false;
  const auto nomux = core::run_experiment(paper_graph(), cfg);
  EXPECT_GT(mux.established, nomux.established);
}

TEST(Integration, UnprotectedFractionSmallOnRichTopology) {
  const auto r = core::run_experiment(paper_graph(), base_config(2000));
  EXPECT_GT(r.protected_fraction, 0.9);
}

// Property sweep across seeds: the full pipeline never violates invariants
// and produces bandwidths within the QoS range.
class PipelineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeedSweep, EndToEndSane) {
  const auto g = topology::generate_waxman({80, 0.33, 0.22, true}, GetParam());
  auto cfg = base_config(1200);
  cfg.workload.seed = GetParam() * 31 + 1;
  cfg.workload.failure_rate = 1e-5;
  cfg.warmup_events = 80;
  cfg.measure_events = 400;
  const auto r = core::run_experiment(g, cfg);
  EXPECT_GE(r.sim_mean_bandwidth_kbps, 100.0 - 1e-6);
  EXPECT_LE(r.sim_mean_bandwidth_kbps, 500.0 + 1e-6);
  EXPECT_GE(r.analytic_paper_kbps, 100.0 - 1e-6);
  EXPECT_LE(r.analytic_paper_kbps, 500.0 + 1e-6);
  EXPECT_GE(r.analytic_refined_kbps, 100.0 - 1e-6);
  EXPECT_LE(r.analytic_refined_kbps, 500.0 + 1e-6);
  double sum = 0.0;
  for (double p : r.paper_analysis.steady_state) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace eqos
