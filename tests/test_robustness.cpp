// Dual-failure survivability tests for the multi-backup schemes:
//
//  * a scripted SRLG-style dual failure (backup channel first, primary
//    second) exercised under every BackupScheme, checking the
//    survived-via-backup-set accounting, recovery-time SLA samples, and the
//    rule that a rescued-or-surviving victim is never double-counted as an
//    unprotected loss;
//  * the SRLG adversary's damage assessment on a hand-built topology;
//  * sweep determinism: the scheme ablation is bit-identical across 1/2/8
//    worker threads, including the new recovery-time sample vectors;
//  * checkpoint bit-identity: backup-set state (channel paths, trigger
//    lists, siblings_lost) survives a save/load/save round trip byte-for-
//    byte under every scheme.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "fault/adversary.hpp"
#include "net/network.hpp"
#include "state/serial.hpp"
#include "topology/waxman.hpp"
#include "util/bitset.hpp"

namespace eqos {
namespace {

using topology::Graph;

net::ElasticQosSpec paper_qos() {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  return q;
}

/// Theta graph: exactly three pairwise link-disjoint 0->1 routes — the
/// direct link 0 (shortest, always the primary) and the two-hop detours
/// 0-2-1 (links 1,2) and 0-3-1 (links 3,4).  No fourth route exists, so a
/// lost backup channel cannot be replaced.
Graph theta() {
  Graph g(4);
  g.add_link(0, 1);  // 0: primary
  g.add_link(0, 2);  // 1
  g.add_link(2, 1);  // 2
  g.add_link(0, 3);  // 3
  g.add_link(3, 1);  // 4
  return g;
}

/// Ladder: primary 0-1-2 (links 0,1) with exactly one detour per primary
/// link — 0-3-1 (links 2,3) around link 0 and 1-4-2 (links 4,5) around
/// link 1.  With segment span 1 each primary link gets its own channel.
Graph ladder() {
  Graph g(5);
  g.add_link(0, 1);  // 0: primary hop 1
  g.add_link(1, 2);  // 1: primary hop 2
  g.add_link(0, 3);  // 2
  g.add_link(3, 1);  // 3
  g.add_link(1, 4);  // 4
  g.add_link(4, 2);  // 5
  return g;
}

net::NetworkConfig scheme_config(net::BackupScheme scheme) {
  net::NetworkConfig cfg;
  cfg.backup_scheme = scheme;
  cfg.second_failure_policy = net::SecondFailurePolicy::kReestablish;
  return cfg;
}

// ---- Scripted SRLG dual failure, one scheme at a time --------------------
//
// The SRLG failure model fails its member links one at a time, so the
// "primary + backup channel" double hit lands across two fail_link calls:
// the backup dies first (no replacement possible on these graphs), then the
// primary.  A multi-backup set must convert that into a seamless switchover
// credited to the set; the single-backup baseline must not claim the credit.

TEST(SrlgDualFailure, SingleSchemeGetsNoSetCredit) {
  const Graph g = theta();
  net::Network net(g, scheme_config(net::BackupScheme::kSingle));
  const auto outcome = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  ASSERT_EQ(net.connection(outcome.id).backups.size(), 1u);

  // Hit the detour the single backup sits on (either detour works: losing
  // the channel triggers an immediate replacement onto the other detour).
  const topology::LinkId backup_link =
      net.connection(outcome.id).backups.front().path.links[0];
  net.fail_link(backup_link);
  const auto report = net.fail_link(0);  // primary

  EXPECT_EQ(report.backups_activated, 1u);
  EXPECT_EQ(report.survived_via_backup_set, 0u);
  EXPECT_EQ(net.stats().drop_causes.survived_backup_set, 0u);
  EXPECT_TRUE(net.is_active(outcome.id));
  net.validate_invariants();
}

TEST(SrlgDualFailure, DualSchemeSurvivesViaSet) {
  const Graph g = theta();
  net::Network net(g, scheme_config(net::BackupScheme::kDualDisjoint));
  const auto outcome = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  ASSERT_EQ(net.connection(outcome.id).backups.size(), 2u);

  // Kill the first backup channel (the theta graph has no spare route, so
  // the set stays depleted), then the primary.
  const topology::LinkId backup_link =
      net.connection(outcome.id).backups.front().path.links[0];
  const auto first = net.fail_link(backup_link);
  EXPECT_EQ(first.backups_lost, 1u);
  EXPECT_EQ(first.backups_reestablished, 0u);
  ASSERT_EQ(net.connection(outcome.id).backups.size(), 1u);
  EXPECT_EQ(net.connection(outcome.id).siblings_lost, 1u);

  const auto second = net.fail_link(0);
  EXPECT_EQ(second.primaries_hit, 1u);
  EXPECT_EQ(second.backups_activated, 1u);
  EXPECT_EQ(second.survived_via_backup_set, 1u);
  EXPECT_EQ(second.unprotected_victims, 0u);
  EXPECT_EQ(second.connections_dropped, 0u);
  EXPECT_EQ(net.stats().drop_causes.survived_backup_set, 1u);
  EXPECT_EQ(net.stats().survived_via_backup_set, 1u);

  // Recovery-time SLA sample: detection plus one parallel cross-connect
  // actuation (kDualDisjoint pays a constant, not per-hop, switchover).
  ASSERT_EQ(second.recovery_times.size(), 1u);
  EXPECT_DOUBLE_EQ(second.recovery_times[0],
                   net.config().recovery_detect_time +
                       net.config().recovery_xc_time_per_hop);

  EXPECT_TRUE(net.is_active(outcome.id));
  EXPECT_EQ(net.connection(outcome.id).activations, 1u);
  net.validate_invariants();
}

TEST(SrlgDualFailure, SegmentSchemeSurvivesViaDepletedSet) {
  const Graph g = ladder();
  net::NetworkConfig cfg = scheme_config(net::BackupScheme::kSegment);
  cfg.segment_span_hops = 1;
  net::Network net(g, cfg);
  const auto outcome = net.request_connection(0, 2, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  ASSERT_EQ(net.connection(outcome.id).backups.size(), 2u);

  // Kill the segment channel covering primary link 1 (detour 1-4-2; the
  // ladder has no alternate detour), then fail primary link 0, whose own
  // segment channel 0-3-1 is alive and splices in.
  const auto first = net.fail_link(4);
  EXPECT_EQ(first.backups_lost, 1u);
  ASSERT_EQ(net.connection(outcome.id).backups.size(), 1u);
  EXPECT_EQ(net.connection(outcome.id).siblings_lost, 1u);

  const auto second = net.fail_link(0);
  EXPECT_EQ(second.backups_activated, 1u);
  EXPECT_EQ(second.survived_via_backup_set, 1u);
  EXPECT_EQ(second.unprotected_victims, 0u);

  // Segment switchover signals per patch hop (two links on the detour).
  ASSERT_EQ(second.recovery_times.size(), 1u);
  EXPECT_DOUBLE_EQ(second.recovery_times[0],
                   net.config().recovery_detect_time +
                       2.0 * net.config().recovery_xc_time_per_hop);

  EXPECT_TRUE(net.is_active(outcome.id));
  net.validate_invariants();
}

TEST(SrlgDualFailure, SegmentVictimWhoseCoverDiedIsRescuedNotSilent) {
  // Mirror case: the SRLG kills the covering channel itself, then the
  // primary link it covered — no seamless switchover is possible, and the
  // victim must surface as unprotected (then rescued or dropped), never as
  // a set survival.
  const Graph g = ladder();
  net::NetworkConfig cfg = scheme_config(net::BackupScheme::kSegment);
  cfg.segment_span_hops = 1;
  net::Network net(g, cfg);
  const auto outcome = net.request_connection(0, 2, paper_qos());
  ASSERT_TRUE(outcome.accepted);

  net.fail_link(2);  // detour 0-3-1 dies: primary link 0 now uncovered
  const auto report = net.fail_link(0);
  EXPECT_EQ(report.backups_activated, 0u);
  EXPECT_EQ(report.survived_via_backup_set, 0u);
  EXPECT_EQ(report.unprotected_victims, 1u);
  // kReestablish either re-homes the victim or drops it; both are honest.
  EXPECT_EQ(report.reestablished_pair + report.reestablished_degraded +
                report.connections_dropped,
            1u);
  net.validate_invariants();
}

// ---- Adversary damage assessment -----------------------------------------

TEST(Adversary, AssessDamageSeparatesCoveredFromExposed) {
  const Graph g = theta();
  net::Network net(g, scheme_config(net::BackupScheme::kDualDisjoint));
  const auto outcome = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(outcome.accepted);

  // Attack = primary only: both full-span channels cover it, clear of the
  // attack -> survivable.
  util::DynamicBitset attack(g.num_links());
  attack.set(0);
  const auto covered = fault::assess_damage(net, attack);
  EXPECT_EQ(covered.victims, 1u);
  EXPECT_EQ(covered.survivable, 1u);
  EXPECT_EQ(covered.dropped, 0u);

  // Attack = primary + both detour first-hops: every covering channel is
  // inside the attack -> projected drop with revenue at risk.
  attack.set(1);
  attack.set(3);
  const auto exposed = fault::assess_damage(net, attack);
  EXPECT_EQ(exposed.victims, 1u);
  EXPECT_EQ(exposed.survivable, 0u);
  EXPECT_EQ(exposed.dropped, 1u);
  EXPECT_GT(exposed.revenue_at_risk, 0.0);
}

TEST(Adversary, WorstCaseAttackFindsTheLethalCombination) {
  const Graph g = theta();
  net::Network net(g, scheme_config(net::BackupScheme::kDualDisjoint));
  const auto outcome = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(outcome.accepted);

  // Four singleton SRLGs; only {primary, detour-a, detour-b} kills the
  // connection, and that needs 3 groups.  With budget 2 the worst plan
  // degrades but cannot drop; with budget 3 it must find the kill.
  std::vector<fault::SrlgGroup> groups;
  for (topology::LinkId l : {0u, 1u, 3u}) {
    fault::SrlgGroup grp;
    grp.name = "g" + std::to_string(l);
    grp.links = {l};
    groups.push_back(grp);
  }

  fault::AdversaryBudget two;
  two.max_groups = 2;
  const auto plan2 = fault::worst_case_attack(net, groups, two);
  EXPECT_TRUE(plan2.exhaustive);
  EXPECT_EQ(plan2.damage.dropped, 0u);

  fault::AdversaryBudget three;
  three.max_groups = 3;
  const auto plan3 = fault::worst_case_attack(net, groups, three);
  EXPECT_TRUE(plan3.exhaustive);
  EXPECT_EQ(plan3.group_indices.size(), 3u);
  EXPECT_EQ(plan3.damage.dropped, 1u);
}

// ---- Sweep determinism across thread counts ------------------------------

const Graph& sweep_graph() {
  static const Graph g = topology::generate_waxman({30, 0.4, 0.3, true}, 7);
  return g;
}

core::ExperimentConfig scheme_experiment(net::BackupScheme scheme) {
  core::ExperimentConfig cfg;
  cfg.network = scheme_config(scheme);
  cfg.workload.qos = paper_qos();
  cfg.workload.seed = 11;
  cfg.workload.failure_rate = 2e-4;  // exercise activations and losses
  cfg.target_connections = 60;
  cfg.warmup_events = 30;
  cfg.measure_events = 150;
  return cfg;
}

TEST(RobustnessSweep, SchemeAblationBitIdenticalAcrossThreads) {
  std::vector<core::SweepPoint> points;
  for (const net::BackupScheme s :
       {net::BackupScheme::kSingle, net::BackupScheme::kDualDisjoint,
        net::BackupScheme::kSegment})
    points.push_back({&sweep_graph(), scheme_experiment(s), ""});

  core::SweepOptions opt;
  opt.reps = 2;
  opt.threads = 1;
  const auto serial = core::run_sweep(points, opt);
  opt.threads = 2;
  const auto two = core::run_sweep(points, opt);
  opt.threads = 8;
  const auto eight = core::run_sweep(points, opt);

  ASSERT_EQ(serial.results.size(), points.size() * opt.reps);
  ASSERT_EQ(two.results.size(), serial.results.size());
  ASSERT_EQ(eight.results.size(), serial.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    SCOPED_TRACE("result " + std::to_string(i));
    for (const core::ExperimentResult* other :
         {&two.results[i], &eight.results[i]}) {
      const net::NetworkStats& a = serial.results[i].network_stats;
      const net::NetworkStats& b = other->network_stats;
      EXPECT_EQ(a.requests, b.requests);
      EXPECT_EQ(a.accepted, b.accepted);
      EXPECT_EQ(a.failures_injected, b.failures_injected);
      EXPECT_EQ(a.backups_activated, b.backups_activated);
      EXPECT_EQ(a.connections_dropped, b.connections_dropped);
      EXPECT_EQ(a.survived_via_backup_set, b.survived_via_backup_set);
      // Bitwise: the recovery-time sample vector (order included) is part
      // of the determinism contract behind the p50/p95/p99 columns.
      EXPECT_EQ(a.recovery_times, b.recovery_times);
      EXPECT_EQ(serial.results[i].sim_mean_bandwidth_kbps,
                other->sim_mean_bandwidth_kbps);
    }
  }
}

// ---- Checkpoint bit-identity of backup-set state -------------------------

void expect_save_load_save_identical(const Graph& g,
                                     const net::NetworkConfig& cfg,
                                     net::Network& original) {
  state::Buffer first;
  original.save_state(first);

  net::Network restored(g, cfg);
  state::Buffer in(first.bytes());
  restored.load_state(in);
  restored.validate_invariants();

  state::Buffer second;
  restored.save_state(second);
  EXPECT_EQ(first.bytes(), second.bytes());
}

TEST(RobustnessCheckpoint, BackupSetStateRoundTripsBitIdentically) {
  // Every scheme, after a partial SRLG hit, carries non-trivial backup-set
  // state: channel paths, per-channel trigger lists, and the siblings_lost
  // depletion counter.  All of it must survive save -> load -> save with
  // identical bytes.
  {
    const Graph g = theta();
    for (const net::BackupScheme s :
         {net::BackupScheme::kSingle, net::BackupScheme::kDualDisjoint}) {
      SCOPED_TRACE(static_cast<int>(s));
      const net::NetworkConfig cfg = scheme_config(s);
      net::Network net(g, cfg);
      const auto outcome = net.request_connection(0, 1, paper_qos());
      ASSERT_TRUE(outcome.accepted);
      net.fail_link(net.connection(outcome.id).backups.front().path.links[0]);
      expect_save_load_save_identical(g, cfg, net);
    }
  }
  {
    const Graph g = ladder();
    net::NetworkConfig cfg = scheme_config(net::BackupScheme::kSegment);
    cfg.segment_span_hops = 1;
    net::Network net(g, cfg);
    const auto outcome = net.request_connection(0, 2, paper_qos());
    ASSERT_TRUE(outcome.accepted);
    net.fail_link(4);  // deplete the set so siblings_lost != 0
    ASSERT_EQ(net.connection(outcome.id).siblings_lost, 1u);
    expect_save_load_save_identical(g, cfg, net);
  }
}

TEST(RobustnessCheckpoint, SiblingsLostSurvivesRestore) {
  const Graph g = theta();
  const net::NetworkConfig cfg = scheme_config(net::BackupScheme::kDualDisjoint);
  net::Network net(g, cfg);
  const auto outcome = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  net.fail_link(net.connection(outcome.id).backups.front().path.links[0]);
  ASSERT_EQ(net.connection(outcome.id).siblings_lost, 1u);

  state::Buffer out;
  net.save_state(out);
  net::Network restored(g, cfg);
  state::Buffer in(out.bytes());
  restored.load_state(in);

  // The depletion counter is what credits the next activation to the set;
  // losing it across a checkpoint would silently change the ablation.
  ASSERT_TRUE(restored.is_active(outcome.id));
  EXPECT_EQ(restored.connection(outcome.id).siblings_lost, 1u);
  const auto report = restored.fail_link(0);
  EXPECT_EQ(report.survived_via_backup_set, 1u);
}

}  // namespace
}  // namespace eqos
