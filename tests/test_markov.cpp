// Unit tests for the Markov substrate: CTMC, DTMC, classification, and the
// paper's bandwidth chain.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/bandwidth_chain.hpp"
#include "markov/classify.hpp"
#include "markov/ctmc.hpp"
#include "markov/dtmc.hpp"
#include "util/rng.hpp"

namespace eqos::markov {
namespace {

using matrix::Matrix;
using matrix::Vector;

// ---- Ctmc -------------------------------------------------------------------

TEST(Ctmc, AddRateBuildsGenerator) {
  Ctmc c(3);
  c.add_rate(0, 1, 2.0);
  c.add_rate(1, 2, 1.0);
  c.add_rate(2, 0, 0.5);
  EXPECT_DOUBLE_EQ(c.rate(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(c.exit_rate(0), 2.0);
  EXPECT_DOUBLE_EQ(c.generator()(0, 0), -2.0);
}

TEST(Ctmc, FromGeneratorValidates) {
  EXPECT_NO_THROW(Ctmc::from_generator(Matrix{{-1.0, 1.0}, {2.0, -2.0}}));
  EXPECT_THROW(Ctmc::from_generator(Matrix{{-1.0, 2.0}, {2.0, -2.0}}),
               std::invalid_argument);  // row sum != 0
  EXPECT_THROW(Ctmc::from_generator(Matrix{{1.0, -1.0}, {2.0, -2.0}}),
               std::invalid_argument);  // negative off-diagonal
  EXPECT_THROW(Ctmc::from_generator(Matrix(2, 3)), std::invalid_argument);
}

TEST(Ctmc, SelfLoopAndNegativeRateRejected) {
  Ctmc c(2);
  EXPECT_THROW(c.add_rate(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(c.add_rate(0, 1, -1.0), std::invalid_argument);
}

TEST(Ctmc, SteadyStateMatchesLinearSolve) {
  Ctmc c(4);
  util::Rng rng(31);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      if (i != j) c.add_rate(i, j, rng.uniform(0.05, 1.5));
  const Vector a = c.steady_state();
  const Vector b = c.steady_state_linear();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(a[i], b[i], 1e-10);
}

TEST(Ctmc, TransientConvergesToSteadyState) {
  Ctmc c(3);
  c.add_rate(0, 1, 1.0);
  c.add_rate(1, 2, 0.5);
  c.add_rate(2, 0, 0.25);
  c.add_rate(1, 0, 0.3);
  const Vector pi0{1.0, 0.0, 0.0};
  const Vector pi_t = c.transient(pi0, 500.0);
  const Vector pi_inf = c.steady_state();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(pi_t[i], pi_inf[i], 1e-6);
}

TEST(Ctmc, TransientAtZeroIsInitial) {
  Ctmc c(2);
  c.add_rate(0, 1, 1.0);
  c.add_rate(1, 0, 1.0);
  const Vector pi0{0.3, 0.7};
  const Vector pi = c.transient(pi0, 0.0);
  EXPECT_DOUBLE_EQ(pi[0], 0.3);
  EXPECT_DOUBLE_EQ(pi[1], 0.7);
}

TEST(Ctmc, TransientTwoStateClosedForm) {
  // P(in 1 at t) = a/(a+b) (1 - e^{-(a+b) t}) starting from state 0.
  const double a = 0.8;
  const double b = 0.2;
  Ctmc c(2);
  c.add_rate(0, 1, a);
  c.add_rate(1, 0, b);
  for (double t : {0.1, 0.5, 1.0, 3.0}) {
    const Vector pi = c.transient({1.0, 0.0}, t);
    const double expect1 = a / (a + b) * (1.0 - std::exp(-(a + b) * t));
    EXPECT_NEAR(pi[1], expect1, 1e-9) << "t=" << t;
  }
}

TEST(Ctmc, ExpectedReward) {
  Ctmc c(2);
  c.add_rate(0, 1, 1.0);
  c.add_rate(1, 0, 3.0);
  // pi = (0.75, 0.25); rewards (0, 100) -> 25.
  EXPECT_NEAR(c.expected_reward({0.0, 100.0}), 25.0, 1e-9);
  EXPECT_THROW((void)c.expected_reward({1.0}), std::invalid_argument);
}

TEST(Ctmc, EmbeddedJumpChain) {
  Ctmc c(3);
  c.add_rate(0, 1, 1.0);
  c.add_rate(0, 2, 3.0);
  c.add_rate(1, 0, 2.0);
  c.add_rate(2, 0, 2.0);
  const Matrix p = c.embedded_jump_chain();
  EXPECT_NEAR(p(0, 1), 0.25, 1e-12);
  EXPECT_NEAR(p(0, 2), 0.75, 1e-12);
  EXPECT_NEAR(p(1, 0), 1.0, 1e-12);
}

TEST(Ctmc, AbsorbingStateGetsSelfLoopInJumpChain) {
  Ctmc c(2);
  c.add_rate(0, 1, 1.0);
  const Matrix p = c.embedded_jump_chain();
  EXPECT_DOUBLE_EQ(p(1, 1), 1.0);
}

// ---- Dtmc -------------------------------------------------------------------------

TEST(Dtmc, ValidatesRows) {
  EXPECT_NO_THROW(Dtmc(Matrix{{0.2, 0.8}, {1.0, 0.0}}));
  EXPECT_THROW(Dtmc(Matrix{{0.2, 0.7}, {1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(Dtmc(Matrix{{1.2, -0.2}, {1.0, 0.0}}), std::invalid_argument);
}

TEST(Dtmc, EvolveMatchesManualSteps) {
  const Dtmc d(Matrix{{0.5, 0.5}, {0.1, 0.9}});
  const Vector one = d.evolve({1.0, 0.0}, 1);
  EXPECT_NEAR(one[0], 0.5, 1e-12);
  const Vector two = d.evolve({1.0, 0.0}, 2);
  EXPECT_NEAR(two[0], 0.5 * 0.5 + 0.5 * 0.1, 1e-12);
}

TEST(Dtmc, PowerIterationAgreesWithGth) {
  const Dtmc d(Matrix{{0.6, 0.3, 0.1}, {0.2, 0.5, 0.3}, {0.4, 0.1, 0.5}});
  const Vector a = d.steady_state();
  const Vector b = d.steady_state_power();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(Dtmc, CtmcEmbeddedChainConsistency) {
  // pi_ctmc(i) proportional to pi_dtmc(i) / exit_rate(i).
  Ctmc c(3);
  c.add_rate(0, 1, 2.0);
  c.add_rate(1, 2, 1.0);
  c.add_rate(1, 0, 1.0);
  c.add_rate(2, 0, 4.0);
  const Vector pi_c = c.steady_state();
  const Dtmc jump(c.embedded_jump_chain());
  const Vector pi_j = jump.steady_state();
  Vector reconstructed(3);
  double norm = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    reconstructed[i] = pi_j[i] / c.exit_rate(i);
    norm += reconstructed[i];
  }
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(pi_c[i], reconstructed[i] / norm, 1e-10);
}

// ---- Classification ----------------------------------------------------------------

TEST(Classify, IrreducibleChainIsOneClosedClass) {
  const Matrix w{{0, 1.0}, {1.0, 0}};
  const auto classes = communicating_classes(w);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_TRUE(classes[0].closed);
  EXPECT_EQ(classes[0].states.size(), 2u);
}

TEST(Classify, TransientStatesDetected) {
  // 0 -> 1 -> 2 <-> 3 (0, 1 transient; {2,3} closed).
  Matrix w(4, 4);
  w(0, 1) = 1.0;
  w(1, 2) = 1.0;
  w(2, 3) = 1.0;
  w(3, 2) = 1.0;
  const auto classes = communicating_classes(w);
  std::size_t closed = 0;
  for (const auto& c : classes)
    if (c.closed) {
      ++closed;
      EXPECT_EQ(c.states, (std::vector<std::size_t>{2, 3}));
    }
  EXPECT_EQ(closed, 1u);
  EXPECT_EQ(classes.size(), 3u);
}

TEST(Classify, SteadyStateClosedClass) {
  // Transient 0 drains into the {1, 2} cycle.
  Matrix q(3, 3);
  q(0, 1) = 1.0;
  q(0, 0) = -1.0;
  q(1, 2) = 2.0;
  q(1, 1) = -2.0;
  q(2, 1) = 1.0;
  q(2, 2) = -1.0;
  const Vector pi = steady_state_closed_class(q);
  EXPECT_NEAR(pi[0], 0.0, 1e-12);
  EXPECT_NEAR(pi[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pi[2], 2.0 / 3.0, 1e-12);
}

TEST(Classify, MultipleClosedClassesThrow) {
  Matrix q(2, 2);  // two absorbing states
  EXPECT_THROW(steady_state_closed_class(q), std::invalid_argument);
}

// ---- BandwidthChain -------------------------------------------------------------------

/// Paper-style parameters for a small chain where every arrival retreats the
/// channel to S_0 and every termination refills it to the top.
ChainParameters simple_params(std::size_t n) {
  ChainParameters p;
  p.bmin_kbps = 100.0;
  p.bmax_kbps = 100.0 + 50.0 * static_cast<double>(n - 1);
  p.increment_kbps = 50.0;
  p.arrival_rate = 1e-3;
  p.termination_rate = 1e-3;
  p.failure_rate = 0.0;
  p.p_direct = 0.5;
  p.p_indirect = 0.1;
  Matrix to_bottom(n, n);
  Matrix to_top(n, n);
  Matrix stay(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    to_bottom(i, 0) = 1.0;
    to_top(i, n - 1) = 1.0;
    stay(i, i) = 1.0;
  }
  p.arrival_move = to_bottom;
  p.indirect_move = stay;
  p.termination_move = to_top;
  return p;
}

TEST(BandwidthChain, NumStatesFromRange) {
  ChainParameters p = simple_params(9);
  EXPECT_EQ(p.num_states(), 9u);
  EXPECT_DOUBLE_EQ(p.bmax_kbps, 500.0);
  p.increment_kbps = 100.0;
  p.bmax_kbps = 500.0;
  EXPECT_EQ(p.num_states(), 5u);
}

TEST(BandwidthChain, ValidationCatchesBadInputs) {
  ChainParameters p = simple_params(5);
  p.increment_kbps = 30.0;  // 200/30 not integral
  EXPECT_THROW(BandwidthChain{p}, std::invalid_argument);
  p = simple_params(5);
  p.p_direct = 1.5;
  EXPECT_THROW(BandwidthChain{p}, std::invalid_argument);
  p = simple_params(5);
  p.arrival_rate = -1.0;
  EXPECT_THROW(BandwidthChain{p}, std::invalid_argument);
  p = simple_params(5);
  p.arrival_move = Matrix(4, 4);
  EXPECT_THROW(BandwidthChain{p}, std::invalid_argument);
  p = simple_params(5);
  p.arrival_move(0, 0) = 0.7;  // row 0 sums to 1.7
  EXPECT_THROW(BandwidthChain{p}, std::invalid_argument);
}

TEST(BandwidthChain, StateBandwidths) {
  const BandwidthChain chain(simple_params(9));
  EXPECT_DOUBLE_EQ(chain.state_bandwidth(0), 100.0);
  EXPECT_DOUBLE_EQ(chain.state_bandwidth(8), 500.0);
  EXPECT_THROW((void)chain.state_bandwidth(9), std::out_of_range);
}

TEST(BandwidthChain, DownUpSymmetricRatesGiveKnownSplit) {
  // With retreat-to-bottom at rate r and refill-to-top at rate r, only S_0
  // and S_{N-1} are occupied and equally likely (middle states transient).
  ChainParameters p = simple_params(5);
  p.p_indirect = 0.0;  // disable indirect moves
  const BandwidthChain chain(p);
  const Vector pi = chain.steady_state();
  EXPECT_NEAR(pi[0], 0.5, 1e-9);
  EXPECT_NEAR(pi[4], 0.5, 1e-9);
  EXPECT_NEAR(chain.average_bandwidth_kbps(), (100.0 + 300.0) / 2.0, 1e-6);
}

TEST(BandwidthChain, FasterRetreatShiftsMassDown) {
  ChainParameters p = simple_params(5);
  p.p_indirect = 0.0;
  p.arrival_rate = 4e-3;  // arrivals 4x terminations
  const BandwidthChain chain(p);
  const Vector pi = chain.steady_state();
  EXPECT_GT(pi[0], 0.75);
  EXPECT_LT(chain.average_bandwidth_kbps(), 200.0);
}

TEST(BandwidthChain, FailureRateActsLikeArrival) {
  // The paper folds F into A: gamma adds to the retreat rate.
  ChainParameters base = simple_params(5);
  base.p_indirect = 0.0;
  ChainParameters with_gamma = base;
  with_gamma.failure_rate = base.arrival_rate;  // doubles the down rate
  ChainParameters doubled = base;
  doubled.arrival_rate *= 2.0;
  // Same downward rate, but `doubled` also doubles nothing else (termination
  // unchanged) -> identical chains.
  const Vector a = BandwidthChain(with_gamma).steady_state();
  const Vector b = BandwidthChain(doubled).steady_state();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(BandwidthChain, NegligibleFailureRateHasNoEffect) {
  // Figure 4's finding, analytically: gamma << lambda leaves E[B] unchanged.
  ChainParameters p = simple_params(9);
  const double base = BandwidthChain(p).average_bandwidth_kbps();
  p.failure_rate = 1e-7;
  const double with_gamma = BandwidthChain(p).average_bandwidth_kbps();
  EXPECT_NEAR(base, with_gamma, 0.05);
}

TEST(BandwidthChain, ZeroRowsTreatedAsNoMove) {
  // State 2 was never observed in any context: its rows are zero.  The chain
  // restricted to the closed class {0, 1} still solves.
  ChainParameters p = simple_params(3);
  p.p_indirect = 0.0;
  for (std::size_t j = 0; j < 3; ++j) {
    p.arrival_move(2, j) = 0.0;
    p.termination_move(2, j) = 0.0;
  }
  // Remaining structure: arrivals send 0,1 -> 0; terminations send 0,1 -> 2?
  // Termination moves to top (state 2) would enter the dead state, so point
  // them at state 1 instead to keep {0,1} closed.
  p.termination_move(0, 2) = 0.0;
  p.termination_move(0, 1) = 1.0;
  p.termination_move(1, 2) = 0.0;
  p.termination_move(1, 1) = 1.0;
  const BandwidthChain chain(p);
  const Vector pi = chain.steady_state();
  EXPECT_NEAR(pi[2], 0.0, 1e-12);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
}

TEST(BandwidthChain, RefinedTerminationProbability) {
  ChainParameters p = simple_params(5);
  p.p_indirect = 0.0;
  p.p_direct_termination = 0.25;  // refills half as often as paper model
  const double refined = BandwidthChain(p).average_bandwidth_kbps();
  p.p_direct_termination.reset();
  const double paper = BandwidthChain(p).average_bandwidth_kbps();
  EXPECT_LT(refined, paper);
}

TEST(BandwidthChain, TransientMeanBandwidthMovesTowardSteadyState) {
  ChainParameters p = simple_params(5);
  const BandwidthChain chain(p);
  Vector top(5, 0.0);
  top[4] = 1.0;
  const double at_zero = chain.mean_bandwidth_at(top, 0.0);
  const double at_large = chain.mean_bandwidth_at(top, 1e6);
  EXPECT_DOUBLE_EQ(at_zero, 300.0);
  EXPECT_NEAR(at_large, chain.average_bandwidth_kbps(), 0.5);
}

// Parameterized sweep over increment sizes: Table 1's "no difference"
// finding holds structurally — whatever the state count, the two-point
// retreat/refill chain has the same average bandwidth.
class IncrementSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IncrementSweep, AverageBandwidthIndependentOfStateCount) {
  const std::size_t n = GetParam();
  ChainParameters p = simple_params(n);
  p.p_indirect = 0.0;
  const BandwidthChain chain(p);
  // Retreat-to-bottom / refill-to-top at equal rates: E[B] = (bmin+bmax)/2
  // independent of N.
  EXPECT_NEAR(chain.average_bandwidth_kbps(), (p.bmin_kbps + p.bmax_kbps) / 2.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(StateCounts, IncrementSweep, ::testing::Values(2, 3, 5, 9, 17));

}  // namespace
}  // namespace eqos::markov
