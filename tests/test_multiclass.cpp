// Heterogeneous-traffic tests: mixed QoS classes with per-class recorders
// and per-class Markov chains (the natural generalization of the paper's
// single-class evaluation; its conclusion explicitly anticipates expansion).
#include <gtest/gtest.h>

#include <cmath>

#include "core/analyzer.hpp"
#include "sim/recorder.hpp"
#include "sim/simulator.hpp"
#include "topology/waxman.hpp"

namespace eqos {
namespace {

net::ElasticQosSpec video_qos() {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  return q;
}

net::ElasticQosSpec audio_qos() {
  net::ElasticQosSpec q;
  q.bmin_kbps = 64.0;
  q.bmax_kbps = 192.0;
  q.increment_kbps = 64.0;  // 3 states
  return q;
}

TEST(QosMix, SampleRespectsWeights) {
  sim::WorkloadConfig w;
  w.qos = video_qos();
  w.qos_mix = {{video_qos(), 3.0}, {audio_qos(), 1.0}};
  w.validate();
  util::Rng rng(5);
  int video = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (w.sample_qos(rng).bmax_kbps == 500.0) ++video;
  EXPECT_NEAR(static_cast<double>(video) / n, 0.75, 0.02);
}

TEST(QosMix, EmptyMixUsesFixedQos) {
  sim::WorkloadConfig w;
  w.qos = audio_qos();
  util::Rng rng(5);
  EXPECT_DOUBLE_EQ(w.sample_qos(rng).bmax_kbps, 192.0);
}

TEST(QosMix, ValidationRejectsBadClasses) {
  sim::WorkloadConfig w;
  w.qos = video_qos();
  w.qos_mix = {{video_qos(), 0.0}};
  EXPECT_THROW(w.validate(), std::invalid_argument);
  w.qos_mix = {{video_qos(), 1.0}};
  w.qos_mix[0].first.increment_kbps = 30.0;  // range not a multiple
  EXPECT_THROW(w.validate(), std::invalid_argument);
}

TEST(MultiClass, MixedWorkloadEstablishesBothClasses) {
  const auto g = topology::generate_waxman({60, 0.35, 0.25, true}, 3);
  net::Network network(g, net::NetworkConfig{});
  sim::WorkloadConfig w;
  w.qos = video_qos();
  w.qos_mix = {{video_qos(), 1.0}, {audio_qos(), 1.0}};
  w.seed = 17;
  sim::Simulator sim(network, w);
  sim.populate(400);
  std::size_t video = 0;
  std::size_t audio = 0;
  for (net::ConnectionId id : network.active_ids()) {
    const auto& c = network.connection(id);
    (c.qos.bmax_kbps == 500.0 ? video : audio) += 1;
  }
  EXPECT_GT(video, 120u);
  EXPECT_GT(audio, 120u);
  network.validate_invariants();
}

TEST(MultiClass, PerClassRecordersPartitionTheTraffic) {
  const auto g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  net::Network network(g, net::NetworkConfig{});
  sim::WorkloadConfig w;
  w.qos = video_qos();
  w.qos_mix = {{video_qos(), 1.0}, {audio_qos(), 1.0}};
  w.seed = 99;
  sim::Simulator sim(network, w);
  sim.populate(3000);
  sim.run_events(200);  // warm-up

  const auto is_video = [](const net::DrConnection& c) {
    return c.qos.bmax_kbps == 500.0;
  };
  const auto is_audio = [](const net::DrConnection& c) {
    return c.qos.bmax_kbps == 192.0;
  };
  sim::TransitionRecorder video_rec(video_qos(), sim.now(), is_video);
  sim::TransitionRecorder audio_rec(audio_qos(), sim.now(), is_audio);
  // The simulator drives one recorder; drive the other manually through a
  // second window to keep the API simple: attach them sequentially.
  sim.attach_recorder(&video_rec);
  sim.run_events(700);
  sim.attach_recorder(&audio_rec);
  sim.run_events(700);
  sim.attach_recorder(nullptr);
  const auto video_est = video_rec.estimates(sim.now(), network);
  const auto audio_est = audio_rec.estimates(sim.now(), network);

  // Class means live inside their own QoS ranges.
  EXPECT_GE(video_est.mean_bandwidth_kbps, 100.0 - 1e-6);
  EXPECT_LE(video_est.mean_bandwidth_kbps, 500.0 + 1e-6);
  EXPECT_GE(audio_est.mean_bandwidth_kbps, 64.0 - 1e-6);
  EXPECT_LE(audio_est.mean_bandwidth_kbps, 192.0 + 1e-6);
  EXPECT_GT(video_est.mean_bandwidth_kbps, audio_est.mean_bandwidth_kbps);

  // Chaining probabilities are physical in both classes.
  for (const auto* est : {&video_est, &audio_est}) {
    EXPECT_GT(est->pf, 0.0);
    EXPECT_LT(est->pf, 0.5);
    EXPECT_GE(est->ps, 0.0);
    EXPECT_LE(est->ps, 1.0);
  }

  // Per-class chains solve and land inside the class QoS range; the video
  // chain must track the video simulation loosely.
  sim::WorkloadConfig video_w = w;
  video_w.qos = video_qos();
  const auto video_analysis = core::analyze(video_est, video_w);
  EXPECT_GE(video_analysis.average_bandwidth_kbps, 100.0 - 1e-6);
  EXPECT_LE(video_analysis.average_bandwidth_kbps, 500.0 + 1e-6);
  EXPECT_NEAR(video_analysis.average_bandwidth_kbps, video_est.mean_bandwidth_kbps,
              0.35 * video_est.mean_bandwidth_kbps);

  sim::WorkloadConfig audio_w = w;
  audio_w.qos = audio_qos();
  const auto audio_analysis = core::analyze(audio_est, audio_w);
  EXPECT_GE(audio_analysis.average_bandwidth_kbps, 64.0 - 1e-6);
  EXPECT_LE(audio_analysis.average_bandwidth_kbps, 192.0 + 1e-6);
}

TEST(MultiClass, FilteredRecorderMatchesUnfilteredOnHomogeneousTraffic) {
  // With a single class, a filter accepting everything must reproduce the
  // unfiltered estimates exactly.
  const auto g = topology::generate_waxman({60, 0.35, 0.25, true}, 11);
  auto run = [&](sim::TransitionRecorder::ClassFilter filter) {
    net::Network network(g, net::NetworkConfig{});
    sim::WorkloadConfig w;
    w.qos = video_qos();
    w.seed = 23;
    sim::Simulator sim(network, w);
    sim.populate(400);
    sim::TransitionRecorder rec(video_qos(), sim.now(), std::move(filter));
    sim.attach_recorder(&rec);
    sim.run_events(500);
    return rec.estimates(sim.now(), network);
  };
  const auto plain = run(nullptr);
  const auto filtered = run([](const net::DrConnection&) { return true; });
  EXPECT_DOUBLE_EQ(plain.pf, filtered.pf);
  EXPECT_DOUBLE_EQ(plain.ps, filtered.ps);
  EXPECT_DOUBLE_EQ(plain.mean_bandwidth_kbps, filtered.mean_bandwidth_kbps);
  for (std::size_t i = 0; i < plain.occupancy.size(); ++i)
    EXPECT_DOUBLE_EQ(plain.occupancy[i], filtered.occupancy[i]);
}

}  // namespace
}  // namespace eqos
