// Unit tests for the network substrate: QoS specs, link ledgers, routing,
// admission, elastic retreat/redistribute, and termination gains.
#include <gtest/gtest.h>

#include "net/link_state.hpp"
#include "net/network.hpp"
#include "net/qos.hpp"
#include "topology/waxman.hpp"

namespace eqos::net {
namespace {

using topology::Graph;

ElasticQosSpec paper_qos() {
  ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  q.utility = 1.0;
  return q;
}

/// A ring of 6 nodes plus one chord; plenty of disjoint routes.
Graph ring6() {
  Graph g(6);
  for (topology::NodeId i = 0; i < 6; ++i) g.add_link(i, (i + 1) % 6);
  g.add_link(0, 3);
  return g;
}

/// Two parallel 2-hop routes between 0 and 3: 0-1-3 and 0-2-3.
Graph diamond() {
  Graph g(4);
  g.add_link(0, 1);  // 0
  g.add_link(1, 3);  // 1
  g.add_link(0, 2);  // 2
  g.add_link(2, 3);  // 3
  return g;
}

// ---- ElasticQosSpec ------------------------------------------------------------

TEST(QosSpec, StateCountAndBandwidths) {
  const ElasticQosSpec q = paper_qos();
  EXPECT_EQ(q.num_states(), 9u);
  EXPECT_EQ(q.max_extra_quanta(), 8u);
  EXPECT_DOUBLE_EQ(q.bandwidth_at(0), 100.0);
  EXPECT_DOUBLE_EQ(q.bandwidth_at(8), 500.0);
}

TEST(QosSpec, ValidationErrors) {
  ElasticQosSpec q = paper_qos();
  q.increment_kbps = 30.0;
  EXPECT_THROW(q.validate(), std::invalid_argument);
  q = paper_qos();
  q.bmax_kbps = 50.0;
  EXPECT_THROW(q.validate(), std::invalid_argument);
  q = paper_qos();
  q.utility = 0.0;
  EXPECT_THROW(q.validate(), std::invalid_argument);
  q = paper_qos();
  q.bmin_kbps = 0.0;
  EXPECT_THROW(q.validate(), std::invalid_argument);
}

TEST(QosSpec, DegenerateRangeHasOneState) {
  ElasticQosSpec q = paper_qos();
  q.bmax_kbps = q.bmin_kbps;
  EXPECT_NO_THROW(q.validate());
  EXPECT_EQ(q.num_states(), 1u);
}

// ---- LinkState ------------------------------------------------------------------

TEST(LinkState, LedgerArithmetic) {
  LinkState s(1000.0);
  s.commit_min(300.0);
  s.set_backup_reserved(200.0);
  EXPECT_DOUBLE_EQ(s.admission_headroom(), 500.0);
  EXPECT_DOUBLE_EQ(s.elastic_spare(), 700.0);  // backup reservation borrowable
  s.grant_elastic(600.0);
  EXPECT_DOUBLE_EQ(s.elastic_spare(), 100.0);
  s.revoke_elastic(600.0);
  s.release_min(300.0);
  EXPECT_DOUBLE_EQ(s.committed_min(), 0.0);
}

TEST(LinkState, OverflowThrows) {
  LinkState s(100.0);
  s.commit_min(80.0);
  EXPECT_THROW(s.commit_min(30.0), std::logic_error);
  EXPECT_THROW(s.grant_elastic(30.0), std::logic_error);
  EXPECT_THROW(s.revoke_elastic(1.0), std::logic_error);
  EXPECT_THROW(s.release_min(90.0), std::logic_error);
}

TEST(LinkState, AdmissionRespectsFailureFlag) {
  LinkState s(1000.0);
  EXPECT_TRUE(s.admits_primary(100.0));
  s.set_failed(true);
  EXPECT_FALSE(s.admits_primary(100.0));
}

// ---- Establishment ------------------------------------------------------------------

TEST(Network, FirstConnectionGetsMaxBandwidth) {
  Network net(ring6(), NetworkConfig{});
  const auto outcome = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  EXPECT_TRUE(outcome.backup_established);
  EXPECT_EQ(outcome.existing_before, 0u);
  const DrConnection& c = net.connection(outcome.id);
  EXPECT_EQ(c.extra_quanta, 8u);  // empty network: straight to bmax
  EXPECT_DOUBLE_EQ(c.reserved_kbps(), 500.0);
  EXPECT_EQ(outcome.initial_quanta, 8u);
  net.validate_invariants();
}

TEST(Network, PrimaryTakesShortestRouteBackupDisjoint) {
  Network net(ring6(), NetworkConfig{});
  const auto outcome = net.request_connection(0, 3, paper_qos());
  const DrConnection& c = net.connection(outcome.id);
  EXPECT_EQ(c.primary.hops(), 1u);  // the 0-3 chord
  ASSERT_TRUE(c.has_backup());
  EXPECT_EQ(c.backup_overlap_links(), 0u);
  EXPECT_EQ(c.backups.front().path.hops(), 3u);  // around the ring
  net.validate_invariants();
}

TEST(Network, RejectsWhenNoRouteAdmitsMinimum) {
  // Tiny capacity: a single link can hold one bmin only.
  Graph g(2);
  g.add_link(0, 1);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 150.0;
  cfg.require_backup = false;  // no disjoint route exists anyway
  Network net(g, cfg);
  const auto first = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(first.accepted);
  const auto second = net.request_connection(0, 1, paper_qos());
  EXPECT_FALSE(second.accepted);
  EXPECT_EQ(second.reject_reason, RejectReason::kNoPrimaryRoute);
  EXPECT_EQ(net.stats().rejected_no_primary, 1u);
  net.validate_invariants();
}

TEST(Network, RequireBackupRejectsWhenNoDisjointRoute) {
  // A path graph has no alternative routes at all.
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  NetworkConfig cfg;
  cfg.require_backup = true;
  cfg.require_full_disjoint = true;
  Network net(g, cfg);
  const auto outcome = net.request_connection(0, 2, paper_qos());
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.reject_reason, RejectReason::kNoBackupRoute);
  // Rollback left the ledgers clean.
  for (topology::LinkId l = 0; l < g.num_links(); ++l)
    EXPECT_DOUBLE_EQ(net.link_state(l).committed_min(), 0.0);
  net.validate_invariants();
}

TEST(Network, FullyOverlappingBackupIsWorthless) {
  // Path graph: the only "backup" would be the primary itself, which
  // protects nothing; with dependability required the request is rejected.
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  Network net(g, NetworkConfig{});
  const auto outcome = net.request_connection(0, 2, paper_qos());
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.reject_reason, RejectReason::kNoBackupRoute);
  net.validate_invariants();
}

TEST(Network, PartiallyOverlappingBackupAcceptedByDefault) {
  // Bridge 0-1 followed by a cycle 1-2-3: any backup of the 0->3 primary
  // must reuse the bridge but can avoid the rest (footnote 1's maximal
  // link-disjointness).
  Graph g(4);
  g.add_link(0, 1);  // bridge
  g.add_link(1, 3);
  g.add_link(1, 2);
  g.add_link(2, 3);
  Network net(g, NetworkConfig{});
  const auto outcome = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  EXPECT_TRUE(outcome.backup_established);
  EXPECT_EQ(outcome.backup_overlap_links, 1u);  // just the bridge
  net.validate_invariants();
}

TEST(Network, InvalidRequestsThrow) {
  Network net(ring6(), NetworkConfig{});
  EXPECT_THROW(net.request_connection(0, 0, paper_qos()), std::invalid_argument);
  EXPECT_THROW(net.request_connection(0, 99, paper_qos()), std::invalid_argument);
  ElasticQosSpec bad = paper_qos();
  bad.increment_kbps = -1.0;
  EXPECT_THROW(net.request_connection(0, 1, bad), std::invalid_argument);
  EXPECT_THROW((void)net.connection(12345), std::invalid_argument);
  EXPECT_THROW(net.terminate_connection(12345), std::invalid_argument);
}

// ---- Retreat and redistribution -------------------------------------------------------

TEST(Network, ArrivalRetreatsDirectlyChainedChannels) {
  // Capacity for mins is plentiful, but elastic spare is contended.
  Graph g = diamond();
  NetworkConfig cfg;
  cfg.require_backup = false;
  cfg.link_capacity_kbps = 1000.0;
  Network net(g, cfg);

  const auto first = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(first.accepted);
  EXPECT_EQ(net.connection(first.id).extra_quanta, 8u);

  // The second connection shares one of the two 2-hop routes.
  const auto second = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(second.accepted);
  // First channel was directly chained (routes share node 0's links? The
  // router picks the widest route, which is the one the first left free, so
  // they are link-disjoint; force a third to collide).
  const auto third = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(third.accepted);
  bool saw_direct = false;
  for (const auto& ch : third.changes)
    if (ch.chaining == Chaining::kDirect) saw_direct = true;
  EXPECT_TRUE(saw_direct);
  net.validate_invariants();

  // Capacity 1000 per link, two channels per route: mins 200, spare 800 ->
  // each channel holds 400 extra = bmin+400... capped by bmax at 500 total.
  // All three plus sharing: every channel ends within [bmin, bmax].
  for (ConnectionId id : net.active_ids()) {
    const DrConnection& c = net.connection(id);
    EXPECT_LE(c.reserved_kbps(), 500.0 + 1e-9);
    EXPECT_GE(c.reserved_kbps(), 100.0 - 1e-9);
  }
}

TEST(Network, ContendedLinkSharesFairly) {
  // One link, capacity 600: two channels at bmin 100 leave 400 spare ->
  // 200 extra each under equal utilities (4 quanta of 50).
  Graph g(2);
  g.add_link(0, 1);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 600.0;
  cfg.require_backup = false;
  Network net(g, cfg);
  const auto a = net.request_connection(0, 1, paper_qos());
  const auto b = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(b.accepted);
  EXPECT_EQ(net.connection(a.id).extra_quanta, 4u);
  EXPECT_EQ(net.connection(b.id).extra_quanta, 4u);
  net.validate_invariants();
}

TEST(Network, CoefficientSchemeProportionalToUtility) {
  // Spare 300 = 6 quanta; utilities 2:1 should split ~4:2.
  Graph g(2);
  g.add_link(0, 1);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 500.0;
  cfg.require_backup = false;
  cfg.adaptation = AdaptationScheme::kCoefficient;
  Network net(g, cfg);
  ElasticQosSpec hi = paper_qos();
  hi.utility = 2.0;
  ElasticQosSpec lo = paper_qos();
  lo.utility = 1.0;
  const auto a = net.request_connection(0, 1, hi);
  const auto b = net.request_connection(0, 1, lo);
  ASSERT_TRUE(a.accepted && b.accepted);
  const std::size_t qa = net.connection(a.id).extra_quanta;
  const std::size_t qb = net.connection(b.id).extra_quanta;
  EXPECT_EQ(qa + qb, 6u);
  EXPECT_GT(qa, qb);
  EXPECT_EQ(qa, 4u);
  net.validate_invariants();
}

TEST(Network, MaxUtilitySchemeMonopolizes) {
  Graph g(2);
  g.add_link(0, 1);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 500.0;  // spare 300 after two mins
  cfg.require_backup = false;
  cfg.adaptation = AdaptationScheme::kMaxUtility;
  Network net(g, cfg);
  ElasticQosSpec hi = paper_qos();
  hi.utility = 1.01;  // barely higher utility still wins everything
  const auto a = net.request_connection(0, 1, hi);
  const auto b = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(a.accepted && b.accepted);
  EXPECT_EQ(net.connection(a.id).extra_quanta, 6u);
  EXPECT_EQ(net.connection(b.id).extra_quanta, 0u);
  net.validate_invariants();
}

TEST(Network, TerminationLetsSharersGainBack) {
  Graph g(2);
  g.add_link(0, 1);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 600.0;
  cfg.require_backup = false;
  Network net(g, cfg);
  const auto a = net.request_connection(0, 1, paper_qos());
  const auto b = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(a.accepted && b.accepted);
  EXPECT_EQ(net.connection(a.id).extra_quanta, 4u);

  const auto report = net.terminate_connection(b.id);
  EXPECT_EQ(report.existing_after, 1u);
  ASSERT_EQ(report.changes.size(), 1u);
  EXPECT_EQ(report.changes[0].id, a.id);
  EXPECT_EQ(report.changes[0].chaining, Chaining::kDirect);
  EXPECT_EQ(report.changes[0].old_quanta, 4u);
  EXPECT_EQ(report.changes[0].new_quanta, 8u);  // back to bmax
  EXPECT_DOUBLE_EQ(net.connection(a.id).reserved_kbps(), 500.0);
  EXPECT_FALSE(net.is_active(b.id));
  net.validate_invariants();
}

TEST(Network, IndirectChainingGainsFromRetreatElsewhere) {
  // Nodes 0-1-2-3 in a line.  A spans links {0,1}, B spans links {1,2},
  // D and the newcomer C both ride link 0 alone.  When C arrives, A and D
  // retreat (directly chained); A can no longer regain its old share of
  // link 1 because link 0 is now split three ways, so B — indirectly
  // chained through A — picks up the remainder of link 1.
  Graph g(4);
  g.add_link(0, 1);  // link 0
  g.add_link(1, 2);  // link 1
  g.add_link(2, 3);  // link 2
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 600.0;
  cfg.require_backup = false;
  Network net(g, cfg);

  const auto a = net.request_connection(0, 2, paper_qos());  // links 0,1
  const auto b = net.request_connection(1, 3, paper_qos());  // links 1,2
  const auto d = net.request_connection(0, 1, paper_qos());  // link 0
  ASSERT_TRUE(a.accepted && b.accepted && d.accepted);
  EXPECT_EQ(net.connection(a.id).extra_quanta, 4u);
  EXPECT_EQ(net.connection(b.id).extra_quanta, 4u);
  EXPECT_EQ(net.connection(d.id).extra_quanta, 4u);

  const auto c = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(c.accepted);
  bool b_reported_indirect = false;
  for (const auto& ch : c.changes) {
    if (ch.id == b.id) {
      EXPECT_EQ(ch.chaining, Chaining::kIndirect);
      b_reported_indirect = true;
      EXPECT_GT(ch.new_quanta, ch.old_quanta);  // 4 -> 6
    }
  }
  EXPECT_TRUE(b_reported_indirect);
  // A, C, D share link 0's six spare quanta two each; B takes what A left.
  EXPECT_EQ(net.connection(a.id).extra_quanta, 2u);
  EXPECT_EQ(net.connection(b.id).extra_quanta, 6u);
  net.validate_invariants();
}

TEST(Network, GrantsNeverExceedCapacityUnderChurn) {
  const Graph g = topology::generate_waxman({30, 0.35, 0.3, true}, 5);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 2000.0;
  Network net(g, cfg);
  util::Rng rng(9);
  std::vector<ConnectionId> ids;
  for (int step = 0; step < 300; ++step) {
    if (ids.empty() || rng.chance(0.6)) {
      const auto src = static_cast<topology::NodeId>(rng.index(30));
      auto dst = static_cast<topology::NodeId>(rng.index(29));
      if (dst >= src) ++dst;
      const auto outcome = net.request_connection(src, dst, paper_qos());
      if (outcome.accepted) ids.push_back(outcome.id);
    } else {
      const std::size_t pick = rng.index(ids.size());
      net.terminate_connection(ids[pick]);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  net.validate_invariants();  // checks both ledgers on every link
  EXPECT_GT(net.stats().accepted, 50u);
}

TEST(Network, MeanMetrics) {
  Network net(ring6(), NetworkConfig{});
  EXPECT_DOUBLE_EQ(net.mean_reserved_kbps(), 0.0);
  EXPECT_DOUBLE_EQ(net.protected_fraction(), 0.0);
  const auto a = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(a.accepted);
  EXPECT_DOUBLE_EQ(net.mean_reserved_kbps(), 500.0);
  EXPECT_DOUBLE_EQ(net.mean_primary_hops(), 1.0);
  EXPECT_DOUBLE_EQ(net.protected_fraction(), 1.0);
}

// Parameterized sweep: the fair share on one contended link matches the
// closed form floor((C - n*bmin)/delta/n) quanta per channel (up to bmax).
class FairShareSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FairShareSweep, EqualUtilitiesSplitEvenly) {
  const std::size_t n = GetParam();
  Graph g(2);
  g.add_link(0, 1);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 10'000.0;
  cfg.require_backup = false;
  Network net(g, cfg);
  std::vector<ConnectionId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    const auto outcome = net.request_connection(0, 1, paper_qos());
    ASSERT_TRUE(outcome.accepted);
    ids.push_back(outcome.id);
  }
  const double spare = 10'000.0 - static_cast<double>(n) * 100.0;
  const std::size_t total_quanta = static_cast<std::size_t>(spare / 50.0);
  const std::size_t fair = std::min<std::size_t>(total_quanta / n, 8);
  for (ConnectionId id : ids) {
    const std::size_t q = net.connection(id).extra_quanta;
    EXPECT_GE(q, fair > 0 ? fair - 1 : 0);
    EXPECT_LE(q, std::min<std::size_t>(fair + 1, 8));
  }
  net.validate_invariants();
}

INSTANTIATE_TEST_SUITE_P(ChannelCounts, FairShareSweep,
                         ::testing::Values(1, 2, 3, 7, 20, 50, 90));

}  // namespace
}  // namespace eqos::net
