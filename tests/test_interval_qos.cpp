// Unit tests for the interval (k-out-of-M) QoS model.
#include <gtest/gtest.h>

#include <deque>

#include "net/interval_qos.hpp"
#include "util/rng.hpp"

namespace eqos::net {
namespace {

TEST(IntervalSpec, Validation) {
  EXPECT_NO_THROW((IntervalQosSpec{1, 1}).validate());
  EXPECT_NO_THROW((IntervalQosSpec{3, 5}).validate());
  EXPECT_THROW((IntervalQosSpec{0, 5}).validate(), std::invalid_argument);
  EXPECT_THROW((IntervalQosSpec{6, 5}).validate(), std::invalid_argument);
  EXPECT_THROW((IntervalQosSpec{1, 0}).validate(), std::invalid_argument);
  EXPECT_DOUBLE_EQ((IntervalQosSpec{3, 5}).min_delivery_fraction(), 0.6);
}

TEST(IntervalRegulator, AllMandatoryWhenKEqualsM) {
  IntervalRegulator r({3, 3});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(r.next_is_mandatory());
    r.record(true);
  }
  EXPECT_DOUBLE_EQ(r.delivery_fraction(), 1.0);
}

TEST(IntervalRegulator, AllowsExactlyMMinusKDropsPerWindow) {
  // 2-out-of-4: at most two drops in any four consecutive packets.
  IntervalRegulator r({2, 4});
  EXPECT_FALSE(r.next_is_mandatory());
  r.record(false);  // drop 1
  EXPECT_FALSE(r.next_is_mandatory());
  r.record(false);  // drop 2 -> window (last 3) holds 2 drops
  EXPECT_TRUE(r.next_is_mandatory());
  r.record(true);
  EXPECT_TRUE(r.next_is_mandatory());  // last 3 = {drop, drop, deliver}? no:
  // window keeps the last M-1 = 3 decisions: {F, F, T} -> 2 drops -> must.
  r.record(true);
  // Now window = {F, T, T} -> 1 drop -> droppable again.
  EXPECT_FALSE(r.next_is_mandatory());
}

TEST(IntervalRegulator, DroppingMandatoryThrows) {
  IntervalRegulator r({1, 2});
  r.record(false);
  ASSERT_TRUE(r.next_is_mandatory());
  EXPECT_THROW(r.record(false), std::logic_error);
}

TEST(IntervalRegulator, WindowContractNeverViolatedUnderGreedyDropping) {
  // Adversarial: drop whenever permitted; verify every M-window still holds
  // at least k deliveries.
  const IntervalQosSpec spec{3, 7};
  IntervalRegulator r(spec);
  std::deque<bool> history;
  for (int i = 0; i < 500; ++i) {
    const bool deliver = r.next_is_mandatory();
    r.record(deliver);
    history.push_back(deliver);
  }
  for (std::size_t start = 0; start + spec.m <= history.size(); ++start) {
    std::size_t delivered = 0;
    for (std::size_t j = 0; j < spec.m; ++j)
      if (history[start + j]) ++delivered;
    ASSERT_GE(delivered, spec.k) << "window at " << start;
  }
  // Greedy dropping converges to exactly k/M delivery.
  EXPECT_NEAR(r.delivery_fraction(), spec.min_delivery_fraction(), 0.02);
}

TEST(IntervalScheduler, UnderloadedDeliversEverything) {
  IntervalLinkScheduler sched(8);
  for (int i = 0; i < 4; ++i) sched.add_channel({2, 4});
  sched.run_saturated(100);
  EXPECT_EQ(sched.stats().dropped, 0u);
  EXPECT_EQ(sched.stats().overload_ticks, 0u);
  for (std::size_t c = 0; c < 4; ++c)
    EXPECT_DOUBLE_EQ(sched.channel(c).delivery_fraction(), 1.0);
}

TEST(IntervalScheduler, OverloadedKeepsGuaranteesBySelectiveDropping) {
  // 6 channels of 2-out-of-4 over a budget of 4 packets/tick: mandatory
  // load = 6 * 0.5 = 3 <= 4, so guarantees hold, but not everything fits.
  IntervalLinkScheduler sched(4);
  for (int i = 0; i < 6; ++i) sched.add_channel({2, 4});
  EXPECT_NEAR(sched.mandatory_load(), 3.0, 1e-12);
  sched.run_saturated(400);
  EXPECT_EQ(sched.stats().overload_ticks, 0u);
  EXPECT_GT(sched.stats().dropped, 0u);
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_GE(sched.channel(c).delivery_fraction(),
              sched.channel(c).spec().min_delivery_fraction() - 1e-9)
        << "channel " << c;
  }
  // Budget 4 over 6 offered: 2/3 delivered overall; the round-robin share
  // interacts with mandatory-set membership, so allow per-channel slack.
  double mean_fraction = 0.0;
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_NEAR(sched.channel(c).delivery_fraction(), 4.0 / 6.0, 0.12);
    mean_fraction += sched.channel(c).delivery_fraction() / 6.0;
  }
  EXPECT_NEAR(mean_fraction, 4.0 / 6.0, 0.01);
}

TEST(IntervalScheduler, MixedContracts) {
  // A strict channel (4-of-5) and lax channels (1-of-5) under budget 2:
  // the strict one gets its 0.8, the lax ones absorb the shortage.
  IntervalLinkScheduler sched(2);
  const std::size_t strict = sched.add_channel({4, 5});
  sched.add_channel({1, 5});
  sched.add_channel({1, 5});
  sched.run_saturated(500);
  EXPECT_EQ(sched.stats().overload_ticks, 0u);
  EXPECT_GE(sched.channel(strict).delivery_fraction(), 0.8 - 1e-9);
  for (std::size_t c = 1; c <= 2; ++c)
    EXPECT_GE(sched.channel(c).delivery_fraction(), 0.2 - 1e-9);
}

TEST(IntervalScheduler, OverAdmissionIsFlaggedNotViolated) {
  // Mandatory load 3 x 1.0 = 3 > budget 2: overload ticks counted, but the
  // contracts themselves are still honored (mandatory always delivered).
  IntervalLinkScheduler sched(2);
  for (int i = 0; i < 3; ++i) sched.add_channel({1, 1});
  sched.run_saturated(50);
  EXPECT_GT(sched.stats().overload_ticks, 0u);
  for (std::size_t c = 0; c < 3; ++c)
    EXPECT_DOUBLE_EQ(sched.channel(c).delivery_fraction(), 1.0);
}

TEST(IntervalScheduler, PartialOffering) {
  IntervalLinkScheduler sched(1);
  sched.add_channel({1, 2});
  sched.add_channel({1, 2});
  // Only channel 0 offers on odd ticks.
  for (int t = 0; t < 10; ++t) {
    if (t % 2 == 0)
      sched.tick({0, 1});
    else
      sched.tick({0});
  }
  EXPECT_EQ(sched.channel(0).offered(), 10u);
  EXPECT_EQ(sched.channel(1).offered(), 5u);
  EXPECT_THROW(sched.tick({7}), std::invalid_argument);
}

TEST(IntervalScheduler, RejectsZeroBudgetAndUnknownChannel) {
  EXPECT_THROW(IntervalLinkScheduler(0), std::invalid_argument);
  IntervalLinkScheduler sched(1);
  EXPECT_THROW((void)sched.channel(0), std::invalid_argument);
}

// Property sweep over (k, M): greedy adversarial dropping satisfies the
// window contract and converges to the k/M floor.
class IntervalContractSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(IntervalContractSweep, GreedyDroppingMeetsFloorExactly) {
  const auto [k, m] = GetParam();
  IntervalRegulator r({k, m});
  std::deque<bool> history;
  for (int i = 0; i < 1000; ++i) {
    const bool deliver = r.next_is_mandatory();
    r.record(deliver);
    history.push_back(deliver);
  }
  for (std::size_t start = 0; start + m <= history.size(); ++start) {
    std::size_t delivered = 0;
    for (std::size_t j = 0; j < m; ++j)
      if (history[start + j]) ++delivered;
    ASSERT_GE(delivered, k);
  }
  EXPECT_NEAR(r.delivery_fraction(),
              static_cast<double>(k) / static_cast<double>(m), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Contracts, IntervalContractSweep,
                         ::testing::Values(std::make_pair(1ul, 2ul),
                                           std::make_pair(1ul, 5ul),
                                           std::make_pair(3ul, 5ul),
                                           std::make_pair(7ul, 10ul),
                                           std::make_pair(9ul, 10ul)));

}  // namespace
}  // namespace eqos::net
