// Unit tests for the util substrate: RNG, statistics, bitsets, tables, logs.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/bitset.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace eqos::util {
namespace {

// ---- Rng -------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05 / rate);
}

TEST(Rng, ChanceProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  Rng r2(14);
  EXPECT_FALSE(r2.chance(0.0));
  EXPECT_TRUE(r2.chance(1.0));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  EXPECT_NE(child1.seed(), child2.seed());
  // Deterministic: re-derive from the same parent seed.
  Rng parent2(99);
  Rng child1b = parent2.split();
  EXPECT_EQ(child1.seed(), child1b.seed());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
}

// ---- RunningStat -------------------------------------------------------------

TEST(RunningStat, MeanAndVarianceMatchNaive) {
  const std::vector<double> xs{1.5, 2.0, -3.0, 4.5, 0.0, 9.25, -1.25};
  RunningStat s;
  for (double x : xs) s.add(x);
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.25);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(2.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStat b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(RunningStat, DescribeMentionsCount) {
  RunningStat s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_NE(describe(s).find("n=2"), std::string::npos);
  RunningStat empty;
  EXPECT_EQ(describe(empty), "(no samples)");
}

// ---- TimeWeightedMean -----------------------------------------------------------

TEST(TimeWeightedMean, PiecewiseConstantSignal) {
  TimeWeightedMean m;
  m.update(0.0, 10.0);   // 10 for [0, 4)
  m.update(4.0, 20.0);   // 20 for [4, 6)
  m.update(6.0, 0.0);    // 0 for [6, 10)
  EXPECT_NEAR(m.mean(10.0), (10 * 4 + 20 * 2 + 0 * 4) / 10.0, 1e-12);
  EXPECT_NEAR(m.integral(10.0), 80.0, 1e-12);
}

TEST(TimeWeightedMean, NonZeroStartTime) {
  TimeWeightedMean m;
  m.update(5.0, 2.0);
  m.update(7.0, 4.0);
  EXPECT_NEAR(m.mean(9.0), (2 * 2 + 4 * 2) / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.start_time(), 5.0);
}

TEST(TimeWeightedMean, FallbackBeforeAnyTimeElapses) {
  TimeWeightedMean m;
  EXPECT_DOUBLE_EQ(m.mean(0.0, 123.0), 123.0);
  m.update(1.0, 5.0);
  EXPECT_DOUBLE_EQ(m.mean(1.0, 123.0), 123.0);  // zero elapsed
  EXPECT_DOUBLE_EQ(m.current_value(), 5.0);
}

TEST(TimeWeightedMean, RepeatedUpdatesAtSameTime) {
  TimeWeightedMean m;
  m.update(0.0, 1.0);
  m.update(0.0, 7.0);  // instant overwrite
  EXPECT_NEAR(m.mean(2.0), 7.0, 1e-12);
}

// ---- Histogram ----------------------------------------------------------------

TEST(Histogram, ProbabilitiesNormalize) {
  Histogram h(4);
  h.add(0, 1.0);
  h.add(1, 3.0);
  h.add(3, 4.0);
  const auto p = h.probabilities();
  EXPECT_NEAR(p[0], 0.125, 1e-12);
  EXPECT_NEAR(p[1], 0.375, 1e-12);
  EXPECT_NEAR(p[2], 0.0, 1e-12);
  EXPECT_NEAR(p[3], 0.5, 1e-12);
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
}

TEST(Histogram, OutOfRangeClampsToLastBucket) {
  Histogram h(3);
  h.add(99, 2.0);
  EXPECT_DOUBLE_EQ(h.count(2), 2.0);
}

TEST(Histogram, EmptyProbabilitiesAreZero) {
  Histogram h(2);
  const auto p = h.probabilities();
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

// ---- DynamicBitset ----------------------------------------------------------------

TEST(DynamicBitset, SetTestResetAcrossWordBoundary) {
  DynamicBitset b(130);
  for (std::size_t i : {0ul, 63ul, 64ul, 65ul, 129ul}) {
    EXPECT_FALSE(b.test(i));
    b.set(i);
    EXPECT_TRUE(b.test(i));
  }
  EXPECT_EQ(b.count(), 5u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 4u);
}

TEST(DynamicBitset, IntersectsAndUnion) {
  DynamicBitset a(200);
  DynamicBitset b(200);
  a.set(5);
  a.set(150);
  b.set(6);
  b.set(151);
  EXPECT_FALSE(a.intersects(b));
  b.set(150);
  EXPECT_TRUE(a.intersects(b));
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 4u);  // {5, 6, 150, 151}
}

TEST(DynamicBitset, IntersectionOperator) {
  DynamicBitset a(70);
  DynamicBitset b(70);
  a.set(1);
  a.set(69);
  b.set(69);
  a &= b;
  EXPECT_FALSE(a.test(1));
  EXPECT_TRUE(a.test(69));
  EXPECT_EQ(a.count(), 1u);
}

TEST(DynamicBitset, SetBitsEnumeratesAscending) {
  DynamicBitset b(300);
  const std::vector<std::size_t> want{3, 64, 127, 128, 299};
  for (auto i : want) b.set(i);
  EXPECT_EQ(b.set_bits(), want);
  std::vector<std::size_t> visited;
  b.for_each_set_bit([&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, want);
}

TEST(DynamicBitset, ClearAndNone) {
  DynamicBitset b(64);
  EXPECT_TRUE(b.none());
  b.set(10);
  EXPECT_TRUE(b.any());
  b.clear();
  EXPECT_TRUE(b.none());
}

TEST(DynamicBitset, EqualityRespectsSize) {
  DynamicBitset a(10);
  DynamicBitset b(11);
  EXPECT_FALSE(a == b);
  DynamicBitset c(10);
  EXPECT_TRUE(a == c);
  c.set(3);
  EXPECT_FALSE(a == c);
}

// Parameterized property: count() equals number of set() calls on distinct
// indices for a sweep of sizes including word-boundary sizes.
class BitsetSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetSizeSweep, CountMatchesInsertions) {
  const std::size_t n = GetParam();
  DynamicBitset b(n);
  Rng rng(n);
  std::size_t inserted = 0;
  for (std::size_t i = 0; i < n; i += 1 + rng.index(3)) {
    if (!b.test(i)) ++inserted;
    b.set(i);
  }
  EXPECT_EQ(b.count(), inserted);
  EXPECT_EQ(b.set_bits().size(), inserted);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetSizeSweep,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 129, 354, 1000));

// ---- Table -----------------------------------------------------------------------

TEST(Table, AlignsColumnsAndFormatsNumbers) {
  Table t({"x", "value"});
  t.add_row({"1", Table::num(3.14159, 2)});
  t.add_row({"200", Table::num(1.0, 2)});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("1.00"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, SciFormat) {
  EXPECT_EQ(Table::sci(1e-5, 1), "1.0e-05");
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

// ---- Log -------------------------------------------------------------------------

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kWarn);
}

TEST(Log, SetAndGetLevel) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold lines are cheap no-ops; just exercise the path.
  EQOS_DEBUG() << "suppressed " << 42;
  set_log_level(old);
}

}  // namespace
}  // namespace eqos::util
