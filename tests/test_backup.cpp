// Unit tests for backup-channel reservation and multiplexing (overbooking).
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "net/backup.hpp"
#include "net/network.hpp"
#include "net/qos.hpp"
#include "topology/waxman.hpp"
#include "util/bitset.hpp"

namespace eqos::net {
namespace {

using topology::Graph;

util::DynamicBitset bits(std::size_t size, std::initializer_list<std::size_t> set) {
  util::DynamicBitset b(size);
  for (auto i : set) b.set(i);
  return b;
}

ElasticQosSpec paper_qos() {
  ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  return q;
}

// ---- BackupManager in isolation ------------------------------------------------

TEST(BackupManager, DisjointPrimariesMultiplexToMaxBmin) {
  BackupManager m(10, /*multiplexing=*/true);
  // Two backups on link 5 whose primaries are link-disjoint: one shared
  // reservation suffices.
  m.add(5, 1, 100.0, bits(10, {0, 1}));
  EXPECT_DOUBLE_EQ(m.reservation(5), 100.0);
  EXPECT_DOUBLE_EQ(m.incremental_need(5, 100.0, bits(10, {2, 3})), 0.0);
  m.add(5, 2, 100.0, bits(10, {2, 3}));
  EXPECT_DOUBLE_EQ(m.reservation(5), 100.0);
  EXPECT_EQ(m.count_on_link(5), 2u);
}

TEST(BackupManager, SharedPrimaryLinkForcesSum) {
  BackupManager m(10, true);
  m.add(5, 1, 100.0, bits(10, {0, 1}));
  // A primary crossing link 1 fails together with connection 1's primary.
  EXPECT_DOUBLE_EQ(m.incremental_need(5, 100.0, bits(10, {1, 2})), 100.0);
  m.add(5, 2, 100.0, bits(10, {1, 2}));
  EXPECT_DOUBLE_EQ(m.reservation(5), 200.0);
  // A third, disjoint from both, multiplexes for free.
  EXPECT_DOUBLE_EQ(m.incremental_need(5, 100.0, bits(10, {7, 8})), 0.0);
}

TEST(BackupManager, ScenarioMaxOverThreeConnections) {
  BackupManager m(10, true);
  m.add(0, 1, 100.0, bits(10, {4}));
  m.add(0, 2, 150.0, bits(10, {4}));
  m.add(0, 3, 200.0, bits(10, {5}));
  // Failure of 4 activates 1+2 (250); failure of 5 activates 3 (200).
  EXPECT_DOUBLE_EQ(m.reservation(0), 250.0);
}

TEST(BackupManager, RemoveUpdatesReservation) {
  BackupManager m(10, true);
  m.add(0, 1, 100.0, bits(10, {4}));
  m.add(0, 2, 150.0, bits(10, {4}));
  EXPECT_DOUBLE_EQ(m.reservation(0), 250.0);
  m.remove(0, 2);
  EXPECT_DOUBLE_EQ(m.reservation(0), 100.0);
  m.remove(0, 1);
  EXPECT_DOUBLE_EQ(m.reservation(0), 0.0);
  m.remove(0, 99);  // no-op
  EXPECT_DOUBLE_EQ(m.reservation(0), 0.0);
}

TEST(BackupManager, NoMultiplexingSumsEverything) {
  BackupManager m(10, /*multiplexing=*/false);
  m.add(5, 1, 100.0, bits(10, {0, 1}));
  m.add(5, 2, 100.0, bits(10, {2, 3}));
  EXPECT_DOUBLE_EQ(m.reservation(5), 200.0);
  EXPECT_DOUBLE_EQ(m.incremental_need(5, 100.0, bits(10, {7})), 100.0);
  m.remove(5, 1);
  EXPECT_DOUBLE_EQ(m.reservation(5), 100.0);
}

TEST(BackupManager, ActivatedByListsAffectedBackups) {
  BackupManager m(10, true);
  m.add(5, 1, 100.0, bits(10, {0, 1}));
  m.add(5, 2, 100.0, bits(10, {1, 2}));
  m.add(5, 3, 100.0, bits(10, {3}));
  const auto hit = m.activated_by(5, 1);
  EXPECT_EQ(hit, (std::vector<ConnectionId>{1, 2}));
  EXPECT_TRUE(m.activated_by(5, 9).empty());
}

TEST(BackupManager, CachedReservationMatchesRecompute) {
  BackupManager m(20, true);
  util::Rng rng(3);
  for (ConnectionId id = 1; id <= 30; ++id) {
    util::DynamicBitset p(20);
    for (int k = 0; k < 3; ++k) p.set(rng.index(20));
    m.add(static_cast<topology::LinkId>(rng.index(20)), id, 100.0, p);
  }
  for (topology::LinkId l = 0; l < 20; ++l)
    EXPECT_NEAR(m.reservation(l), m.recompute_reservation(l), 1e-9);
  // And after removals.
  for (ConnectionId id = 1; id <= 30; id += 2)
    for (topology::LinkId l = 0; l < 20; ++l) m.remove(l, id);
  for (topology::LinkId l = 0; l < 20; ++l)
    EXPECT_NEAR(m.reservation(l), m.recompute_reservation(l), 1e-9);
}

TEST(BackupManager, SwapEraseRemoveKeepsRegistryConsistent) {
  // Remove from the middle repeatedly; the slot-cached swap-erase must keep
  // membership, reservations, and the internal audit happy.
  BackupManager m(12, true);
  for (ConnectionId id = 1; id <= 8; ++id)
    m.add(3, id, 50.0 * static_cast<double>(id), bits(12, {id % 12, (id + 3) % 12}));
  m.audit();
  for (ConnectionId id : {ConnectionId{4}, ConnectionId{1}, ConnectionId{8}}) {
    m.remove(3, id);
    m.audit();
    EXPECT_NEAR(m.reservation(3), m.recompute_reservation(3), 1e-9);
  }
  auto left = m.backups_on_link(3);
  std::sort(left.begin(), left.end());
  EXPECT_EQ(left, (std::vector<ConnectionId>{2, 3, 5, 6, 7}));
  m.remove(3, 4);  // already gone: no-op
  EXPECT_EQ(m.count_on_link(3), 5u);
}

TEST(BackupManager, InternsOnePrimarySetPerConnection) {
  BackupManager m(16, true);
  const auto primary = bits(16, {0, 1, 2});
  // One backup spanning four links: one interned set, shared.
  for (topology::LinkId l : {4, 5, 6, 7}) m.add(l, 1, 100.0, primary);
  EXPECT_EQ(m.interned_sets(), 1u);
  m.add(9, 2, 100.0, bits(16, {3}));
  EXPECT_EQ(m.interned_sets(), 2u);
  m.audit();
  // Dropping the backup link-by-link releases the set with the last link.
  for (topology::LinkId l : {4, 5, 6}) m.remove(l, 1);
  EXPECT_EQ(m.interned_sets(), 2u);
  m.remove(7, 1);
  EXPECT_EQ(m.interned_sets(), 1u);
  m.remove(9, 2);
  EXPECT_EQ(m.interned_sets(), 0u);
  m.audit();
}

// The flat scenario ledger and the incremental reservation maintenance must
// agree with a from-scratch recomputation on every link after arbitrary
// churn, with and without multiplexing.
void churn_and_check(bool multiplexing) {
  constexpr std::size_t kLinks = 24;
  BackupManager m(kLinks, multiplexing);
  util::Rng rng(multiplexing ? 101 : 202);
  std::vector<std::pair<topology::LinkId, ConnectionId>> live;  // (link, id)
  ConnectionId next_id = 1;
  for (int step = 0; step < 2000; ++step) {
    const bool add = live.empty() || rng.chance(0.55);
    if (add) {
      util::DynamicBitset p(kLinks);
      const std::size_t n = 1 + rng.index(5);
      for (std::size_t k = 0; k < n; ++k) p.set(rng.index(kLinks));
      const auto id = next_id++;
      const double bmin = rng.uniform(10.0, 400.0);
      // A backup may span several links, sharing one interned primary set.
      const std::size_t span = 1 + rng.index(3);
      for (std::size_t k = 0; k < span; ++k) {
        const auto l = static_cast<topology::LinkId>(rng.index(kLinks));
        if (std::find(live.begin(), live.end(), std::make_pair(l, id)) != live.end())
          continue;
        m.add(l, id, bmin, p);
        live.push_back({l, id});
      }
    } else {
      const std::size_t victim = rng.index(live.size());
      m.remove(live[victim].first, live[victim].second);
      live[victim] = live.back();
      live.pop_back();
    }
    if (step % 100 == 0) {
      for (topology::LinkId l = 0; l < kLinks; ++l)
        ASSERT_NEAR(m.reservation(l), m.recompute_reservation(l), 1e-6)
            << "step " << step << " link " << l;
      m.audit();
    }
  }
  for (topology::LinkId l = 0; l < kLinks; ++l)
    EXPECT_NEAR(m.reservation(l), m.recompute_reservation(l), 1e-6);
  m.audit();
}

TEST(BackupManager, ReservationMatchesRecomputeUnderChurnMultiplexed) {
  churn_and_check(true);
}

TEST(BackupManager, ReservationMatchesRecomputeUnderChurnPlainSum) {
  churn_and_check(false);
}

// Network-level churn: arrivals, departures, and link failures/repairs; the
// incrementally maintained reservation must match the from-scratch value on
// every link, with and without multiplexing.
void network_churn_and_check(bool multiplexing) {
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 2000.0;
  cfg.backup_multiplexing = multiplexing;
  cfg.require_backup = false;
  Network net(topology::generate_waxman({30, 0.4, 0.3, true}, 47), cfg);
  util::Rng rng(multiplexing ? 7 : 8);
  std::vector<ConnectionId> active;
  std::vector<topology::LinkId> failed;
  for (int step = 0; step < 400; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.5 || active.empty()) {
      const auto src = static_cast<topology::NodeId>(rng.index(30));
      auto dst = static_cast<topology::NodeId>(rng.index(29));
      if (dst >= src) ++dst;
      const auto outcome = net.request_connection(src, dst, paper_qos());
      if (outcome.accepted) active.push_back(outcome.id);
    } else if (roll < 0.8) {
      const std::size_t victim = rng.index(active.size());
      if (net.is_active(active[victim])) net.terminate_connection(active[victim]);
      active[victim] = active.back();
      active.pop_back();
    } else if (roll < 0.9 && failed.size() < 3) {
      const auto l = static_cast<topology::LinkId>(rng.index(net.graph().num_links()));
      net.fail_link(l);
      failed.push_back(l);
    } else if (!failed.empty()) {
      net.repair_link(failed.back());
      failed.pop_back();
    }
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](ConnectionId id) { return !net.is_active(id); }),
                 active.end());
    if (step % 50 == 0) {
      for (topology::LinkId l = 0; l < net.graph().num_links(); ++l)
        ASSERT_NEAR(net.backups().reservation(l), net.backups().recompute_reservation(l),
                    1e-6)
            << "step " << step << " link " << l;
      net.audit();
    }
  }
  net.audit();
}

TEST(NetworkBackup, ReservationMatchesRecomputeUnderNetworkChurnMultiplexed) {
  network_churn_and_check(true);
}

TEST(NetworkBackup, ReservationMatchesRecomputeUnderNetworkChurnPlainSum) {
  network_churn_and_check(false);
}

// ---- Multiplexing at the network level ----------------------------------------------

TEST(NetworkBackup, MultiplexingAdmitsMoreThanPlainReservation) {
  // Saturate a topology twice, with and without multiplexing; overbooking
  // must admit at least as many (in practice strictly more) connections.
  const auto g = topology::generate_waxman({40, 0.35, 0.25, true}, 11);
  auto saturate = [&](bool multiplexing) {
    NetworkConfig cfg;
    cfg.link_capacity_kbps = 1000.0;  // tight: 10 bmin units per link
    cfg.backup_multiplexing = multiplexing;
    Network net(g, cfg);
    util::Rng rng(23);
    std::size_t accepted = 0;
    for (int i = 0; i < 400; ++i) {
      const auto src = static_cast<topology::NodeId>(rng.index(40));
      auto dst = static_cast<topology::NodeId>(rng.index(39));
      if (dst >= src) ++dst;
      if (net.request_connection(src, dst, paper_qos()).accepted) ++accepted;
    }
    net.validate_invariants();
    return accepted;
  };
  const std::size_t with = saturate(true);
  const std::size_t without = saturate(false);
  EXPECT_GT(with, without);
}

TEST(NetworkBackup, BackupReservationVisibleOnLinks) {
  Graph g(4);
  g.add_link(0, 1);  // 0
  g.add_link(1, 3);  // 1
  g.add_link(0, 2);  // 2
  g.add_link(2, 3);  // 3
  Network net(g, NetworkConfig{});
  const auto outcome = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  const DrConnection& c = net.connection(outcome.id);
  ASSERT_TRUE(c.has_backup());
  double reserved = 0.0;
  for (topology::LinkId l = 0; l < g.num_links(); ++l)
    reserved += net.link_state(l).backup_reserved();
  // Backup spans 2 links at bmin each.
  EXPECT_DOUBLE_EQ(reserved, 2.0 * 100.0);
  net.validate_invariants();
}

TEST(NetworkBackup, ElasticGrantsBorrowBackupReservation) {
  // One route pair; capacity exactly bmin(primary) + bmin(backup) + 100:
  // elastic grants may dip into the backup reservation.
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 3);
  g.add_link(0, 2);
  g.add_link(2, 3);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 300.0;
  Network net(g, cfg);
  const auto a = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(a.accepted);
  const DrConnection& c = net.connection(a.id);
  // Primary links: committed 100, backup reservation 0 (backup is on the
  // other route).  Elastic spare on primary links = 200 -> 4 quanta.
  EXPECT_EQ(c.extra_quanta, 4u);
  // Now the backup route's links hold backup reservation 100; a second
  // connection 0->3 must still be admissible there (100 + 100 <= 300).
  const auto b = net.request_connection(0, 3, paper_qos());
  EXPECT_TRUE(b.accepted);
  net.validate_invariants();
}

TEST(NetworkBackup, BackupsReservedAtMinimumOnly) {
  // Footnote 4: backups get bmin, never elastic grants.
  Network net(topology::generate_waxman({20, 0.5, 0.4, true}, 2), NetworkConfig{});
  const auto outcome = net.request_connection(0, 10, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  const DrConnection& c = net.connection(outcome.id);
  ASSERT_TRUE(c.has_backup());
  for (topology::LinkId l : c.backups.front().path.links)
    EXPECT_LE(net.link_state(l).backup_reserved(),
              100.0 * static_cast<double>(net.backups().count_on_link(l)) + 1e-9);
  net.validate_invariants();
}

}  // namespace
}  // namespace eqos::net
