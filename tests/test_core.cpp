// Unit tests for the analysis pipeline: chain assembly from estimates, the
// ideal-bandwidth formula, and the experiment runner.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/ideal.hpp"
#include "topology/waxman.hpp"

namespace eqos::core {
namespace {

net::ElasticQosSpec paper_qos() {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  return q;
}

sim::WorkloadConfig paper_workload() {
  sim::WorkloadConfig w;
  w.qos = paper_qos();
  w.arrival_rate = 1e-3;
  w.termination_rate = 1e-3;
  w.failure_rate = 0.0;
  w.seed = 1;
  return w;
}

/// Hand-built estimates: retreat to bottom on arrival, refill to top on
/// termination, both fully chained.
sim::ModelEstimates synthetic_estimates(std::size_t n) {
  sim::ModelEstimates e;
  e.pf = 0.5;
  e.ps = 0.0;
  e.pf_termination = 0.5;
  e.pf_failure = 0.5;
  matrix::Matrix bottom(n, n);
  matrix::Matrix top(n, n);
  matrix::Matrix stay(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    bottom(i, 0) = 1.0;
    top(i, n - 1) = 1.0;
    stay(i, i) = 1.0;
  }
  e.arrival_move = bottom;
  e.indirect_move = stay;
  e.termination_move = top;
  e.failure_move = bottom;
  e.occupancy.assign(n, 1.0 / static_cast<double>(n));
  return e;
}

// ---- make_chain_parameters / analyze ------------------------------------------------

TEST(Analyzer, PaperFidelitySharesOnePf) {
  const auto est = synthetic_estimates(9);
  const auto p = make_chain_parameters(est, paper_workload(), Fidelity::kPaper);
  EXPECT_FALSE(p.failure_move.has_value());
  EXPECT_FALSE(p.p_direct_termination.has_value());
  EXPECT_DOUBLE_EQ(p.p_direct, 0.5);
  EXPECT_EQ(p.num_states(), 9u);
}

TEST(Analyzer, RefinedFidelityUsesMeasuredExtras) {
  auto est = synthetic_estimates(9);
  est.pf_termination = 0.25;
  const auto p = make_chain_parameters(est, paper_workload(), Fidelity::kRefined);
  ASSERT_TRUE(p.p_direct_termination.has_value());
  EXPECT_DOUBLE_EQ(*p.p_direct_termination, 0.25);
  ASSERT_TRUE(p.failure_move.has_value());
}

TEST(Analyzer, SymmetricRetreatRefillGivesMidpoint) {
  const auto result = analyze(synthetic_estimates(9), paper_workload());
  EXPECT_FALSE(result.degenerate);
  EXPECT_NEAR(result.average_bandwidth_kbps, 300.0, 1e-6);
  double sum = 0.0;
  for (double p : result.steady_state) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Analyzer, DegenerateChainFallsBackToDominantState) {
  sim::ModelEstimates e;
  const std::size_t n = 9;
  e.arrival_move = matrix::Matrix(n, n);
  e.indirect_move = matrix::Matrix(n, n);
  e.termination_move = matrix::Matrix(n, n);
  e.failure_move = matrix::Matrix(n, n);
  e.occupancy.assign(n, 0.0);
  e.occupancy[6] = 1.0;
  const auto result = analyze(e, paper_workload());
  EXPECT_TRUE(result.degenerate);
  EXPECT_NEAR(result.average_bandwidth_kbps, 100.0 + 6 * 50.0, 1e-9);
}

TEST(Analyzer, DegenerateWithoutOccupancyUsesTopState) {
  sim::ModelEstimates e;
  const std::size_t n = 5;
  e.arrival_move = matrix::Matrix(n, n);
  e.indirect_move = matrix::Matrix(n, n);
  e.termination_move = matrix::Matrix(n, n);
  e.failure_move = matrix::Matrix(n, n);
  sim::WorkloadConfig w = paper_workload();
  w.qos.increment_kbps = 100.0;  // N = 5
  const auto result = analyze(e, w);
  EXPECT_TRUE(result.degenerate);
  EXPECT_NEAR(result.average_bandwidth_kbps, 500.0, 1e-9);
}

// ---- Ideal bandwidth --------------------------------------------------------------

TEST(Ideal, FormulaMatchesPaper) {
  // BW * Edge / (NChan * avghop), the Figure 2 expression.
  EXPECT_NEAR(ideal_average_bandwidth_kbps(10'000.0, 354, 1000, 4.0),
              10'000.0 * 354.0 / (1000.0 * 4.0), 1e-9);
}

TEST(Ideal, ClampsToQosRange) {
  EXPECT_DOUBLE_EQ(
      clamped_ideal_bandwidth_kbps(10'000.0, 354, 100, 4.0, 100.0, 500.0), 500.0);
  EXPECT_DOUBLE_EQ(
      clamped_ideal_bandwidth_kbps(10'000.0, 354, 100'000, 4.0, 100.0, 500.0), 100.0);
}

TEST(Ideal, RejectsDegenerateInputs) {
  EXPECT_THROW((void)ideal_average_bandwidth_kbps(1.0, 1, 0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)ideal_average_bandwidth_kbps(1.0, 1, 1, 0.0), std::invalid_argument);
}

// ---- run_experiment -----------------------------------------------------------------

TEST(Experiment, LowLoadEveryoneAtMax) {
  const auto g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  ExperimentConfig cfg;
  cfg.workload = paper_workload();
  cfg.target_connections = 100;
  cfg.warmup_events = 100;
  cfg.measure_events = 400;
  const auto r = run_experiment(g, cfg);
  EXPECT_EQ(r.established, 100u);
  EXPECT_GT(r.sim_mean_bandwidth_kbps, 480.0);
  EXPECT_GT(r.analytic_paper_kbps, 480.0);
  EXPECT_DOUBLE_EQ(r.ideal_clamped_kbps, 500.0);
  EXPECT_GT(r.protected_fraction, 0.95);
}

TEST(Experiment, HighLoadDegradesTowardMinimum) {
  const auto g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  ExperimentConfig cfg;
  cfg.workload = paper_workload();
  cfg.target_connections = 5000;
  cfg.warmup_events = 200;
  cfg.measure_events = 800;
  const auto r = run_experiment(g, cfg);
  EXPECT_LT(r.sim_mean_bandwidth_kbps, 350.0);
  EXPECT_GT(r.sim_mean_bandwidth_kbps, 100.0);
  // The analytic model tracks the simulation within a loose band.
  EXPECT_NEAR(r.analytic_paper_kbps, r.sim_mean_bandwidth_kbps,
              0.35 * r.sim_mean_bandwidth_kbps);
}

TEST(Experiment, AnalyticTracksSimulationAtModerateLoad) {
  const auto g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  ExperimentConfig cfg;
  cfg.workload = paper_workload();
  cfg.workload.seed = 1234;
  cfg.target_connections = 3500;
  cfg.warmup_events = 300;
  cfg.measure_events = 1200;
  const auto r = run_experiment(g, cfg);
  EXPECT_NEAR(r.analytic_paper_kbps, r.sim_mean_bandwidth_kbps,
              0.30 * r.sim_mean_bandwidth_kbps);
  // Ideal is an upper bound (on the clamped scale).
  EXPECT_GE(r.ideal_clamped_kbps, r.sim_mean_bandwidth_kbps - 30.0);
}

TEST(Experiment, DeterministicGivenSeed) {
  const auto g = topology::generate_waxman({60, 0.35, 0.25, true}, 5);
  ExperimentConfig cfg;
  cfg.workload = paper_workload();
  cfg.workload.seed = 99;
  cfg.target_connections = 300;
  cfg.warmup_events = 50;
  cfg.measure_events = 200;
  const auto a = run_experiment(g, cfg);
  const auto b = run_experiment(g, cfg);
  EXPECT_DOUBLE_EQ(a.sim_mean_bandwidth_kbps, b.sim_mean_bandwidth_kbps);
  EXPECT_DOUBLE_EQ(a.analytic_paper_kbps, b.analytic_paper_kbps);
  EXPECT_EQ(a.active_at_end, b.active_at_end);
}

TEST(Experiment, FailureWorkloadRuns) {
  const auto g = topology::generate_waxman({60, 0.35, 0.25, true}, 5);
  ExperimentConfig cfg;
  cfg.workload = paper_workload();
  cfg.workload.failure_rate = 1e-4;
  cfg.workload.repair_rate = 1e-2;
  cfg.target_connections = 300;
  cfg.warmup_events = 100;
  cfg.measure_events = 600;
  const auto r = run_experiment(g, cfg);
  EXPECT_GT(r.network_stats.failures_injected, 0u);
  EXPECT_GT(r.sim_mean_bandwidth_kbps, 100.0);
  EXPECT_LE(r.sim_mean_bandwidth_kbps, 500.0 + 1e-6);
}

}  // namespace
}  // namespace eqos::core
