// Unit tests for the discrete-event core, the workload driver, and the
// transition recorder.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <thread>

#include "sim/event_queue.hpp"
#include "sim/heap_queue.hpp"
#include "sim/recorder.hpp"
#include "sim/simulator.hpp"
#include "topology/waxman.hpp"

namespace eqos::sim {
namespace {

net::ElasticQosSpec paper_qos() {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  return q;
}

// ---- EventQueue -----------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(3); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> recurse = [&] {
    ++fired;
    if (fired < 5) q.schedule_in(1.0, recurse);
  };
  q.schedule(0.0, recurse);
  while (q.step()) {
  }
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  const std::size_t n = q.run_until(3.0);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RejectsPastAndNull) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule(10.0, nullptr), std::invalid_argument);
  EXPECT_THROW(q.run_until(1.0), std::invalid_argument);
}

TEST(EventQueue, Clear) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, PastTimeRejectionNamesEventKind) {
  EventQueue q;
  q.set_handler(7, [](const EventTag&) {});
  q.schedule(5.0, EventTag{7, 0, 0});
  q.step();
  try {
    q.schedule(1.0, EventTag{7, 1, 2});
    FAIL() << "past-time tagged schedule did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("kind 7"), std::string::npos) << e.what();
  }
  // Untagged closures carry kind 0, and the message says so.
  try {
    q.schedule(1.0, [] {});
    FAIL() << "past-time closure schedule did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("kind 0"), std::string::npos) << e.what();
  }
}

// ---- Ladder-vs-heap differential property test ----------------------------------
//
// Drives the ladder queue and the reference binary heap (sim/heap_queue.hpp)
// through one identical randomized op sequence — schedule bursts, far-future
// spreads, massive same-time tie groups, pop bursts, run_until boundaries,
// clear, and snapshot/restore taken mid-ladder — and checks the pop order
// matches event for event.  Payloads are issued from a shared counter, so
// equal pop vectors mean equal (time, seq) orderings.

void drive_differential(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  EventQueue ladder;
  BaselineHeapQueue heap;
  constexpr std::uint32_t kKind = 3;
  std::vector<std::uint64_t> ladder_order;
  std::vector<std::uint64_t> heap_order;
  ladder.set_handler(kKind,
                     [&ladder_order](const EventTag& t) { ladder_order.push_back(t.a); });
  std::uint64_t payload = 0;

  const EventQueue::Rebuilder ladder_rebuild = [](const EventTag&) {
    return [] {};  // validated then discarded: kKind has a registered handler
  };
  auto schedule_pair = [&](double t) {
    ladder.schedule(t, EventTag{kKind, payload, 0});
    heap.schedule(t, EventTag{kKind, payload, 0},
                  [&heap_order, p = payload] { heap_order.push_back(p); });
    ++payload;
  };

  std::uniform_real_distribution<double> near(0.0, 50.0);
  std::uniform_real_distribution<double> far(0.0, 1.0e6);

  for (int round = 0; round < 60; ++round) {
    switch (rng() % 7) {
      case 0:  // near-future burst (lands inside the active rung)
        for (int i = 0; i < 40; ++i) schedule_pair(ladder.now() + near(rng));
        break;
      case 1:  // far-future spread (exercises the overflow list and spills)
        for (int i = 0; i < 40; ++i) schedule_pair(ladder.now() + far(rng));
        break;
      case 2: {  // massive same-time tie group (seq-only ordering)
        const double t = ladder.now() + near(rng);
        const int n = 200 + static_cast<int>(rng() % 800);
        for (int i = 0; i < n; ++i) schedule_pair(t);
        break;
      }
      case 3: {  // pop burst
        const int n = 1 + static_cast<int>(rng() % 64);
        for (int i = 0; i < n; ++i) {
          const bool a = ladder.step();
          const bool b = heap.step();
          ASSERT_EQ(a, b);
          if (!a) break;
          ASSERT_EQ(ladder.now(), heap.now());
        }
        break;
      }
      case 4: {  // run both to the same boundary
        const double end = ladder.now() + near(rng);
        ASSERT_EQ(ladder.run_until(end), heap.run_until(end));
        ASSERT_EQ(ladder.now(), heap.now());
        break;
      }
      case 5: {  // checkpoint mid-ladder: snapshots must agree, then restore
        const auto snap_l = ladder.snapshot();
        const auto snap_h = heap.snapshot();
        ASSERT_EQ(snap_l.size(), snap_h.size());
        for (std::size_t i = 0; i < snap_l.size(); ++i) {
          ASSERT_EQ(snap_l[i].time, snap_h[i].time);
          ASSERT_EQ(snap_l[i].seq, snap_h[i].seq);
          ASSERT_EQ(snap_l[i].tag.a, snap_h[i].tag.a);
        }
        ladder.restore(ladder.now(), ladder.next_seq(), snap_l, ladder_rebuild);
        heap.restore(heap.now(), heap.next_seq(), snap_h,
                     [&heap_order](const EventTag& t) {
                       return [&heap_order, p = t.a] { heap_order.push_back(p); };
                     });
        break;
      }
      case 6:  // clear both (ladder handlers must survive)
        ladder.clear();
        heap.clear();
        break;
    }
    ASSERT_EQ(ladder.pending(), heap.pending());
  }
  // Drain whatever is left and compare the complete pop histories.
  while (true) {
    const bool a = ladder.step();
    const bool b = heap.step();
    ASSERT_EQ(a, b);
    if (!a) break;
  }
  ASSERT_EQ(ladder_order, heap_order);
  ASSERT_GT(ladder_order.size(), 0u);
}

TEST(EventQueueProperty, LadderMatchesHeapReference) {
  // Mirror the sweep driver's thread counts: each worker owns a private
  // (ladder, heap) pair, like each sweep thread owns a private Simulator.
  for (const unsigned nthreads : {1u, 2u, 8u}) {
    std::vector<std::thread> workers;
    workers.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t) {
      workers.emplace_back([t, nthreads] {
        for (std::uint64_t s = t; s < 12; s += nthreads)
          drive_differential(0xC0FFEE00ull + s * 7919 + nthreads);
      });
    }
    for (std::thread& w : workers) w.join();
  }
}

// ---- Simulator -----------------------------------------------------------------------

TEST(Simulator, PopulateEstablishesTarget) {
  net::Network net(topology::generate_waxman({50, 0.35, 0.25, true}, 3),
                   net::NetworkConfig{});
  WorkloadConfig cfg;
  cfg.qos = paper_qos();
  cfg.seed = 5;
  Simulator sim(net, cfg);
  const std::size_t got = sim.populate(100);
  EXPECT_EQ(got, 100u);
  EXPECT_EQ(net.num_active(), 100u);
  net.validate_invariants();
}

TEST(Simulator, PopulateCountsAttemptsNotAcceptances) {
  topology::Graph g(2);
  g.add_link(0, 1);
  net::NetworkConfig ncfg;
  ncfg.link_capacity_kbps = 500.0;  // 5 bmin slots; no useful backup exists
  ncfg.require_backup = false;
  net::Network net(g, ncfg);
  WorkloadConfig cfg;
  cfg.qos = paper_qos();
  Simulator sim(net, cfg);
  const std::size_t got = sim.populate(100);
  EXPECT_EQ(got, 5u);  // saturated after five minimums
  EXPECT_EQ(sim.stats().populate_attempts, 100u);
  EXPECT_EQ(net.stats().rejected_no_primary, 95u);
}

TEST(Simulator, ChurnKeepsPopulationNearTarget) {
  net::Network net(topology::generate_waxman({60, 0.35, 0.25, true}, 7),
                   net::NetworkConfig{});
  WorkloadConfig cfg;
  cfg.qos = paper_qos();
  cfg.seed = 11;
  Simulator sim(net, cfg);
  sim.populate(200);
  sim.run_events(1000);
  EXPECT_GT(net.num_active(), 120u);
  EXPECT_LT(net.num_active(), 300u);
  EXPECT_GT(sim.stats().arrival_events, 300u);
  EXPECT_GT(sim.stats().termination_events, 300u);
  net.validate_invariants();
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto g = topology::generate_waxman({40, 0.35, 0.25, true}, 9);
  auto run = [&] {
    net::Network net(g, net::NetworkConfig{});
    WorkloadConfig cfg;
    cfg.qos = paper_qos();
    cfg.seed = 77;
    Simulator sim(net, cfg);
    sim.populate(100);
    sim.run_events(500);
    return std::make_tuple(net.num_active(), net.mean_reserved_kbps(), sim.now());
  };
  EXPECT_EQ(run(), run());
}

TEST(Simulator, FailureEventsFireWhenEnabled) {
  net::Network net(topology::generate_waxman({40, 0.35, 0.25, true}, 13),
                   net::NetworkConfig{});
  WorkloadConfig cfg;
  cfg.qos = paper_qos();
  cfg.failure_rate = 1e-3;  // as frequent as arrivals
  cfg.repair_rate = 1e-2;
  cfg.seed = 3;
  Simulator sim(net, cfg);
  sim.populate(100);
  sim.run_events(600);
  EXPECT_GT(sim.stats().failure_events, 50u);
  EXPECT_GT(net.stats().failures_injected, 20u);
  EXPECT_GT(sim.stats().repair_events, 0u);
  net.validate_invariants();
}

TEST(Simulator, ZeroFailureRateNeverFails) {
  net::Network net(topology::generate_waxman({30, 0.35, 0.3, true}, 1),
                   net::NetworkConfig{});
  WorkloadConfig cfg;
  cfg.qos = paper_qos();
  cfg.failure_rate = 0.0;
  Simulator sim(net, cfg);
  sim.populate(50);
  sim.run_events(300);
  EXPECT_EQ(net.stats().failures_injected, 0u);
}

TEST(Simulator, ValidatesConfig) {
  net::Network net(topology::generate_waxman({10, 0.5, 0.4, true}, 2),
                   net::NetworkConfig{});
  WorkloadConfig cfg;
  cfg.qos = paper_qos();
  cfg.arrival_rate = -1.0;
  EXPECT_THROW(Simulator(net, cfg), std::invalid_argument);
}

// ---- TransitionRecorder -----------------------------------------------------------------

TEST(Recorder, RowNormalize) {
  matrix::Matrix counts(2, 2);
  counts(0, 0) = 3.0;
  counts(0, 1) = 1.0;
  const auto p = row_normalize(counts);
  EXPECT_DOUBLE_EQ(p(0, 0), 0.75);
  EXPECT_DOUBLE_EQ(p(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(p(1, 0), 0.0);  // zero row stays zero
  EXPECT_DOUBLE_EQ(p(1, 1), 0.0);
}

TEST(Recorder, OccupancyIsTimeWeighted) {
  // Hand-drive a tiny network and check the occupancy integral.
  topology::Graph g(2);
  g.add_link(0, 1);
  net::NetworkConfig ncfg;
  ncfg.link_capacity_kbps = 10'000.0;
  ncfg.require_backup = false;
  net::Network net(g, ncfg);
  TransitionRecorder rec(paper_qos(), 0.0);
  const auto a = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(a.accepted);  // alone: state 8
  rec.advance_to(10.0, net);
  const auto est = rec.estimates(10.0, net);
  EXPECT_NEAR(est.occupancy[8], 1.0, 1e-12);
  EXPECT_NEAR(est.mean_bandwidth_kbps, 500.0, 1e-9);
}

TEST(Recorder, CapturesArrivalTransitions) {
  topology::Graph g(2);
  g.add_link(0, 1);
  net::NetworkConfig ncfg;
  ncfg.link_capacity_kbps = 600.0;  // 2 channels -> 4 quanta each
  ncfg.require_backup = false;
  net::Network net(g, ncfg);
  TransitionRecorder rec(paper_qos(), 0.0);

  const auto a = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(a.accepted);
  EXPECT_EQ(net.connection(a.id).extra_quanta, 8u);

  rec.advance_to(1.0, net);
  const auto b = net.request_connection(0, 1, paper_qos());
  rec.on_arrival(b, net);

  const auto est = rec.estimates(2.0, net);
  // One arrival, one pre-existing channel, directly chained: Pf = 1.
  EXPECT_DOUBLE_EQ(est.pf, 1.0);
  EXPECT_DOUBLE_EQ(est.ps, 0.0);
  EXPECT_EQ(est.arrivals_observed, 1u);
  // The A matrix must record the 8 -> 4 move.
  EXPECT_DOUBLE_EQ(est.arrival_move(8, 4), 1.0);
}

TEST(Recorder, CapturesTerminationTransitions) {
  topology::Graph g(2);
  g.add_link(0, 1);
  net::NetworkConfig ncfg;
  ncfg.link_capacity_kbps = 600.0;
  ncfg.require_backup = false;
  net::Network net(g, ncfg);
  TransitionRecorder rec(paper_qos(), 0.0);
  const auto a = net.request_connection(0, 1, paper_qos());
  const auto b = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(a.accepted && b.accepted);

  rec.advance_to(1.0, net);
  const auto report = net.terminate_connection(b.id);
  rec.on_termination(report, net);
  const auto est = rec.estimates(2.0, net);
  EXPECT_DOUBLE_EQ(est.pf_termination, 1.0);
  EXPECT_DOUBLE_EQ(est.termination_move(4, 8), 1.0);
  EXPECT_EQ(est.terminations_observed, 1u);
}

TEST(Recorder, RejectedArrivalsDoNotCount) {
  topology::Graph g(2);
  g.add_link(0, 1);
  net::NetworkConfig ncfg;
  ncfg.link_capacity_kbps = 150.0;
  ncfg.require_backup = false;
  net::Network net(g, ncfg);
  TransitionRecorder rec(paper_qos(), 0.0);
  ASSERT_TRUE(net.request_connection(0, 1, paper_qos()).accepted);
  rec.advance_to(1.0, net);
  const auto rejected = net.request_connection(0, 1, paper_qos());
  ASSERT_FALSE(rejected.accepted);
  rec.on_arrival(rejected, net);
  const auto est = rec.estimates(2.0, net);
  EXPECT_EQ(est.arrivals_observed, 0u);
  EXPECT_DOUBLE_EQ(est.pf, 0.0);
}

TEST(Recorder, TimeMustNotGoBackwards) {
  topology::Graph g(2);
  g.add_link(0, 1);
  net::Network net(g, net::NetworkConfig{});
  TransitionRecorder rec(paper_qos(), 5.0);
  EXPECT_THROW(rec.advance_to(4.0, net), std::invalid_argument);
}

TEST(Recorder, EndToEndEstimatesAreProbabilities) {
  net::Network net(topology::generate_waxman({60, 0.35, 0.25, true}, 21),
                   net::NetworkConfig{});
  WorkloadConfig cfg;
  cfg.qos = paper_qos();
  cfg.seed = 31;
  Simulator sim(net, cfg);
  sim.populate(400);
  TransitionRecorder rec(cfg.qos, sim.now());
  sim.attach_recorder(&rec);
  sim.run_events(800);
  const auto est = rec.estimates(sim.now(), net);

  EXPECT_GT(est.pf, 0.0);
  EXPECT_LT(est.pf, 1.0);
  EXPECT_GE(est.ps, 0.0);
  EXPECT_LE(est.ps, 1.0);
  double occ = 0.0;
  for (double p : est.occupancy) {
    EXPECT_GE(p, 0.0);
    occ += p;
  }
  EXPECT_NEAR(occ, 1.0, 1e-9);
  // Every row of every move matrix sums to ~1 or ~0.
  for (const auto* m : {&est.arrival_move, &est.indirect_move, &est.termination_move,
                        &est.failure_move}) {
    for (std::size_t i = 0; i < m->rows(); ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < m->cols(); ++j) s += (*m)(i, j);
      EXPECT_TRUE(std::abs(s - 1.0) < 1e-9 || std::abs(s) < 1e-9) << "row " << i;
    }
  }
  EXPECT_GT(est.mean_bandwidth_kbps, 100.0);
  EXPECT_LE(est.mean_bandwidth_kbps, 500.0);
}

}  // namespace
}  // namespace eqos::sim
