// Unit tests for finite-horizon reward analysis and topology serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "markov/rewards.hpp"
#include "topology/io.hpp"
#include "topology/metrics.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"

namespace eqos::markov {
namespace {

using matrix::Vector;

Ctmc two_state(double up, double down) {
  Ctmc c(2);
  c.add_rate(0, 1, up);
  c.add_rate(1, 0, down);
  return c;
}

TEST(Rewards, ZeroHorizonIsZero) {
  const Ctmc c = two_state(1.0, 1.0);
  EXPECT_DOUBLE_EQ(accumulated_reward(c, {1.0, 0.0}, {5.0, 7.0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(time_averaged_reward(c, {1.0, 0.0}, {5.0, 7.0}, 0.0), 5.0);
}

TEST(Rewards, FrozenChainAccumulatesLinearly) {
  Ctmc c(2);  // no transitions
  EXPECT_NEAR(accumulated_reward(c, {0.25, 0.75}, {4.0, 8.0}, 10.0),
              (0.25 * 4.0 + 0.75 * 8.0) * 10.0, 1e-9);
}

TEST(Rewards, TwoStateClosedForm) {
  // r = (0, 1): accumulated reward = expected time in state 1 =
  // integral of p1(s) ds with p1(s) = pi1 (1 - e^{-(a+b)s}) from state 0.
  const double a = 0.8;
  const double b = 0.2;
  const Ctmc c = two_state(a, b);
  const double pi1 = a / (a + b);
  for (double t : {0.5, 2.0, 10.0}) {
    const double rate = a + b;
    const double expect = pi1 * (t - (1.0 - std::exp(-rate * t)) / rate);
    EXPECT_NEAR(accumulated_reward(c, {1.0, 0.0}, {0.0, 1.0}, t), expect, 1e-8)
        << "t=" << t;
  }
}

TEST(Rewards, TimeAverageConvergesToStationaryReward) {
  const Ctmc c = two_state(0.3, 0.7);
  const Vector r{100.0, 500.0};
  const double stationary = c.expected_reward(r);
  const double avg = time_averaged_reward(c, {1.0, 0.0}, r, 1e4);
  EXPECT_NEAR(avg, stationary, 0.5);
}

TEST(Rewards, MonotoneInHorizonForNonNegativeRewards) {
  const Ctmc c = two_state(1.0, 2.0);
  const Vector r{1.0, 3.0};
  double prev = 0.0;
  for (double t : {0.5, 1.0, 2.0, 4.0}) {
    const double acc = accumulated_reward(c, {0.5, 0.5}, r, t);
    EXPECT_GT(acc, prev);
    prev = acc;
  }
}

TEST(Rewards, InputValidation) {
  const Ctmc c = two_state(1.0, 1.0);
  EXPECT_THROW((void)accumulated_reward(c, {1.0}, {1.0, 2.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)accumulated_reward(c, {1.0, 0.0}, {1.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)accumulated_reward(c, {1.0, 0.0}, {1.0, 2.0}, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace eqos::markov

namespace eqos::topology {
namespace {

TEST(GraphIo, RoundTripPreservesEverything) {
  const Graph g = generate_waxman({40, 0.35, 0.25, true}, 9);
  const Graph back = from_edge_list(to_edge_list(g));
  ASSERT_EQ(back.num_nodes(), g.num_nodes());
  ASSERT_EQ(back.num_links(), g.num_links());
  for (LinkId l = 0; l < g.num_links(); ++l) {
    EXPECT_EQ(back.link(l).a, g.link(l).a);
    EXPECT_EQ(back.link(l).b, g.link(l).b);
  }
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    EXPECT_DOUBLE_EQ(back.position(i).x, g.position(i).x);
    EXPECT_DOUBLE_EQ(back.position(i).y, g.position(i).y);
  }
}

TEST(GraphIo, RoundTripTransitStub) {
  const auto ts = generate_transit_stub({}, 5);
  const Graph back = from_edge_list(to_edge_list(ts.graph));
  EXPECT_EQ(back.num_links(), ts.graph.num_links());
  EXPECT_EQ(graph_stats(back).diameter, graph_stats(ts.graph).diameter);
}

TEST(GraphIo, RejectsMalformedInput) {
  EXPECT_THROW((void)from_edge_list("bogus"), std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("eqos-graph 2\nnodes 1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("eqos-graph 1\nnodes 2\nlink 0 5\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("eqos-graph 1\nnodes 2\nfrobnicate\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("eqos-graph 1\nnodes 2\nlink 0 1\nlink 1 0\n"),
               std::invalid_argument);  // duplicate
}

TEST(GraphIo, DotContainsAllLinks) {
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  std::ostringstream out;
  write_dot(out, g, "test");
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph test {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2"), std::string::npos);
}

TEST(GraphIo, EmptyGraphRoundTrip) {
  Graph g(3);  // nodes, no links
  const Graph back = from_edge_list(to_edge_list(g));
  EXPECT_EQ(back.num_nodes(), 3u);
  EXPECT_EQ(back.num_links(), 0u);
}

}  // namespace
}  // namespace eqos::topology
