// Determinism tests for the parallel sweep harness and the churn-loop
// hot-path optimizations it rides on:
//
//  * run_sweep is bit-identical across thread counts (1/2/8) and its
//    single-thread, single-rep path reproduces run_experiment exactly;
//  * the seeding scheme (rep 0 keeps the configured seed, rep > 0 derives a
//    SplitMix64 sub-stream) is stable and collision-free;
//  * PathSearch's reused scratch buffers return the same routes as the
//    allocating free functions for every query;
//  * flood_route with its thread_local scratch is repeat-deterministic;
//  * redistribute's gainable prefilter + manual heap preserves the
//    tie-break order (equal coefficients/utilities resolve by lower id);
//  * Rng::split(stream_id) derives children without consuming parent state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <limits>
#include <set>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "net/flooding.hpp"
#include "net/link_state.hpp"
#include "net/network.hpp"
#include "topology/paths.hpp"
#include "topology/waxman.hpp"
#include "util/rng.hpp"

namespace eqos {
namespace {

using topology::Graph;

// ---- shared fixtures -----------------------------------------------------

const Graph& small_waxman() {
  static const Graph g = topology::generate_waxman({30, 0.4, 0.3, true}, 7);
  return g;
}

net::ElasticQosSpec paper_qos() {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  q.utility = 1.0;
  return q;
}

core::ExperimentConfig tiny_experiment(std::size_t target, std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.workload.qos = paper_qos();
  cfg.workload.seed = seed;
  cfg.target_connections = target;
  cfg.warmup_events = 30;
  cfg.measure_events = 120;
  return cfg;
}

/// Field-by-field equality of the deterministic parts of two results.
/// Timings are wall-clock metadata and deliberately excluded (see
/// PhaseTimings' doc comment in core/experiment.hpp).
void expect_result_eq(const core::ExperimentResult& a,
                      const core::ExperimentResult& b, const char* where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(a.attempted, b.attempted);
  EXPECT_EQ(a.established, b.established);
  EXPECT_EQ(a.active_at_end, b.active_at_end);
  // Bitwise, not approximate: the guarantee is "same bytes", so any FP
  // difference at all means a scheduling-dependent code path leaked in.
  EXPECT_EQ(a.sim_mean_bandwidth_kbps, b.sim_mean_bandwidth_kbps);
  EXPECT_EQ(a.analytic_paper_kbps, b.analytic_paper_kbps);
  EXPECT_EQ(a.analytic_refined_kbps, b.analytic_refined_kbps);
  EXPECT_EQ(a.ideal_kbps, b.ideal_kbps);
  EXPECT_EQ(a.ideal_clamped_kbps, b.ideal_clamped_kbps);
  EXPECT_EQ(a.mean_hops, b.mean_hops);
  EXPECT_EQ(a.protected_fraction, b.protected_fraction);
  EXPECT_EQ(a.estimates.pf, b.estimates.pf);
  EXPECT_EQ(a.estimates.ps, b.estimates.ps);
  EXPECT_EQ(a.estimates.pf_termination, b.estimates.pf_termination);
  EXPECT_EQ(a.estimates.pf_failure, b.estimates.pf_failure);
  EXPECT_EQ(a.estimates.mean_bandwidth_kbps, b.estimates.mean_bandwidth_kbps);
  EXPECT_EQ(a.estimates.occupancy, b.estimates.occupancy);
  EXPECT_EQ(a.network_stats.requests, b.network_stats.requests);
  EXPECT_EQ(a.network_stats.accepted, b.network_stats.accepted);
  EXPECT_EQ(a.network_stats.terminated, b.network_stats.terminated);
  EXPECT_EQ(a.network_stats.quanta_adjustments, b.network_stats.quanta_adjustments);
  EXPECT_EQ(a.sim_stats.arrival_events, b.sim_stats.arrival_events);
  EXPECT_EQ(a.sim_stats.termination_events, b.sim_stats.termination_events);
}

// ---- seeding scheme ------------------------------------------------------

TEST(SweepSeed, RepZeroKeepsConfiguredSeed) {
  EXPECT_EQ(core::sweep_seed(42, 0, 0), 42u);
  EXPECT_EQ(core::sweep_seed(42, 17, 0), 42u);
  EXPECT_EQ(core::sweep_seed(0xdeadbeef, 3, 0), 0xdeadbeefu);
}

TEST(SweepSeed, LaterRepsDeriveSubstreams) {
  const std::uint64_t base = 42;
  EXPECT_EQ(core::sweep_seed(base, 5, 2),
            util::Rng::substream_seed(base, core::sweep_substream(5, 2)));
  EXPECT_NE(core::sweep_seed(base, 5, 1), base);
}

TEST(SweepSeed, NoCollisionsAcrossGrid) {
  // Every (point, rep) pair of a realistic grid gets a distinct seed.
  std::set<std::uint64_t> seen;
  for (std::size_t p = 0; p < 16; ++p)
    for (std::size_t r = 0; r < 8; ++r)
      seen.insert(core::sweep_seed(42, p, r));
  // Rep 0 of every point shares the base seed by design; all others differ.
  EXPECT_EQ(seen.size(), 16u * 8u - 15u);
}

TEST(SweepSeed, SubstreamIsPointMajor) {
  EXPECT_EQ(core::sweep_substream(0, 0), 0u);
  EXPECT_EQ(core::sweep_substream(0, 5), 5u);
  EXPECT_EQ(core::sweep_substream(1, 0), std::uint64_t{1} << 20);
  EXPECT_NE(core::sweep_substream(1, 2), core::sweep_substream(2, 1));
}

// ---- run_sweep determinism ----------------------------------------------

std::vector<core::SweepPoint> three_point_sweep() {
  std::vector<core::SweepPoint> points;
  for (const std::size_t target : {40u, 80u, 120u})
    points.push_back({&small_waxman(), tiny_experiment(target, 11), ""});
  return points;
}

TEST(RunSweep, BitIdenticalAcrossThreadCounts) {
  const auto points = three_point_sweep();
  core::SweepOptions opt;
  opt.reps = 2;

  opt.threads = 1;
  const auto serial = core::run_sweep(points, opt);
  opt.threads = 2;
  const auto two = core::run_sweep(points, opt);
  opt.threads = 8;
  const auto eight = core::run_sweep(points, opt);

  ASSERT_EQ(serial.results.size(), points.size() * opt.reps);
  ASSERT_EQ(two.results.size(), serial.results.size());
  ASSERT_EQ(eight.results.size(), serial.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    expect_result_eq(serial.results[i], two.results[i], "threads 1 vs 2");
    expect_result_eq(serial.results[i], eight.results[i], "threads 1 vs 8");
  }
}

TEST(RunSweep, RepZeroMatchesDirectRunExperiment) {
  // A single-rep sweep must reproduce the historical serial protocol:
  // run_experiment called directly with the point's own config.
  const auto points = three_point_sweep();
  const auto sweep = core::run_sweep(points, core::SweepOptions{});
  ASSERT_EQ(sweep.results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto direct = core::run_experiment(*points[i].graph, points[i].config);
    expect_result_eq(sweep.results[i], direct, "sweep vs direct");
  }
}

TEST(RunSweep, RepsAreIndependentStreams) {
  // Rep 1 must differ from rep 0 (different seed => different trajectory)
  // while both stay individually reproducible.
  std::vector<core::SweepPoint> points{
      {&small_waxman(), tiny_experiment(80, 11), ""}};
  core::SweepOptions opt;
  opt.reps = 2;
  const auto a = core::run_sweep(points, opt);
  const auto b = core::run_sweep(points, opt);
  ASSERT_EQ(a.results.size(), 2u);
  expect_result_eq(a.results[0], b.results[0], "rep 0 reproducible");
  expect_result_eq(a.results[1], b.results[1], "rep 1 reproducible");
  EXPECT_NE(a.results[0].sim_mean_bandwidth_kbps,
            a.results[1].sim_mean_bandwidth_kbps);
}

TEST(RunSweep, PointMeanAveragesScalars) {
  std::vector<core::SweepPoint> points{
      {&small_waxman(), tiny_experiment(60, 11), ""}};
  core::SweepOptions opt;
  opt.reps = 3;
  const auto sweep = core::run_sweep(points, opt);
  const auto reps = sweep.point_results(0);
  ASSERT_EQ(reps.size(), 3u);
  const auto mean = sweep.point_mean(0);
  double expected = 0.0;
  for (const auto& r : reps) expected += r.sim_mean_bandwidth_kbps;
  expected /= 3.0;
  EXPECT_DOUBLE_EQ(mean.sim_mean_bandwidth_kbps, expected);
}

TEST(ParallelPoints, CollectsInIndexOrderAtAnyThreadCount) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto out = core::parallel_points(
        100, threads, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

// ---- PathSearch scratch reuse vs free functions -------------------------

TEST(PathSearch, ReusedBuffersMatchFreeFunctions) {
  const Graph g = topology::generate_waxman({60, 0.4, 0.3, true}, 13);
  topology::PathSearch search;  // one instance reused across every query
  util::Rng rng(5);

  // A width map and a filter that knocks out ~20% of links, regenerated
  // per query so stale scratch state from a previous (filter, width) pair
  // would be caught.
  for (int q = 0; q < 200; ++q) {
    const auto src = static_cast<topology::NodeId>(rng.index(60));
    auto dst = static_cast<topology::NodeId>(rng.index(59));
    if (dst >= src) ++dst;
    std::vector<double> width(g.num_links());
    std::vector<char> blocked(g.num_links());
    for (std::size_t l = 0; l < g.num_links(); ++l) {
      width[l] = rng.uniform(1.0, 100.0);
      blocked[l] = rng.chance(0.2) ? 1 : 0;
    }
    const auto filter = [&](topology::LinkId l) { return !blocked[l]; };
    const auto width_of = [&](topology::LinkId l) { return width[l]; };
    util::DynamicBitset avoid(g.num_links());
    for (std::size_t l = 0; l < g.num_links(); ++l)
      if (rng.chance(0.1)) avoid.set(l);

    const auto s1 = search.shortest(g, src, dst, filter);
    const auto s2 = topology::shortest_path(g, src, dst, filter);
    ASSERT_EQ(s1.has_value(), s2.has_value());
    if (s1) {
      EXPECT_EQ(s1->nodes, s2->nodes);
      EXPECT_EQ(s1->links, s2->links);
    }

    const auto w1 = search.widest_shortest(g, src, dst, width_of, filter);
    const auto w2 = topology::widest_shortest_path(g, src, dst, width_of, filter);
    ASSERT_EQ(w1.has_value(), w2.has_value());
    if (w1) {
      EXPECT_EQ(w1->nodes, w2->nodes);
      EXPECT_EQ(w1->links, w2->links);
    }

    const auto m1 = search.min_overlap(g, src, dst, avoid, filter);
    const auto m2 = topology::min_overlap_path(g, src, dst, avoid, filter);
    ASSERT_EQ(m1.has_value(), m2.has_value());
    if (m1) {
      EXPECT_EQ(m1->nodes, m2->nodes);
      EXPECT_EQ(m1->links, m2->links);
    }
  }
}

TEST(PathSearch, SurvivesGraphSizeChanges) {
  // The same instance must adapt its buffers when queried on graphs of
  // different sizes (smaller after larger, so stale labels could linger).
  topology::PathSearch search;
  const Graph big = topology::generate_waxman({80, 0.4, 0.3, true}, 17);
  const Graph small = topology::generate_waxman({20, 0.5, 0.4, true}, 19);
  for (const Graph* g : {&big, &small, &big, &small}) {
    const std::size_t n = g->num_nodes();
    const auto mine = search.shortest(*g, 0, static_cast<topology::NodeId>(n - 1));
    const auto ref =
        topology::shortest_path(*g, 0, static_cast<topology::NodeId>(n - 1));
    ASSERT_EQ(mine.has_value(), ref.has_value());
    if (mine) EXPECT_EQ(mine->links, ref->links);
  }
}

// ---- flood_route scratch determinism ------------------------------------

TEST(FloodRoute, RepeatDeterministic) {
  // flood_route keeps thread_local scratch across calls; repeated identical
  // queries (and interleaved different ones) must return identical results.
  const Graph g = topology::generate_waxman({50, 0.4, 0.3, true}, 23);
  const std::vector<net::LinkState> links(g.num_links(), net::LinkState(10'000.0));
  util::Rng rng(29);
  for (int q = 0; q < 100; ++q) {
    const auto src = static_cast<topology::NodeId>(rng.index(50));
    auto dst = static_cast<topology::NodeId>(rng.index(49));
    if (dst >= src) ++dst;
    const auto a = net::flood_route(g, links, src, dst, 100.0, 16);
    const auto b = net::flood_route(g, links, src, dst, 100.0, 16);
    ASSERT_EQ(a.route.has_value(), b.route.has_value());
    if (a.route) {
      EXPECT_EQ(a.route->nodes, b.route->nodes);
      EXPECT_EQ(a.route->links, b.route->links);
    }
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.rounds, b.rounds);
  }
}

// ---- redistribute tie-break determinism ---------------------------------

/// Two nodes, one link of 250 Kb/s, two identical 100..500-by-50 channels:
/// after both are admitted the link holds 200 committed and one spare
/// 50-increment that exactly one channel can take.  Both channels have
/// equal utility and equal quanta, so the winner is decided purely by the
/// tie-break — which must be the lower id, deterministically.
net::Network tiny_contended_network(net::AdaptationScheme scheme) {
  Graph g(2);
  g.add_link(0, 1);
  net::NetworkConfig cfg;
  cfg.link_capacity_kbps = 250.0;
  cfg.require_backup = false;  // a 1-link graph has no disjoint backup
  cfg.adaptation = scheme;
  return net::Network(g, cfg);
}

void check_tie_break(net::AdaptationScheme scheme, const char* name) {
  SCOPED_TRACE(name);
  auto net = tiny_contended_network(scheme);
  const auto q = paper_qos();
  const auto first = net.request_connection(0, 1, q);
  const auto second = net.request_connection(0, 1, q);
  ASSERT_TRUE(first.accepted);
  ASSERT_TRUE(second.accepted);

  const auto& c1 = net.connection(first.id);
  const auto& c2 = net.connection(second.id);
  // Exactly one spare increment existed; equal keys => lower id wins.
  EXPECT_EQ(c1.extra_quanta + c2.extra_quanta, 1u);
  EXPECT_EQ(c1.extra_quanta, 1u);
  EXPECT_EQ(c2.extra_quanta, 0u);
  net.audit();

  // The outcome is a pure function of the request sequence: a second
  // identical network reproduces it exactly.
  auto net2 = tiny_contended_network(scheme);
  const auto r1 = net2.request_connection(0, 1, q);
  const auto r2 = net2.request_connection(0, 1, q);
  ASSERT_TRUE(r1.accepted && r2.accepted);
  EXPECT_EQ(net2.connection(r1.id).extra_quanta, c1.extra_quanta);
  EXPECT_EQ(net2.connection(r2.id).extra_quanta, c2.extra_quanta);

  // Termination hands the freed bandwidth to the survivor.
  net.terminate_connection(first.id);
  EXPECT_EQ(net.connection(second.id).extra_quanta, 3u);  // 150 spare / 50
  net.audit();
}

TEST(Redistribute, TieBreakIsLowerIdCoefficient) {
  check_tie_break(net::AdaptationScheme::kCoefficient, "kCoefficient");
}

TEST(Redistribute, TieBreakIsLowerIdMaxUtility) {
  check_tie_break(net::AdaptationScheme::kMaxUtility, "kMaxUtility");
}

// ---- Rng::split(stream_id) ----------------------------------------------

TEST(RngSplit, KeyedSplitDoesNotConsumeParentState) {
  util::Rng parent(42);
  util::Rng reference(42);
  const auto child = parent.split(7);
  (void)child;
  // The parent's stream is untouched: it replays a fresh twin exactly.
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(parent.uniform(), reference.uniform());
}

TEST(RngSplit, KeyedSplitIsDeterministicAndKeyed) {
  const util::Rng parent(42);
  util::Rng a = parent.split(3);
  util::Rng b = parent.split(3);
  util::Rng c = parent.split(4);
  EXPECT_EQ(a.seed(), b.seed());
  EXPECT_NE(a.seed(), c.seed());
  EXPECT_EQ(a.seed(), util::Rng::substream_seed(42, 3));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngSplit, SubstreamsDoNotOverlap) {
  // Distinct stream ids (including adjacent ones) give streams whose draw
  // sequences share no common values over a sizable window — the property
  // the sweep's per-(point, rep) seeding relies on.
  const std::uint64_t base = 42;
  std::vector<std::set<std::uint64_t>> draws;
  for (const std::uint64_t id : {0ull, 1ull, 2ull, 1ull << 20, (1ull << 20) | 1}) {
    util::Rng rng(util::Rng::substream_seed(base, id));
    std::set<std::uint64_t> mine;
    for (int i = 0; i < 1000; ++i)
      mine.insert(rng.uniform_int(0, std::numeric_limits<std::int64_t>::max()));
    draws.push_back(std::move(mine));
  }
  for (std::size_t i = 0; i < draws.size(); ++i)
    for (std::size_t j = i + 1; j < draws.size(); ++j) {
      std::vector<std::uint64_t> common;
      std::set_intersection(draws[i].begin(), draws[i].end(), draws[j].begin(),
                            draws[j].end(), std::back_inserter(common));
      EXPECT_TRUE(common.empty())
          << "streams " << i << " and " << j << " overlap";
    }
}

}  // namespace
}  // namespace eqos
