// Tier-1 tests for the event-driven recovery control plane:
//
//  * NetworkConfig construction-time validation names the offending field
//    for every recovery-protocol knob;
//  * node failures under every backup scheme (kSingle / kDualDisjoint /
//    kSegment) with lossy signaling and a second failure racing the
//    in-flight recovery: the loss-cause ledger, recovery/blackout sample
//    vectors, and plane counters are bit-identical at 1/2/8 engine shards;
//  * protocol physics: ideal signaling loses nothing, lossy signaling keeps
//    the retries == losses pairing, and a too-tight deadline charges drops
//    to the dedicated deadline_miss cause (never exceeding the victim
//    count);
//  * re-severance: a victim that recovers and is severed again is NOT
//    dropped by the first severance's still-queued deadline event (the
//    deadline tag carries the severance ordinal; stale ordinals no-op);
//  * checkpoints taken mid-recovery (processes created, detection still
//    pending) resume to byte-identical futures, and a v2 checkpoint is
//    refused with VersionMismatchError, not misparsed.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/scenario.hpp"
#include "net/network.hpp"
#include "sim/recovery.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "state/serial.hpp"
#include "topology/waxman.hpp"

namespace eqos {
namespace {

using topology::Graph;

const Graph& fuzz_graph() {
  static const Graph g = topology::generate_waxman({40, 0.4, 0.3, true}, 19);
  return g;
}

net::ElasticQosSpec paper_qos() {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  return q;
}

/// Protocol-enabled configuration with lossy signaling: detection jitter,
/// 30% per-hop message loss, fast timeouts so retries land inside the test
/// horizon.
net::NetworkConfig protocol_config(net::BackupScheme scheme) {
  net::NetworkConfig cfg;
  cfg.backup_scheme = scheme;
  cfg.second_failure_policy = net::SecondFailurePolicy::kReestablish;
  cfg.recovery_protocol = true;
  cfg.recovery_detect_min = 0.2;
  cfg.recovery_detect_max = 0.6;
  cfg.recovery_signal_loss_prob = 0.3;
  cfg.recovery_signal_timeout = 0.3;
  cfg.recovery_signal_backoff = 2.0;
  cfg.recovery_retry_cap = 3;
  cfg.recovery_deadline = 8.0;
  return cfg;
}

sim::WorkloadConfig base_workload(std::uint64_t seed) {
  sim::WorkloadConfig wl;
  wl.qos = paper_qos();
  wl.seed = seed;
  wl.arrival_rate = 0.01;
  wl.termination_rate = 0.01;
  return wl;
}

/// The busiest node: failing it severs the most primaries, so every scheme
/// reliably produces victims for the plane.
topology::NodeId busiest_node(const Graph& g) {
  topology::NodeId best = 0;
  for (topology::NodeId n = 1; n < g.num_nodes(); ++n)
    if (g.degree(n) > g.degree(best)) best = n;
  return best;
}

/// Second-busiest node (distinct from `first`): the mid-recovery second hit.
topology::NodeId next_busiest_node(const Graph& g, topology::NodeId first) {
  topology::NodeId best = first == 0 ? 1 : 0;
  for (topology::NodeId n = 0; n < g.num_nodes(); ++n) {
    if (n == first) continue;
    if (g.degree(n) > g.degree(best)) best = n;
  }
  return best;
}

/// Node failures with a racing second hit: the second node fails 0.5 after
/// the first — inside the detection + signaling window — so in-flight
/// activations race fresh severances (fallbacks, double hits).
fault::FaultScenario node_failure_scenario(const Graph& g) {
  const topology::NodeId a = busiest_node(g);
  const topology::NodeId b = next_busiest_node(g, a);
  fault::FaultScenario sc;
  sc.fail_node(50.0, a);
  sc.fail_node(50.5, b);
  sc.repair_node(120.0, a);
  sc.repair_node(120.5, b);
  sc.fail_node(200.0, a);
  sc.repair_node(260.0, a);
  return sc;
}

// ---- Construction-time config validation ---------------------------------

void expect_rejects(const net::NetworkConfig& cfg, const std::string& field) {
  try {
    net::Network net(fuzz_graph(), cfg);
    FAIL() << "expected rejection naming " << field;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message '" << e.what() << "' does not name " << field;
  }
}

TEST(RecoveryConfig, RejectsBadKnobsNamingTheField) {
  net::NetworkConfig cfg;
  cfg.recovery_detect_min = -0.1;
  expect_rejects(cfg, "recovery_detect_min");

  cfg = {};
  cfg.recovery_detect_min = 0.5;
  cfg.recovery_detect_max = 0.1;  // max < min
  expect_rejects(cfg, "recovery_detect_max");

  cfg = {};
  cfg.recovery_signal_loss_prob = 1.5;
  expect_rejects(cfg, "recovery_signal_loss_prob");

  cfg = {};
  cfg.recovery_signal_timeout = 0.0;
  expect_rejects(cfg, "recovery_signal_timeout");

  cfg = {};
  cfg.recovery_signal_backoff = 0.5;  // would shrink the timeout
  expect_rejects(cfg, "recovery_signal_backoff");

  cfg = {};
  cfg.recovery_deadline = 0.0;
  expect_rejects(cfg, "recovery_deadline");
}

TEST(RecoveryConfig, PlaneExistsOnlyWhenProtocolEnabled) {
  net::NetworkConfig off;
  net::Network net_off(fuzz_graph(), off);
  sim::Simulator sim_off(net_off, base_workload(3));
  EXPECT_EQ(sim_off.recovery(), nullptr);

  net::Network net_on(fuzz_graph(), protocol_config(net::BackupScheme::kSingle));
  sim::Simulator sim_on(net_on, base_workload(3));
  ASSERT_NE(sim_on.recovery(), nullptr);
  EXPECT_EQ(sim_on.recovery()->in_flight(), 0u);
}

// ---- Node failures per scheme, shard-invariant loss accounting -----------

struct RunOutcome {
  net::NetworkStats net;
  sim::RecoveryPlaneStats plane;
  std::string checkpoint;
};

RunOutcome run_node_failures(net::BackupScheme scheme, std::uint32_t shards) {
  const Graph& g = fuzz_graph();
  const net::NetworkConfig ncfg = protocol_config(scheme);
  net::Network network(g, ncfg);
  sim::Simulator sim(network, base_workload(91),
                     sim::make_shard_plan(g, shards, ncfg, 77));
  sim.populate(120);
  sim.load_scenario(node_failure_scenario(g));
  sim.run_until(400.0);

  RunOutcome out;
  out.net = network.stats();
  out.plane = sim.recovery()->stats();
  std::ostringstream ckpt;
  sim.save_checkpoint(ckpt);
  out.checkpoint = ckpt.str();
  network.audit();
  return out;
}

void expect_same_accounting(const RunOutcome& a, const RunOutcome& b) {
  // Loss causes: the per-cause ledger is the contract the obs exporters and
  // the validator read, so every cell must match, not just the total.
  EXPECT_EQ(a.net.drop_causes.primary_hit, b.net.drop_causes.primary_hit);
  EXPECT_EQ(a.net.drop_causes.backup_hit_while_active,
            b.net.drop_causes.backup_hit_while_active);
  EXPECT_EQ(a.net.drop_causes.double_hit, b.net.drop_causes.double_hit);
  EXPECT_EQ(a.net.drop_causes.deadline_miss, b.net.drop_causes.deadline_miss);
  EXPECT_EQ(a.net.unprotected_victims, b.net.unprotected_victims);
  // Bitwise sample vectors (order included): these feed the TTR/blackout
  // percentiles the bench reports.
  EXPECT_EQ(a.net.recovery_times, b.net.recovery_times);
  EXPECT_EQ(a.net.blackout_times, b.net.blackout_times);
  // The plane's own counters.
  EXPECT_EQ(a.plane.severed, b.plane.severed);
  EXPECT_EQ(a.plane.detections, b.plane.detections);
  EXPECT_EQ(a.plane.signals_sent, b.plane.signals_sent);
  EXPECT_EQ(a.plane.signals_lost, b.plane.signals_lost);
  EXPECT_EQ(a.plane.retries, b.plane.retries);
  EXPECT_EQ(a.plane.fallbacks, b.plane.fallbacks);
  EXPECT_EQ(a.plane.deadline_misses, b.plane.deadline_misses);
  EXPECT_EQ(a.plane.recovered, b.plane.recovered);
  EXPECT_EQ(a.plane.dropped, b.plane.dropped);
  EXPECT_EQ(a.checkpoint, b.checkpoint);
}

class NodeFailureSchemes : public ::testing::TestWithParam<net::BackupScheme> {};

TEST_P(NodeFailureSchemes, LossAccountingBitIdenticalAcrossShards) {
  const RunOutcome r1 = run_node_failures(GetParam(), 1);
  const RunOutcome r2 = run_node_failures(GetParam(), 2);
  const RunOutcome r8 = run_node_failures(GetParam(), 8);
  // The scenario must actually exercise the plane: victims severed, lossy
  // signaling observed, and some recoveries completed.
  EXPECT_GT(r1.plane.severed, 0u);
  EXPECT_GT(r1.plane.signals_sent, 0u);
  EXPECT_GT(r1.plane.recovered + r1.plane.dropped, 0u);
  EXPECT_EQ(r1.plane.retries, r1.plane.signals_lost);
  EXPECT_LE(r1.plane.deadline_misses, r1.plane.severed);
  expect_same_accounting(r1, r2);
  expect_same_accounting(r1, r8);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, NodeFailureSchemes,
                         ::testing::Values(net::BackupScheme::kSingle,
                                           net::BackupScheme::kDualDisjoint,
                                           net::BackupScheme::kSegment),
                         [](const auto& info) {
                           switch (info.param) {
                             case net::BackupScheme::kSingle: return "Single";
                             case net::BackupScheme::kDualDisjoint: return "DualDisjoint";
                             default: return "Segment";
                           }
                         });

// ---- Protocol physics ----------------------------------------------------

TEST(RecoverySignaling, IdealSignalingLosesNothing) {
  const Graph& g = fuzz_graph();
  net::NetworkConfig ncfg = protocol_config(net::BackupScheme::kSingle);
  ncfg.recovery_signal_loss_prob = 0.0;
  net::Network network(g, ncfg);
  sim::Simulator sim(network, base_workload(91));
  sim.populate(120);
  // A single node failure, no racing second hit: channels claimed at
  // begin_attempt stay alive for the whole signaling exchange, so with
  // p_loss = 0 there is no loss source left (a failed link on the patch —
  // the always-lost case — needs a mid-flight second failure).
  fault::FaultScenario sc;
  sc.fail_node(50.0, busiest_node(g));
  sc.repair_node(120.0, busiest_node(g));
  sim.load_scenario(sc);
  sim.run_until(400.0);

  const sim::RecoveryPlaneStats& s = sim.recovery()->stats();
  EXPECT_GT(s.severed, 0u);
  EXPECT_GT(s.signals_sent, 0u);
  EXPECT_EQ(s.signals_lost, 0u);
  EXPECT_EQ(s.retries, 0u);
}

TEST(RecoverySignaling, LossyRetriesPairWithLosses) {
  const Graph& g = fuzz_graph();
  net::NetworkConfig ncfg = protocol_config(net::BackupScheme::kSingle);
  ncfg.recovery_signal_loss_prob = 0.5;
  net::Network network(g, ncfg);
  sim::Simulator sim(network, base_workload(91));
  sim.populate(120);
  sim.load_scenario(node_failure_scenario(g));
  sim.run_until(400.0);

  const sim::RecoveryPlaneStats& s = sim.recovery()->stats();
  EXPECT_GT(s.signals_lost, 0u);
  // Every observed loss is answered by exactly one timeout-scheduled retry;
  // the validator's `retries >= losses` invariant holds with equality.
  EXPECT_EQ(s.retries, s.signals_lost);
  EXPECT_GT(s.signals_sent, s.signals_lost);
}

TEST(RecoveryDeadline, TightDeadlineChargesDedicatedCause) {
  const Graph& g = fuzz_graph();
  net::NetworkConfig ncfg = protocol_config(net::BackupScheme::kSingle);
  // The deadline expires before the earliest possible detection: every
  // severed victim must miss it and be charged to deadline_miss.
  ncfg.recovery_deadline = 0.1;
  ncfg.recovery_detect_min = 0.2;
  ncfg.recovery_detect_max = 0.6;
  net::Network network(g, ncfg);
  sim::Simulator sim(network, base_workload(91));
  sim.populate(120);
  sim.load_scenario(node_failure_scenario(g));
  sim.run_until(400.0);

  const sim::RecoveryPlaneStats& s = sim.recovery()->stats();
  const net::NetworkStats& ns = network.stats();
  EXPECT_GT(s.severed, 0u);
  EXPECT_EQ(s.deadline_misses, s.severed);  // nobody can beat 0.1
  EXPECT_EQ(s.recovered, 0u);
  EXPECT_EQ(ns.drop_causes.deadline_miss, s.deadline_misses);
  EXPECT_LE(s.deadline_misses, static_cast<std::uint64_t>(ns.unprotected_victims));
}

TEST(RecoveryDeadline, PerClassDeadlineOverridesNetworkDefault) {
  const Graph& g = fuzz_graph();
  net::NetworkConfig ncfg = protocol_config(net::BackupScheme::kSingle);
  ncfg.recovery_deadline = 0.1;  // network default: impossible
  net::Network network(g, ncfg);
  sim::WorkloadConfig wl = base_workload(91);
  wl.qos.recovery_deadline = 30.0;  // per-class override: generous
  net::Network network_gen(g, ncfg);
  sim::Simulator sim(network_gen, wl);
  sim.populate(120);
  sim.load_scenario(node_failure_scenario(g));
  sim.run_until(400.0);

  const sim::RecoveryPlaneStats& s = sim.recovery()->stats();
  EXPECT_GT(s.severed, 0u);
  // The generous per-class deadline rescues what the network default would
  // have condemned wholesale.
  EXPECT_GT(s.recovered, 0u);
  EXPECT_LT(s.deadline_misses, s.severed);
}

// A recovered victim severed a second time must not be dropped by the
// FIRST severance's still-queued deadline event: the deadline tag carries
// the severance ordinal, and a stale ordinal no-ops.  Driven directly (a
// manual clock and event pump standing in for the Simulator) on a 6-node
// graph where the routes are forced:
//
//     0 --L0-- 1 --L1-- 5        primary  0-1-5   (2 hops)
//     0 --L2-- 2 --L3-- 3 --L4-- 5   backup 0-2-3-5 (3 hops)
//
// t=0.0  fail L1: severed #0, deadline armed at t=2.0
// t=0.5  recovery #0 commits onto 0-2-3-5 (detect 0.2 + 3 hops x 0.1)
// t=0.7  repair L1 (a covering channel / rescue route exists again)
// t=1.9  fail L3: severed #1, its real deadline is t=3.9
// t=2.0  severance #0's deadline fires MID-RECOVERY of severance #1 —
//        before the fix it matched the successor process and dropped it
//        1.9 seconds early with a bogus deadline_miss
TEST(RecoveryDeadline, StaleDeadlineDoesNotDropReseveredConnection) {
  Graph g(6);
  const topology::LinkId l0 = g.add_link(0, 1);
  const topology::LinkId l1 = g.add_link(1, 5);
  const topology::LinkId l2 = g.add_link(0, 2);
  const topology::LinkId l3 = g.add_link(2, 3);
  const topology::LinkId l4 = g.add_link(3, 5);
  (void)l0; (void)l2; (void)l4;

  net::NetworkConfig cfg = protocol_config(net::BackupScheme::kSingle);
  cfg.recovery_detect_min = 0.2;
  cfg.recovery_detect_max = 0.2;  // degenerate: detection exactly +0.2
  cfg.recovery_signal_loss_prob = 0.0;
  cfg.recovery_xc_time_per_hop = 0.1;
  cfg.recovery_setup_time_per_hop = 0.1;
  cfg.recovery_deadline = 2.0;
  net::Network network(g, cfg);

  const net::ArrivalOutcome arrival = network.request_connection(0, 5, paper_qos());
  ASSERT_TRUE(arrival.accepted);
  const net::ConnectionId id = arrival.id;

  double now = 0.0;
  std::multimap<double, sim::EventTag> queue;  // equal keys keep FIFO order
  sim::RecoveryPlane plane(
      network, /*seed=*/7, [&] { return now; },
      [&](double t, const sim::EventTag& tag) { queue.emplace(t, tag); });
  const auto pump_until = [&](double horizon) {
    while (!queue.empty() && queue.begin()->first <= horizon) {
      const auto it = queue.begin();
      now = it->first;
      const sim::EventTag tag = it->second;
      queue.erase(it);
      plane.dispatch(tag);
    }
    now = horizon;
  };

  // Severance #0: the primary's second hop dies.
  const net::FailureReport first = network.fail_link(l1);
  ASSERT_EQ(first.severed.size(), 1u);
  ASSERT_EQ(first.severed[0].id, id);
  plane.on_failure(first);
  pump_until(0.7);  // detect 0.2, three hop signals -> committed at 0.5
  ASSERT_EQ(plane.stats().recovered, 1u);
  ASSERT_FALSE(network.is_recovering(id));
  ASSERT_TRUE(network.is_active(id));

  network.repair_link(l1);

  // Severance #1 at t=1.9 hits the recovered path 0-2-3-5; the stale
  // deadline from severance #0 (t=2.0) lands before detection (t=2.1).
  now = 1.9;
  const net::FailureReport second = network.fail_link(l3);
  ASSERT_EQ(second.severed.size(), 1u);
  ASSERT_EQ(second.severed[0].id, id);
  plane.on_failure(second);
  EXPECT_EQ(plane.in_flight(), 1u);
  pump_until(2.05);  // past the stale deadline, before detection
  EXPECT_TRUE(network.is_recovering(id)) << "stale deadline dropped the "
                                            "re-severed connection";
  EXPECT_EQ(plane.stats().deadline_misses, 0u);

  pump_until(10.0);  // drain: recovery #1 and the real (no-op) deadline
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(plane.stats().severed, 2u);
  EXPECT_EQ(plane.stats().recovered, 2u);
  EXPECT_EQ(plane.stats().dropped, 0u);
  EXPECT_EQ(plane.stats().deadline_misses, 0u);
  EXPECT_EQ(network.stats().drop_causes.deadline_miss, 0u);
  EXPECT_TRUE(network.is_active(id));
  EXPECT_EQ(plane.in_flight(), 0u);
  network.audit();
}

// ---- Mid-recovery checkpoint / resume ------------------------------------

TEST(RecoveryCheckpoint, MidRecoveryResumeBitIdentical) {
  const Graph& g = fuzz_graph();
  const net::NetworkConfig ncfg = protocol_config(net::BackupScheme::kDualDisjoint);
  const sim::WorkloadConfig wl = base_workload(91);
  const fault::FaultScenario scenario = node_failure_scenario(g);

  net::Network net_a(g, ncfg);
  sim::Simulator sim_a(net_a, wl);
  sim_a.populate(120);
  sim_a.load_scenario(scenario);
  // Stop between the severance (t = 50) and the earliest detection
  // (t >= 50.2): processes exist, detect/deadline events are pending, and
  // nothing has been signaled yet — the checkpoint captures recoveries
  // genuinely in flight.
  sim_a.run_until(50.1);
  ASSERT_GT(sim_a.recovery()->in_flight(), 0u);

  std::stringstream mid;
  sim_a.save_checkpoint(mid);
  sim_a.run_until(400.0);  // uninterrupted run continues...

  net::Network net_b(g, ncfg);
  sim::Simulator sim_b(net_b, wl);
  sim_b.load_scenario(scenario);
  sim_b.load_checkpoint(mid);
  EXPECT_GT(sim_b.recovery()->in_flight(), 0u);  // processes restored live
  sim_b.run_until(400.0);  // ...and the resumed run must match byte-for-byte

  std::ostringstream end_a;
  std::ostringstream end_b;
  sim_a.save_checkpoint(end_a);
  sim_b.save_checkpoint(end_b);
  EXPECT_EQ(end_a.str(), end_b.str());
  EXPECT_EQ(sim_a.recovery()->stats().recovered, sim_b.recovery()->stats().recovered);
  EXPECT_EQ(sim_a.recovery()->stats().dropped, sim_b.recovery()->stats().dropped);
  net_b.audit();
}

TEST(RecoveryCheckpoint, RejectsV2Checkpoints) {
  const Graph& g = fuzz_graph();
  const net::NetworkConfig ncfg = protocol_config(net::BackupScheme::kSingle);
  net::Network net_a(g, ncfg);
  sim::Simulator sim_a(net_a, base_workload(7));
  sim_a.populate(50);
  sim_a.run_events(100);
  std::ostringstream out;
  sim_a.save_checkpoint(out);

  // v2 predates the recovery section and the blackout samples; the version
  // u32 follows the 4-byte magic.
  std::string bytes = out.str();
  ASSERT_GE(state::kFormatVersion, 3u);
  bytes[4] = static_cast<char>(0x02);
  std::istringstream in(bytes);
  net::Network net_b(g, ncfg);
  sim::Simulator sim_b(net_b, base_workload(7));
  EXPECT_THROW(sim_b.load_checkpoint(in), state::VersionMismatchError);
}

TEST(RecoveryCheckpoint, RejectsProtocolPresenceMismatch) {
  // A checkpoint written with the plane enabled must not load into a
  // protocol-off simulator (and the config fingerprint catches it).
  const Graph& g = fuzz_graph();
  net::Network net_a(g, protocol_config(net::BackupScheme::kSingle));
  sim::Simulator sim_a(net_a, base_workload(7));
  sim_a.populate(50);
  sim_a.run_events(100);
  std::ostringstream out;
  sim_a.save_checkpoint(out);

  std::istringstream in(out.str());
  net::NetworkConfig off;
  net::Network net_b(g, off);
  sim::Simulator sim_b(net_b, base_workload(7));
  EXPECT_THROW(sim_b.load_checkpoint(in), state::CorruptError);
}

}  // namespace
}  // namespace eqos
