// Unit tests for revenue/utility accounting and the routing-policy knob.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "net/network.hpp"
#include "net/revenue.hpp"
#include "topology/waxman.hpp"

namespace eqos::net {
namespace {

ElasticQosSpec paper_qos(double utility = 1.0) {
  ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  q.utility = utility;
  return q;
}

TEST(Revenue, ValidatesModel) {
  RevenueModel m;
  m.base_rate_per_kbps = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Revenue, EmptyNetworkEarnsNothing) {
  topology::Graph g(2);
  g.add_link(0, 1);
  Network net(g, NetworkConfig{});
  const auto r = assess_revenue(net, RevenueModel{});
  EXPECT_EQ(r.connections, 0u);
  EXPECT_DOUBLE_EQ(r.total, 0.0);
}

TEST(Revenue, SingleConnectionTariff) {
  topology::Graph g(2);
  g.add_link(0, 1);
  NetworkConfig cfg;
  cfg.require_backup = false;
  cfg.link_capacity_kbps = 400.0;  // bmin 100 + 6 quanta... spare 300 -> 6
  Network net(g, cfg);
  const auto a = net.request_connection(0, 1, paper_qos(2.0));
  ASSERT_TRUE(a.accepted);
  ASSERT_EQ(net.connection(a.id).extra_quanta, 6u);

  RevenueModel tariff;
  tariff.base_rate_per_kbps = 2.0;
  tariff.elastic_rate_per_kbps = 0.5;
  const auto r = assess_revenue(net, tariff);
  EXPECT_EQ(r.connections, 1u);
  EXPECT_DOUBLE_EQ(r.base, 100.0 * 2.0);
  EXPECT_DOUBLE_EQ(r.elastic, 300.0 * 0.5);
  EXPECT_DOUBLE_EQ(r.total, 350.0);
  EXPECT_DOUBLE_EQ(r.client_utility, 2.0 * 300.0);
}

TEST(Revenue, ElasticEarnsMoreThanRigidMinimum) {
  // The paper's economic claim, end to end: at moderate load, an elastic
  // network yields more revenue than one running everyone at the minimum.
  const auto g = topology::generate_waxman({60, 0.35, 0.25, true}, 5);
  const RevenueModel tariff;

  Network elastic(g, NetworkConfig{});
  Network rigid(g, NetworkConfig{});
  util::Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const auto src = static_cast<topology::NodeId>(rng.index(60));
    auto dst = static_cast<topology::NodeId>(rng.index(59));
    if (dst >= src) ++dst;
    (void)elastic.request_connection(src, dst, paper_qos());
    ElasticQosSpec min_only = paper_qos();
    min_only.bmax_kbps = min_only.bmin_kbps;
    (void)rigid.request_connection(src, dst, min_only);
  }
  const auto re = assess_revenue(elastic, tariff);
  const auto rr = assess_revenue(rigid, tariff);
  EXPECT_EQ(re.connections, rr.connections);  // same admissions
  EXPECT_GT(re.total, rr.total);              // but elastic extras pay
  EXPECT_GT(re.client_utility, 0.0);
  EXPECT_DOUBLE_EQ(rr.client_utility, 0.0);
}

}  // namespace
}  // namespace eqos::net

namespace eqos::core {
namespace {

TEST(AnalyticRevenue, MatchesSteadyStateExpectation) {
  AnalysisResult analysis;
  analysis.parameters.bmin_kbps = 100.0;
  analysis.parameters.bmax_kbps = 300.0;
  analysis.parameters.increment_kbps = 100.0;  // states 0,1,2
  analysis.steady_state = {0.5, 0.25, 0.25};
  net::RevenueModel tariff;
  tariff.base_rate_per_kbps = 1.0;
  tariff.elastic_rate_per_kbps = 2.0;
  // E[extra] = 0.25*100 + 0.25*200 = 75 -> revenue = 100 + 150.
  EXPECT_DOUBLE_EQ(expected_revenue_per_connection(analysis, tariff), 250.0);
}

}  // namespace
}  // namespace eqos::core

namespace eqos::net {
namespace {

TEST(RoutePolicy, ShortestIgnoresWidthTieBreak) {
  // Two equal-hop routes, one with committed load: widest-shortest avoids
  // the congested route, plain shortest takes whatever BFS reaches first.
  // Tested on the Router directly with hand-set ledgers so backup
  // reservations cannot equalize the headrooms.
  topology::Graph g(4);
  g.add_link(0, 1);  // route A, link 0
  g.add_link(1, 3);  // route A, link 1
  g.add_link(0, 2);  // route B, link 2
  g.add_link(2, 3);  // route B, link 3

  std::vector<LinkState> links(4, LinkState(10'000.0));
  links[0].commit_min(500.0);  // congest route A's first link
  BackupManager backups(4, true);

  const Router widest(g, links, backups, RoutePolicy::kWidestShortest);
  const auto w = widest.find_primary(0, 3, 100.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->nodes[1], 2u);  // avoids the congested link 0

  const Router shortest(g, links, backups, RoutePolicy::kShortest);
  const auto s = shortest.find_primary(0, 3, 100.0);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->nodes[1], 1u);  // BFS order: rides link 0 regardless
}

TEST(RoutePolicy, WidestShortestSpreadsLoadBetter) {
  // On the paper topology, widest-shortest should deliver at least as much
  // average bandwidth as plain shortest at equal load.
  const auto g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  auto run = [&](RoutePolicy policy) {
    NetworkConfig cfg;
    cfg.route_policy = policy;
    Network net(g, cfg);
    util::Rng rng(23);
    for (int i = 0; i < 3000; ++i) {
      const auto src = static_cast<topology::NodeId>(rng.index(100));
      auto dst = static_cast<topology::NodeId>(rng.index(99));
      if (dst >= src) ++dst;
      (void)net.request_connection(src, dst, paper_qos());
    }
    return net.mean_reserved_kbps();
  };
  EXPECT_GE(run(RoutePolicy::kWidestShortest) + 10.0, run(RoutePolicy::kShortest));
}

}  // namespace
}  // namespace eqos::net
