// End-to-end crash-tolerance test: kill a persisting bench mid-sweep,
// corrupt one of the surviving cell files, resume with --resume, and check
// the resumed run's stdout and BENCH_sweep.json are byte-identical to a
// straight-through run — at 1 worker thread and at 8.
//
// The bench under test is bench_fig2 (path supplied by ctest through the
// EQOS_BENCH_FIG2 environment variable); every run sets EQOS_FIXED_TIMING=1
// so wall-clock fields print as zeros and byte comparison is meaningful.
// The same binary also serves as the CLI-hardening fixture: unknown flags
// and malformed values must exit 2 with usage on stderr, --help must exit 0.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

namespace fs = std::filesystem;

const char* bench_path() { return std::getenv("EQOS_BENCH_FIG2"); }

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Exit status of a finished child: WEXITSTATUS for a normal exit,
/// 128 + signal for a killed one (mirroring the shell convention).
int reap(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

/// Spawns the bench with `args`, stdout/stderr redirected to files, and
/// EQOS_FIXED_TIMING=1 in its environment.  Returns the child pid.
pid_t spawn_bench(const std::vector<std::string>& args, const fs::path& out,
                  const fs::path& err) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Child: redirect, pin the deterministic-timing env, exec.
  if (std::freopen(out.c_str(), "wb", stdout) == nullptr) _exit(127);
  if (std::freopen(err.c_str(), "wb", stderr) == nullptr) _exit(127);
  setenv("EQOS_FIXED_TIMING", "1", 1);
  unsetenv("EQOS_FAST");  // a fixed shape regardless of the outer harness
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(bench_path()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  execv(bench_path(), argv.data());
  _exit(127);
}

int run_bench(const std::vector<std::string>& args, const fs::path& out,
              const fs::path& err) {
  return reap(spawn_bench(args, out, err));
}

std::vector<fs::path> cell_files(const fs::path& dir) {
  std::vector<fs::path> cells;
  if (!fs::exists(dir)) return cells;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".ckpt") cells.push_back(entry.path());
  return cells;
}

/// The shared sweep shape: smoke-sized points, several reps so the sweep
/// has enough cells to be killed in the middle of.
std::vector<std::string> sweep_args(std::size_t threads) {
  return {"--smoke", "--reps", "8", "--threads", std::to_string(threads)};
}

void append(std::vector<std::string>& args, std::initializer_list<std::string> more) {
  args.insert(args.end(), more);
}

void crash_resume_roundtrip(std::size_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  const fs::path work =
      fresh_dir("eqos_test_crash_resume_t" + std::to_string(threads));
  const fs::path ckpt = work / "ckpt";

  // 1. The reference: one uninterrupted run, no checkpointing.
  auto ref_args = sweep_args(threads);
  append(ref_args, {"--json", (work / "ref.json").string()});
  ASSERT_EQ(run_bench(ref_args, work / "ref.out", work / "ref.err"), 0);

  // 2. The victim: same sweep, persisting cells; SIGKILL it as soon as the
  //    first completed cell lands on disk.
  auto crash_args = sweep_args(threads);
  append(crash_args, {"--checkpoint-dir", ckpt.string(), "--json",
                      (work / "crash.json").string()});
  const pid_t victim =
      spawn_bench(crash_args, work / "crash.out", work / "crash.err");
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (cell_files(ckpt).empty() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  kill(victim, SIGKILL);
  const int victim_status = reap(victim);
  auto survivors = cell_files(ckpt);
  ASSERT_FALSE(survivors.empty()) << "no cell was checkpointed before the kill";
  // The interesting case is a mid-sweep kill; if the machine was so slow the
  // sweep finished first, the test still verifies a full-load resume.
  const bool killed_mid_sweep = victim_status == 128 + SIGKILL;

  // 3. Corrupt one survivor: resume must quarantine and recompute it.
  {
    std::fstream f(survivors.front(),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-2, std::ios::end);
    const char byte = 0x55;
    f.write(&byte, 1);
  }

  // 4. Resume.  Completed cells load, the corrupt one is quarantined and
  //    recomputed, the rest compute fresh — and every byte of output matches
  //    the uninterrupted run.
  auto resume_args = sweep_args(threads);
  append(resume_args, {"--checkpoint-dir", ckpt.string(), "--resume", "--json",
                       (work / "resume.json").string()});
  ASSERT_EQ(run_bench(resume_args, work / "resume.out", work / "resume.err"), 0);

  EXPECT_EQ(slurp(work / "resume.out"), slurp(work / "ref.out"))
      << "resumed stdout differs from the straight-through run";
  EXPECT_EQ(slurp(work / "resume.json"), slurp(work / "ref.json"))
      << "resumed BENCH_sweep.json differs from the straight-through run";
  // The quarantine left an audit trail next to the recomputed cell.
  EXPECT_TRUE(fs::exists(survivors.front().string() + ".corrupt"));
  if (killed_mid_sweep) {
    // Resume accounting goes to stderr (stdout must stay byte-clean).
    EXPECT_NE(slurp(work / "resume.err").find("# checkpoint:"), std::string::npos);
  }
}

TEST(CrashResume, SerialSweepResumesByteIdentical) {
  if (bench_path() == nullptr) GTEST_SKIP() << "EQOS_BENCH_FIG2 not set";
  crash_resume_roundtrip(1);
}

TEST(CrashResume, ParallelSweepResumesByteIdentical) {
  if (bench_path() == nullptr) GTEST_SKIP() << "EQOS_BENCH_FIG2 not set";
  crash_resume_roundtrip(8);
}

// ---- CLI hardening -------------------------------------------------------

struct CliRun {
  int status = -1;
  std::string out;
  std::string err;
};

CliRun run_cli(const std::vector<std::string>& args) {
  const fs::path work = fresh_dir("eqos_test_cli_hardening");
  CliRun r;
  r.status = run_bench(args, work / "out", work / "err");
  r.out = slurp(work / "out");
  r.err = slurp(work / "err");
  return r;
}

TEST(BenchCli, UnknownFlagExitsTwoWithUsage) {
  if (bench_path() == nullptr) GTEST_SKIP() << "EQOS_BENCH_FIG2 not set";
  const auto r = run_cli({"--bogus-flag"});
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.err.find("unknown flag"), std::string::npos);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(BenchCli, MalformedValuesExitTwo) {
  if (bench_path() == nullptr) GTEST_SKIP() << "EQOS_BENCH_FIG2 not set";
  EXPECT_EQ(run_cli({"--threads", "abc"}).status, 2);
  EXPECT_EQ(run_cli({"--reps", "0"}).status, 2);
  EXPECT_EQ(run_cli({"--reps"}).status, 2);  // missing value
  EXPECT_EQ(run_cli({"--backoff", "-1"}).status, 2);
  EXPECT_EQ(run_cli({"--checkpoint-every", "12x"}).status, 2);
}

TEST(BenchCli, ResumeRequiresCheckpointDir) {
  if (bench_path() == nullptr) GTEST_SKIP() << "EQOS_BENCH_FIG2 not set";
  const auto r = run_cli({"--resume"});
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.err.find("--resume requires --checkpoint-dir"), std::string::npos);
}

TEST(BenchCli, HelpExitsZero) {
  if (bench_path() == nullptr) GTEST_SKIP() << "EQOS_BENCH_FIG2 not set";
  const auto r = run_cli({"--help"});
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
  EXPECT_NE(r.out.find("--checkpoint-dir"), std::string::npos);
}

}  // namespace
