// Unit tests for bounded-flooding route discovery, including the
// equivalence with the centralized widest-shortest emulation.
#include <gtest/gtest.h>

#include "net/flooding.hpp"
#include "net/routing.hpp"
#include "topology/metrics.hpp"
#include "topology/paths.hpp"
#include "topology/waxman.hpp"
#include "util/rng.hpp"

namespace eqos::net {
namespace {

std::vector<LinkState> fresh_links(const topology::Graph& g, double capacity) {
  return std::vector<LinkState>(g.num_links(), LinkState(capacity));
}

TEST(Flooding, FindsDirectRoute) {
  topology::Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  const auto links = fresh_links(g, 1000.0);
  const auto r = flood_route(g, links, 0, 2, 100.0, 5);
  ASSERT_TRUE(r.route.has_value());
  EXPECT_EQ(r.route->hops(), 2u);
  EXPECT_EQ(r.rounds, 2u);
  EXPECT_GT(r.messages, 0u);
}

TEST(Flooding, HopBoundDiscardsLongRoutes) {
  topology::Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  const auto links = fresh_links(g, 1000.0);
  EXPECT_FALSE(flood_route(g, links, 0, 3, 100.0, 2).route.has_value());
  EXPECT_TRUE(flood_route(g, links, 0, 3, 100.0, 3).route.has_value());
}

TEST(Flooding, DiscardsInadmissibleLinks) {
  // Route A (1 hop) full; route B (2 hops) open: the flood must detour.
  topology::Graph g(3);
  const topology::LinkId direct = g.add_link(0, 2);
  g.add_link(0, 1);
  g.add_link(1, 2);
  auto links = fresh_links(g, 1000.0);
  links[direct].commit_min(950.0);  // cannot admit another 100
  const auto r = flood_route(g, links, 0, 2, 100.0, 5);
  ASSERT_TRUE(r.route.has_value());
  EXPECT_EQ(r.route->hops(), 2u);
}

TEST(Flooding, PrefersBetterAllowanceAmongEqualHops) {
  // Two 2-hop routes; one is loaded.  The confirmation must take the wider.
  topology::Graph g(4);
  const topology::LinkId a1 = g.add_link(0, 1);
  g.add_link(1, 3);
  g.add_link(0, 2);
  g.add_link(2, 3);
  auto links = fresh_links(g, 1000.0);
  links[a1].commit_min(600.0);
  const auto r = flood_route(g, links, 0, 3, 100.0, 4);
  ASSERT_TRUE(r.route.has_value());
  EXPECT_EQ(r.route->nodes[1], 2u);  // the unloaded route
}

TEST(Flooding, FailedLinksAreNotForwardedOver) {
  topology::Graph g(3);
  const topology::LinkId l0 = g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(0, 2);
  auto links = fresh_links(g, 1000.0);
  links[l0].set_failed(true);
  const auto r = flood_route(g, links, 0, 1, 100.0, 4);
  ASSERT_TRUE(r.route.has_value());
  EXPECT_EQ(r.route->hops(), 2u);  // around, via node 2
}

TEST(Flooding, MessageOverheadGrowsWithBound) {
  const auto g = topology::generate_waxman({60, 0.35, 0.25, true}, 9);
  const auto links = fresh_links(g, 10'000.0);
  // Choose endpoints more than one hop apart.
  const auto d = topology::hop_distances(g, 0);
  topology::NodeId far = 0;
  for (topology::NodeId i = 0; i < g.num_nodes(); ++i)
    if (d[i] != topology::kUnreachableDistance && d[i] >= 3) far = i;
  ASSERT_NE(far, 0u);
  const auto tight = flood_route(g, links, 0, far, 100.0, d[far]);
  const auto loose = flood_route(g, links, 0, far, 100.0, d[far] + 3);
  ASSERT_TRUE(tight.route.has_value());
  ASSERT_TRUE(loose.route.has_value());
  EXPECT_GE(loose.messages, tight.messages);
  // Both confirm a fewest-hop route.
  EXPECT_EQ(tight.route->hops(), d[far]);
  EXPECT_EQ(loose.route->hops(), d[far]);
}

TEST(Flooding, InputValidation) {
  topology::Graph g(2);
  g.add_link(0, 1);
  const auto links = fresh_links(g, 1000.0);
  EXPECT_THROW((void)flood_route(g, links, 0, 0, 100.0, 3), std::invalid_argument);
  EXPECT_THROW((void)flood_route(g, links, 0, 9, 100.0, 3), std::invalid_argument);
  const std::vector<LinkState> wrong(3, LinkState(1.0));
  EXPECT_THROW((void)flood_route(g, wrong, 0, 1, 100.0, 3), std::invalid_argument);
}

// The paper-fidelity equivalence: over random graphs, random loads, and
// random endpoint pairs, the flood confirms a route with exactly the same
// (hops, bottleneck allowance) as the centralized widest-shortest search.
class FloodEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FloodEquivalenceSweep, MatchesCentralizedWidestShortest) {
  const auto g = topology::generate_waxman({50, 0.35, 0.25, true}, GetParam());
  auto links = fresh_links(g, 2'000.0);
  // Random pre-load.
  util::Rng rng(GetParam() * 13 + 1);
  for (topology::LinkId l = 0; l < g.num_links(); ++l)
    links[l].commit_min(100.0 * static_cast<double>(rng.index(19)));

  const auto bottleneck = [&](const topology::Path& p) {
    double b = std::numeric_limits<double>::infinity();
    for (topology::LinkId l : p.links) b = std::min(b, links[l].admission_headroom());
    return b;
  };
  const topology::LinkFilter admissible = [&](topology::LinkId l) {
    return links[l].admits_primary(100.0);
  };
  const topology::LinkWidth width = [&](topology::LinkId l) {
    return links[l].admission_headroom();
  };

  for (int trial = 0; trial < 25; ++trial) {
    const auto src = static_cast<topology::NodeId>(rng.index(50));
    auto dst = static_cast<topology::NodeId>(rng.index(49));
    if (dst >= src) ++dst;
    const auto central = topology::widest_shortest_path(g, src, dst, width, admissible);
    const auto flood = flood_route(g, links, src, dst, 100.0, g.num_nodes());
    ASSERT_EQ(central.has_value(), flood.route.has_value()) << "trial " << trial;
    if (!central) continue;
    EXPECT_EQ(flood.route->hops(), central->hops()) << "trial " << trial;
    EXPECT_NEAR(bottleneck(*flood.route), bottleneck(*central), 1e-9)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloodEquivalenceSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace eqos::net
