// Unit tests for first-passage / sojourn analysis and the analyzer's
// degradation/recovery horizons.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "markov/passage.hpp"

namespace eqos::markov {
namespace {

/// Simple birth-death chain 0 <-> 1 <-> 2 with birth rate b, death rate d.
Ctmc birth_death3(double b, double d) {
  Ctmc c(3);
  c.add_rate(0, 1, b);
  c.add_rate(1, 2, b);
  c.add_rate(2, 1, d);
  c.add_rate(1, 0, d);
  return c;
}

TEST(Passage, TwoStateClosedForm) {
  // 0 -> 1 at rate a: expected passage 0 -> 1 is 1/a.
  Ctmc c(2);
  c.add_rate(0, 1, 0.25);
  c.add_rate(1, 0, 4.0);
  const auto h = mean_first_passage_times(c, {1});
  EXPECT_NEAR(h[0], 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(h[1], 0.0);
}

TEST(Passage, BirthDeathHittingTimes) {
  // For birth-death with b = d = 1, target {2}: h1 = 1/2 + h0/2 and
  // h0 = 1 + h1, giving h0 = 3, h1 = 2.
  const Ctmc c = birth_death3(1.0, 1.0);
  const auto h = mean_first_passage_times(c, {2});
  EXPECT_NEAR(h[0], 3.0, 1e-10);
  EXPECT_NEAR(h[1], 2.0, 1e-10);
}

TEST(Passage, AgreesWithMonteCarloIntuition) {
  // Faster death than birth makes the top harder to reach.
  const auto fast = mean_first_passage_times(birth_death3(1.0, 4.0), {2});
  const auto slow = mean_first_passage_times(birth_death3(1.0, 0.25), {2});
  EXPECT_GT(fast[0], slow[0]);
}

TEST(Passage, MultipleTargets) {
  const Ctmc c = birth_death3(1.0, 1.0);
  const auto h = mean_first_passage_times(c, {0, 2});
  EXPECT_DOUBLE_EQ(h[0], 0.0);
  EXPECT_DOUBLE_EQ(h[2], 0.0);
  // From 1: leaves at rate 2, always hits a target.
  EXPECT_NEAR(h[1], 0.5, 1e-12);
}

TEST(Passage, UnreachableTargetThrows) {
  Ctmc c(3);
  c.add_rate(0, 1, 1.0);
  c.add_rate(1, 0, 1.0);
  // State 2 is isolated; from {0,1} the target {2} is unreachable.
  EXPECT_THROW(mean_first_passage_times(c, {2}), std::invalid_argument);
  EXPECT_THROW(mean_first_passage_times(c, {}), std::invalid_argument);
  EXPECT_THROW(mean_first_passage_times(c, {7}), std::invalid_argument);
}

TEST(Passage, HitProbabilityGamblersRuin) {
  // Symmetric walk on 0..2 with absorbing ends: from 1, P(hit 2 before 0) = 1/2.
  Ctmc c(3);
  c.add_rate(1, 0, 1.0);
  c.add_rate(1, 2, 1.0);
  const auto p = hit_probability_before(c, {2}, {0});
  EXPECT_DOUBLE_EQ(p[2], 1.0);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

TEST(Passage, HitProbabilityBiasedChain) {
  // Up-rate 3x down-rate: from 1 of 0..2, P(top first) = 3/4.
  Ctmc c(3);
  c.add_rate(1, 2, 3.0);
  c.add_rate(1, 0, 1.0);
  const auto p = hit_probability_before(c, {2}, {0});
  EXPECT_NEAR(p[1], 0.75, 1e-12);
}

TEST(Passage, HitProbabilityOverlapThrows) {
  Ctmc c(2);
  c.add_rate(0, 1, 1.0);
  c.add_rate(1, 0, 1.0);
  EXPECT_THROW(hit_probability_before(c, {0}, {0}), std::invalid_argument);
}

TEST(Passage, SojournTimesSumToPassageTime) {
  const Ctmc c = birth_death3(1.0, 1.0);
  const auto sojourn = expected_sojourn_before(c, 0, {2});
  const auto h = mean_first_passage_times(c, {2});
  EXPECT_NEAR(sojourn[0] + sojourn[1], h[0], 1e-10);
  EXPECT_DOUBLE_EQ(sojourn[2], 0.0);
}

TEST(Passage, SojournFromTargetIsZero) {
  const Ctmc c = birth_death3(1.0, 1.0);
  const auto sojourn = expected_sojourn_before(c, 2, {2});
  for (double s : sojourn) EXPECT_DOUBLE_EQ(s, 0.0);
}

}  // namespace
}  // namespace eqos::markov

namespace eqos::core {
namespace {

TEST(AnalyzerPassage, DegradationAndRecoveryHorizons) {
  // Symmetric retreat/refill estimates: both horizons defined and positive;
  // a faster arrival rate shortens degradation and lengthens recovery.
  sim::ModelEstimates est;
  const std::size_t n = 5;
  matrix::Matrix bottom(n, n);
  matrix::Matrix top(n, n);
  matrix::Matrix stay(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    bottom(i, 0) = 1.0;
    top(i, n - 1) = 1.0;
    stay(i, i) = 1.0;
  }
  est.pf = 0.5;
  est.ps = 0.0;
  est.arrival_move = bottom;
  est.indirect_move = stay;
  est.termination_move = top;
  est.failure_move = bottom;
  est.occupancy.assign(n, 0.2);

  sim::WorkloadConfig w;
  w.qos = net::ElasticQosSpec{100.0, 500.0, 100.0, 1.0};
  w.arrival_rate = 1e-3;
  w.termination_rate = 1e-3;

  const auto base = analyze(est, w);
  EXPECT_GT(base.mean_degradation_time, 0.0);
  EXPECT_GT(base.mean_recovery_time, 0.0);

  sim::WorkloadConfig hot = w;
  hot.arrival_rate = 4e-3;
  const auto loaded = analyze(est, hot);
  EXPECT_LT(loaded.mean_degradation_time, base.mean_degradation_time);
  EXPECT_GE(loaded.mean_recovery_time, base.mean_recovery_time);
}

TEST(AnalyzerPassage, DegenerateChainHasNoHorizons) {
  sim::ModelEstimates est;
  const std::size_t n = 5;
  est.arrival_move = matrix::Matrix(n, n);
  est.indirect_move = matrix::Matrix(n, n);
  est.termination_move = matrix::Matrix(n, n);
  est.failure_move = matrix::Matrix(n, n);
  sim::WorkloadConfig w;
  w.qos = net::ElasticQosSpec{100.0, 500.0, 100.0, 1.0};
  const auto r = analyze(est, w);
  EXPECT_TRUE(r.degenerate);
  EXPECT_DOUBLE_EQ(r.mean_degradation_time, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_recovery_time, 0.0);
}

}  // namespace
}  // namespace eqos::core
