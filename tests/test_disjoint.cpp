// Unit tests for Suurballe/Bhandari disjoint pairs and the Network's joint
// establishment fallback, centered on the classic trap topology.
#include <gtest/gtest.h>

#include <set>

#include "net/network.hpp"
#include "topology/disjoint.hpp"
#include "topology/waxman.hpp"
#include "util/rng.hpp"

namespace eqos::topology {
namespace {

/// The classic trap: the unique shortest path s-1-2-t blocks the only
/// disjoint pair {s-1-4-t, s-3-2-t}.
///   nodes: 0=s, 1, 2, 3, 4, 5=t
Graph trap_graph() {
  Graph g(6);
  g.add_link(0, 1);  // s-1
  g.add_link(1, 2);  // 1-2
  g.add_link(2, 5);  // 2-t
  g.add_link(0, 3);  // s-3
  g.add_link(3, 2);  // 3-2
  g.add_link(1, 4);  // 1-4
  g.add_link(4, 5);  // 4-t
  return g;
}

void expect_valid_disjoint_pair(const Graph& g, const DisjointPair& pair, NodeId src,
                                NodeId dst) {
  for (const Path* p : {&pair.first, &pair.second}) {
    ASSERT_FALSE(p->links.empty());
    EXPECT_EQ(p->nodes.front(), src);
    EXPECT_EQ(p->nodes.back(), dst);
    ASSERT_EQ(p->nodes.size(), p->links.size() + 1);
    for (std::size_t i = 0; i < p->links.size(); ++i) {
      const Link& l = g.link(p->links[i]);
      const std::set<NodeId> ends{l.a, l.b};
      EXPECT_EQ(ends, (std::set<NodeId>{p->nodes[i], p->nodes[i + 1]}));
    }
  }
  EXPECT_EQ(pair.first.overlap(pair.second), 0u);
}

TEST(DisjointPair, SolvesTheTrap) {
  const Graph g = trap_graph();
  // Sequential search fails: remove the shortest path's links and t is
  // unreachable.
  const auto p1 = shortest_path(g, 0, 5);
  ASSERT_TRUE(p1.has_value());
  ASSERT_EQ(p1->hops(), 3u);
  const auto bits = p1->link_set(g.num_links());
  const LinkFilter avoid_p1 = [&](LinkId l) { return !bits.test(l); };
  EXPECT_FALSE(shortest_path(g, 0, 5, avoid_p1).has_value());

  // The joint computation finds the pair.
  const auto pair = shortest_disjoint_pair(g, 0, 5);
  ASSERT_TRUE(pair.has_value());
  expect_valid_disjoint_pair(g, *pair, 0, 5);
  EXPECT_EQ(pair->first.hops() + pair->second.hops(), 6u);  // 3 + 3
}

TEST(DisjointPair, DiamondGivesBothSides) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 3);
  g.add_link(0, 2);
  g.add_link(2, 3);
  const auto pair = shortest_disjoint_pair(g, 0, 3);
  ASSERT_TRUE(pair.has_value());
  expect_valid_disjoint_pair(g, *pair, 0, 3);
  EXPECT_EQ(pair->first.hops(), 2u);
  EXPECT_EQ(pair->second.hops(), 2u);
}

TEST(DisjointPair, NoneOnPathGraph) {
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  EXPECT_FALSE(shortest_disjoint_pair(g, 0, 2).has_value());
}

TEST(DisjointPair, HonorsFilter) {
  Graph g(4);
  const LinkId a = g.add_link(0, 1);
  g.add_link(1, 3);
  g.add_link(0, 2);
  g.add_link(2, 3);
  const LinkFilter no_a = [&](LinkId l) { return l != a; };
  EXPECT_FALSE(shortest_disjoint_pair(g, 0, 3, no_a).has_value());
}

TEST(DisjointPair, InputValidation) {
  Graph g(2);
  g.add_link(0, 1);
  EXPECT_THROW((void)shortest_disjoint_pair(g, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)shortest_disjoint_pair(g, 0, 9), std::invalid_argument);
}

// Property sweep: wherever the sequential method finds a disjoint pair, the
// joint method finds one with total hops <= sequential's total.
class DisjointSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisjointSweep, JointNeverWorseThanSequential) {
  const Graph g = generate_waxman({40, 0.35, 0.25, true}, GetParam());
  util::Rng rng(GetParam() * 11 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto src = static_cast<NodeId>(rng.index(40));
    auto dst = static_cast<NodeId>(rng.index(39));
    if (dst >= src) ++dst;
    const auto p1 = shortest_path(g, src, dst);
    ASSERT_TRUE(p1.has_value());
    const auto bits = p1->link_set(g.num_links());
    const LinkFilter avoid = [&](LinkId l) { return !bits.test(l); };
    const auto p2 = shortest_path(g, src, dst, avoid);
    const auto joint = shortest_disjoint_pair(g, src, dst);
    if (p2.has_value()) {
      ASSERT_TRUE(joint.has_value());
      expect_valid_disjoint_pair(g, *joint, src, dst);
      EXPECT_LE(joint->first.hops() + joint->second.hops(), p1->hops() + p2->hops());
    }
    // (When sequential fails, joint may still succeed — the trap case.)
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace eqos::topology

namespace eqos::net {
namespace {

TEST(JointFallback, RescuesTrapTopologyRequests) {
  const topology::Graph g = [] {
    topology::Graph t(6);
    t.add_link(0, 1);
    t.add_link(1, 2);
    t.add_link(2, 5);
    t.add_link(0, 3);
    t.add_link(3, 2);
    t.add_link(1, 4);
    t.add_link(4, 5);
    return t;
  }();
  const ElasticQosSpec qos{100.0, 500.0, 50.0, 1.0};

  // Paper-faithful sequential establishment with full disjointness: the
  // trap rejects the request.
  NetworkConfig strict;
  strict.require_full_disjoint = true;
  Network sequential(g, strict);
  const auto rejected = sequential.request_connection(0, 5, qos);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.reject_reason, RejectReason::kNoBackupRoute);

  // With the joint fallback the same request is protected.
  NetworkConfig joint = strict;
  joint.joint_disjoint_fallback = true;
  Network rescued(g, joint);
  const auto accepted = rescued.request_connection(0, 5, qos);
  ASSERT_TRUE(accepted.accepted);
  EXPECT_TRUE(accepted.backup_established);
  EXPECT_EQ(accepted.backup_overlap_links, 0u);
  const auto& c = rescued.connection(accepted.id);
  EXPECT_EQ(c.primary.hops() + c.backups.front().path.hops(), 6u);
  rescued.validate_invariants();
}

TEST(JointFallback, DoesNotChangeOutcomeWhereSequentialWorks) {
  const auto g = topology::generate_waxman({40, 0.35, 0.25, true}, 13);
  NetworkConfig plain;
  NetworkConfig with_fallback;
  with_fallback.joint_disjoint_fallback = true;
  Network a(g, plain);
  Network b(g, with_fallback);
  util::Rng rng(14);
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<topology::NodeId>(rng.index(40));
    auto dst = static_cast<topology::NodeId>(rng.index(39));
    if (dst >= src) ++dst;
    const auto ra = a.request_connection(src, dst, ElasticQosSpec{100, 500, 50, 1});
    const auto rb = b.request_connection(src, dst, ElasticQosSpec{100, 500, 50, 1});
    // The fallback can only rescue rejects, never reject accepts.
    EXPECT_LE(ra.accepted, rb.accepted);
  }
  EXPECT_GE(b.num_active(), a.num_active());
  a.validate_invariants();
  b.validate_invariants();
}

TEST(JointFallback, StillRejectsWhenNoPairExists) {
  topology::Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  NetworkConfig cfg;
  cfg.joint_disjoint_fallback = true;
  Network net(g, cfg);
  const auto outcome = net.request_connection(0, 2, ElasticQosSpec{100, 500, 50, 1});
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.reject_reason, RejectReason::kNoBackupRoute);
  for (topology::LinkId l = 0; l < g.num_links(); ++l)
    EXPECT_DOUBLE_EQ(net.link_state(l).committed_min(), 0.0);  // clean rollback
  net.validate_invariants();
}

}  // namespace
}  // namespace eqos::net
