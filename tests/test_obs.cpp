// Unit tests for the observability layer: metrics registry exactness (single
// thread and across the sweep thread pool at 1/2/8 workers), log-level
// parsing and torn-line-free concurrent logging, the trace flight recorder's
// ring semantics, and the acceptance path — a forced invariant-audit failure
// must dump a flight-recorder JSON whose tail reconstructs the violating
// event sequence.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/audit.hpp"
#include "fault/injector.hpp"
#include "fault/scenario.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "topology/waxman.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace eqos {
namespace {

/// Scoped enable/restore of the global metrics switch.
struct MetricsOn {
  bool prev = obs::set_metrics_enabled(true);
  ~MetricsOn() { obs::set_metrics_enabled(prev); }
};

/// Scoped enable/restore of the global trace switch.
struct TraceOn {
  bool prev = obs::set_trace_enabled(true);
  ~TraceOn() { obs::set_trace_enabled(prev); }
};

// ---- Metrics registry -------------------------------------------------------

TEST(Metrics, DisabledHandlesAreNoOps) {
  auto counter = obs::MetricsRegistry::global().counter("test.disabled.counter");
  const bool prev = obs::set_metrics_enabled(false);
  counter.inc(5);
  EXPECT_EQ(counter.value(), 0u);
  obs::set_metrics_enabled(true);
  counter.inc(5);
  EXPECT_EQ(counter.value(), 5u);
  obs::set_metrics_enabled(prev);
}

TEST(Metrics, SetEnabledReturnsPrevious) {
  const bool original = obs::set_metrics_enabled(true);
  EXPECT_TRUE(obs::set_metrics_enabled(false));
  EXPECT_FALSE(obs::set_metrics_enabled(original));
}

TEST(Metrics, CounterGaugeHistogramExactness) {
  MetricsOn on;
  auto& reg = obs::MetricsRegistry::global();
  auto counter = reg.counter("test.exact.counter");
  auto gauge = reg.gauge("test.exact.gauge");
  auto hist = reg.histogram("test.exact.hist", {1.0, 2.0, 4.0});

  counter.inc();
  counter.inc(3);
  gauge.add(5);
  gauge.sub(2);
  hist.observe(0.5);   // bucket 0: (-inf, 1]
  hist.observe(1.5);   // bucket 1: (1, 2]
  hist.observe(3.0);   // bucket 2: (2, 4]
  hist.observe(100.0); // bucket 3: (4, +inf)

  EXPECT_EQ(counter.value(), 4u);
  EXPECT_EQ(gauge.value(), 3);

  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto* c = snap.find("test.exact.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->count, 4u);
  const auto* g = snap.find("test.exact.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->gauge, 3);
  const auto* h = snap.find("test.exact.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_DOUBLE_EQ(h->sum, 105.0);
  ASSERT_EQ(h->buckets.size(), 4u);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[1], 1u);
  EXPECT_EQ(h->buckets[2], 1u);
  EXPECT_EQ(h->buckets[3], 1u);
  EXPECT_EQ(snap.find("test.exact.absent"), nullptr);
}

TEST(Metrics, GaugeGoesNegative) {
  MetricsOn on;
  auto gauge = obs::MetricsRegistry::global().gauge("test.negative.gauge");
  gauge.sub(7);
  EXPECT_EQ(gauge.value(), -7);
  gauge.add(7);
  EXPECT_EQ(gauge.value(), 0);
}

TEST(Metrics, RegistrationConflictsThrow) {
  auto& reg = obs::MetricsRegistry::global();
  (void)reg.counter("test.conflict.metric");
  EXPECT_THROW((void)reg.gauge("test.conflict.metric"), std::logic_error);
  (void)reg.histogram("test.conflict.hist", {1.0, 2.0});
  EXPECT_THROW((void)reg.histogram("test.conflict.hist", {1.0, 3.0}), std::logic_error);
  EXPECT_THROW((void)reg.counter(""), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("test.conflict.bad", {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("test.conflict.dup", {1.0, 1.0}),
               std::invalid_argument);
  // Same kind and bounds: find-or-create returns the same metric.
  auto a = reg.counter("test.conflict.metric");
  MetricsOn on;
  a.inc();
  EXPECT_EQ(reg.counter("test.conflict.metric").value(), 1u);
}

TEST(Metrics, SnapshotDelta) {
  MetricsOn on;
  auto& reg = obs::MetricsRegistry::global();
  auto counter = reg.counter("test.delta.counter");
  auto hist = reg.histogram("test.delta.hist", {10.0});
  counter.inc(2);
  hist.observe(5.0);
  const obs::MetricsSnapshot before = reg.snapshot();
  counter.inc(3);
  hist.observe(20.0);
  const obs::MetricsSnapshot delta = obs::snapshot_delta(before, reg.snapshot());
  const auto* c = delta.find("test.delta.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->count, 3u);
  const auto* h = delta.find("test.delta.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_DOUBLE_EQ(h->sum, 20.0);
  ASSERT_EQ(h->buckets.size(), 2u);
  EXPECT_EQ(h->buckets[0], 0u);
  EXPECT_EQ(h->buckets[1], 1u);
}

TEST(Metrics, ExactAcrossThreadCounts) {
  // The shard design must aggregate to identical exact totals whatever the
  // worker count — including 8 workers hammering the same metrics through
  // the sweep thread pool.
  MetricsOn on;
  auto& reg = obs::MetricsRegistry::global();
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kIncsPerTask = 1000;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const std::string suffix = std::to_string(threads);
    auto counter = reg.counter("test.mt.counter." + suffix);
    auto gauge = reg.gauge("test.mt.gauge." + suffix);
    auto hist = reg.histogram("test.mt.hist." + suffix, {2.0, 5.0});
    util::ThreadPool pool(threads);
    pool.parallel_for(kTasks, [&](std::size_t i) {
      for (std::size_t k = 0; k < kIncsPerTask; ++k) counter.inc();
      gauge.add(3);
      gauge.sub(1);
      for (std::size_t k = 0; k < 8; ++k) hist.observe(static_cast<double>(i % 8));
    });
    EXPECT_EQ(counter.value(), kTasks * kIncsPerTask) << threads << " threads";
    EXPECT_EQ(gauge.value(), static_cast<std::int64_t>(2 * kTasks))
        << threads << " threads";
    const obs::MetricsSnapshot snap = reg.snapshot();
    const auto* h = snap.find("test.mt.hist." + suffix);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, kTasks * 8);
    // Each of the 64 tasks observes i % 8 eight times: sum = 8 * 8 * (0+..+7).
    EXPECT_DOUBLE_EQ(h->sum, 8.0 * 8.0 * 28.0) << threads << " threads";
    ASSERT_EQ(h->buckets.size(), 3u);
    EXPECT_EQ(h->buckets[0], kTasks * 8 * 3 / 8);  // values 0, 1, 2
    EXPECT_EQ(h->buckets[1], kTasks * 8 * 3 / 8);  // values 3, 4, 5
    EXPECT_EQ(h->buckets[2], kTasks * 8 * 2 / 8);  // values 6, 7
  }
}

TEST(Metrics, SnapshotJsonShape) {
  MetricsOn on;
  auto& reg = obs::MetricsRegistry::global();
  auto counter = reg.counter("test.json.counter");
  counter.inc(9);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"test.json.counter\": {\"kind\": \"counter\", \"value\": 9}"),
            std::string::npos)
      << json;
}

// ---- Logging ----------------------------------------------------------------

TEST(Log, ParseLevelNames) {
  EXPECT_EQ(util::parse_log_level("trace"), util::LogLevel::kTrace);
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("info"), util::LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("warn"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), util::LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), util::LogLevel::kOff);
  // Unknown names fall back to warn and warn at most once per process.
  testing::internal::CaptureStderr();
  EXPECT_EQ(util::parse_log_level("bogus"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("other-bogus"), util::LogLevel::kWarn);
  const std::string err = testing::internal::GetCapturedStderr();
  std::size_t warnings = 0;
  for (std::size_t pos = 0; (pos = err.find("unknown log level", pos)) != std::string::npos;
       ++pos)
    ++warnings;
  EXPECT_LE(warnings, 1u);  // one-time: other tests may already have spent it
}

TEST(Log, SetLevelReturnsPrevious) {
  const util::LogLevel original = util::set_log_level(util::LogLevel::kDebug);
  EXPECT_EQ(util::set_log_level(util::LogLevel::kError), util::LogLevel::kDebug);
  EXPECT_EQ(util::set_log_level(original), util::LogLevel::kError);
}

/// Streamable probe that records whether operator<< ever ran.
struct InsertionProbe {
  bool* hit;
};
std::ostream& operator<<(std::ostream& os, const InsertionProbe& p) {
  *p.hit = true;
  return os;
}

TEST(Log, DisabledLineSkipsInsertions) {
  const util::LogLevel original = util::set_log_level(util::LogLevel::kError);
  bool hit = false;
  EQOS_DEBUG() << InsertionProbe{&hit} << 42;
  EXPECT_FALSE(hit);
  testing::internal::CaptureStderr();
  EQOS_ERROR() << InsertionProbe{&hit};
  EXPECT_NE(testing::internal::GetCapturedStderr().find("[eqos:ERROR]"),
            std::string::npos);
  EXPECT_TRUE(hit);
  util::set_log_level(original);
}

TEST(Log, ConcurrentLinesNotTorn) {
  // 1/2/8 pool workers logging concurrently: every emitted stderr line must
  // be one complete log statement — no interleaved fragments, no torn lines.
  constexpr std::size_t kLines = 64;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const std::string path =
        testing::TempDir() + "eqos_torn_" + std::to_string(threads) + ".log";
    const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    std::cerr.flush();
    const int saved = ::dup(2);
    ASSERT_GE(saved, 0);
    ASSERT_GE(::dup2(fd, 2), 0);
    ::close(fd);
    const util::LogLevel original = util::set_log_level(util::LogLevel::kInfo);
    {
      util::ThreadPool pool(threads);
      pool.parallel_for(kLines, [](std::size_t i) {
        EQOS_INFO() << "task " << i << " payload abcdefghijklmnop " << i * 7;
      });
    }
    util::set_log_level(original);
    std::cerr.flush();
    ASSERT_GE(::dup2(saved, 2), 0);
    ::close(saved);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::vector<bool> seen(kLines, false);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
      ++lines;
      std::size_t task = 0;
      std::size_t check = 0;
      char word[32] = {0};
      ASSERT_EQ(std::sscanf(line.c_str(), "[eqos:INFO] task %zu payload %31s %zu",
                            &task, word, &check),
                3)
          << "torn line with " << threads << " threads: '" << line << "'";
      EXPECT_STREQ(word, "abcdefghijklmnop") << line;
      ASSERT_LT(task, kLines);
      EXPECT_EQ(check, task * 7) << line;
      EXPECT_FALSE(seen[task]) << "duplicate line for task " << task;
      seen[task] = true;
    }
    EXPECT_EQ(lines, kLines) << threads << " threads";
    std::remove(path.c_str());
  }
}

// ---- Trace flight recorder --------------------------------------------------

TEST(Trace, DisabledRecordsNothing) {
  const bool prev = obs::set_trace_enabled(false);
  obs::clear_trace();
  obs::trace_event(obs::TraceKind::kDrop, 1, 2, 3.0);
  EXPECT_TRUE(obs::collect_trace().empty());
  EXPECT_TRUE(obs::dump_trace("disabled").empty());
  obs::set_trace_enabled(prev);
}

TEST(Trace, RingKeepsLastEventsInSeqOrder) {
  TraceOn on;
  obs::clear_trace();
  obs::set_trace_capacity(8);
  // A fresh thread gets a fresh ring at the just-set capacity.
  std::thread writer([] {
    for (std::uint32_t i = 0; i < 20; ++i) {
      obs::set_trace_time(static_cast<double>(i));
      obs::trace_event(obs::TraceKind::kAuditStep, i, 0, 0.0);
    }
  });
  writer.join();
  obs::set_trace_capacity(512);  // restore the default for later rings
  const std::vector<obs::TraceEvent> events = obs::collect_trace();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 12u + i);  // the last 8 of 20
    EXPECT_DOUBLE_EQ(events[i].time, static_cast<double>(12 + i));
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }
  obs::clear_trace();
  EXPECT_TRUE(obs::collect_trace().empty());
}

TEST(Trace, JsonContainsReasonAndKinds) {
  std::vector<obs::TraceEvent> events(2);
  events[0].seq = 7;
  events[0].kind = obs::TraceKind::kFailLink;
  events[0].a = 3;
  events[1].seq = 2;
  events[1].kind = obs::TraceKind::kArrivalAdmitted;
  const std::string json = obs::trace_to_json(events, "unit \"test\"");
  EXPECT_NE(json.find("\"reason\": \"unit \\\"test\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"num_events\": 2"), std::string::npos);
  // Sorted by seq: the arrival comes first despite input order.
  const std::size_t arrival = json.find("\"kind\": \"arrival-admitted\"");
  const std::size_t fail = json.find("\"kind\": \"fail-link\"");
  ASSERT_NE(arrival, std::string::npos);
  ASSERT_NE(fail, std::string::npos);
  EXPECT_LT(arrival, fail);
}

TEST(Trace, AnnotateIsIdempotentAndOffWhenDisabled) {
  {
    const bool prev = obs::set_trace_enabled(false);
    EXPECT_EQ(obs::annotate_audit_failure("boom"), "boom");
    obs::set_trace_enabled(prev);
  }
  TraceOn on;
  const std::string dump = testing::TempDir() + "eqos_annotate_dump.json";
  obs::set_trace_dump_path(dump);
  const std::string once = obs::annotate_audit_failure("boom");
  EXPECT_NE(once.find(" [trace: "), std::string::npos);
  EXPECT_EQ(obs::annotate_audit_failure(once), once);  // nested audits: one dump
  std::remove(dump.c_str());
}

// ---- Acceptance: audit failure dumps the flight recorder --------------------

net::ElasticQosSpec paper_qos() {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  return q;
}

TEST(Trace, AuditFailureDumpsViolatingSequence) {
  TraceOn on;
  obs::clear_trace();
  const std::string dump = testing::TempDir() + "eqos_audit_dump.json";
  obs::set_trace_dump_path(dump);
  std::remove(dump.c_str());

  const topology::Graph g = topology::generate_waxman({30, 0.5, 0.4, true}, 11);
  net::Network network(g, net::NetworkConfig{});
  util::Rng rng(99);
  for (int i = 0; i < 60; ++i) {
    const auto src = static_cast<topology::NodeId>(rng.index(g.num_nodes()));
    auto dst = static_cast<topology::NodeId>(rng.index(g.num_nodes() - 1));
    if (dst >= src) ++dst;
    (void)network.request_connection(src, dst, paper_qos());
  }
  // Corrupt the admission ledger behind the network's back: the next audit
  // must detect the drift and dump the flight recorder.
  const_cast<net::LinkState&>(network.link_state(0)).commit_min(64.0);

  sim::EventQueue queue;
  fault::FaultScenario scenario;
  scenario.fail_link(5.0, 1);
  fault::FaultInjector injector(
      network,
      fault::Scheduler{[&queue] { return queue.now(); },
                       [&queue](double t, std::function<void()> a) {
                         queue.schedule(t, std::move(a));
                       }},
      fault::Hooks{});
  fault::InvariantAuditor auditor(network);
  injector.set_auditor(&auditor);
  injector.load_scenario(scenario, util::Rng(7));

  std::string message;
  try {
    queue.run_until(10.0);
    FAIL() << "expected the corrupted ledger to fail the audit";
  } catch (const std::logic_error& e) {
    message = e.what();
  }
  EXPECT_NE(message.find("committed_min ledger mismatch"), std::string::npos) << message;
  ASSERT_NE(message.find(" [trace: " + dump + "]"), std::string::npos) << message;

  std::ifstream in(dump);
  ASSERT_TRUE(in.good()) << "no flight-recorder dump at " << dump;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"reason\": "), std::string::npos);
  EXPECT_NE(json.find("committed_min ledger mismatch"), std::string::npos);
  // The tail must reconstruct the violating sequence: the scripted failure
  // of link 1 (and its per-connection consequences) after the arrivals.
  const std::size_t fail = json.find("\"kind\": \"fail-link\", \"a\": 1,");
  ASSERT_NE(fail, std::string::npos) << json.substr(0, 2000);
  const std::size_t first_arrival = json.find("\"kind\": \"arrival-");
  ASSERT_NE(first_arrival, std::string::npos);
  EXPECT_LT(first_arrival, fail);
  EXPECT_EQ(json.find("\"kind\": \"audit-step\""), std::string::npos)
      << "the failing audit step must not have been recorded as passed";
  // seq strictly ascending across the whole dump.
  std::uint64_t prev_seq = 0;
  bool first = true;
  for (std::size_t pos = json.find("\"seq\": "); pos != std::string::npos;
       pos = json.find("\"seq\": ", pos + 1)) {
    const std::uint64_t seq = std::strtoull(json.c_str() + pos + 7, nullptr, 10);
    if (!first) {
      EXPECT_GT(seq, prev_seq);
    }
    prev_seq = seq;
    first = false;
  }
  EXPECT_FALSE(first) << "dump contains no events";
  std::remove(dump.c_str());
  obs::clear_trace();
}

}  // namespace
}  // namespace eqos
