// Checkpoint/restore correctness tests.
//
//  * state::Buffer round-trips every primitive bit-exactly (doubles as
//    IEEE-754 bit patterns, including signed zero and NaN) and its readers
//    throw CorruptError instead of walking past the payload;
//  * the section-file container detects bad magic, future versions,
//    bit-flips, and truncation;
//  * util::Rng's engine_state round-trip replays a million draws exactly;
//  * EventQueue snapshot/restore rebuilds the pending heap in (time, seq)
//    order, and refuses to snapshot untagged events;
//  * Simulator::save_checkpoint / load_checkpoint: a restored run replays
//    the remaining events bit-for-bit identically to the uninterrupted run,
//    for the legacy Poisson failure process, for a full fault scenario
//    (scripted + stochastic + bursts + auto-repair), and with a recorder
//    attached; mismatched configurations and corrupted bytes are rejected;
//  * state::CheckpointStore quarantines corrupt and wrong-fingerprint cell
//    files (renamed *.corrupt) instead of loading them;
//  * core::CellHarness retries throwing cells, records cells that keep
//    failing, and its watchdog flags cells that blow their wall-clock
//    budget;
//  * core::run_sweep with a checkpoint dir resumes to bit-identical results
//    after losing or corrupting cell files, and isolates per-cell failures
//    instead of aborting the sweep.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "fault/scenario.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/recorder.hpp"
#include "sim/simulator.hpp"
#include "state/cellstore.hpp"
#include "state/serial.hpp"
#include "topology/waxman.hpp"
#include "util/rng.hpp"

namespace eqos {
namespace {

namespace fs = std::filesystem;
using topology::Graph;

// ---- shared fixtures -----------------------------------------------------

const Graph& small_waxman() {
  static const Graph g = topology::generate_waxman({30, 0.4, 0.3, true}, 7);
  return g;
}

net::ElasticQosSpec paper_qos() {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  q.utility = 1.0;
  return q;
}

sim::WorkloadConfig churn_workload(std::uint64_t seed, double failure_rate) {
  sim::WorkloadConfig cfg;
  cfg.qos = paper_qos();
  cfg.seed = seed;
  cfg.failure_rate = failure_rate;
  cfg.repair_rate = 1e-2;
  return cfg;
}

/// A scratch directory under the system temp dir, wiped on entry so every
/// test run starts clean.
fs::path fresh_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// ---- Buffer primitives ---------------------------------------------------

TEST(Buffer, RoundTripsEveryPrimitive) {
  state::Buffer b;
  b.put_u8(0xAB);
  b.put_u32(0xDEADBEEF);
  b.put_u64(0x0123456789ABCDEFull);
  b.put_bool(true);
  b.put_f64(-0.0);
  b.put_f64(std::numeric_limits<double>::quiet_NaN());
  b.put_str("elastic qos");
  b.put_f64_vec({1.5, -2.25, 0.0});
  b.put_u64_vec({7, 0, 42});
  const char raw[4] = {'a', 'b', 'c', 'd'};
  b.put_bytes(raw, sizeof(raw));

  EXPECT_EQ(b.get_u8(), 0xAB);
  EXPECT_EQ(b.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(b.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(b.get_bool());
  const double neg_zero = b.get_f64();
  EXPECT_EQ(bits_of(neg_zero), bits_of(-0.0));  // sign bit survives
  const double nan = b.get_f64();
  EXPECT_TRUE(std::isnan(nan));
  EXPECT_EQ(bits_of(nan), bits_of(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(b.get_str(), "elastic qos");
  EXPECT_EQ(b.get_f64_vec(), (std::vector<double>{1.5, -2.25, 0.0}));
  EXPECT_EQ(b.get_u64_vec(), (std::vector<std::uint64_t>{7, 0, 42}));
  char out[4] = {};
  b.get_bytes(out, sizeof(out));
  EXPECT_EQ(std::memcmp(out, raw, sizeof(raw)), 0);
  EXPECT_NO_THROW(b.expect_consumed());
}

TEST(Buffer, UnderrunThrowsInsteadOfWalkingPastEnd) {
  state::Buffer b;
  b.put_u32(1);
  (void)b.get_u32();
  EXPECT_THROW((void)b.get_u8(), state::CorruptError);
  EXPECT_THROW((void)b.get_u64(), state::CorruptError);
  EXPECT_THROW((void)b.get_f64(), state::CorruptError);
}

TEST(Buffer, CorruptedCountCannotTriggerHugeAllocation) {
  // A flipped length prefix claims 2^60 elements; get_count must reject it
  // against the bytes actually present rather than try to allocate.
  state::Buffer b;
  b.put_u64(std::uint64_t{1} << 60);
  EXPECT_THROW((void)b.get_count(8), state::CorruptError);
}

TEST(Buffer, TrailingBytesFailExpectConsumed) {
  state::Buffer b;
  b.put_u32(1);
  b.put_u32(2);
  (void)b.get_u32();
  EXPECT_THROW(b.expect_consumed(), state::CorruptError);
}

// ---- section files -------------------------------------------------------

constexpr char kTestMagic[4] = {'T', 'S', 'T', '1'};

std::string write_test_sections() {
  state::Section s;
  s.name = "payload";
  s.payload.put_u64(1234);
  s.payload.put_f64(2.5);
  std::ostringstream out;
  state::write_sections(out, kTestMagic, state::kKindSweepCell, 0x1122334455667788ull,
                        {s});
  return out.str();
}

TEST(SectionFile, RoundTrip) {
  std::istringstream in(write_test_sections());
  auto file = state::read_sections(in, kTestMagic);
  EXPECT_EQ(file.version, state::kFormatVersion);
  EXPECT_EQ(file.payload_kind, state::kKindSweepCell);
  EXPECT_EQ(file.fingerprint, 0x1122334455667788ull);
  auto& payload = file.section("payload");
  EXPECT_EQ(payload.get_u64(), 1234u);
  EXPECT_EQ(payload.get_f64(), 2.5);
  EXPECT_NO_THROW(payload.expect_consumed());
  EXPECT_THROW((void)file.section("absent"), state::CorruptError);
}

TEST(SectionFile, RejectsWrongMagic) {
  std::string bytes = write_test_sections();
  bytes[0] ^= 0x40;
  std::istringstream in(bytes);
  EXPECT_THROW((void)state::read_sections(in, kTestMagic), state::CorruptError);
}

TEST(SectionFile, RejectsFutureVersion) {
  std::string bytes = write_test_sections();
  bytes[4] = static_cast<char>(0xFF);  // version u32 follows the 4-byte magic
  std::istringstream in(bytes);
  EXPECT_THROW((void)state::read_sections(in, kTestMagic),
               state::VersionMismatchError);
}

TEST(SectionFile, RejectsOlderVersion) {
  // v1 predates the multi-backup channel sets and recovery-time samples of
  // v2; a v1 checkpoint must be refused with a version error (prompting a
  // fresh run), not misparsed as the current layout.
  std::string bytes = write_test_sections();
  ASSERT_GE(state::kFormatVersion, 2u);
  bytes[4] = static_cast<char>(0x01);
  std::istringstream in(bytes);
  EXPECT_THROW((void)state::read_sections(in, kTestMagic),
               state::VersionMismatchError);
}

TEST(SectionFile, DetectsBitFlipInPayload) {
  std::string bytes = write_test_sections();
  bytes[bytes.size() - 3] ^= 0x01;  // inside the section payload
  std::istringstream in(bytes);
  EXPECT_THROW((void)state::read_sections(in, kTestMagic), state::CorruptError);
}

TEST(SectionFile, DetectsTruncation) {
  const std::string bytes = write_test_sections();
  for (const std::size_t keep : {bytes.size() - 1, bytes.size() / 2, std::size_t{7}}) {
    std::istringstream in(bytes.substr(0, keep));
    EXPECT_THROW((void)state::read_sections(in, kTestMagic), state::CorruptError)
        << "truncated to " << keep << " bytes";
  }
}

// ---- Rng engine-state round-trip -----------------------------------------

TEST(RngState, MillionDrawRoundTrip) {
  util::Rng original(0x5EED);
  // Advance well past one mt19937_64 refill boundary before capturing.
  for (int i = 0; i < 1000; ++i) (void)original.uniform();

  const std::string dump = original.engine_state();
  util::Rng restored(0);  // seed overwritten by set_engine_state
  restored.set_engine_state(original.seed(), dump);
  EXPECT_EQ(restored.seed(), original.seed());

  for (int i = 0; i < 1'000'000; ++i)
    ASSERT_EQ(original.uniform(), restored.uniform()) << "draw " << i;
}

TEST(RngState, RejectsGarbageDump) {
  util::Rng rng(1);
  EXPECT_THROW(rng.set_engine_state(1, "not a valid engine dump"),
               std::invalid_argument);
}

// ---- EventQueue snapshot/restore -----------------------------------------

TEST(EventQueue, SnapshotRestoreReplaysInOriginalOrder) {
  // Fill a queue mid-churn (some events executed, ties on equal times),
  // snapshot it, rebuild a second queue from the tags, and check both run
  // the remaining events in exactly the same order.
  std::vector<std::uint64_t> log_a;
  sim::EventQueue a;
  for (std::uint64_t i = 0; i < 20; ++i) {
    const double t = static_cast<double>(i % 5);  // lots of time ties
    a.schedule(t, sim::EventTag{1, i, 0}, [&log_a, i] { log_a.push_back(i); });
  }
  (void)a.run_until(1.5);  // execute a prefix so now() > 0 mid-snapshot
  const auto pending = a.snapshot();
  const double now = a.now();
  const std::uint64_t next_seq = a.next_seq();
  ASSERT_FALSE(pending.empty());

  std::vector<std::uint64_t> log_b = log_a;  // same executed prefix
  sim::EventQueue b;
  b.restore(now, next_seq, pending, [&log_b](const sim::EventTag& tag) {
    return [&log_b, i = tag.a] { log_b.push_back(i); };
  });
  EXPECT_EQ(b.now(), now);
  EXPECT_EQ(b.pending(), pending.size());

  while (a.step()) {
  }
  while (b.step()) {
  }
  EXPECT_EQ(log_a, log_b);
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.next_seq(), b.next_seq());
}

TEST(EventQueue, UntaggedEventsAreNotCheckpointable) {
  sim::EventQueue q;
  q.schedule(1.0, [] {});  // no tag: cannot be reconstructed
  EXPECT_THROW((void)q.snapshot(), std::logic_error);
}

TEST(EventQueue, RestoreRejectsNullRebuiltAction) {
  sim::EventQueue q;
  const std::vector<sim::EventQueue::PendingEvent> events{{1.0, 0, {1, 0, 0}}};
  EXPECT_THROW(
      q.restore(0.0, 1, events, [](const sim::EventTag&) { return sim::EventQueue::Action{}; }),
      std::invalid_argument);
}

// ---- Simulator checkpoint ------------------------------------------------

void expect_same_state(sim::Simulator& a, net::Network& na, sim::Simulator& b,
                       net::Network& nb) {
  EXPECT_EQ(a.now(), b.now());  // bitwise: same event sequence, same clock
  EXPECT_EQ(na.num_active(), nb.num_active());
  EXPECT_EQ(na.mean_reserved_kbps(), nb.mean_reserved_kbps());
  EXPECT_EQ(a.stats().arrival_events, b.stats().arrival_events);
  EXPECT_EQ(a.stats().termination_events, b.stats().termination_events);
  EXPECT_EQ(a.stats().failure_events, b.stats().failure_events);
  EXPECT_EQ(a.stats().repair_events, b.stats().repair_events);
  EXPECT_EQ(na.stats().requests, nb.stats().requests);
  EXPECT_EQ(na.stats().accepted, nb.stats().accepted);
  EXPECT_EQ(na.stats().terminated, nb.stats().terminated);
  EXPECT_EQ(na.stats().failures_injected, nb.stats().failures_injected);
  nb.audit();
}

TEST(SimulatorCheckpoint, RestoredRunReplaysLegacyPoissonIdentically) {
  const net::NetworkConfig ncfg;
  const auto wl = churn_workload(11, 1e-4);

  net::Network net_a(small_waxman(), ncfg);
  sim::Simulator sim_a(net_a, wl);
  sim_a.populate(150);
  sim_a.run_events(400);

  std::stringstream ckpt;
  sim_a.save_checkpoint(ckpt);
  sim_a.run_events(400);  // the uninterrupted run continues...

  net::Network net_b(small_waxman(), ncfg);
  sim::Simulator sim_b(net_b, wl);  // fresh simulator, same setup
  sim_b.load_checkpoint(ckpt);
  sim_b.run_events(400);  // ...and the restored run must match it bit-for-bit

  expect_same_state(sim_a, net_a, sim_b, net_b);
  EXPECT_GT(sim_a.stats().failure_events, 0u);  // the test exercised failures
}

fault::FaultScenario mixed_scenario() {
  fault::FaultScenario sc;
  sc.define_group("conduit", {0, 1, 2}, 2.0);
  // Early scripted events fire before the checkpoint; the far-future pair
  // stays pending across it, exercising scripted-tag rebuild on restore.
  sc.fail_link(1e4, 3);
  sc.repair_link(2e4, 3);
  sc.fail_group(5e8, "conduit");
  sc.repair_group(6e8, "conduit");
  sc.stochastic().link_failure_rate = 1e-6;   // per-link Poisson processes
  sc.stochastic().group_failure_rate = 5e-7;  // correlated SRLG bursts
  sc.stochastic().repair.kind = fault::RepairDistribution::kWeibull;
  sc.stochastic().repair.shape = 1.5;
  sc.stochastic().repair.scale = 80.0;
  sc.stochastic().auto_repair = true;
  return sc;
}

TEST(SimulatorCheckpoint, RestoredRunReplaysFullScenarioIdentically) {
  // Covers every injector tag kind: legacy failure/repair (failure_rate > 0),
  // scripted events, per-link processes, SRLG bursts, and auto-repairs.
  const net::NetworkConfig ncfg;
  const auto wl = churn_workload(23, 5e-5);
  const auto scenario = mixed_scenario();

  net::Network net_a(small_waxman(), ncfg);
  sim::Simulator sim_a(net_a, wl);
  sim_a.load_scenario(scenario);
  sim_a.populate(150);
  sim_a.run_events(400);

  std::stringstream ckpt;
  sim_a.save_checkpoint(ckpt);
  sim_a.run_events(400);

  net::Network net_b(small_waxman(), ncfg);
  sim::Simulator sim_b(net_b, wl);
  sim_b.load_scenario(scenario);  // same scenario loaded before restore
  sim_b.load_checkpoint(ckpt);
  sim_b.run_events(400);

  expect_same_state(sim_a, net_a, sim_b, net_b);
}

TEST(SimulatorCheckpoint, RestoredRecorderAccumulatesIdentically) {
  const net::NetworkConfig ncfg;
  const auto wl = churn_workload(31, 1e-4);

  net::Network net_a(small_waxman(), ncfg);
  sim::Simulator sim_a(net_a, wl);
  sim_a.populate(150);
  sim_a.run_events(200);
  sim::TransitionRecorder rec_a(paper_qos(), sim_a.now());
  sim_a.attach_recorder(&rec_a);
  sim_a.run_events(200);

  std::stringstream ckpt;
  sim_a.save_checkpoint(ckpt);
  sim_a.run_events(300);
  const auto est_a = rec_a.estimates(sim_a.now(), net_a);

  net::Network net_b(small_waxman(), ncfg);
  sim::Simulator sim_b(net_b, wl);
  sim::TransitionRecorder rec_b(paper_qos(), 0.0);  // state overwritten by load
  sim_b.attach_recorder(&rec_b);
  sim_b.load_checkpoint(ckpt);
  sim_b.run_events(300);
  const auto est_b = rec_b.estimates(sim_b.now(), net_b);

  expect_same_state(sim_a, net_a, sim_b, net_b);
  EXPECT_EQ(est_a.pf, est_b.pf);
  EXPECT_EQ(est_a.ps, est_b.ps);
  EXPECT_EQ(est_a.pf_termination, est_b.pf_termination);
  EXPECT_EQ(est_a.mean_bandwidth_kbps, est_b.mean_bandwidth_kbps);
  EXPECT_EQ(est_a.occupancy, est_b.occupancy);
  EXPECT_EQ(est_a.arrivals_observed, est_b.arrivals_observed);
  EXPECT_EQ(est_a.terminations_observed, est_b.terminations_observed);
}

TEST(SimulatorCheckpoint, RejectsDifferentConfiguration) {
  const net::NetworkConfig ncfg;
  const auto wl = churn_workload(11, 0.0);
  net::Network net_a(small_waxman(), ncfg);
  sim::Simulator sim_a(net_a, wl);
  sim_a.populate(50);
  sim_a.run_events(100);
  std::stringstream ckpt;
  sim_a.save_checkpoint(ckpt);

  // Same topology, different link capacity: the fingerprint must refuse.
  net::NetworkConfig other = ncfg;
  other.link_capacity_kbps *= 2.0;
  net::Network net_b(small_waxman(), other);
  sim::Simulator sim_b(net_b, wl);
  EXPECT_THROW(sim_b.load_checkpoint(ckpt), state::CorruptError);

  // Same network, different workload seed: also a different simulation.
  std::stringstream ckpt2(ckpt.str());
  net::Network net_c(small_waxman(), ncfg);
  sim::Simulator sim_c(net_c, churn_workload(12, 0.0));
  EXPECT_THROW(sim_c.load_checkpoint(ckpt2), state::CorruptError);
}

TEST(SimulatorCheckpoint, DetectsBitFlippedCheckpoint) {
  const net::NetworkConfig ncfg;
  const auto wl = churn_workload(11, 1e-4);
  net::Network net_a(small_waxman(), ncfg);
  sim::Simulator sim_a(net_a, wl);
  sim_a.populate(100);
  sim_a.run_events(200);
  std::stringstream out;
  sim_a.save_checkpoint(out);
  std::string bytes = out.str();
  bytes[bytes.size() / 2] ^= 0x10;

  std::istringstream in(bytes);
  net::Network net_b(small_waxman(), ncfg);
  sim::Simulator sim_b(net_b, wl);
  EXPECT_THROW(sim_b.load_checkpoint(in), state::CorruptError);
}

// ---- CheckpointStore quarantine ------------------------------------------

TEST(CheckpointStore, RoundTripsCells) {
  const auto dir = fresh_dir("eqos_test_cellstore_roundtrip");
  state::CheckpointStore store(dir.string(), state::kKindSweepCell, 0xFEED);
  state::Buffer payload;
  payload.put_u64(7);
  payload.put_f64(1.5);
  store.write_cell(2, 1, payload);
  store.note_completed(2, 1, payload.crc(), payload.size(), 1);
  EXPECT_TRUE(fs::exists(dir / state::CheckpointStore::cell_filename(2, 1)));
  EXPECT_TRUE(fs::exists(dir / "MANIFEST.tsv"));

  state::CheckpointStore reopened(dir.string(), state::kKindSweepCell, 0xFEED);
  auto scan = reopened.scan();
  EXPECT_EQ(scan.quarantined, 0u);
  ASSERT_EQ(scan.cells.size(), 1u);
  EXPECT_EQ(scan.cells[0].point, 2u);
  EXPECT_EQ(scan.cells[0].rep, 1u);
  EXPECT_EQ(scan.cells[0].payload.get_u64(), 7u);
  EXPECT_EQ(scan.cells[0].payload.get_f64(), 1.5);
  EXPECT_NO_THROW(scan.cells[0].payload.expect_consumed());
}

TEST(CheckpointStore, QuarantinesBitFlippedCell) {
  const auto dir = fresh_dir("eqos_test_cellstore_corrupt");
  state::CheckpointStore store(dir.string(), state::kKindSweepCell, 0xFEED);
  state::Buffer payload;
  payload.put_u64(7);
  store.write_cell(0, 0, payload);

  // Flip the last byte (inside the CRC-protected payload).
  const fs::path cell = dir / state::CheckpointStore::cell_filename(0, 0);
  {
    std::fstream f(cell, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekg(-1, std::ios::end);
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x01;
    f.seekp(static_cast<std::streamoff>(size) - 1);
    f.write(&byte, 1);
  }

  auto scan = store.scan();
  EXPECT_EQ(scan.cells.size(), 0u);
  EXPECT_EQ(scan.quarantined, 1u);
  EXPECT_FALSE(fs::exists(cell));
  EXPECT_TRUE(fs::exists(cell.string() + ".corrupt"));
}

TEST(CheckpointStore, QuarantinesWrongFingerprint) {
  const auto dir = fresh_dir("eqos_test_cellstore_fingerprint");
  state::CheckpointStore writer(dir.string(), state::kKindSweepCell, 1);
  state::Buffer payload;
  payload.put_u64(7);
  writer.write_cell(0, 0, payload);

  // The same directory reopened for a *different* sweep configuration must
  // not trust the cell.
  state::CheckpointStore reader(dir.string(), state::kKindSweepCell, 2);
  auto scan = reader.scan();
  EXPECT_EQ(scan.cells.size(), 0u);
  EXPECT_EQ(scan.quarantined, 1u);
}

// ---- CellHarness retry / failure isolation / watchdog --------------------

TEST(CellHarness, RetriesTransientFailures) {
  core::SweepCheckpoint opt;  // no dir: retry/watchdog without persistence
  opt.max_retries = 2;
  core::CellHarness harness(opt, state::kKindSweepCell, 0, 1, 1);
  int calls = 0;
  harness.run_cell(
      0,
      [&calls] {
        if (++calls == 1) throw std::runtime_error("transient");
      },
      [](state::Buffer&) {});
  core::SweepReport report;
  harness.finish(report);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(report.cells_retried, 1u);
  EXPECT_TRUE(report.failures.empty());
}

TEST(CellHarness, RecordsCellsThatKeepFailing) {
  core::SweepCheckpoint opt;
  opt.max_retries = 1;
  core::CellHarness harness(opt, state::kKindSweepCell, 0, 2, 1);
  int calls = 0;
  harness.run_cell(
      0, [&calls] { ++calls; throw std::runtime_error("permanent: disk on fire"); },
      [](state::Buffer&) {});
  harness.run_cell(1, [] {}, [](state::Buffer&) {});  // the sweep continues
  core::SweepReport report;
  harness.finish(report);
  EXPECT_EQ(calls, 2);  // 1 + max_retries attempts
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].point, 0u);
  EXPECT_EQ(report.failures[0].rep, 0u);
  EXPECT_EQ(report.failures[0].attempts, 2u);
  EXPECT_NE(report.failures[0].error.find("disk on fire"), std::string::npos);
}

TEST(CellHarness, WatchdogFlagsSlowCells) {
  core::SweepCheckpoint opt;
  opt.watchdog_seconds = 0.05;
  core::CellHarness harness(opt, state::kKindSweepCell, 0, 1, 1);
  harness.run_cell(
      0, [] { std::this_thread::sleep_for(std::chrono::milliseconds(400)); },
      [](state::Buffer&) {});
  core::SweepReport report;
  harness.finish(report);
  EXPECT_GE(report.watchdog_flagged, 1u);
  EXPECT_TRUE(report.failures.empty());  // slow is flagged, not failed
}

// ---- run_sweep: resume + failure isolation -------------------------------

core::ExperimentConfig tiny_experiment(std::size_t target, std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.workload.qos = paper_qos();
  cfg.workload.seed = seed;
  cfg.target_connections = target;
  cfg.warmup_events = 30;
  cfg.measure_events = 120;
  return cfg;
}

std::vector<core::SweepPoint> two_point_sweep() {
  std::vector<core::SweepPoint> points;
  for (const std::size_t target : {40u, 80u})
    points.push_back({&small_waxman(), tiny_experiment(target, 11), ""});
  return points;
}

void expect_result_eq(const core::ExperimentResult& a,
                      const core::ExperimentResult& b, const char* where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(a.attempted, b.attempted);
  EXPECT_EQ(a.established, b.established);
  EXPECT_EQ(a.active_at_end, b.active_at_end);
  EXPECT_EQ(a.sim_mean_bandwidth_kbps, b.sim_mean_bandwidth_kbps);
  EXPECT_EQ(a.analytic_paper_kbps, b.analytic_paper_kbps);
  EXPECT_EQ(a.analytic_refined_kbps, b.analytic_refined_kbps);
  EXPECT_EQ(a.mean_hops, b.mean_hops);
  EXPECT_EQ(a.estimates.pf, b.estimates.pf);
  EXPECT_EQ(a.estimates.ps, b.estimates.ps);
  EXPECT_EQ(a.estimates.occupancy, b.estimates.occupancy);
  EXPECT_EQ(a.network_stats.requests, b.network_stats.requests);
  EXPECT_EQ(a.network_stats.accepted, b.network_stats.accepted);
  EXPECT_EQ(a.sim_stats.arrival_events, b.sim_stats.arrival_events);
  EXPECT_EQ(a.sim_stats.termination_events, b.sim_stats.termination_events);
}

TEST(RunSweepResume, ResumeAfterLostAndCorruptedCellsIsBitIdentical) {
  const auto dir = fresh_dir("eqos_test_sweep_resume");
  const auto points = two_point_sweep();
  core::SweepOptions opt;
  opt.reps = 2;
  opt.checkpoint.dir = dir.string();

  // A straight-through persisting run writes one cell file per (point, rep).
  const auto straight = core::run_sweep(points, opt);
  ASSERT_EQ(straight.results.size(), 4u);
  EXPECT_EQ(straight.report.cells_loaded, 0u);
  for (std::size_t p = 0; p < 2; ++p)
    for (std::size_t r = 0; r < 2; ++r)
      EXPECT_TRUE(fs::exists(dir / state::CheckpointStore::cell_filename(p, r)));

  // Resume with everything intact: all cells load, none recompute.
  opt.checkpoint.resume = true;
  const auto resumed = core::run_sweep(points, opt);
  EXPECT_EQ(resumed.report.cells_loaded, 4u);
  EXPECT_EQ(resumed.report.cells_quarantined, 0u);
  for (std::size_t i = 0; i < 4; ++i)
    expect_result_eq(straight.results[i], resumed.results[i], "full resume");

  // Simulate a crash that lost one cell and corrupted another: the lost one
  // is recomputed, the corrupt one quarantined and recomputed, and the
  // final results are still bit-identical to the straight-through run.
  fs::remove(dir / state::CheckpointStore::cell_filename(1, 0));
  const fs::path victim = dir / state::CheckpointStore::cell_filename(0, 1);
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-2, std::ios::end);
    char byte = 0x7F;
    f.write(&byte, 1);
  }
  const auto partial = core::run_sweep(points, opt);
  EXPECT_EQ(partial.report.cells_loaded, 2u);
  EXPECT_EQ(partial.report.cells_quarantined, 1u);
  EXPECT_TRUE(fs::exists(victim.string() + ".corrupt"));
  for (std::size_t i = 0; i < 4; ++i)
    expect_result_eq(straight.results[i], partial.results[i], "partial resume");
}

TEST(RunSweepResume, ParallelResumeMatchesSerial) {
  const auto dir = fresh_dir("eqos_test_sweep_resume_mt");
  const auto points = two_point_sweep();
  core::SweepOptions opt;
  opt.reps = 2;

  const auto reference = core::run_sweep(points, opt);  // plain serial run

  opt.threads = 8;
  opt.checkpoint.dir = dir.string();
  const auto persisted = core::run_sweep(points, opt);
  fs::remove(dir / state::CheckpointStore::cell_filename(0, 0));
  opt.checkpoint.resume = true;
  const auto resumed = core::run_sweep(points, opt);
  EXPECT_EQ(resumed.report.cells_loaded, 3u);
  for (std::size_t i = 0; i < 4; ++i) {
    expect_result_eq(reference.results[i], persisted.results[i], "8-thread persisted");
    expect_result_eq(reference.results[i], resumed.results[i], "8-thread resumed");
  }
}

TEST(RunSweepIsolation, OneBadPointDoesNotAbortTheSweep) {
  auto points = two_point_sweep();
  core::SweepPoint bad{&small_waxman(), tiny_experiment(40, 11), "bad"};
  bad.config.workload.arrival_rate = -1.0;  // Simulator ctor throws
  points.insert(points.begin() + 1, bad);

  core::SweepOptions opt;
  opt.checkpoint.max_retries = 0;
  const auto outcome = core::run_sweep(points, opt);
  ASSERT_EQ(outcome.results.size(), 3u);
  ASSERT_EQ(outcome.report.failures.size(), 1u);
  EXPECT_EQ(outcome.report.failures[0].point, 1u);
  EXPECT_EQ(outcome.report.failures[0].attempts, 1u);
  // The good points still computed; the bad slot stays default-constructed.
  EXPECT_GT(outcome.results[0].attempted, 0u);
  EXPECT_EQ(outcome.results[1].attempted, 0u);
  EXPECT_GT(outcome.results[2].attempted, 0u);

  // The failed cell reproduces the direct-call results for its neighbors.
  const auto direct = core::run_experiment(*points[0].graph, points[0].config);
  expect_result_eq(outcome.results[0], direct, "slot 0 unaffected by slot 1");
}

}  // namespace
}  // namespace eqos
