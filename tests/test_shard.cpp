// Tier-1 tests for the sharded deterministic engine: ladder-queue spill
// edge cases, the seeded partitioner, shard-count invariance of full
// simulations (checkpoint bytes compared), cross-shard checkpoint restore,
// and the stats-layer regressions that rode along (NaN percentiles,
// TimeWeightedMean monotonicity throws).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/scenario.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/heap_queue.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "topology/partition.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"
#include "util/stats.hpp"

namespace eqos {
namespace {

// Mirrors EventQueue::kMaxSpillEvents (private): the per-spill cap on how
// many far-future events move into rung buckets at once.
constexpr std::size_t kSpillCap = 32 * 1024;

constexpr std::uint32_t kKind = 1;

/// Registers a recording handler on `q` (must run before the first tagged
/// schedule) appending payloads to `order` in pop order.
void record_pops(sim::EventQueue& q, std::vector<std::uint64_t>& order) {
  q.set_handler(kKind, [&order](const sim::EventTag& t) { order.push_back(t.a); });
}

// ---- EventQueue spill edge cases -----------------------------------------

TEST(EventQueueSpill, AllEqualTimestampsPopInSeqOrder) {
  // Every event at one timestamp makes the spilled range degenerate
  // (bucket_width_ == 0); all events must land in bucket 0 and still pop in
  // insertion (seq) order.
  sim::EventQueue q;
  std::vector<std::uint64_t> order;
  record_pops(q, order);
  const std::size_t n = 1000;
  for (std::size_t i = 0; i < n; ++i)
    q.schedule(5.0, sim::EventTag{kKind, i, 0});
  while (q.step()) {
  }
  ASSERT_EQ(order.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(order[i], i);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueueSpill, EqualTimestampsMatchHeapQueue) {
  // Differential against the reference heap on a duplicate-heavy schedule.
  sim::EventQueue ladder;
  sim::BaselineHeapQueue heap;
  std::vector<std::uint64_t> ladder_order;
  std::vector<std::uint64_t> heap_order;
  record_pops(ladder, ladder_order);
  const double times[] = {3.0, 1.0, 3.0, 2.0, 1.0, 3.0, 1.0, 2.0};
  for (std::size_t i = 0; i < 4000; ++i) {
    const double t = times[i % 8];
    ladder.schedule(t, sim::EventTag{kKind, i, 0});
    heap.schedule(t, sim::EventTag{kKind, i, 0},
                  [&heap_order, i] { heap_order.push_back(i); });
  }
  while (ladder.step()) {
  }
  while (heap.step()) {
  }
  EXPECT_EQ(ladder_order, heap_order);
}

TEST(EventQueueSpill, OverflowAtSpillCapPlusOneMatchesHeapQueue) {
  // Exactly one event past the spill cap: the first spill moves kSpillCap
  // events and strands one in the far list; pop order must be unaffected.
  sim::EventQueue ladder;
  sim::BaselineHeapQueue heap;
  std::vector<std::uint64_t> ladder_order;
  std::vector<std::uint64_t> heap_order;
  record_pops(ladder, ladder_order);
  const std::size_t n = kSpillCap + 1;
  for (std::size_t i = 0; i < n; ++i) {
    // A mix of duplicates and distinct times, descending then ascending, so
    // the spill sees an adversarial distribution.
    const double t = static_cast<double>((i * 7919) % 1024) * 0.5;
    ladder.schedule(t, sim::EventTag{kKind, i, 0});
    heap.schedule(t, sim::EventTag{kKind, i, 0},
                  [&heap_order, i] { heap_order.push_back(i); });
  }
  while (ladder.step()) {
  }
  while (heap.step()) {
  }
  ASSERT_EQ(ladder_order.size(), n);
  EXPECT_EQ(ladder_order, heap_order);
}

// ---- Partitioner ----------------------------------------------------------

TEST(Partition, DeterministicBalancedAndCovering) {
  topology::WaxmanConfig wc;
  wc.nodes = 200;
  const topology::Graph g = topology::generate_waxman(wc, 7);
  const topology::Partition p1 = topology::partition_graph(g, 8, 99);
  const topology::Partition p2 = topology::partition_graph(g, 8, 99);
  EXPECT_EQ(p1.shard_of, p2.shard_of);  // same seed, same layout
  ASSERT_EQ(p1.shard_of.size(), g.num_nodes());
  std::vector<std::size_t> sizes(8, 0);
  for (const std::uint32_t s : p1.shard_of) {
    ASSERT_LT(s, 8u);
    ++sizes[s];
  }
  for (const std::size_t sz : sizes) {
    EXPECT_GE(sz, g.num_nodes() / 16);  // no shard starves
    EXPECT_LE(sz, g.num_nodes() / 4);   // no shard hoards
  }
  EXPECT_GT(topology::count_cut_links(g, p1), 0u);
  // A different seed grows the bisection from different roots.
  const topology::Partition p3 = topology::partition_graph(g, 8, 100);
  EXPECT_NE(p1.shard_of, p3.shard_of);
}

TEST(Partition, SingleShardAndClamping) {
  topology::WaxmanConfig wc;
  wc.nodes = 20;
  const topology::Graph g = topology::generate_waxman(wc, 7);
  const topology::Partition one = topology::partition_graph(g, 1, 5);
  EXPECT_EQ(one.shards, 1u);
  EXPECT_EQ(topology::count_cut_links(g, one), 0u);
  // More shards than nodes clamps to num_nodes.
  const topology::Partition many = topology::partition_graph(g, 64, 5);
  EXPECT_EQ(many.shards, g.num_nodes());
}

// ---- ShardedEngine determinism -------------------------------------------

/// Runs a fixed scripted schedule (handler reschedules across shards) and
/// returns the dispatch trace.
std::vector<std::pair<double, std::uint64_t>> engine_trace(std::uint32_t shards) {
  sim::ShardedEngine engine;
  engine.configure(shards, 10.0, [shards](const sim::EventTag& t) {
    return static_cast<std::uint32_t>(t.a % shards);
  });
  std::vector<std::pair<double, std::uint64_t>> trace;
  engine.set_handler(kKind, [&](const sim::EventTag& t) {
    trace.emplace_back(engine.now(), t.b);
    if (t.b < 500) {
      // Reschedule onto a rotating locus from inside the dispatch: at
      // shards > 1 this takes the mailbox detour.
      engine.schedule(engine.now() + 0.5 + static_cast<double>(t.b % 7),
                      sim::EventTag{kKind, t.b + 1, t.b + 1});
    }
  });
  for (std::uint64_t i = 0; i < 64; ++i)
    engine.schedule(static_cast<double>(i % 16), sim::EventTag{kKind, i, i});
  while (engine.step()) {
  }
  return trace;
}

TEST(ShardedEngine, TraceInvariantAcrossShardCounts) {
  const auto t1 = engine_trace(1);
  const auto t2 = engine_trace(2);
  const auto t8 = engine_trace(8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

// ---- Full-simulation shard invariance ------------------------------------

struct SimResult {
  std::string checkpoint;
  sim::SimulationStats stats;
};

/// One deterministic run: populate, scripted SRLG scenario plus stochastic
/// churn, then a checkpoint snapshot of the complete state.
SimResult run_sim(const topology::Graph& graph, std::uint32_t shards,
                  std::size_t events) {
  net::NetworkConfig ncfg;
  net::Network network(graph, ncfg);
  sim::WorkloadConfig wl;
  wl.qos.bmin_kbps = 100.0;
  wl.qos.bmax_kbps = 500.0;
  wl.qos.increment_kbps = 50.0;
  wl.arrival_rate = 0.01;
  wl.termination_rate = 0.01;
  wl.seed = 4242;
  sim::ShardPlan plan = sim::make_shard_plan(graph, shards,
                                             ncfg, 77);
  sim::Simulator sim(network, wl, plan);
  sim.populate(40);

  fault::FaultScenario scenario;
  scenario.define_group("conduit", {0, 1, 2});
  scenario.fail_group(50.0, "conduit");
  scenario.repair_group(250.0, "conduit");
  scenario.fail_link(120.0, 3);
  scenario.repair_link(300.0, 3);
  scenario.stochastic().link_failure_rate = 1e-4;
  scenario.stochastic().repair.rate = 1e-2;
  scenario.stochastic().auto_repair = true;
  sim.load_scenario(scenario);
  sim.run_events(events);

  SimResult r;
  std::ostringstream out;
  sim.save_checkpoint(out);
  r.checkpoint = out.str();
  r.stats = sim.stats();
  return r;
}

TEST(ShardInvariance, WaxmanCheckpointBitIdentical) {
  topology::WaxmanConfig wc;
  wc.nodes = 120;
  const topology::Graph g = topology::generate_waxman(wc, 11);
  const SimResult r1 = run_sim(g, 1, 300);
  const SimResult r2 = run_sim(g, 2, 300);
  const SimResult r8 = run_sim(g, 8, 300);
  EXPECT_GT(r1.stats.failure_events, 0u);
  EXPECT_EQ(r1.checkpoint, r2.checkpoint);
  EXPECT_EQ(r1.checkpoint, r8.checkpoint);
  EXPECT_EQ(r1.stats.arrival_events, r8.stats.arrival_events);
  EXPECT_EQ(r1.stats.failure_events, r8.stats.failure_events);
  EXPECT_EQ(r1.stats.repair_events, r8.stats.repair_events);
}

TEST(ShardPlanLookahead, DerivesFromMinimumDetectionDelay) {
  topology::WaxmanConfig wc;
  wc.nodes = 60;
  const topology::Graph g = topology::generate_waxman(wc, 5);

  net::NetworkConfig legacy;
  legacy.recovery_detect_time = 0.7;
  EXPECT_DOUBLE_EQ(sim::make_shard_plan(g, 4, legacy, 77).lookahead, 0.7);

  // Protocol on: the jittered detection draw comes from [min, max], so the
  // conservative window is the minimum — the soonest a failure on one shard
  // can trigger recovery activity on another.
  net::NetworkConfig proto;
  proto.recovery_protocol = true;
  proto.recovery_detect_min = 0.25;
  proto.recovery_detect_max = 0.9;
  EXPECT_DOUBLE_EQ(sim::make_shard_plan(g, 4, proto, 77).lookahead, 0.25);

  // Degenerate zero minimum falls back to the documented 1.0 (the barrier
  // needs a positive window; correctness never depends on it).
  proto.recovery_detect_min = 0.0;
  EXPECT_DOUBLE_EQ(sim::make_shard_plan(g, 4, proto, 77).lookahead, 1.0);
}

TEST(ShardInvariance, RecoveryProtocolNonzeroDelayBitIdentical) {
  // Regression for the recovery control plane: with the protocol on, a
  // nonzero detection delay, lossy signaling, and node failures racing
  // in-flight recoveries, the full simulation must stay bit-identical at
  // 1/2/8 shards — the detect/signal/timeout/deadline events cross shard
  // boundaries (locus: shard 0) and their relative order is pinned only by
  // the global (time, seq) merge.
  topology::WaxmanConfig wc;
  wc.nodes = 120;
  const topology::Graph g = topology::generate_waxman(wc, 11);

  const auto run = [&g](std::uint32_t shards) {
    net::NetworkConfig ncfg;
    ncfg.backup_scheme = net::BackupScheme::kDualDisjoint;
    ncfg.second_failure_policy = net::SecondFailurePolicy::kReestablish;
    ncfg.recovery_protocol = true;
    ncfg.recovery_detect_min = 0.2;
    ncfg.recovery_detect_max = 0.6;
    ncfg.recovery_signal_loss_prob = 0.3;
    ncfg.recovery_signal_timeout = 0.3;
    net::Network network(g, ncfg);
    sim::WorkloadConfig wl;
    wl.qos.bmin_kbps = 100.0;
    wl.qos.bmax_kbps = 500.0;
    wl.qos.increment_kbps = 50.0;
    wl.arrival_rate = 0.01;
    wl.termination_rate = 0.01;
    wl.seed = 4242;
    sim::Simulator sim(network, wl, sim::make_shard_plan(g, shards, ncfg, 77));
    sim.populate(60);

    fault::FaultScenario scenario;
    scenario.fail_node(40.0, 3);
    scenario.fail_node(40.4, 7);  // races the in-flight recoveries from 40.0
    scenario.repair_node(150.0, 3);
    scenario.repair_node(150.5, 7);
    scenario.stochastic().link_failure_rate = 1e-4;
    scenario.stochastic().repair.rate = 1e-2;
    scenario.stochastic().auto_repair = true;
    sim.load_scenario(scenario);
    sim.run_until(400.0);

    std::ostringstream out;
    sim.save_checkpoint(out);
    return std::make_pair(out.str(), sim.recovery()->stats().signals_sent);
  };

  const auto r1 = run(1);
  const auto r2 = run(2);
  const auto r8 = run(8);
  EXPECT_GT(r1.second, 0u);  // the protocol actually signaled
  EXPECT_EQ(r1.first, r2.first);
  EXPECT_EQ(r1.first, r8.first);
}

TEST(ShardInvariance, TransitStubCheckpointBitIdentical) {
  const topology::TransitStubGraph ts =
      topology::generate_transit_stub({}, 13);
  const SimResult r1 = run_sim(ts.graph, 1, 300);
  const SimResult r2 = run_sim(ts.graph, 2, 300);
  const SimResult r8 = run_sim(ts.graph, 8, 300);
  EXPECT_GT(r1.stats.failure_events, 0u);
  EXPECT_EQ(r1.checkpoint, r2.checkpoint);
  EXPECT_EQ(r1.checkpoint, r8.checkpoint);
}

TEST(ShardInvariance, CheckpointRestoresAcrossShardCounts) {
  // Save mid-run at 2 shards, restore into an 8-shard simulator, and both
  // must continue to byte-identical futures: shard count is an execution
  // layout, not simulation state.
  topology::WaxmanConfig wc;
  wc.nodes = 120;
  const topology::Graph g = topology::generate_waxman(wc, 11);

  const auto make = [&g](std::uint32_t shards, net::Network& network,
                         sim::WorkloadConfig& wl) {
    net::NetworkConfig ncfg;
    wl.qos.bmin_kbps = 100.0;
    wl.qos.bmax_kbps = 500.0;
    wl.qos.increment_kbps = 50.0;
    wl.arrival_rate = 0.01;
    wl.termination_rate = 0.01;
    wl.seed = 4242;
    return sim::Simulator(network, wl,
                          sim::make_shard_plan(g, shards,
                                               ncfg, 77));
  };

  net::NetworkConfig ncfg;
  net::Network net_a(g, ncfg);
  sim::WorkloadConfig wl_a;
  sim::Simulator sim_a = make(2, net_a, wl_a);
  sim_a.populate(40);
  fault::FaultScenario scenario;
  scenario.stochastic().link_failure_rate = 1e-4;
  scenario.stochastic().repair.rate = 1e-2;
  sim_a.load_scenario(scenario);
  sim_a.run_events(150);

  std::ostringstream mid;
  sim_a.save_checkpoint(mid);

  net::Network net_b(g, ncfg);
  sim::WorkloadConfig wl_b;
  sim::Simulator sim_b = make(8, net_b, wl_b);
  // The resume protocol reconstructs configuration (scenario included)
  // before restoring state, exactly like the sweep driver does.
  sim_b.load_scenario(scenario);
  std::istringstream in(mid.str());
  sim_b.load_checkpoint(in);

  sim_a.run_events(150);
  sim_b.run_events(150);
  std::ostringstream end_a;
  std::ostringstream end_b;
  sim_a.save_checkpoint(end_a);
  sim_b.save_checkpoint(end_b);
  EXPECT_EQ(end_a.str(), end_b.str());
  EXPECT_DOUBLE_EQ(sim_a.now(), sim_b.now());
}

// ---- Stats regressions ----------------------------------------------------

TEST(Percentile, EmptySampleIsNaNNotZero) {
  EXPECT_TRUE(std::isnan(util::percentile({}, 50.0)));
  const std::vector<double> pct = util::percentiles({}, {50.0, 95.0, 99.0});
  ASSERT_EQ(pct.size(), 3u);
  for (const double v : pct) EXPECT_TRUE(std::isnan(v));
}

TEST(Percentile, BatchMatchesSingleQueries) {
  const std::vector<double> samples{9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0};
  const std::vector<double> qs{0.0, 25.0, 50.0, 95.0, 100.0};
  const std::vector<double> batch = util::percentiles(samples, qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i)
    EXPECT_DOUBLE_EQ(batch[i], util::percentile(samples, qs[i]));
}

TEST(TimeWeightedMean, ThrowsOnNonMonotoneTime) {
  util::TimeWeightedMean m;
  m.update(1.0, 10.0);
  m.update(2.0, 20.0);
  EXPECT_THROW(m.update(1.5, 30.0), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(m.integral(1.5)), std::invalid_argument);
  // The series is still usable after the rejected updates.
  EXPECT_DOUBLE_EQ(m.integral(3.0), 10.0 + 20.0);
}

}  // namespace
}  // namespace eqos
