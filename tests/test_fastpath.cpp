// Tests for the goal-directed route-search fast path: HopDistanceField
// caching/invalidation, and bit-identical routes between the pruned member
// searches and the unpruned free functions on random topologies with failed
// links — at 1, 2, and 8 threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "net/network.hpp"
#include "topology/goal.hpp"
#include "topology/paths.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace eqos::topology {
namespace {

std::string route_str(const std::optional<Path>& p) {
  if (!p) return "none";
  std::ostringstream out;
  for (LinkId l : p->links) out << l << ',';
  return out.str();
}

// ---- HopDistanceField ----------------------------------------------------------

TEST(HopDistanceField, MatchesBfsHopCounts) {
  const Graph g = generate_waxman({60, 0.4, 0.3, true}, 21);
  HopDistanceField field(g);
  for (NodeId dst : {NodeId{0}, NodeId{17}, NodeId{59}}) {
    const std::uint32_t* dist = field.to_destination(dst);
    for (NodeId src = 0; src < g.num_nodes(); ++src) {
      const auto p = shortest_path(g, src, dst);
      if (p)
        EXPECT_EQ(dist[src], p->hops()) << "src " << src << " dst " << dst;
      else
        EXPECT_EQ(dist[src], HopDistanceField::kUnreachable);
    }
  }
}

TEST(HopDistanceField, CachesUntilVersionMoves) {
  const Graph g = generate_waxman({30, 0.4, 0.3, true}, 5);
  HopDistanceField field(g);
  (void)field.to_destination(3);
  (void)field.to_destination(3);
  (void)field.to_destination(3);
  EXPECT_EQ(field.rebuilds(), 1u);
  (void)field.to_destination(7);
  EXPECT_EQ(field.rebuilds(), 2u);

  const auto version = field.version();
  field.set_link_usable(0, true);  // no change: still usable
  EXPECT_EQ(field.version(), version);
  field.set_link_usable(0, false);
  EXPECT_GT(field.version(), version);
  (void)field.to_destination(3);
  EXPECT_EQ(field.rebuilds(), 3u);
  (void)field.to_destination(3);
  EXPECT_EQ(field.rebuilds(), 3u);
}

TEST(HopDistanceField, MasksUnusableLinks) {
  // A path graph 0-1-2: cutting the middle link strands node 0 from 2.
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  HopDistanceField field(g);
  EXPECT_EQ(field.to_destination(2)[0], 2u);
  field.set_link_usable(1, false);
  const std::uint32_t* dist = field.to_destination(2);
  EXPECT_EQ(dist[0], HopDistanceField::kUnreachable);
  EXPECT_EQ(dist[1], HopDistanceField::kUnreachable);
  EXPECT_EQ(dist[2], 0u);
  field.set_link_usable(1, true);
  EXPECT_EQ(field.to_destination(2)[0], 2u);
}

// ---- Pruned vs unpruned route equality -----------------------------------------

// Runs `queries` random (src, dst, filter) probes of all three searches on
// `g` with `failed` links down, comparing the pruned member searches (with a
// distance field masking the failed links) against the unpruned free
// functions.  Returns the serialized routes so callers can also compare
// across thread counts.
std::vector<std::string> probe_routes(const Graph& g, const std::vector<LinkId>& failed,
                                      std::uint64_t seed, std::size_t queries) {
  std::vector<char> down(g.num_links(), 0);
  for (LinkId l : failed) down[l] = 1;
  HopDistanceField field(g);
  for (LinkId l : failed) field.set_link_usable(l, false);
  PathSearch search;
  util::Rng rng(seed);

  // Pseudo-random per-link weights make the filters and widths non-trivial
  // but deterministic.
  std::vector<double> weight(g.num_links());
  for (auto& w : weight) w = rng.uniform(1.0, 10.0);

  std::vector<std::string> routes;
  routes.reserve(queries * 3);
  for (std::size_t q = 0; q < queries; ++q) {
    const auto src = static_cast<NodeId>(rng.index(g.num_nodes()));
    const auto dst = static_cast<NodeId>(rng.index(g.num_nodes()));
    const double cutoff = rng.uniform(0.0, 3.0);
    // Admissible subset of the field's usable links (never a superset).
    const auto filter = [&](LinkId l) { return !down[l] && weight[l] >= cutoff; };
    const auto width = [&](LinkId l) { return weight[l]; };
    util::DynamicBitset avoid(g.num_links());
    for (int k = 0; k < 6; ++k) avoid.set(rng.index(g.num_links()));

    const LinkFilter erased = filter;
    const std::uint32_t* bound = field.to_destination(dst);

    const auto s_fast = search.shortest(g, src, dst, filter, bound);
    const auto s_ref = shortest_path(g, src, dst, erased);
    EXPECT_EQ(route_str(s_fast), route_str(s_ref)) << "shortest " << src << "->" << dst;

    const auto w_fast = search.widest_shortest(g, src, dst, width, filter, bound);
    const auto w_ref = widest_shortest_path(g, src, dst, width, erased);
    EXPECT_EQ(route_str(w_fast), route_str(w_ref)) << "widest " << src << "->" << dst;

    const auto m_fast = search.min_overlap(g, src, dst, avoid, filter, bound);
    const auto m_ref = min_overlap_path(g, src, dst, avoid, erased);
    EXPECT_EQ(route_str(m_fast), route_str(m_ref)) << "overlap " << src << "->" << dst;

    routes.push_back(route_str(s_fast));
    routes.push_back(route_str(w_fast));
    routes.push_back(route_str(m_fast));
  }
  return routes;
}

std::vector<LinkId> random_failures(const Graph& g, std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  std::vector<LinkId> failed;
  for (std::size_t i = 0; i < n; ++i)
    failed.push_back(static_cast<LinkId>(rng.index(g.num_links())));
  return failed;
}

TEST(FastPath, PrunedEqualsUnprunedOnWaxman) {
  const Graph g = generate_waxman({80, 0.4, 0.25, true}, 31);
  probe_routes(g, random_failures(g, 1, 10), 77, 150);
}

TEST(FastPath, PrunedEqualsUnprunedOnTransitStub) {
  const auto ts = generate_transit_stub({}, 13);
  // Transit-stub failures routinely disconnect whole stubs — exactly the
  // case the unreachable-class pruning must get right.
  probe_routes(ts.graph, random_failures(ts.graph, 2, 12), 78, 150);
}

TEST(FastPath, RouteEqualityHoldsAcrossThreadCounts) {
  const Graph g = generate_waxman({60, 0.4, 0.3, true}, 41);
  const auto failed = random_failures(g, 3, 8);
  // Each worker probes an independent slice with its own field and search;
  // the concatenated routes must not depend on the thread count.
  const auto run = [&](std::size_t threads) {
    auto per_point = core::parallel_points(8, threads, [&](std::size_t i) {
      return probe_routes(g, failed, 100 + i, 25);
    });
    std::vector<std::string> all;
    for (auto& chunk : per_point)
      for (auto& r : chunk) all.push_back(std::move(r));
    return all;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

// ---- Network wiring ------------------------------------------------------------

TEST(FastPath, NetworkKeepsGoalFieldInSyncAcrossFailures) {
  net::NetworkConfig cfg;
  net::Network network(generate_waxman({40, 0.4, 0.3, true}, 9), cfg);
  net::ElasticQosSpec qos;
  qos.bmin_kbps = 100.0;
  qos.bmax_kbps = 300.0;
  qos.increment_kbps = 50.0;
  util::Rng rng(17);
  std::vector<net::ConnectionId> ids;
  for (int i = 0; i < 60; ++i) {
    const auto src = static_cast<NodeId>(rng.index(40));
    auto dst = static_cast<NodeId>(rng.index(39));
    if (dst >= src) ++dst;
    const auto outcome = network.request_connection(src, dst, qos);
    if (outcome.accepted) ids.push_back(outcome.id);
  }
  // audit() cross-checks the goal field's usable mask against every link's
  // failed flag (and everything else) after each mutation.
  const auto l0 = static_cast<LinkId>(rng.index(network.graph().num_links()));
  const auto l1 = static_cast<LinkId>(rng.index(network.graph().num_links()));
  network.fail_link(l0);
  network.audit();
  network.fail_link(l1);
  network.audit();
  network.repair_link(l0);
  network.audit();
  for (std::size_t i = 0; i < ids.size(); i += 2)
    if (network.is_active(ids[i])) network.terminate_connection(ids[i]);
  network.audit();
  network.repair_link(l1);
  network.audit();
}

}  // namespace
}  // namespace eqos::topology
