// Adversarial churn and failure-injection property tests.
//
// These tests hammer the Network with randomized interleavings of arrivals,
// terminations, failures, and repairs — validating the full invariant suite
// after every single operation — and cross-check the event reports against
// brute-force recomputation (chaining classification, conservation of
// elastic grants, monotonicity of retreat).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "net/network.hpp"
#include "topology/metrics.hpp"
#include "topology/waxman.hpp"
#include "util/rng.hpp"

namespace eqos::net {
namespace {

ElasticQosSpec paper_qos(double utility = 1.0) {
  ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  q.utility = utility;
  return q;
}

/// Drives a random operation mix; validates invariants every step.
class ChurnDriver {
 public:
  ChurnDriver(Network& net, std::uint64_t seed) : net_(net), rng_(seed) {}

  void step() {
    const double dice = rng_.uniform();
    if (dice < 0.45) {
      arrive();
    } else if (dice < 0.80) {
      terminate();
    } else if (dice < 0.92) {
      fail();
    } else {
      repair();
    }
    net_.validate_invariants();
  }

  [[nodiscard]] std::size_t arrivals() const noexcept { return arrivals_; }

 private:
  void arrive() {
    const std::size_t n = net_.graph().num_nodes();
    const auto src = static_cast<topology::NodeId>(rng_.index(n));
    auto dst = static_cast<topology::NodeId>(rng_.index(n - 1));
    if (dst >= src) ++dst;
    const auto outcome = net_.request_connection(src, dst, paper_qos());
    if (outcome.accepted) ++arrivals_;
  }

  void terminate() {
    if (net_.num_active() == 0) return;
    const auto& ids = net_.active_ids();
    net_.terminate_connection(ids[rng_.index(ids.size())]);
  }

  void fail() {
    // Cap simultaneous failures so the network stays operable.
    std::size_t failed = 0;
    for (topology::LinkId l = 0; l < net_.graph().num_links(); ++l)
      if (net_.link_state(l).failed()) ++failed;
    if (failed >= net_.graph().num_links() / 4) return;
    net_.fail_link(static_cast<topology::LinkId>(rng_.index(net_.graph().num_links())));
  }

  void repair() {
    for (topology::LinkId l = 0; l < net_.graph().num_links(); ++l) {
      if (net_.link_state(l).failed()) {
        net_.repair_link(l);
        return;
      }
    }
  }

  Network& net_;
  util::Rng rng_;
  std::size_t arrivals_ = 0;
};

// Parameterized over seeds and capacities: the invariant suite must survive
// hundreds of randomized operations in every configuration.
struct ChurnCase {
  std::uint64_t seed;
  double capacity;
  bool multiplexing;
  AdaptationScheme scheme;
};

class ChurnSweep : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(ChurnSweep, InvariantsSurviveRandomizedOperations) {
  const ChurnCase c = GetParam();
  const auto g = topology::generate_waxman({40, 0.35, 0.25, true}, c.seed);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = c.capacity;
  cfg.backup_multiplexing = c.multiplexing;
  cfg.adaptation = c.scheme;
  Network net(g, cfg);
  ChurnDriver driver(net, c.seed * 1000 + 1);
  for (int i = 0; i < 400; ++i) driver.step();
  EXPECT_GT(driver.arrivals(), 20u);  // the mix actually exercised arrivals
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, ChurnSweep,
    ::testing::Values(ChurnCase{1, 10'000.0, true, AdaptationScheme::kCoefficient},
                      ChurnCase{2, 2'000.0, true, AdaptationScheme::kCoefficient},
                      ChurnCase{3, 800.0, true, AdaptationScheme::kCoefficient},
                      ChurnCase{4, 2'000.0, false, AdaptationScheme::kCoefficient},
                      ChurnCase{5, 2'000.0, true, AdaptationScheme::kMaxUtility},
                      ChurnCase{6, 600.0, false, AdaptationScheme::kMaxUtility}));

TEST(ChurnProperties, ArrivalReportClassificationMatchesBruteForce) {
  const auto g = topology::generate_waxman({50, 0.35, 0.25, true}, 21);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 3'000.0;
  Network net(g, cfg);
  util::Rng rng(77);

  // Build some population, snapshotting link sets as ground truth.
  std::unordered_map<ConnectionId, util::DynamicBitset> links_of;
  for (int i = 0; i < 120; ++i) {
    const auto src = static_cast<topology::NodeId>(rng.index(50));
    auto dst = static_cast<topology::NodeId>(rng.index(49));
    if (dst >= src) ++dst;
    const auto outcome = net.request_connection(src, dst, paper_qos());
    if (outcome.accepted)
      links_of.emplace(outcome.id, net.connection(outcome.id).primary_links);
  }

  // One more arrival; verify every chained channel in the report against a
  // brute-force classification from the snapshots.
  const auto outcome = net.request_connection(0, 25, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  const auto& new_links = net.connection(outcome.id).primary_links;

  std::unordered_set<ConnectionId> direct;
  util::DynamicBitset direct_union(g.num_links());
  for (const auto& [id, bits] : links_of)
    if (net.is_active(id) && bits.intersects(new_links)) {
      direct.insert(id);
      direct_union |= bits;
    }
  std::unordered_set<ConnectionId> indirect;
  for (const auto& [id, bits] : links_of)
    if (net.is_active(id) && !direct.count(id) && bits.intersects(direct_union))
      indirect.insert(id);

  std::unordered_set<ConnectionId> reported_direct;
  std::unordered_set<ConnectionId> reported_indirect;
  for (const auto& ch : outcome.changes)
    (ch.chaining == Chaining::kDirect ? reported_direct : reported_indirect)
        .insert(ch.id);

  EXPECT_EQ(reported_direct, direct);
  EXPECT_EQ(reported_indirect, indirect);
  // Note: the brute force uses pre-arrival snapshots; no channel moved
  // between snapshot and arrival because establishment is atomic.
}

TEST(ChurnProperties, DirectlyChainedNeverGainOnArrival) {
  // Paper structure: arrival-driven moves of directly-chained channels go
  // down or stay, never up (retreat to zero then fair re-share cannot
  // exceed the previous fair share under equal utilities).
  const auto g = topology::generate_waxman({50, 0.35, 0.25, true}, 33);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 3'000.0;
  Network net(g, cfg);
  util::Rng rng(34);
  std::size_t down_or_stay = 0;
  std::size_t up = 0;
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<topology::NodeId>(rng.index(50));
    auto dst = static_cast<topology::NodeId>(rng.index(49));
    if (dst >= src) ++dst;
    const auto outcome = net.request_connection(src, dst, paper_qos());
    if (!outcome.accepted) continue;
    for (const auto& ch : outcome.changes) {
      if (ch.chaining != Chaining::kDirect) continue;
      if (ch.new_quanta <= ch.old_quanta)
        ++down_or_stay;
      else
        ++up;
    }
  }
  // Up-moves of direct channels are possible in principle (another direct
  // channel's retreat can free a bottleneck), but must be rare; the paper
  // models them as absent.
  EXPECT_GT(down_or_stay, 100u);
  EXPECT_LT(static_cast<double>(up),
            0.02 * static_cast<double>(down_or_stay + up) + 1.0);
}

TEST(ChurnProperties, TerminationChangesNeverGoDown) {
  const auto g = topology::generate_waxman({50, 0.35, 0.25, true}, 35);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 3'000.0;
  Network net(g, cfg);
  util::Rng rng(36);
  std::vector<ConnectionId> ids;
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<topology::NodeId>(rng.index(50));
    auto dst = static_cast<topology::NodeId>(rng.index(49));
    if (dst >= src) ++dst;
    const auto outcome = net.request_connection(src, dst, paper_qos());
    if (outcome.accepted) ids.push_back(outcome.id);
  }
  std::size_t checked = 0;
  while (!ids.empty()) {
    const std::size_t pick = rng.index(ids.size());
    const auto report = net.terminate_connection(ids[pick]);
    ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
    for (const auto& ch : report.changes) {
      EXPECT_GE(ch.new_quanta, ch.old_quanta);  // gains only
      ++checked;
    }
  }
  EXPECT_GT(checked, 50u);
  net.validate_invariants();
}

TEST(ChurnProperties, FailEverythingThenRepairEverything) {
  // Total network meltdown and full recovery: fail every link (connections
  // all drop), repair every link, and verify the network is fully usable.
  const auto g = topology::generate_waxman({30, 0.4, 0.3, true}, 41);
  Network net(g, NetworkConfig{});
  util::Rng rng(42);
  for (int i = 0; i < 80; ++i) {
    const auto src = static_cast<topology::NodeId>(rng.index(30));
    auto dst = static_cast<topology::NodeId>(rng.index(29));
    if (dst >= src) ++dst;
    (void)net.request_connection(src, dst, paper_qos());
  }
  const std::size_t before = net.num_active();
  ASSERT_GT(before, 40u);
  for (topology::LinkId l = 0; l < g.num_links(); ++l) {
    net.fail_link(l);
    net.validate_invariants();
  }
  EXPECT_EQ(net.num_active(), 0u);  // nowhere to run
  for (topology::LinkId l = 0; l < g.num_links(); ++l) net.repair_link(l);
  net.validate_invariants();
  const auto outcome = net.request_connection(0, 15, paper_qos());
  EXPECT_TRUE(outcome.accepted);
  EXPECT_DOUBLE_EQ(net.connection(outcome.id).reserved_kbps(), 500.0);
}

TEST(ChurnProperties, PreemptAllElasticFreezesAtMinimum) {
  const auto g = topology::generate_waxman({40, 0.35, 0.25, true}, 51);
  Network net(g, NetworkConfig{});
  util::Rng rng(52);
  for (int i = 0; i < 100; ++i) {
    const auto src = static_cast<topology::NodeId>(rng.index(40));
    auto dst = static_cast<topology::NodeId>(rng.index(39));
    if (dst >= src) ++dst;
    (void)net.request_connection(src, dst, paper_qos());
  }
  ASSERT_GT(net.mean_reserved_kbps(), 400.0);
  const std::size_t preempted = net.preempt_all_elastic();
  EXPECT_GT(preempted, 50u);
  EXPECT_DOUBLE_EQ(net.mean_reserved_kbps(), 100.0);
  for (ConnectionId id : net.active_ids())
    EXPECT_EQ(net.connection(id).extra_quanta, 0u);
  net.validate_invariants();
  // Idempotent.
  EXPECT_EQ(net.preempt_all_elastic(), 0u);
  // The next touching event re-grants: terminate one connection and check
  // that its sharers recovered something.
  const auto report = net.terminate_connection(net.active_ids().front());
  bool someone_gained = false;
  for (const auto& ch : report.changes)
    if (ch.new_quanta > ch.old_quanta) someone_gained = true;
  EXPECT_TRUE(someone_gained);
  net.validate_invariants();
}

TEST(ChurnProperties, QuantaAdjustmentCounterIsConsistent) {
  // Every grant/retreat bumps the counter; after silencing the network the
  // counter must be stable and positive.
  topology::Graph g(2);
  g.add_link(0, 1);
  NetworkConfig cfg;
  cfg.require_backup = false;
  cfg.link_capacity_kbps = 600.0;
  Network net(g, cfg);
  const auto a = net.request_connection(0, 1, paper_qos());
  const std::size_t after_first = net.stats().quanta_adjustments;
  EXPECT_EQ(after_first, 8u);  // 8 grants to the first connection
  const auto b = net.request_connection(0, 1, paper_qos());
  // Retreat of 8 + re-grants 4 + 4 = 16 more.
  EXPECT_EQ(net.stats().quanta_adjustments, after_first + 16u);
  (void)a;
  (void)b;
}

}  // namespace
}  // namespace eqos::net
