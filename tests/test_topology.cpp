// Unit tests for the topology substrate: graph, generators, paths, metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/graph.hpp"
#include "topology/metrics.hpp"
#include "topology/paths.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"

namespace eqos::topology {
namespace {

/// 0 - 1 - 2 - 3 plus chord 0-3 and spur 2-4.
Graph small_graph() {
  Graph g(5);
  g.add_link(0, 1);  // link 0
  g.add_link(1, 2);  // link 1
  g.add_link(2, 3);  // link 2
  g.add_link(0, 3);  // link 3
  g.add_link(2, 4);  // link 4
  return g;
}

// ---- Graph ------------------------------------------------------------------

TEST(Graph, BasicAccessors) {
  const Graph g = small_graph();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_links(), 5u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(Graph, LinkOtherEndpoint) {
  const Graph g = small_graph();
  EXPECT_EQ(g.link(0).other(0), 1u);
  EXPECT_EQ(g.link(0).other(1), 0u);
}

TEST(Graph, FindLinkBothDirections) {
  const Graph g = small_graph();
  ASSERT_TRUE(g.find_link(0, 3).has_value());
  EXPECT_EQ(*g.find_link(0, 3), 3u);
  EXPECT_EQ(*g.find_link(3, 0), 3u);
  EXPECT_FALSE(g.find_link(1, 4).has_value());
  EXPECT_FALSE(g.find_link(0, 99).has_value());
}

TEST(Graph, RejectsSelfLoopsAndDuplicates) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_THROW(g.add_link(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_link(1, 0), std::invalid_argument);
  EXPECT_THROW(g.add_link(0, 7), std::invalid_argument);
}

TEST(Graph, AddNodeExtends) {
  Graph g(2);
  const NodeId n = g.add_node(Point{0.5, 0.25});
  EXPECT_EQ(n, 2u);
  EXPECT_DOUBLE_EQ(g.position(n).x, 0.5);
  g.set_position(n, Point{0.1, 0.2});
  EXPECT_DOUBLE_EQ(g.position(n).y, 0.2);
}

TEST(Graph, DistanceFormula) {
  EXPECT_DOUBLE_EQ(distance(Point{0, 0}, Point{3, 4}), 5.0);
}

// ---- Waxman ------------------------------------------------------------------

TEST(Waxman, DeterministicInSeed) {
  const WaxmanConfig cfg{50, 0.4, 0.3, true};
  const Graph a = generate_waxman(cfg, 11);
  const Graph b = generate_waxman(cfg, 11);
  EXPECT_EQ(a.num_links(), b.num_links());
  for (LinkId l = 0; l < a.num_links(); ++l) {
    EXPECT_EQ(a.link(l).a, b.link(l).a);
    EXPECT_EQ(a.link(l).b, b.link(l).b);
  }
}

TEST(Waxman, DifferentSeedsDiffer) {
  const WaxmanConfig cfg{50, 0.4, 0.3, false};
  EXPECT_NE(generate_waxman(cfg, 1).num_links(), generate_waxman(cfg, 2).num_links());
}

TEST(Waxman, EnsureConnectedProducesOneComponent) {
  // Sparse parameters that would naturally fragment.
  const WaxmanConfig cfg{60, 0.1, 0.08, true};
  const Graph g = generate_waxman(cfg, 5);
  EXPECT_TRUE(is_connected(g));
}

TEST(Waxman, HigherAlphaMoreEdges) {
  const Graph sparse = generate_waxman({80, 0.15, 0.3, false}, 9);
  const Graph dense = generate_waxman({80, 0.9, 0.3, false}, 9);
  EXPECT_LT(sparse.num_links(), dense.num_links());
}

TEST(Waxman, BetaZeroMeansDistanceIndependent) {
  // Pure-random method: expected edges = alpha * C(n, 2).
  const Graph g = generate_waxman({100, 0.2, 0.0, false}, 13);
  const double expected = 0.2 * 4950.0;
  EXPECT_NEAR(static_cast<double>(g.num_links()), expected, 150.0);
}

TEST(Waxman, PaperInstanceStatistics) {
  // The paper's "Random" network: 100 nodes, ~354 edges.
  const Graph g = generate_waxman({100, 0.33, 0.20, true}, 7);
  EXPECT_TRUE(is_connected(g));
  EXPECT_NEAR(static_cast<double>(g.num_links()), 354.0, 40.0);
}

TEST(Waxman, CalibrateBetaHitsTarget) {
  const double beta = calibrate_beta(100, 0.33, 354, 21, 12.0);
  const WaxmanConfig cfg{100, 0.33, beta, false};
  double mean = 0.0;
  for (std::uint64_t s = 0; s < 4; ++s)
    mean += static_cast<double>(generate_waxman(cfg, 100 + s).num_links());
  mean /= 4.0;
  EXPECT_NEAR(mean, 354.0, 40.0);
}

TEST(Waxman, RejectsBadParameters) {
  EXPECT_THROW(generate_waxman({1, 0.3, 0.2, true}, 1), std::invalid_argument);
  EXPECT_THROW(generate_waxman({10, 0.0, 0.2, true}, 1), std::invalid_argument);
  EXPECT_THROW(generate_waxman({10, 1.5, 0.2, true}, 1), std::invalid_argument);
}

// ---- TransitStub ----------------------------------------------------------------

TEST(TransitStub, DefaultBuildsHundredNodes) {
  const TransitStubGraph ts = generate_transit_stub({}, 3);
  EXPECT_EQ(ts.graph.num_nodes(), 100u);
  EXPECT_EQ(ts.num_transit_nodes(), 4u);
  EXPECT_EQ(ts.num_stub_nodes(), 96u);
  EXPECT_TRUE(is_connected(ts.graph));
  EXPECT_EQ(ts.roles.size(), 100u);
  EXPECT_EQ(ts.domain_of.size(), 100u);
}

TEST(TransitStub, StubTrafficMustCrossTransit) {
  // Stub domains only reach each other through their transit gateways.
  const TransitStubGraph ts = generate_transit_stub({}, 3);
  NodeId a = 0;
  NodeId b = 0;
  bool found = false;
  for (NodeId i = 0; i < 100 && !found; ++i) {
    for (NodeId j = i + 1; j < 100 && !found; ++j) {
      if (ts.roles[i] == NodeRole::kStub && ts.roles[j] == NodeRole::kStub &&
          ts.domain_of[i] != ts.domain_of[j]) {
        a = i;
        b = j;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  // Allowing only intra-domain stub-stub links, no route should survive.
  const LinkFilter no_transit = [&](LinkId l) {
    const Link& link = ts.graph.link(l);
    return ts.roles[link.a] == NodeRole::kStub && ts.roles[link.b] == NodeRole::kStub &&
           ts.domain_of[link.a] == ts.domain_of[link.b];
  };
  EXPECT_FALSE(shortest_path(ts.graph, a, b, no_transit).has_value());
  EXPECT_TRUE(shortest_path(ts.graph, a, b).has_value());
}

TEST(TransitStub, MultiDomainConfig) {
  TransitStubConfig cfg;
  cfg.transit_domains = 2;
  cfg.nodes_per_transit = 3;
  cfg.stubs_per_transit_node = 2;
  cfg.nodes_per_stub = 4;
  const TransitStubGraph ts = generate_transit_stub(cfg, 17);
  EXPECT_EQ(ts.graph.num_nodes(), 2u * 3u + 2u * 3u * 2u * 4u);
  EXPECT_TRUE(is_connected(ts.graph));
}

TEST(TransitStub, Deterministic) {
  const TransitStubGraph a = generate_transit_stub({}, 42);
  const TransitStubGraph b = generate_transit_stub({}, 42);
  EXPECT_EQ(a.graph.num_links(), b.graph.num_links());
}

TEST(TransitStub, RejectsEmptyHierarchy) {
  TransitStubConfig cfg;
  cfg.transit_domains = 0;
  EXPECT_THROW(generate_transit_stub(cfg, 1), std::invalid_argument);
}

// ---- Paths --------------------------------------------------------------------------

TEST(Paths, ShortestPathHopCount) {
  const Graph g = small_graph();
  const auto p = shortest_path(g, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 1u);  // direct chord 0-3
  EXPECT_EQ(p->nodes.front(), 0u);
  EXPECT_EQ(p->nodes.back(), 3u);
}

TEST(Paths, ShortestPathRespectsFilter) {
  const Graph g = small_graph();
  const LinkFilter no_chord = [](LinkId l) { return l != 3; };
  const auto p = shortest_path(g, 0, 3, no_chord);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 3u);  // 0-1-2-3
}

TEST(Paths, ShortestPathDisconnected) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  EXPECT_FALSE(shortest_path(g, 0, 3).has_value());
}

TEST(Paths, TrivialSourceEqualsDestination) {
  const Graph g = small_graph();
  const auto p = shortest_path(g, 2, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
  EXPECT_EQ(p->nodes.size(), 1u);
}

TEST(Paths, PathLinksConnectConsecutiveNodes) {
  const Graph g = generate_waxman({40, 0.4, 0.3, true}, 3);
  const auto p = shortest_path(g, 0, 39);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->nodes.size(), p->links.size() + 1);
  for (std::size_t i = 0; i < p->links.size(); ++i) {
    const Link& l = g.link(p->links[i]);
    const std::set<NodeId> expect{p->nodes[i], p->nodes[i + 1]};
    EXPECT_EQ((std::set<NodeId>{l.a, l.b}), expect);
  }
}

TEST(Paths, WidestShortestPrefersWiderTie) {
  // Two 2-hop routes 0-1-3 and 0-2-3; widths make the latter better.
  Graph g(4);
  const LinkId a1 = g.add_link(0, 1);
  const LinkId a2 = g.add_link(1, 3);
  const LinkId b1 = g.add_link(0, 2);
  const LinkId b2 = g.add_link(2, 3);
  const LinkWidth width = [&](LinkId l) {
    if (l == a1) return 10.0;
    if (l == a2) return 1.0;  // bottleneck of route A
    if (l == b1) return 5.0;
    if (l == b2) return 5.0;  // bottleneck of route B = 5
    return 0.0;
  };
  const auto p = widest_shortest_path(g, 0, 3, width);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 2u);
  EXPECT_EQ(p->nodes[1], 2u);  // takes the wide route
}

TEST(Paths, WidestShortestStillMinimizesHops) {
  // A very wide 3-hop route must lose to a narrow 1-hop route.
  Graph g(4);
  const LinkId direct = g.add_link(0, 3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  const LinkWidth width = [&](LinkId l) { return l == direct ? 0.1 : 100.0; };
  const auto p = widest_shortest_path(g, 0, 3, width);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 1u);
}

TEST(Paths, MinOverlapFindsDisjointWhenItExists) {
  const Graph g = small_graph();
  const auto primary = shortest_path(g, 0, 3);  // chord 0-3
  ASSERT_TRUE(primary.has_value());
  const auto backup = min_overlap_path(g, 0, 3, primary->link_set(g.num_links()));
  ASSERT_TRUE(backup.has_value());
  EXPECT_EQ(backup->overlap(*primary), 0u);
  EXPECT_EQ(backup->hops(), 3u);  // 0-1-2-3
}

TEST(Paths, MinOverlapFallsBackToMaximallyDisjoint) {
  // Bridge topology: 0-1 is the only way out of 0; overlap is unavoidable.
  Graph g(4);
  g.add_link(0, 1);  // bridge
  g.add_link(1, 2);
  g.add_link(1, 3);
  g.add_link(2, 3);
  const auto primary = shortest_path(g, 0, 3);
  ASSERT_TRUE(primary.has_value());
  const auto backup = min_overlap_path(g, 0, 3, primary->link_set(g.num_links()));
  ASSERT_TRUE(backup.has_value());
  EXPECT_EQ(backup->overlap(*primary), 1u);  // only the bridge is shared
}

TEST(Paths, MinOverlapHonorsFilter) {
  const Graph g = small_graph();
  util::DynamicBitset avoid(g.num_links());
  const LinkFilter nothing = [](LinkId) { return false; };
  EXPECT_FALSE(min_overlap_path(g, 0, 3, avoid, nothing).has_value());
}

TEST(Paths, KShortestYieldsDistinctAscendingPaths) {
  const Graph g = small_graph();
  const auto paths = k_shortest_paths(g, 0, 3, 3);
  ASSERT_GE(paths.size(), 2u);
  EXPECT_EQ(paths[0].hops(), 1u);
  EXPECT_EQ(paths[1].hops(), 3u);
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_GE(paths[i].hops(), paths[i - 1].hops());
  std::set<std::vector<LinkId>> seen;
  for (const auto& p : paths) EXPECT_TRUE(seen.insert(p.links).second);
}

TEST(Paths, KShortestOnWaxman) {
  const Graph g = generate_waxman({50, 0.4, 0.3, true}, 77);
  const auto paths = k_shortest_paths(g, 2, 47, 5);
  ASSERT_FALSE(paths.empty());
  for (const auto& p : paths) {
    EXPECT_EQ(p.nodes.front(), 2u);
    EXPECT_EQ(p.nodes.back(), 47u);
    // Loopless.
    std::set<NodeId> nodes(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(nodes.size(), p.nodes.size());
  }
}

// ---- Metrics --------------------------------------------------------------------------

TEST(Metrics, ComponentsAndConnectivity) {
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(2, 3);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[4]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Metrics, HopDistances) {
  const Graph g = small_graph();
  const auto d = hop_distances(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[3], 1u);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[4], 3u);
}

TEST(Metrics, DiameterOfPathGraph) {
  Graph g(5);
  for (NodeId i = 0; i + 1 < 5; ++i) g.add_link(i, i + 1);
  EXPECT_EQ(diameter(g), 4u);
  EXPECT_NEAR(average_path_length(g), 2.0, 1e-12);  // known for P5
}

TEST(Metrics, GraphStatsBundle) {
  const Graph g = small_graph();
  const GraphStats s = graph_stats(g);
  EXPECT_EQ(s.nodes, 5u);
  EXPECT_EQ(s.links, 5u);
  EXPECT_TRUE(s.connected);
  EXPECT_EQ(s.diameter, 3u);
}

// Parameterized property: on random connected Waxman graphs, shortest paths
// are symmetric in length and consistent with BFS distances.
class PathPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathPropertySweep, ShortestPathMatchesBfsDistance) {
  const Graph g = generate_waxman({40, 0.3, 0.25, true}, GetParam());
  const auto dist = hop_distances(g, 0);
  for (NodeId dst = 1; dst < g.num_nodes(); dst += 7) {
    const auto p = shortest_path(g, 0, dst);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->hops(), dist[dst]);
    const auto back = shortest_path(g, dst, 0);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->hops(), dist[dst]);
  }
}

TEST_P(PathPropertySweep, MinOverlapNeverWorseThanDisjointSearch) {
  const Graph g = generate_waxman({40, 0.3, 0.25, true}, GetParam());
  for (NodeId dst = 1; dst < g.num_nodes(); dst += 11) {
    const auto primary = shortest_path(g, 0, dst);
    ASSERT_TRUE(primary.has_value());
    const auto bits = primary->link_set(g.num_links());
    const auto backup = min_overlap_path(g, 0, dst, bits);
    ASSERT_TRUE(backup.has_value());
    // If a fully disjoint path exists (filter out primary links), the
    // min-overlap path must also have zero overlap.
    const LinkFilter disjoint = [&](LinkId l) { return !bits.test(l); };
    const auto strict = shortest_path(g, 0, dst, disjoint);
    if (strict.has_value()) {
      EXPECT_EQ(backup->overlap(*primary), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathPropertySweep, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace eqos::topology
