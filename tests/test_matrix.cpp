// Unit tests for the dense/sparse linear algebra and the GTH solver.
#include <gtest/gtest.h>

#include <cmath>

#include "matrix/dense.hpp"
#include "matrix/gth.hpp"
#include "matrix/lu.hpp"
#include "matrix/sparse.hpp"
#include "util/rng.hpp"

namespace eqos::matrix {
namespace {

// ---- Dense ------------------------------------------------------------------

TEST(Dense, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  m(1, 0) = -5.0;
  EXPECT_DOUBLE_EQ(m(1, 0), -5.0);
}

TEST(Dense, IdentityMultiplication) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix i3 = Matrix::identity(3);
  const Matrix prod = a * i3;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
}

TEST(Dense, MultiplyKnownProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Dense, TransposeRoundTrip) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix att = a.transpose().transpose();
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
}

TEST(Dense, ApplyLeftAndRightAgreeViaTranspose) {
  const Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const Vector x{1.0, -1.0, 2.0};
  const Vector left = a.apply_left(x);          // x^T A
  const Vector right = a.transpose().apply(x);  // A^T x
  ASSERT_EQ(left.size(), right.size());
  for (std::size_t i = 0; i < left.size(); ++i) EXPECT_DOUBLE_EQ(left[i], right[i]);
}

TEST(Dense, ArithmeticOperators) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{4, 3}, {2, 1}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(1, 1), 3.0);
  const Matrix scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(Dense, Norms) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm1(v), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(dot(v, v), 25.0);
}

TEST(Dense, NormalizeL1) {
  Vector v{1.0, 3.0};
  normalize_l1(v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

// ---- LU --------------------------------------------------------------------------

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
  const Vector b{8, -11, -3};
  const Vector x = solve_linear(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
  EXPECT_NEAR(x[2], -1.0, 1e-10);
}

TEST(Lu, DeterminantWithPivoting) {
  // Requires a row swap (zero leading pivot).
  const Matrix a{{0, 1}, {1, 0}};
  LuDecomposition lu(a);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  util::Rng rng(21);
  Matrix a(5, 5);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
  for (std::size_t d = 0; d < 5; ++d) a(d, d) += 5.0;  // well-conditioned
  const Matrix inv = LuDecomposition(a).inverse();
  const Matrix prod = a * inv;
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c)
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

TEST(Lu, SingularMatrixThrows) {
  const Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(LuDecomposition{a}, SingularMatrixError);
}

TEST(Lu, MatrixRhsSolve) {
  const Matrix a{{4, 1}, {1, 3}};
  const Matrix b{{1, 0}, {0, 1}};
  const Matrix x = LuDecomposition(a).solve(b);
  const Matrix check = a * x;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      EXPECT_NEAR(check(r, c), r == c ? 1.0 : 0.0, 1e-12);
}

// Property sweep: random diagonally dominant systems solve to high accuracy.
class LuRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomSweep, ResidualIsTiny) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + static_cast<std::size_t>(GetParam()) % 8;
  Matrix a(n, n);
  Vector x_true(n);
  for (std::size_t r = 0; r < n; ++r) {
    x_true[r] = rng.uniform(-5.0, 5.0);
    double row = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = rng.uniform(-1.0, 1.0);
      row += std::abs(a(r, c));
    }
    a(r, r) += row + 1.0;
  }
  const Vector b = a.apply(x_true);
  const Vector x = solve_linear(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuRandomSweep, ::testing::Range(1, 13));

// ---- GTH --------------------------------------------------------------------------

TEST(Gth, TwoStateBirthDeath) {
  // 0 -> 1 at rate a, 1 -> 0 at rate b: pi = (b, a) / (a+b).
  const double a = 0.3;
  const double b = 0.7;
  const Matrix q{{-a, a}, {b, -b}};
  const Vector pi = gth_steady_state(q);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-12);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-12);
}

TEST(Gth, BirthDeathChainClosedForm) {
  // Birth rate l, death rate m: pi_i proportional to (l/m)^i.
  const std::size_t n = 6;
  const double l = 0.4;
  const double m = 0.9;
  Matrix q(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    q(i, i + 1) += l;
    q(i, i) -= l;
    q(i + 1, i) += m;
    q(i + 1, i + 1) -= m;
  }
  const Vector pi = gth_steady_state(q);
  const double rho = l / m;
  double norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) norm += std::pow(rho, static_cast<double>(i));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(pi[i], std::pow(rho, static_cast<double>(i)) / norm, 1e-12);
}

TEST(Gth, ExtremeRateRatiosStayAccurate) {
  // The regime of Figure 4: rates spanning ten orders of magnitude.
  const double tiny = 1e-10;
  const double big = 1.0;
  const Matrix q{{-tiny, tiny, 0.0},
                 {big, -2.0 * big, big},
                 {0.0, tiny, -tiny}};
  const Vector pi = gth_steady_state(q);
  double sum = 0.0;
  for (double p : pi) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Detailed balance check by flow: pi Q = 0.
  const Vector flow = q.transpose().apply(pi);
  for (double f : flow) EXPECT_NEAR(f, 0.0, 1e-15);
}

TEST(Gth, ReducibleChainThrows) {
  // State 1 cannot reach state 0.
  const Matrix q{{-1.0, 1.0}, {0.0, 0.0}};
  EXPECT_THROW(gth_steady_state(q), std::invalid_argument);
}

TEST(Gth, SingleStateChain) {
  const Matrix q{{0.0}};
  const Vector pi = gth_steady_state(q);
  ASSERT_EQ(pi.size(), 1u);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

TEST(Gth, DtmcStationary) {
  const Matrix p{{0.5, 0.5}, {0.25, 0.75}};
  const Vector pi = gth_steady_state_dtmc(p);
  // pi P = pi: pi = (1/3, 2/3).
  EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-12);
}

// Property sweep: GTH agrees with the LU-based balance-equation solve on
// random irreducible generators.
class GthVsLuSweep : public ::testing::TestWithParam<int> {};

TEST_P(GthVsLuSweep, AgreesWithLinearSolve) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 9;
  Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      q(i, j) = rng.uniform(0.01, 2.0);  // strictly positive => irreducible
      q(i, i) -= q(i, j);
    }
  }
  const Vector pi_gth = gth_steady_state(q);
  // Balance equations via LU.
  Matrix a = q.transpose();
  Vector b(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;
  b[n - 1] = 1.0;
  const Vector pi_lu = solve_linear(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(pi_gth[i], pi_lu[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GthVsLuSweep, ::testing::Range(1, 16));

// ---- CSR --------------------------------------------------------------------------

TEST(Csr, AssemblyMergesDuplicatesAndDropsZeros) {
  CsrMatrix m(2, 3, {{0, 1, 2.0}, {0, 1, 3.0}, {1, 2, 0.0}, {1, 0, -1.0}});
  EXPECT_EQ(m.nonzeros(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Csr, ApplyMatchesDense) {
  util::Rng rng(17);
  Matrix d(6, 5);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 5; ++c)
      if (rng.chance(0.4)) d(r, c) = rng.uniform(-3.0, 3.0);
  const CsrMatrix s = CsrMatrix::from_dense(d);
  Vector x(5);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const Vector ds = d.apply(x);
  const Vector ss = s.apply(x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(ds[i], ss[i], 1e-12);

  Vector y(6);
  for (auto& v : y) v = rng.uniform(-1.0, 1.0);
  const Vector dl = d.apply_left(y);
  const Vector sl = s.apply_left(y);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(dl[i], sl[i], 1e-12);
}

TEST(Csr, DenseRoundTrip) {
  const Matrix d{{1, 0, 2}, {0, 0, 0}, {0, 3, 0}};
  const Matrix back = CsrMatrix::from_dense(d).to_dense();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(back(r, c), d(r, c));
}

TEST(Csr, RowSums) {
  const CsrMatrix m(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, -4.0}});
  const Vector sums = m.row_sums();
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], -4.0);
}

}  // namespace
}  // namespace eqos::matrix
