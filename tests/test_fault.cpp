// Unit tests for the fault subsystem: scenario building and parsing,
// deterministic scripted/stochastic replay through the injector, the
// Simulator integration, and the invariant auditor under heavy churn.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "fault/audit.hpp"
#include "fault/injector.hpp"
#include "fault/scenario.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "topology/waxman.hpp"

namespace eqos::fault {
namespace {

net::ElasticQosSpec paper_qos() {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  return q;
}

// ---- Scenario building and validation ---------------------------------------

TEST(Scenario, BuilderAndSortedEvents) {
  FaultScenario s;
  s.define_group("conduit", {2, 5, 7});
  s.fail_link(60.0, 1).fail_group(50.0, "conduit").repair_link(90.0, 1);
  s.repair_group(150.0, "conduit");
  ASSERT_EQ(s.num_events(), 4u);
  const auto events = s.sorted_events();
  EXPECT_EQ(events[0].kind, FaultKind::kFailGroup);
  EXPECT_DOUBLE_EQ(events[0].time, 50.0);
  EXPECT_EQ(events[1].kind, FaultKind::kFailLink);
  EXPECT_EQ(events[1].target, 1u);
  EXPECT_EQ(events[3].kind, FaultKind::kRepairGroup);
  EXPECT_TRUE(is_failure(events[0].kind));
  EXPECT_FALSE(is_failure(events[3].kind));
  s.validate(10, 10);
}

TEST(Scenario, DefineGroupMergesAndIndexes) {
  FaultScenario s;
  const std::size_t i = s.define_group("g", {1, 2});
  EXPECT_EQ(s.define_group("g", {2, 3}), i);  // merge, dedup
  EXPECT_EQ(s.groups()[i].links, (std::vector<topology::LinkId>{1, 2, 3}));
  EXPECT_EQ(s.group_index("g"), i);
  EXPECT_THROW((void)s.group_index("nope"), std::invalid_argument);
  EXPECT_THROW(s.fail_group(1.0, "nope"), std::invalid_argument);
}

TEST(Scenario, ValidationRejectsBadInput) {
  FaultScenario out_of_range;
  out_of_range.fail_link(1.0, 99);
  EXPECT_THROW(out_of_range.validate(10, 10), std::invalid_argument);

  FaultScenario bad_node;
  bad_node.fail_node(1.0, 99);
  EXPECT_THROW(bad_node.validate(10, 10), std::invalid_argument);

  FaultScenario bad_group;
  bad_group.define_group("g", {50});
  EXPECT_THROW(bad_group.validate(10, 10), std::invalid_argument);

  FaultScenario rate_without_groups;
  rate_without_groups.stochastic().group_failure_rate = 1e-3;
  EXPECT_THROW(rate_without_groups.validate(10, 10), std::invalid_argument);

  FaultScenario negative_rate;
  negative_rate.stochastic().link_failure_rate = -1.0;
  EXPECT_THROW(negative_rate.validate(10, 10), std::invalid_argument);

  FaultScenario bad_repair;
  bad_repair.stochastic().link_failure_rate = 1e-3;
  bad_repair.stochastic().repair.kind = RepairDistribution::kWeibull;
  bad_repair.stochastic().repair.shape = 0.0;
  EXPECT_THROW(bad_repair.validate(10, 10), std::invalid_argument);
}

TEST(Scenario, RepairModelSampling) {
  util::Rng rng(7);
  RepairModel det;
  det.kind = RepairDistribution::kDeterministic;
  det.scale = 42.0;
  EXPECT_DOUBLE_EQ(det.sample(rng), 42.0);

  RepairModel weibull;
  weibull.kind = RepairDistribution::kWeibull;
  weibull.shape = 1.5;
  weibull.scale = 80.0;
  for (int i = 0; i < 100; ++i) EXPECT_GT(weibull.sample(rng), 0.0);

  RepairModel exp;
  exp.kind = RepairDistribution::kExponential;
  exp.rate = 1e-2;
  for (int i = 0; i < 100; ++i) EXPECT_GT(exp.sample(rng), 0.0);
}

TEST(Scenario, ParsesTextFormat) {
  const FaultScenario s = FaultScenario::parse_string(
      "# a comment\n"
      "group conduit 2 5 7\n"
      "group-weight conduit 2.5\n"
      "fail-group 50 conduit   # inline comment\n"
      "fail-link 60 4\n"
      "repair-link 90 4\n"
      "repair-group 180 conduit\n"
      "fail-node 200 3\n"
      "repair-node 250 3\n"
      "link-rate 1e-4\n"
      "link-rate 7 5e-4\n"
      "group-rate 1e-3\n"
      "repair weibull 1.5 80\n"
      "auto-repair on\n"
      "scripted-auto-repair off\n"
      "horizon 5000\n");
  ASSERT_EQ(s.groups().size(), 1u);
  EXPECT_EQ(s.groups()[0].links, (std::vector<topology::LinkId>{2, 5, 7}));
  EXPECT_DOUBLE_EQ(s.groups()[0].weight, 2.5);
  EXPECT_EQ(s.num_events(), 6u);
  EXPECT_DOUBLE_EQ(s.stochastic().link_failure_rate, 1e-4);
  ASSERT_EQ(s.stochastic().per_link_rates.size(), 1u);
  EXPECT_EQ(s.stochastic().per_link_rates[0].first, 7u);
  EXPECT_DOUBLE_EQ(s.stochastic().per_link_rates[0].second, 5e-4);
  EXPECT_DOUBLE_EQ(s.stochastic().rate_for(7), 5e-4);
  EXPECT_DOUBLE_EQ(s.stochastic().rate_for(3), 1e-4);
  EXPECT_DOUBLE_EQ(s.stochastic().group_failure_rate, 1e-3);
  EXPECT_EQ(s.stochastic().repair.kind, RepairDistribution::kWeibull);
  EXPECT_TRUE(s.stochastic().auto_repair);
  EXPECT_FALSE(s.auto_repair_scripted);
  EXPECT_DOUBLE_EQ(s.stochastic().horizon, 5000.0);
  s.validate(10, 10);
}

TEST(Scenario, ParseErrorsCarryLineNumbers) {
  try {
    (void)FaultScenario::parse_string("group g 1 2\nbogus-directive 1\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW((void)FaultScenario::parse_string("fail-group 10 undefined\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultScenario::parse_string("fail-link 10\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultScenario::parse_string("auto-repair maybe\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultScenario::parse_string("fail-link 10 2 extra\n"),
               std::invalid_argument);
}

// ---- Injector ---------------------------------------------------------------

/// Fills a network with deterministic traffic (Network is not movable: its
/// router holds references into it, so callers construct and we populate).
void populate(net::Network& network, std::uint64_t seed, int attempts) {
  util::Rng rng(seed);
  const std::size_t n = network.graph().num_nodes();
  for (int i = 0; i < attempts; ++i) {
    const auto src = static_cast<topology::NodeId>(rng.index(n));
    auto dst = static_cast<topology::NodeId>(rng.index(n - 1));
    if (dst >= src) ++dst;
    (void)network.request_connection(src, dst, paper_qos());
  }
}

Scheduler queue_scheduler(sim::EventQueue& queue) {
  return Scheduler{[&queue] { return queue.now(); },
                   [&queue](double t, std::function<void()> a) {
                     queue.schedule(t, std::move(a));
                   }};
}

struct ReplayTrace {
  std::vector<net::FailureReport> reports;
  std::size_t fault_events = 0;
  std::size_t repairs = 0;
  net::NetworkStats stats;
  InjectorStats injector;
};

/// Runs one scenario replay on a fresh identical network and captures every
/// FailureReport the injector emits.
ReplayTrace replay(const topology::Graph& g, const FaultScenario& scenario,
                   std::uint64_t scenario_seed, double until) {
  net::NetworkConfig cfg;
  cfg.second_failure_policy = net::SecondFailurePolicy::kReestablish;
  net::Network network(g, cfg);
  populate(network, 1234, 150);
  sim::EventQueue queue;
  ReplayTrace trace;
  Hooks hooks;
  hooks.on_failure = [&trace](const net::FailureReport& r) { trace.reports.push_back(r); };
  hooks.on_fault_event = [&trace] { ++trace.fault_events; };
  hooks.on_repair = [&trace] { ++trace.repairs; };
  FaultInjector injector(network, queue_scheduler(queue), hooks);
  InvariantAuditor auditor(network);
  injector.set_auditor(&auditor);
  injector.load_scenario(scenario, util::Rng(scenario_seed));
  queue.run_until(until);
  EXPECT_GT(auditor.checks_run(), 0u);
  trace.stats = network.stats();
  trace.injector = injector.stats();
  return trace;
}

void expect_identical(const ReplayTrace& a, const ReplayTrace& b) {
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const net::FailureReport& x = a.reports[i];
    const net::FailureReport& y = b.reports[i];
    EXPECT_EQ(x.link, y.link) << "report " << i;
    EXPECT_EQ(x.existing_before, y.existing_before) << "report " << i;
    EXPECT_EQ(x.primaries_hit, y.primaries_hit) << "report " << i;
    EXPECT_EQ(x.backups_activated, y.backups_activated) << "report " << i;
    EXPECT_EQ(x.connections_dropped, y.connections_dropped) << "report " << i;
    EXPECT_EQ(x.unprotected_victims, y.unprotected_victims) << "report " << i;
    EXPECT_EQ(x.reestablished_pair, y.reestablished_pair) << "report " << i;
    EXPECT_EQ(x.reestablished_degraded, y.reestablished_degraded) << "report " << i;
    EXPECT_EQ(x.activated_ids, y.activated_ids) << "report " << i;
    EXPECT_EQ(x.dropped_ids, y.dropped_ids) << "report " << i;
    EXPECT_EQ(x.reestablished_ids, y.reestablished_ids) << "report " << i;
    EXPECT_EQ(x.degraded_ids, y.degraded_ids) << "report " << i;
    EXPECT_EQ(x.drop_causes.primary_hit, y.drop_causes.primary_hit) << "report " << i;
    EXPECT_EQ(x.drop_causes.backup_hit_while_active, y.drop_causes.backup_hit_while_active)
        << "report " << i;
    EXPECT_EQ(x.drop_causes.double_hit, y.drop_causes.double_hit) << "report " << i;
  }
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.stats.failures_injected, b.stats.failures_injected);
  EXPECT_EQ(a.stats.connections_dropped, b.stats.connections_dropped);
  EXPECT_EQ(a.stats.backups_activated, b.stats.backups_activated);
  EXPECT_EQ(a.stats.unprotected_victims, b.stats.unprotected_victims);
  EXPECT_EQ(a.injector.scripted_failures, b.injector.scripted_failures);
  EXPECT_EQ(a.injector.poisson_failures, b.injector.poisson_failures);
  EXPECT_EQ(a.injector.burst_failures, b.injector.burst_failures);
  EXPECT_EQ(a.injector.auto_repairs, b.injector.auto_repairs);
}

TEST(Injector, ScriptedSrlgReplaysDeterministically) {
  // The acceptance scenario: an SRLG of 3 links failing together at t=50,
  // repaired at t=200, replayed twice — identical FailureReport sequences.
  const auto g = topology::generate_waxman({30, 0.4, 0.3, true}, 19);
  FaultScenario scenario;
  scenario.define_group("conduit", {0, 1, 2});
  scenario.fail_group(50.0, "conduit");
  scenario.repair_group(200.0, "conduit");
  const ReplayTrace a = replay(g, scenario, 99, 300.0);
  const ReplayTrace b = replay(g, scenario, 99, 300.0);
  EXPECT_EQ(a.reports.size(), 3u);  // one report per group link
  EXPECT_EQ(a.injector.scripted_failures, 1u);
  EXPECT_EQ(a.injector.scripted_repairs, 1u);
  expect_identical(a, b);
}

TEST(Injector, StochasticScenarioReplaysDeterministically) {
  // Per-link Poisson + weighted SRLG bursts + Weibull auto-repair: same
  // seed, bit-identical trace; different seed, (almost surely) different.
  const auto g = topology::generate_waxman({30, 0.4, 0.3, true}, 19);
  FaultScenario scenario;
  scenario.define_group("east", {0, 1, 2});
  scenario.define_group("west", {3, 4}, 2.0);
  scenario.stochastic().link_failure_rate = 2e-3;
  scenario.stochastic().group_failure_rate = 1e-3;
  scenario.stochastic().repair.kind = RepairDistribution::kWeibull;
  scenario.stochastic().repair.shape = 1.5;
  scenario.stochastic().repair.scale = 60.0;
  scenario.stochastic().horizon = 2000.0;
  const ReplayTrace a = replay(g, scenario, 7, 2500.0);
  const ReplayTrace b = replay(g, scenario, 7, 2500.0);
  EXPECT_GT(a.injector.poisson_failures + a.injector.burst_failures, 10u);
  expect_identical(a, b);

  const ReplayTrace c = replay(g, scenario, 8, 2500.0);
  EXPECT_NE(a.reports.size(), 0u);
  // Different seeds should not produce the identical failure sequence.
  bool same = a.reports.size() == c.reports.size();
  if (same) {
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
      if (a.reports[i].link != c.reports[i].link) same = false;
    }
  }
  EXPECT_FALSE(same);
}

TEST(Injector, HorizonStopsStochasticProcesses) {
  const auto g = topology::generate_waxman({30, 0.4, 0.3, true}, 19);
  net::Network network(g, net::NetworkConfig{});
  populate(network, 1, 50);
  sim::EventQueue queue;
  std::size_t fired = 0;
  Hooks hooks;
  hooks.on_fault_event = [&fired] { ++fired; };
  FaultInjector injector(network, queue_scheduler(queue), hooks);
  FaultScenario scenario;
  scenario.stochastic().link_failure_rate = 1e-2;  // busy process
  scenario.stochastic().horizon = 100.0;
  injector.load_scenario(scenario, util::Rng(3));
  queue.run_until(5000.0);
  EXPECT_GT(fired, 0u);
  EXPECT_TRUE(queue.empty());  // nothing scheduled past the horizon
}

TEST(Injector, RequiresScheduler) {
  const auto g = topology::generate_waxman({10, 0.5, 0.4, true}, 3);
  net::Network network(g, net::NetworkConfig{});
  EXPECT_THROW(FaultInjector(network, Scheduler{}, Hooks{}), std::invalid_argument);
}

// ---- Simulator integration --------------------------------------------------

sim::WorkloadConfig failure_workload(std::uint64_t seed) {
  sim::WorkloadConfig wl;
  wl.qos = paper_qos();
  wl.arrival_rate = 1e-3;
  wl.termination_rate = 1e-3;
  wl.failure_rate = 5e-4;
  wl.repair_rate = 1e-2;
  wl.seed = seed;
  return wl;
}

/// Runs one full Simulator pass and returns (estimates, network stats,
/// simulation stats).
struct SimRun {
  sim::ModelEstimates est;
  net::NetworkStats net_stats;
  sim::SimulationStats sim_stats;
};

SimRun run_sim(std::uint64_t seed) {
  const auto g = topology::generate_waxman({30, 0.4, 0.3, true}, 19);
  net::Network network(g, net::NetworkConfig{});
  sim::Simulator sim(network, failure_workload(seed));
  sim.populate(300);
  sim::TransitionRecorder recorder(paper_qos(), sim.now());
  sim.attach_recorder(&recorder);
  sim.run_events(600);
  return {recorder.estimates(sim.now(), network), network.stats(), sim.stats()};
}

TEST(SimulatorFault, SameSeedRunsAreBitIdentical) {
  // The determinism regression: two full Simulator runs with the same seed
  // and config must produce bit-identical recorder statistics.
  const SimRun a = run_sim(2024);
  const SimRun b = run_sim(2024);
  EXPECT_EQ(a.est.pf, b.est.pf);
  EXPECT_EQ(a.est.ps, b.est.ps);
  EXPECT_EQ(a.est.pf_failure, b.est.pf_failure);
  EXPECT_EQ(a.est.mean_bandwidth_kbps, b.est.mean_bandwidth_kbps);
  EXPECT_EQ(a.est.unprotected_time, b.est.unprotected_time);
  EXPECT_EQ(a.est.occupancy, b.est.occupancy);
  EXPECT_EQ(a.est.arrivals_observed, b.est.arrivals_observed);
  EXPECT_EQ(a.est.failures_observed, b.est.failures_observed);
  EXPECT_EQ(a.net_stats.accepted, b.net_stats.accepted);
  EXPECT_EQ(a.net_stats.failures_injected, b.net_stats.failures_injected);
  EXPECT_EQ(a.net_stats.backups_activated, b.net_stats.backups_activated);
  EXPECT_EQ(a.net_stats.connections_dropped, b.net_stats.connections_dropped);
  EXPECT_EQ(a.net_stats.quanta_adjustments, b.net_stats.quanta_adjustments);
  EXPECT_EQ(a.sim_stats.arrival_events, b.sim_stats.arrival_events);
  EXPECT_EQ(a.sim_stats.failure_events, b.sim_stats.failure_events);
  EXPECT_EQ(a.sim_stats.repair_events, b.sim_stats.repair_events);

  // And a different seed must not replay the same run.
  const SimRun c = run_sim(2025);
  EXPECT_NE(a.est.mean_bandwidth_kbps, c.est.mean_bandwidth_kbps);
}

TEST(SimulatorFault, LoadScenarioDrivesFailures) {
  const auto g = topology::generate_waxman({30, 0.4, 0.3, true}, 19);
  net::Network network(g, net::NetworkConfig{});
  sim::WorkloadConfig wl = failure_workload(11);
  wl.failure_rate = 0.0;  // scenario-only failures
  sim::Simulator sim(network, wl);
  sim.populate(200);
  FaultScenario scenario;
  scenario.define_group("conduit", {0, 1, 2});
  scenario.fail_group(50.0, "conduit");
  scenario.repair_group(150.0, "conduit");
  sim.load_scenario(scenario);
  InvariantAuditor auditor(network);
  sim.injector().set_auditor(&auditor);
  sim.run_until(200.0);
  EXPECT_EQ(network.stats().failures_injected, 3u);
  EXPECT_EQ(network.stats().repairs, 3u);
  EXPECT_EQ(sim.injector().stats().scripted_failures, 1u);
  EXPECT_EQ(sim.injector().stats().scripted_repairs, 1u);
  EXPECT_EQ(auditor.checks_run(), 2u);  // one per scripted event
  for (topology::LinkId l = 0; l < 3; ++l)
    EXPECT_FALSE(network.link_state(l).failed());
}

// ---- Invariant auditor under churn ------------------------------------------

void churn_with_audit(bool multiplexing) {
  // 10k workload events with failures and repairs, auditing the full
  // invariant set after every single event.
  const auto g = topology::generate_waxman({30, 0.4, 0.3, true}, 19);
  net::NetworkConfig cfg;
  cfg.backup_multiplexing = multiplexing;
  cfg.link_capacity_kbps = 2000.0;  // tight: elasticity and debt both bite
  cfg.require_backup = false;
  cfg.second_failure_policy = net::SecondFailurePolicy::kReestablish;
  net::Network network(g, cfg);
  sim::WorkloadConfig wl;
  wl.qos = paper_qos();
  wl.arrival_rate = 1e-3;
  wl.termination_rate = 1e-3;
  wl.failure_rate = 2e-4;  // failures throughout the run
  wl.repair_rate = 1e-2;
  wl.seed = 77;
  sim::Simulator sim(network, wl);
  sim.populate(300);
  InvariantAuditor auditor(network);
  sim.injector().set_auditor(&auditor);  // also audits every repair
  for (int i = 0; i < 10'000; ++i) {
    sim.run_events(1);
    ASSERT_NO_THROW(network.audit()) << "event " << i;
  }
  // The run must actually have exercised the failure machinery.
  EXPECT_GT(network.stats().failures_injected, 0u);
  EXPECT_GT(network.stats().backups_activated, 0u);
  EXPECT_GT(auditor.checks_run(), 0u);
  auditor.check("at end of churn");  // full external recomputation too
}

TEST(Audit, ChurnWithMultiplexing) { churn_with_audit(true); }

TEST(Audit, ChurnWithoutMultiplexing) { churn_with_audit(false); }

TEST(Audit, ExternalRecomputationMatchesHealthyNetwork) {
  const auto g = topology::generate_waxman({30, 0.4, 0.3, true}, 19);
  net::Network network(g, net::NetworkConfig{});
  populate(network, 5, 200);
  EXPECT_NO_THROW(audit_network(network));
  InvariantAuditor auditor(network);
  auditor.check("after populate");
  EXPECT_EQ(auditor.checks_run(), 1u);
}

}  // namespace
}  // namespace eqos::fault
