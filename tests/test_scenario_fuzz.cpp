// Randomized robustness tests for the fault-scenario DSL parser.
//
// The parser's contract: any input either parses into a FaultScenario or is
// rejected with std::invalid_argument carrying the offending line number —
// it never crashes, loops, or throws anything else, no matter how mangled
// the script.  Two layers exercise that:
//
//  * a deterministic corpus of known-bad scripts (malformed commands,
//    out-of-order timestamps, overflowing ids, trailing garbage), each of
//    which must be rejected with a "line N:" message;
//  * a seeded fuzz loop assembling scripts from a token soup (valid
//    directives, numbers, junk, control characters).  Whatever comes out,
//    parse_string must return or throw std::invalid_argument — under
//    ASan/UBSan builds this doubles as a memory-safety sweep.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "fault/scenario.hpp"
#include "util/rng.hpp"

namespace eqos {
namespace {

/// Parses and reports what happened; FAILs the test on any exception that
/// is not std::invalid_argument.
enum class ParseOutcome { kParsed, kRejected };

ParseOutcome try_parse(const std::string& text, std::string* message = nullptr) {
  try {
    (void)fault::FaultScenario::parse_string(text);
    return ParseOutcome::kParsed;
  } catch (const std::invalid_argument& e) {
    if (message != nullptr) *message = e.what();
    return ParseOutcome::kRejected;
  }
  // Anything else propagates and fails the test with the real exception.
}

// ---- Deterministic corpus: every entry must be rejected with a line ------

struct BadScript {
  const char* why;
  const char* text;
};

const BadScript kBadScripts[] = {
    {"unknown directive", "frobnicate 1 2 3\n"},
    {"missing time", "fail-link\n"},
    {"missing link id", "fail-link 10\n"},
    {"non-numeric time", "fail-link soon 3\n"},
    {"negative link id", "fail-link 10 -3\n"},
    {"trailing token", "fail-link 10 3 extra\n"},
    {"undefined group", "fail-group 10 conduit\n"},
    {"empty group", "group conduit\n"},
    {"out-of-order timestamps", "fail-link 20 1\nfail-link 10 2\n"},
    {"duplicate timestamp", "fail-link 20 1\nfail-node 20 2\n"},
    {"huge node id", "fail-node 10 99999999999999999999999999\n"},
    {"huge link id", "group g 99999999999999999999999999\nfail-group 1 g\n"},
    {"bad on/off", "auto-repair maybe\n"},
    {"unknown repair distribution", "repair lognormal 1 2\n"},
    {"repair missing parameter", "repair weibull 1.5\n"},
    {"link-rate fractional link id", "link-rate 1.5 2e-4\n"},
    {"group-weight missing weight", "group g 1\ngroup-weight g\n"},
    {"horizon missing value", "horizon\n"},
};

TEST(ScenarioFuzz, KnownBadScriptsRejectedWithLineNumber) {
  for (const BadScript& bad : kBadScripts) {
    SCOPED_TRACE(bad.why);
    std::string message;
    ASSERT_EQ(try_parse(bad.text, &message), ParseOutcome::kRejected)
        << "parser accepted: " << bad.text;
    EXPECT_NE(message.find("line "), std::string::npos)
        << "rejection lacks a line number: " << message;
  }
}

TEST(ScenarioFuzz, LineNumberPointsAtTheOffendingLine) {
  // Three good lines, then the bad one: the message must say line 4 (the
  // comment and blank line count — the number must match what an editor
  // shows).
  const std::string text =
      "# srlg table\n"
      "group conduit 1 2 3\n"
      "\n"
      "fail-group ten conduit\n";
  std::string message;
  ASSERT_EQ(try_parse(text, &message), ParseOutcome::kRejected);
  EXPECT_NE(message.find("line 4:"), std::string::npos) << message;
}

// ---- Seeded fuzz loop ----------------------------------------------------

/// Token soup: valid directive heads, plausible operands, and junk.  The
/// mix keeps the fuzzer on the parser's decision boundary — pure garbage
/// dies at the directive dispatch, pure valid text never explores the
/// operand error paths.
const char* const kTokens[] = {
    "group",      "fail-link",  "repair-link", "fail-node",   "repair-node",
    "fail-group", "repair-group", "link-rate", "group-rate",  "group-weight",
    "repair",     "exponential", "weibull",    "deterministic", "auto-repair",
    "scripted-auto-repair", "horizon", "on",   "off",         "conduit",
    "0",          "1",          "7",           "42",          "1e-4",
    "-3",         "2.5",        "1.5e308",     "-1.5e308",    "nan",
    "inf",        "99999999999999999999", "#", "",            "\t",
    "maybe",      "g g g",      "\x01\x7f",    "0x10",        ".",
};

std::string random_script(util::Rng& rng) {
  const std::size_t lines = 1 + static_cast<std::size_t>(rng.uniform(0.0, 8.0));
  std::string text;
  for (std::size_t l = 0; l < lines; ++l) {
    const std::size_t words = static_cast<std::size_t>(rng.uniform(0.0, 6.0));
    for (std::size_t w = 0; w < words; ++w) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(std::size(kTokens))));
      text += kTokens[pick < std::size(kTokens) ? pick : 0];
      text += rng.chance(0.1) ? '\t' : ' ';
    }
    // Occasionally omit the newline so the last line ends mid-token.
    if (!rng.chance(0.05)) text += '\n';
  }
  return text;
}

TEST(ScenarioFuzz, RandomTokenSoupNeverCrashes) {
  util::Rng rng(0xfa22f0u);
  std::size_t parsed = 0;
  std::size_t rejected = 0;
  for (std::size_t iter = 0; iter < 3000; ++iter) {
    const std::string text = random_script(rng);
    SCOPED_TRACE("iteration " + std::to_string(iter) + ": " + text);
    std::string message;
    if (try_parse(text, &message) == ParseOutcome::kParsed) {
      ++parsed;
    } else {
      ++rejected;
      EXPECT_NE(message.find("line "), std::string::npos)
          << "rejection lacks a line number: " << message;
    }
  }
  // The soup must actually explore both sides of the boundary.
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(ScenarioFuzz, RandomBytesNeverCrash) {
  // Below the token layer: raw byte noise (NULs, high bits, no structure).
  util::Rng rng(0xdeadf00du);
  for (std::size_t iter = 0; iter < 500; ++iter) {
    std::string text;
    const std::size_t len = static_cast<std::size_t>(rng.uniform(0.0, 256.0));
    for (std::size_t i = 0; i < len; ++i)
      text += static_cast<char>(static_cast<unsigned char>(rng.uniform(0.0, 256.0)));
    SCOPED_TRACE("iteration " + std::to_string(iter));
    (void)try_parse(text);  // parsed or rejected — either is fine, UB is not
  }
}

}  // namespace
}  // namespace eqos
