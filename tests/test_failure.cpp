// Unit tests for link failure handling: backup activation, QoS retreat,
// replacement backups, drops, overbooking debt, and repair.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "net/network.hpp"
#include "topology/waxman.hpp"

namespace eqos::net {
namespace {

using topology::Graph;

ElasticQosSpec paper_qos() {
  ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = 50.0;
  return q;
}

/// Diamond: two disjoint 2-hop routes 0-1-3 (links 0,1) and 0-2-3 (links 2,3).
Graph diamond() {
  Graph g(4);
  g.add_link(0, 1);  // 0
  g.add_link(1, 3);  // 1
  g.add_link(0, 2);  // 2
  g.add_link(2, 3);  // 3
  return g;
}

TEST(Failure, ActivatesBackupAndSwitchesPrimary) {
  Network net(diamond(), NetworkConfig{});
  const auto outcome = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  const topology::LinkId hit = net.connection(outcome.id).primary.links[0];
  const auto old_backup = net.connection(outcome.id).backups.front().path;

  const auto report = net.fail_link(hit);
  EXPECT_EQ(report.primaries_hit, 1u);
  EXPECT_EQ(report.backups_activated, 1u);
  EXPECT_EQ(report.connections_dropped, 0u);

  ASSERT_TRUE(net.is_active(outcome.id));
  const DrConnection& c = net.connection(outcome.id);
  EXPECT_EQ(c.primary.links, old_backup.links);  // switched over
  EXPECT_EQ(c.activations, 1u);
  net.validate_invariants();
}

TEST(Failure, ActivatedChannelRestartsAtMinimumThenRegains) {
  // Alone in the network, the activated channel immediately regains to bmax
  // through redistribution; the switchover itself is at bmin (footnote 4).
  Network net(diamond(), NetworkConfig{});
  const auto outcome = net.request_connection(0, 3, paper_qos());
  const topology::LinkId hit = net.connection(outcome.id).primary.links[0];
  net.fail_link(hit);
  EXPECT_EQ(net.connection(outcome.id).extra_quanta, 8u);  // re-granted
  net.validate_invariants();
}

TEST(Failure, DropsConnectionWithoutBackup) {
  // Path graph: full-disjoint backups impossible; unprotected connection
  // dies with its link.
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  NetworkConfig cfg;
  cfg.require_backup = false;
  cfg.require_full_disjoint = true;  // forces kUnprotected
  Network net(g, cfg);
  const auto outcome = net.request_connection(0, 2, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  EXPECT_FALSE(net.connection(outcome.id).has_backup());

  const auto report = net.fail_link(0);
  EXPECT_EQ(report.connections_dropped, 1u);
  EXPECT_FALSE(net.is_active(outcome.id));
  EXPECT_EQ(net.num_active(), 0u);
  net.validate_invariants();
}

TEST(Failure, BackupCrossingFailedLinkIsLostAndReplaced) {
  // Ring of 5: backup route of a 1-hop primary goes the long way; failing a
  // backup link forces re-establishment (possible via remaining links? On a
  // plain ring there are exactly two disjoint routes, so the replacement
  // must fail and the connection becomes unprotected).
  Graph g(5);
  for (topology::NodeId i = 0; i < 5; ++i) g.add_link(i, (i + 1) % 5);
  Network net(g, NetworkConfig{});
  const auto outcome = net.request_connection(0, 1, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  const DrConnection& before = net.connection(outcome.id);
  ASSERT_TRUE(before.has_backup());
  const topology::LinkId backup_link = before.backups.front().path.links[0];

  const auto report = net.fail_link(backup_link);
  EXPECT_EQ(report.primaries_hit, 0u);
  EXPECT_EQ(report.backups_lost, 1u);
  const DrConnection& after = net.connection(outcome.id);
  // With the default maximal-disjointness policy a degraded replacement is
  // allowed (it may overlap the primary on the ring remnant).
  if (after.has_backup()) {
    for (topology::LinkId l : after.backups.front().path.links) EXPECT_NE(l, backup_link);
  } else {
    EXPECT_EQ(after.backup_status, BackupStatus::kUnprotected);
  }
  net.validate_invariants();
}

TEST(Failure, ChainedChannelsRetreatOnActivation) {
  // Victim's backup route is shared with a bystander channel holding elastic
  // grants; activation must retreat the bystander.
  Graph g = diamond();
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 1000.0;
  cfg.require_backup = false;  // we place backups implicitly via routing
  Network net(g, cfg);

  // Victim: 0->3 via one route, backup on the other.
  NetworkConfig cfg2 = cfg;
  cfg2.require_backup = true;
  Network net2(diamond(), cfg2);
  const auto victim = net2.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(victim.accepted);
  const auto backup_path = net2.connection(victim.id).backups.front().path;
  // Bystander rides the backup route's first link.
  const topology::Link bl = net2.graph().link(backup_path.links[0]);
  const auto bystander = net2.request_connection(bl.a, bl.b, paper_qos());
  ASSERT_TRUE(bystander.accepted);
  ASSERT_GT(net2.connection(bystander.id).extra_quanta, 0u);

  const auto report = net2.fail_link(net2.connection(victim.id).primary.links[0]);
  EXPECT_EQ(report.backups_activated, 1u);
  bool bystander_reported = false;
  for (const auto& ch : report.changes) {
    if (ch.id == bystander.id) {
      bystander_reported = true;
      EXPECT_EQ(ch.chaining, Chaining::kDirect);
    }
  }
  EXPECT_TRUE(bystander_reported);
  net2.validate_invariants();
}

TEST(Failure, IdempotentAndUnknownLink) {
  Network net(diamond(), NetworkConfig{});
  const auto a = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(a.accepted);
  const auto r1 = net.fail_link(net.connection(a.id).primary.links[0]);
  EXPECT_EQ(net.stats().failures_injected, 1u);
  // Double failure of the same link is a complete no-op: no victims, no
  // activations, no strandings, no stats movement.
  const auto r2 = net.fail_link(r1.link);
  EXPECT_EQ(net.stats().failures_injected, 1u);
  EXPECT_EQ(r2.primaries_hit, 0u);
  EXPECT_EQ(r2.backups_activated, 0u);
  EXPECT_EQ(r2.unprotected_victims, 0u);
  EXPECT_EQ(r2.reestablished_pair, 0u);
  EXPECT_EQ(r2.reestablished_degraded, 0u);
  EXPECT_EQ(r2.drop_causes.total(), 0u);
  EXPECT_TRUE(r2.activated_ids.empty());
  EXPECT_TRUE(r2.dropped_ids.empty());
  EXPECT_EQ(net.stats().unprotected_victims, 0u);
  EXPECT_THROW(net.fail_link(99), std::invalid_argument);
  net.validate_invariants();
}

TEST(Failure, RepairOfNeverFailedLinkIsRejected) {
  Network net(diamond(), NetworkConfig{});
  // Repairing an alive link does nothing and bumps no counters.
  EXPECT_EQ(net.repair_link(0), 0u);
  EXPECT_EQ(net.stats().repairs, 0u);
  // An unknown link is an error, not a no-op.
  EXPECT_THROW((void)net.repair_link(99), std::invalid_argument);
  EXPECT_EQ(net.stats().repairs, 0u);
}

TEST(Failure, RoutingAvoidsFailedLinks) {
  NetworkConfig cfg;
  cfg.require_backup = false;  // only one route remains after the failure
  Network net(diamond(), cfg);
  net.fail_link(0);  // kills route 0-1-3
  const auto outcome = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(outcome.accepted);
  const DrConnection& c = net.connection(outcome.id);
  for (topology::LinkId l : c.primary.links) EXPECT_NE(l, 0u);
  EXPECT_FALSE(c.has_backup());  // the surviving route cannot protect itself
  net.validate_invariants();

  // A dependability-required request, by contrast, is rejected outright.
  Network strict(diamond(), NetworkConfig{});
  strict.fail_link(0);
  const auto rejected = strict.request_connection(0, 3, paper_qos());
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.reject_reason, RejectReason::kNoBackupRoute);
}

TEST(Failure, RepairRestoresAdmissibilityAndBackups) {
  NetworkConfig cfg;
  cfg.require_full_disjoint = true;
  Network net(diamond(), cfg);
  const auto a = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(a.accepted);
  // Fail a backup link: connection loses protection, and no fully disjoint
  // replacement exists on the 3 remaining links.
  const topology::LinkId backup_link = net.connection(a.id).backups.front().path.links[0];
  net.fail_link(backup_link);
  EXPECT_FALSE(net.connection(a.id).has_backup());

  const std::size_t restored = net.repair_link(backup_link);
  EXPECT_EQ(restored, 1u);
  EXPECT_TRUE(net.connection(a.id).has_backup());
  EXPECT_EQ(net.stats().repairs, 1u);
  EXPECT_EQ(net.repair_link(backup_link), 0u);  // idempotent
  net.validate_invariants();
}

TEST(Failure, SecondFailureWithoutBackupDropsOrSurvives) {
  // Two successive failures: after the first activation the connection gets
  // a replacement backup only if the topology still offers one.
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 3);
  g.add_link(0, 2);
  g.add_link(2, 3);
  g.add_link(0, 3);  // third route: direct chord
  Network net(g, NetworkConfig{});
  const auto a = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(a.accepted);
  const auto first_hit = net.connection(a.id).primary.links[0];
  const auto r1 = net.fail_link(first_hit);
  EXPECT_EQ(r1.backups_activated, 1u);
  ASSERT_TRUE(net.is_active(a.id));
  // With the chord present a replacement backup exists.
  EXPECT_TRUE(net.connection(a.id).has_backup());
  const auto second_hit = net.connection(a.id).primary.links[0];
  const auto r2 = net.fail_link(second_hit);
  EXPECT_EQ(r2.backups_activated, 1u);
  EXPECT_TRUE(net.is_active(a.id));
  net.validate_invariants();
}

TEST(Failure, OverbookingDebtSettledAfterActivation) {
  // Build a saturated multiplexed network, then fail links until the debt
  // machinery has to evict; invariants must hold throughout.
  const auto g = topology::generate_waxman({30, 0.4, 0.3, true}, 19);
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 600.0;  // very tight
  Network net(g, cfg);
  util::Rng rng(5);
  for (int i = 0; i < 250; ++i) {
    const auto src = static_cast<topology::NodeId>(rng.index(30));
    auto dst = static_cast<topology::NodeId>(rng.index(29));
    if (dst >= src) ++dst;
    net.request_connection(src, dst, paper_qos());
  }
  ASSERT_GT(net.num_active(), 20u);
  for (topology::LinkId l = 0; l < 6; ++l) {
    net.fail_link(l);
    net.validate_invariants();  // admission ledger must never overflow
  }
  // Survivors must never traverse failed links.
  for (ConnectionId id : net.active_ids()) {
    const DrConnection& c = net.connection(id);
    for (topology::LinkId l : c.primary.links) EXPECT_GT(l, 5u);
  }
}

TEST(Failure, NodeFailureKillsEndpointConnections) {
  // Connections terminating at the failed node lose every route and drop;
  // transit connections switch over where a backup survives.
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(3, 4);
  g.add_link(4, 0);  // 5-ring
  NetworkConfig cfg;
  Network net(g, cfg);
  const auto at_node = net.request_connection(1, 2, paper_qos());   // ends at 2
  const auto transit = net.request_connection(1, 3, paper_qos());   // may cross 2
  ASSERT_TRUE(at_node.accepted);
  ASSERT_TRUE(transit.accepted);

  const auto reports = net.fail_node(2);
  EXPECT_EQ(reports.size(), 2u);  // degree of node 2
  EXPECT_FALSE(net.is_active(at_node.id));  // endpoint connection is gone
  // The transit connection survives on the other side of the ring.
  ASSERT_TRUE(net.is_active(transit.id));
  for (topology::LinkId l : net.connection(transit.id).primary.links) {
    EXPECT_NE(g.link(l).a, 2u);
    EXPECT_NE(g.link(l).b, 2u);
  }
  net.validate_invariants();

  const std::size_t restored = net.repair_node(2);
  for (const auto& adj : g.adjacent(2))
    EXPECT_FALSE(net.link_state(adj.link).failed());
  (void)restored;
  net.validate_invariants();
  // New connections may route through node 2 again.
  EXPECT_TRUE(net.request_connection(1, 2, paper_qos()).accepted);
}

TEST(Failure, NodeFailureValidation) {
  Network net(diamond(), NetworkConfig{});
  EXPECT_THROW((void)net.fail_node(99), std::invalid_argument);
  EXPECT_THROW((void)net.repair_node(99), std::invalid_argument);
}

TEST(Failure, StatsAccumulate) {
  Network net(diamond(), NetworkConfig{});
  const auto a = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(a.accepted);
  net.fail_link(net.connection(a.id).primary.links[0]);
  EXPECT_EQ(net.stats().failures_injected, 1u);
  EXPECT_EQ(net.stats().backups_activated, 1u);
}

// ---- Second-failure degradation (SecondFailurePolicy) -----------------------

/// 100 Kb/s inelastic spec so one connection fills a 100 Kb/s link exactly.
ElasticQosSpec tight_qos() {
  ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 100.0;
  q.increment_kbps = 50.0;
  return q;
}

TEST(Failure, SharedLinkBackupVictimIsUnprotectedAndDoubleHit) {
  // Bridge topology: 0-1 has two routes, but node 2 hangs off bridge 1-2.
  // The 0<->2 connection gets only a maximally-disjoint backup sharing the
  // bridge; failing the bridge kills both paths at once.
  Graph g(4);
  g.add_link(0, 1);  // 0: direct
  g.add_link(0, 3);  // 1: detour...
  g.add_link(3, 1);  // 2: ...0-3-1
  g.add_link(1, 2);  // 3: the bridge
  Network net(g, NetworkConfig{});  // default kDrop
  const auto a = net.request_connection(0, 2, paper_qos());
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(net.connection(a.id).has_backup());
  EXPECT_EQ(net.connection(a.id).backup_overlap_links(), 1u);

  const auto report = net.fail_link(3);
  EXPECT_EQ(report.backups_died_with_primary, 1u);
  EXPECT_EQ(report.unprotected_victims, 1u);
  EXPECT_EQ(report.connections_dropped, 1u);
  EXPECT_EQ(report.drop_causes.double_hit, 1u);
  EXPECT_EQ(report.drop_causes.primary_hit, 0u);
  // kDrop never attempts re-establishment.
  EXPECT_EQ(report.drop_causes.reestablish_failed, 0u);
  EXPECT_EQ(report.reestablished_pair, 0u);
  EXPECT_EQ(net.stats().unprotected_victims, 1u);
  EXPECT_EQ(net.stats().drop_causes.double_hit, 1u);
  EXPECT_FALSE(net.is_active(a.id));
  net.audit();
}

/// Three-route ladder for the rescue tests: 0-1 directly (link 0), via 2
/// (links 1,2), via 3-5 (links 3,4,5), and optionally via 4-6 (links 6,7,8).
/// With 100 Kb/s links and tight_qos every link fits exactly one channel.
Graph ladder(bool with_second_rescue_route) {
  Graph g(with_second_rescue_route ? 7 : 6);
  g.add_link(0, 1);  // 0: B's primary
  g.add_link(0, 2);  // 1: backup...
  g.add_link(2, 1);  // 2: ...0-2-1
  g.add_link(0, 3);  // 3: rescue route...
  g.add_link(3, 5);  // 4
  g.add_link(5, 1);  // 5: ...0-3-5-1
  if (with_second_rescue_route) {
    g.add_link(0, 4);  // 6: second rescue route...
    g.add_link(4, 6);  // 7
    g.add_link(6, 1);  // 8: ...0-4-6-1
  }
  return g;
}

NetworkConfig rescue_config() {
  NetworkConfig cfg;
  cfg.link_capacity_kbps = 100.0;
  cfg.require_full_disjoint = true;
  cfg.second_failure_policy = SecondFailurePolicy::kReestablish;
  return cfg;
}

/// Drives the shared setup: admit B (primary 0-1, backup 0-2-1), park
/// blockers on the rescue-route head links, kill B's backup, free the
/// rescue routes by terminating the blockers, leaving B unprotected with
/// every rescue route idle.  Returns B's id.
ConnectionId strand_setup(Network& net, bool with_second_rescue_route) {
  const auto b = net.request_connection(0, 1, tight_qos());
  EXPECT_TRUE(b.accepted);
  EXPECT_EQ(net.connection(b.id).primary.links, std::vector<topology::LinkId>{0});
  EXPECT_EQ(net.connection(b.id).backups.front().path.links,
            (std::vector<topology::LinkId>{1, 2}));

  // Blockers hold the rescue routes' head links with committed bandwidth.
  const auto c1 = net.request_connection(0, 3, tight_qos());
  EXPECT_TRUE(c1.accepted);
  std::optional<ArrivalOutcome> c2;
  if (with_second_rescue_route) {
    c2 = net.request_connection(0, 4, tight_qos());
    EXPECT_TRUE(c2->accepted);
  }

  // Kill B's backup: no replacement exists (rescue routes' head links are
  // full, the direct link carries B itself).
  const auto r = net.fail_link(1);
  EXPECT_GE(r.backups_lost, 1u);
  EXPECT_FALSE(net.connection(b.id).has_backup());

  // Terminations free the rescue routes but trigger no backup retry.
  net.terminate_connection(c1.id);
  if (c2) net.terminate_connection(c2->id);
  EXPECT_FALSE(net.connection(b.id).has_backup());
  net.audit();
  return b.id;
}

TEST(Failure, RescueEstablishesFreshDisjointPair) {
  Graph g = ladder(true);
  Network net(g, rescue_config());
  const ConnectionId b = strand_setup(net, true);

  // Second failure hits B's primary; both rescue routes are free, so B is
  // re-homed onto a fresh fully-disjoint pair.
  const auto report = net.fail_link(0);
  EXPECT_EQ(report.primaries_hit, 1u);
  EXPECT_EQ(report.unprotected_victims, 1u);
  EXPECT_EQ(report.reestablished_pair, 1u);
  EXPECT_EQ(report.reestablished_ids, std::vector<ConnectionId>{b});
  EXPECT_EQ(report.reestablished_degraded, 0u);
  EXPECT_EQ(report.connections_dropped, 0u);
  EXPECT_EQ(report.drop_causes.total(), 0u);

  ASSERT_TRUE(net.is_active(b));
  const DrConnection& c = net.connection(b);
  EXPECT_EQ(c.rescues, 1u);
  ASSERT_TRUE(c.has_backup());
  EXPECT_EQ(c.backup_overlap_links(), 0u);
  for (topology::LinkId l : c.primary.links) {
    EXPECT_FALSE(net.link_state(l).failed());
    EXPECT_FALSE(c.backup_on_link(l));
  }
  EXPECT_EQ(net.stats().reestablished_pair, 1u);
  EXPECT_EQ(net.stats().connections_dropped, 0u);
  net.audit();
}

TEST(Failure, RescueDegradesToSinglePathAndRecoversOnRepair) {
  // Only one rescue route exists: B comes back degraded (single path at
  // bmin, unprotected), then regains a backup when the repair frees a
  // disjoint route.
  Graph g = ladder(false);
  Network net(g, rescue_config());
  const ConnectionId b = strand_setup(net, false);

  const auto report = net.fail_link(0);
  EXPECT_EQ(report.unprotected_victims, 1u);
  EXPECT_EQ(report.reestablished_pair, 0u);
  EXPECT_EQ(report.reestablished_degraded, 1u);
  EXPECT_EQ(report.degraded_ids, std::vector<ConnectionId>{b});
  EXPECT_EQ(report.connections_dropped, 0u);

  ASSERT_TRUE(net.is_active(b));
  const DrConnection& c = net.connection(b);
  EXPECT_EQ(c.rescues, 1u);
  EXPECT_FALSE(c.has_backup());
  EXPECT_EQ(c.backup_status, BackupStatus::kUnprotected);
  EXPECT_EQ(c.primary.links, (std::vector<topology::LinkId>{3, 4, 5}));
  EXPECT_EQ(net.stats().reestablished_degraded, 1u);
  net.audit();

  // The pending backup retry fires on the next repair: 0-2-1 comes back and
  // is fully disjoint from the degraded primary.
  EXPECT_EQ(net.repair_link(1), 1u);
  EXPECT_TRUE(net.connection(b).has_backup());
  EXPECT_EQ(net.connection(b).backups.front().path.links, (std::vector<topology::LinkId>{1, 2}));
  net.audit();
}

TEST(Failure, RescueFailureDropsWithFullAccounting) {
  // No rescue route at all: the re-establishment attempt fails and the drop
  // is accounted as a primary hit that went through a failed rescue.
  Graph g(3);
  g.add_link(0, 1);  // 0: primary
  g.add_link(0, 2);  // 1: backup...
  g.add_link(2, 1);  // 2: ...0-2-1
  Network net(g, rescue_config());
  const auto b = net.request_connection(0, 1, tight_qos());
  ASSERT_TRUE(b.accepted);
  net.fail_link(1);  // backup dies, no replacement
  EXPECT_FALSE(net.connection(b.id).has_backup());

  const auto report = net.fail_link(0);
  EXPECT_EQ(report.unprotected_victims, 1u);
  EXPECT_EQ(report.reestablished_pair, 0u);
  EXPECT_EQ(report.reestablished_degraded, 0u);
  EXPECT_EQ(report.connections_dropped, 1u);
  EXPECT_EQ(report.dropped_ids, std::vector<ConnectionId>{b.id});
  EXPECT_EQ(report.drop_causes.primary_hit, 1u);
  EXPECT_EQ(report.drop_causes.reestablish_failed, 1u);
  EXPECT_EQ(report.drop_causes.double_hit, 0u);
  EXPECT_FALSE(net.is_active(b.id));
  EXPECT_EQ(net.stats().drop_causes.primary_hit, 1u);
  EXPECT_EQ(net.stats().drop_causes.reestablish_failed, 1u);
  net.audit();
}

TEST(Failure, SecondFailureOnActivePathCountsBackupHit) {
  // Ring of 6: after the first failure the victim runs on its former backup
  // with no replacement possible; a second failure on that active path
  // leaves the network disconnected, and the drop is attributed to the
  // backup-hit-while-active cause.
  Graph g(6);
  for (topology::NodeId i = 0; i < 6; ++i) g.add_link(i, (i + 1) % 6);
  NetworkConfig cfg;
  cfg.second_failure_policy = SecondFailurePolicy::kReestablish;
  Network net(g, cfg);
  const auto a = net.request_connection(0, 3, paper_qos());
  ASSERT_TRUE(a.accepted);

  const auto r1 = net.fail_link(net.connection(a.id).primary.links[0]);
  EXPECT_EQ(r1.backups_activated, 1u);
  ASSERT_TRUE(net.is_active(a.id));
  EXPECT_EQ(net.connection(a.id).activations, 1u);
  EXPECT_FALSE(net.connection(a.id).has_backup());  // ring offers no spare

  const auto r2 = net.fail_link(net.connection(a.id).primary.links[0]);
  EXPECT_EQ(r2.unprotected_victims, 1u);
  EXPECT_EQ(r2.connections_dropped, 1u);
  EXPECT_EQ(r2.drop_causes.backup_hit_while_active, 1u);
  EXPECT_EQ(r2.drop_causes.primary_hit, 0u);
  EXPECT_EQ(r2.drop_causes.reestablish_failed, 1u);
  EXPECT_FALSE(net.is_active(a.id));
  net.audit();
}

}  // namespace
}  // namespace eqos::net
