// Failure recovery: dependable real-time communication under cable cuts.
//
// A command-and-control style deployment: a moderately loaded network whose
// links suffer persistent failures (power outages, cable cuts — the
// failures the paper calls out as most common).  Each DR-connection holds a
// passive, multiplexed backup; when its primary dies the backup activates
// instantly at the minimum QoS, elastic users sharing those links retreat,
// and a replacement backup is sought.
//
// The example cuts a sequence of the busiest links and reports, after each
// cut: survivors, drops, protection coverage, and the average bandwidth —
// demonstrating both the dependability mechanism and the elastic retreat.
#include <algorithm>
#include <iostream>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topology/waxman.hpp"
#include "util/table.hpp"

int main() {
  using namespace eqos;
  const topology::Graph g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  net::Network network(g, net::NetworkConfig{});
  sim::WorkloadConfig w;
  w.qos = net::ElasticQosSpec{100.0, 500.0, 50.0, 1.0};
  w.seed = 7;
  sim::Simulator sim(network, w);
  const std::size_t established = sim.populate(2500);
  std::cout << "Loaded " << established << " DR-connections; every one holds a "
            << "primary plus a passive backup.\n";
  std::cout << "Initial: mean " << util::Table::num(network.mean_reserved_kbps())
            << " Kb/s, protected fraction "
            << util::Table::num(network.protected_fraction(), 3) << "\n\n";

  // Cut the five busiest links, one after another, without repair.
  std::vector<topology::LinkId> by_load(g.num_links());
  for (topology::LinkId l = 0; l < g.num_links(); ++l) by_load[l] = l;
  std::sort(by_load.begin(), by_load.end(), [&](topology::LinkId a, topology::LinkId b) {
    return network.link_state(a).committed_min() > network.link_state(b).committed_min();
  });

  util::Table table({"cut link", "primaries hit", "activated", "bridge-exposed",
                     "dropped", "backups re-est.", "survivors", "mean Kb/s",
                     "protected"});
  for (std::size_t k = 0; k < 5; ++k) {
    const topology::LinkId victim = by_load[k];
    const net::FailureReport r = network.fail_link(victim);
    table.add_row({std::to_string(victim), std::to_string(r.primaries_hit),
                   std::to_string(r.backups_activated),
                   std::to_string(r.backups_died_with_primary),
                   std::to_string(r.connections_dropped),
                   std::to_string(r.backups_reestablished),
                   std::to_string(network.num_active()),
                   util::Table::num(network.mean_reserved_kbps()),
                   util::Table::num(network.protected_fraction(), 3)});
    network.validate_invariants();
  }
  table.print(std::cout);
  std::cout << "\nNote: \"bridge-exposed\" victims span a cut edge of the graph; only a\n"
               "maximally link-disjoint backup exists there (paper footnote 1), and a\n"
               "bridge failure disconnects their endpoints outright — no scheme can\n"
               "save them.  The busiest links in a sparse random graph are often\n"
               "exactly these bridges.  Repeated cuts also strand survivors whose\n"
               "replacement backups cannot fit: watch the protected fraction dip and\n"
               "those connections fall with the next cut.\n";

  const auto& s = network.stats();
  std::cout << "\nTotals: " << s.backups_activated << " switchovers, "
            << s.connections_dropped << " connections lost, " << s.backups_reestablished
            << " replacement backups, " << s.backups_evicted
            << " evicted to settle overbooking debt.\n";
  std::cout << "Survival rate across five cuts of the busiest links: "
            << util::Table::num(100.0 * (1.0 - static_cast<double>(s.connections_dropped) /
                                                   static_cast<double>(established)),
                                1)
            << "%\n";

  // Repair everything; unprotected connections regain their backups.
  std::size_t restored = 0;
  for (std::size_t k = 0; k < 5; ++k) restored += network.repair_link(by_load[k]);
  std::cout << "After repairs: " << restored << " backups restored, protected fraction "
            << util::Table::num(network.protected_fraction(), 3) << "\n";
  return 0;
}
