// Quickstart: the library in ~60 lines.
//
//   1. Generate an internet-like topology.
//   2. Open a Network and establish dependable real-time connections with
//      elastic QoS (each gets a primary + a link-disjoint backup).
//   3. Watch elasticity in action: retreat on contention, gains on release.
//   4. Cut a cable; the backup takes over instantly.
//
// Build and run:  ./build/examples/quickstart
#include <iostream>

#include "net/network.hpp"
#include "topology/metrics.hpp"
#include "topology/waxman.hpp"

int main() {
  using namespace eqos;

  // 1. A 30-node random topology (Waxman model, connected).
  const topology::Graph graph = topology::generate_waxman(
      {.nodes = 30, .alpha = 0.4, .beta = 0.3, .ensure_connected = true}, /*seed=*/1);
  std::cout << "topology: " << graph.num_nodes() << " nodes, " << graph.num_links()
            << " links\n";

  // 2. A network of 10 Mb/s links; connections ask for 100-500 Kb/s.
  net::Network network(graph, net::NetworkConfig{});
  const net::ElasticQosSpec qos{.bmin_kbps = 100.0,
                                .bmax_kbps = 500.0,
                                .increment_kbps = 50.0,
                                .utility = 1.0};

  const auto first = network.request_connection(0, 17, qos);
  std::cout << "first connection: accepted=" << first.accepted
            << ", reserved=" << network.connection(first.id).reserved_kbps()
            << " Kb/s (alone, it gets the full maximum)\n";
  std::cout << "  primary hops: " << network.connection(first.id).primary.hops()
            << ", backup hops: " << network.connection(first.id).backups.front().path.hops()
            << " (link-disjoint, reserved but idle)\n";

  // 3. Pile more connections onto the same endpoints: everyone retreats and
  //    re-shares the spare capacity.
  for (int i = 0; i < 5; ++i) (void)network.request_connection(0, 17, qos);
  std::cout << "after 5 more connections: first now holds "
            << network.connection(first.id).reserved_kbps()
            << " Kb/s (elastic retreat + fair re-share)\n";

  // 4. Cut a cable on the first connection's primary route.
  const topology::LinkId cut = network.connection(first.id).primary.links[0];
  const net::FailureReport report = network.fail_link(cut);
  std::cout << "link " << cut << " cut: " << report.backups_activated
            << " backups activated, " << report.connections_dropped << " dropped\n";
  std::cout << "first connection survived on its backup path, reserved "
            << network.connection(first.id).reserved_kbps() << " Kb/s, new backup: "
            << (network.connection(first.id).has_backup() ? "re-established" : "none")
            << "\n";

  network.validate_invariants();
  std::cout << "all ledger invariants hold\n";
  return 0;
}
