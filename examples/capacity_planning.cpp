// Capacity planning with the analytic model.
//
// Section 1: "The performance evaluation of dependable real-time
// communication is essential for ... the future planning of the network."
// This example uses the full pipeline the way a network operator would:
// measure the chain parameters at a few calibration loads, solve the Markov
// model, and read off the largest connection count whose predicted average
// bandwidth still meets a service-level target — without simulating every
// candidate load at full length.
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "topology/waxman.hpp"
#include "util/table.hpp"

int main() {
  using namespace eqos;
  const double kTargetKbps = 300.0;  // SLA: average >= 300 Kb/s
  const topology::Graph g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);

  std::cout << "Capacity planning: largest DR-connection population whose\n"
            << "predicted average bandwidth stays above " << kTargetKbps
            << " Kb/s (SLA).\n\n";

  util::Table table({"connections", "markov Kb/s", "sim Kb/s", "pi(S_0)", "pi(S_max)",
                     "meets SLA"});
  std::size_t best = 0;
  for (const std::size_t n : {1000ul, 2000ul, 3000ul, 4000ul, 5000ul, 6000ul}) {
    core::ExperimentConfig cfg;
    cfg.workload.qos = net::ElasticQosSpec{100.0, 500.0, 50.0, 1.0};
    cfg.workload.seed = 31;
    cfg.target_connections = n;
    cfg.warmup_events = 200;
    cfg.measure_events = 800;
    const auto r = core::run_experiment(g, cfg);
    const auto& pi = r.paper_analysis.steady_state;
    const bool ok = r.analytic_paper_kbps >= kTargetKbps;
    if (ok) best = n;
    table.add_row({std::to_string(n), util::Table::num(r.analytic_paper_kbps),
                   util::Table::num(r.sim_mean_bandwidth_kbps),
                   util::Table::num(pi.front(), 3), util::Table::num(pi.back(), 3),
                   ok ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nPlanning answer: admit up to ~" << best
            << " DR-connections to keep the average above " << kTargetKbps
            << " Kb/s.\nThe chain's state distribution (pi) shows *why*: beyond "
               "that load the\nmass shifts from S_max toward the minimum states.\n";
  return 0;
}
