// Configurable experiment runner: the whole pipeline from the command line.
//
//   ./custom_experiment [--key=value ...]
//
//   --topology=random|tier    topology family            (default random)
//   --nodes=N                 node count (random only)   (default 100)
//   --connections=N           establishment attempts     (default 3000)
//   --bmin=K --bmax=K         QoS range in Kb/s          (default 100..500)
//   --increment=K             elasticity step            (default 50)
//   --gamma=R                 link failure rate          (default 0)
//   --seed=S                  workload seed              (default 4242)
//   --save-topology=FILE      write the instance as an edge list
//
// Prints the full report: topology statistics, acceptance, simulated vs
// analytic average bandwidth, the chain's state distribution, degradation /
// recovery horizons, and revenue under a default tariff.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>

#include "core/experiment.hpp"
#include "net/revenue.hpp"
#include "topology/io.hpp"
#include "topology/metrics.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"
#include "util/table.hpp"

namespace {

/// Minimal --key=value parsing; unknown keys abort with usage.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto eq = arg.find('=');
      if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
        std::cerr << "unrecognized argument: " << arg << "\n";
        std::exit(2);
      }
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    used_.insert(key);
    return it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    used_.insert(key);
    return std::stod(it->second);
  }
  void reject_unknown() const {
    for (const auto& [key, value] : values_) {
      if (!used_.count(key)) {
        std::cerr << "unknown option --" << key << "\n";
        std::exit(2);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> used_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace eqos;
  Args args(argc, argv);
  const std::string family = args.get("topology", "random");
  const auto nodes = static_cast<std::size_t>(args.num("nodes", 100));
  const auto connections = static_cast<std::size_t>(args.num("connections", 3000));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 4242));

  core::ExperimentConfig cfg;
  cfg.workload.qos.bmin_kbps = args.num("bmin", 100.0);
  cfg.workload.qos.bmax_kbps = args.num("bmax", 500.0);
  cfg.workload.qos.increment_kbps = args.num("increment", 50.0);
  cfg.workload.failure_rate = args.num("gamma", 0.0);
  cfg.workload.seed = seed;
  cfg.target_connections = connections;
  const std::string save = args.get("save-topology", "");
  args.reject_unknown();

  topology::Graph graph;
  if (family == "random") {
    graph = topology::generate_waxman({nodes, 0.33, 0.20, true}, 7);
  } else if (family == "tier") {
    graph = topology::generate_transit_stub({}, 7).graph;
  } else {
    std::cerr << "unknown topology family: " << family << "\n";
    return 2;
  }
  if (!save.empty()) {
    std::ofstream out(save);
    topology::write_edge_list(out, graph);
    std::cout << "# topology saved to " << save << "\n";
  }

  const auto stats = topology::graph_stats(graph);
  std::cout << "topology: " << stats.nodes << " nodes, " << stats.links
            << " links, diameter " << stats.diameter << "\n";

  const auto r = core::run_experiment(graph, cfg);
  util::Table table({"metric", "value"});
  table.add_row({"attempted", std::to_string(r.attempted)});
  table.add_row({"established", std::to_string(r.established)});
  table.add_row({"active at end", std::to_string(r.active_at_end)});
  table.add_row({"sim mean Kb/s", util::Table::num(r.sim_mean_bandwidth_kbps)});
  table.add_row({"markov mean Kb/s", util::Table::num(r.analytic_paper_kbps)});
  table.add_row({"refined mean Kb/s", util::Table::num(r.analytic_refined_kbps)});
  table.add_row({"ideal (clamped) Kb/s", util::Table::num(r.ideal_clamped_kbps)});
  table.add_row({"avg primary hops", util::Table::num(r.mean_hops, 2)});
  table.add_row({"protected fraction", util::Table::num(r.protected_fraction, 3)});
  table.add_row({"Pf / Ps", util::Table::num(r.estimates.pf, 4) + " / " +
                                util::Table::num(r.estimates.ps, 4)});
  table.add_row({"degradation horizon", util::Table::num(
                                            r.paper_analysis.mean_degradation_time, 0)});
  table.add_row(
      {"recovery horizon", util::Table::num(r.paper_analysis.mean_recovery_time, 0)});
  table.add_row({"revenue/connection",
                 util::Table::num(core::expected_revenue_per_connection(
                     r.paper_analysis, net::RevenueModel{}))});
  table.print(std::cout);

  std::cout << "state distribution pi:";
  for (double p : r.paper_analysis.steady_state)
    std::cout << ' ' << util::Table::num(p, 3);
  std::cout << "\n";
  return 0;
}
