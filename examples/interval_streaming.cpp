// Interval QoS: surviving transient congestion with k-out-of-M contracts.
//
// The establishment-time range model (min-max bandwidth) and the run-time
// interval model (Section 2.2) are complementary: when a burst momentarily
// exceeds even the minimum reservations, the link manager may drop packets
// as long as every channel still receives k of each M consecutive packets.
// This example squeezes video-like streams with different strictness through
// one congested link and shows who loses what.
#include <iostream>

#include "net/interval_qos.hpp"
#include "util/table.hpp"

int main() {
  using namespace eqos;
  std::cout << "Run-time interval QoS on one congested link.\n"
            << "Budget: 10 packets/tick.  14 streams offer 1 packet each tick.\n\n";

  net::IntervalLinkScheduler link(10);
  // Four contract classes, strictest to laxest.
  struct Class {
    const char* name;
    net::IntervalQosSpec spec;
    std::size_t count;
  };
  const Class classes[] = {
      {"surgery feed (5-of-5)", {5, 5}, 2},
      {"newscast     (4-of-5)", {4, 5}, 4},
      {"sports       (3-of-5)", {3, 5}, 4},
      {"preview tile (1-of-5)", {1, 5}, 4},
  };
  std::vector<std::pair<const Class*, std::size_t>> channels;
  for (const Class& c : classes)
    for (std::size_t i = 0; i < c.count; ++i)
      channels.emplace_back(&c, link.add_channel(c.spec));

  std::cout << "Mandatory load: " << util::Table::num(link.mandatory_load(), 2)
            << " packets/tick (must stay <= 10 for guarantees to hold)\n\n";
  link.run_saturated(2000);

  util::Table table({"stream class", "contract floor", "delivered", "ok"});
  for (const auto& [cls, idx] : channels) {
    const auto& reg = link.channel(idx);
    table.add_row({cls->name,
                   util::Table::num(reg.spec().min_delivery_fraction(), 2),
                   util::Table::num(reg.delivery_fraction(), 3),
                   reg.delivery_fraction() >=
                           reg.spec().min_delivery_fraction() - 1e-9
                       ? "yes"
                       : "NO"});
  }
  table.print(std::cout);

  const auto& s = link.stats();
  std::cout << "\nOffered " << s.offered << ", delivered " << s.delivered << ", dropped "
            << s.dropped << " (" << util::Table::num(100.0 * s.dropped / s.offered, 1)
            << "%), overload ticks: " << s.overload_ticks << "\n";
  std::cout << "Every class keeps its contract; the slack classes absorb the "
               "entire shortage.\n";
  return 0;
}
