// Video service: the paper's motivating scenario for elastic QoS.
//
// A video stream needs 100 Kb/s for "recognizable continuous images" and
// 500 Kb/s for high quality (Section 4).  A client can ask the network for:
//
//   * rigid-max  — 500 Kb/s flat.   Great picture... if you get in at all.
//   * rigid-min  — 100 Kb/s flat.   Always bare-bones, even on an idle net.
//   * elastic    — [100, 500] Kb/s. Admitted like rigid-min, enjoys
//                   rigid-max quality whenever capacity allows.
//
// This example loads the paper's Random network with each policy at growing
// viewer counts and prints acceptance rates and delivered quality.
#include <iostream>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topology/waxman.hpp"
#include "util/table.hpp"

namespace {

struct PolicyResult {
  std::size_t accepted = 0;
  double mean_kbps = 0.0;
  double hd_fraction = 0.0;  // viewers at >= 400 Kb/s
};

PolicyResult serve(const eqos::topology::Graph& g, std::size_t viewers,
                   double bmin, double bmax) {
  using namespace eqos;
  net::Network network(g, net::NetworkConfig{});
  net::ElasticQosSpec qos;
  qos.bmin_kbps = bmin;
  qos.bmax_kbps = bmax;
  qos.increment_kbps = bmax > bmin ? 50.0 : 50.0;
  sim::WorkloadConfig w;
  w.qos = qos;
  w.seed = 2024;
  sim::Simulator sim(network, w);
  sim.populate(viewers);

  PolicyResult r;
  r.accepted = network.num_active();
  r.mean_kbps = network.mean_reserved_kbps();
  std::size_t hd = 0;
  for (net::ConnectionId id : network.active_ids())
    if (network.connection(id).reserved_kbps() >= 400.0) ++hd;
  r.hd_fraction =
      r.accepted == 0 ? 0.0 : static_cast<double>(hd) / static_cast<double>(r.accepted);
  return r;
}

}  // namespace

int main() {
  using namespace eqos;
  const topology::Graph g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  std::cout << "Video service on a 100-node network, 10 Mb/s links.\n"
            << "SD needs 100 Kb/s, HD needs 500 Kb/s.  Three request policies:\n\n";

  util::Table table({"viewers", "policy", "admitted", "mean Kb/s", "HD share"});
  for (const std::size_t viewers : {500ul, 2000ul, 4000ul, 6000ul}) {
    const PolicyResult rigid_max = serve(g, viewers, 500.0, 500.0);
    const PolicyResult rigid_min = serve(g, viewers, 100.0, 100.0);
    const PolicyResult elastic = serve(g, viewers, 100.0, 500.0);
    table.add_row({std::to_string(viewers), "rigid-max(500)",
                   std::to_string(rigid_max.accepted),
                   util::Table::num(rigid_max.mean_kbps),
                   util::Table::num(rigid_max.hd_fraction, 2)});
    table.add_row({"", "rigid-min(100)", std::to_string(rigid_min.accepted),
                   util::Table::num(rigid_min.mean_kbps),
                   util::Table::num(rigid_min.hd_fraction, 2)});
    table.add_row({"", "elastic(100-500)", std::to_string(elastic.accepted),
                   util::Table::num(elastic.mean_kbps),
                   util::Table::num(elastic.hd_fraction, 2)});
  }
  table.print(std::cout);
  std::cout << "\nElastic QoS admits as many viewers as the bare-minimum policy\n"
            << "while delivering HD whenever the network has room — the best of\n"
            << "both rigid policies (Section 1 of the paper).\n";
  return 0;
}
