#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

namespace eqos::obs {
namespace {

std::atomic<bool> g_trace_enabled{false};
std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::size_t> g_capacity{512};

thread_local double t_trace_time = 0.0;

/// Bounded ring written only by its owning thread.  `written` counts all
/// events ever recorded; the surviving window is the last min(written,
/// capacity) slots.
struct TraceRing {
  std::vector<TraceEvent> slots;
  std::uint64_t written = 0;
};

/// Ring registry.  Rings live until clear_trace() resets them (thread exit
/// keeps a ring's tail dumpable — a thread that died right before the audit
/// failure is exactly the interesting one).
struct RingRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceRing>> rings;
};

RingRegistry& ring_registry() {
  static RingRegistry* registry = new RingRegistry;  // leaked by design
  return *registry;
}

TraceRing& this_thread_ring() {
  thread_local TraceRing* ring = [] {
    auto owned = std::make_unique<TraceRing>();
    owned->slots.resize(std::max<std::size_t>(1, g_capacity.load(std::memory_order_relaxed)));
    TraceRing* raw = owned.get();
    RingRegistry& registry = ring_registry();
    const std::lock_guard<std::mutex> lock(registry.mu);
    registry.rings.push_back(std::move(owned));
    return raw;
  }();
  return *ring;
}

struct DumpPath {
  std::mutex mu;
  std::string path;
  bool initialized = false;
};

DumpPath& dump_path_state() {
  static DumpPath* state = new DumpPath;
  return *state;
}

std::string json_number(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

const char* trace_kind_name(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kArrivalAdmitted: return "arrival-admitted";
    case TraceKind::kArrivalRejected: return "arrival-rejected";
    case TraceKind::kTermination: return "termination";
    case TraceKind::kRetreat: return "retreat";
    case TraceKind::kRedistribute: return "redistribute";
    case TraceKind::kBackupActivated: return "backup-activated";
    case TraceKind::kBackupLost: return "backup-lost";
    case TraceKind::kReroute: return "reroute";
    case TraceKind::kDrop: return "drop";
    case TraceKind::kFailLink: return "fail-link";
    case TraceKind::kRepairLink: return "repair-link";
    case TraceKind::kAuditStep: return "audit-step";
  }
  return "?";
}

bool trace_enabled() noexcept { return g_trace_enabled.load(std::memory_order_relaxed); }

bool set_trace_enabled(bool enabled) noexcept {
  return g_trace_enabled.exchange(enabled, std::memory_order_relaxed);
}

void set_trace_capacity(std::size_t events) {
  g_capacity.store(std::max<std::size_t>(1, events), std::memory_order_relaxed);
}

void set_trace_time(double now) noexcept { t_trace_time = now; }

namespace detail {

void trace_event_slow(TraceKind kind, std::uint32_t a, std::uint32_t b,
                      double value) noexcept {
  TraceRing& ring = this_thread_ring();
  TraceEvent& slot = ring.slots[ring.written % ring.slots.size()];
  slot.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  slot.time = t_trace_time;
  slot.kind = kind;
  slot.a = a;
  slot.b = b;
  slot.value = value;
  ++ring.written;
}

}  // namespace detail

std::vector<TraceEvent> collect_trace() {
  std::vector<TraceEvent> events;
  RingRegistry& registry = ring_registry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& ring : registry.rings) {
    const std::uint64_t surviving =
        std::min<std::uint64_t>(ring->written, ring->slots.size());
    for (std::uint64_t i = 0; i < surviving; ++i)
      events.push_back(ring->slots[(ring->written - surviving + i) % ring->slots.size()]);
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& x, const TraceEvent& y) { return x.seq < y.seq; });
  return events;
}

void clear_trace() {
  RingRegistry& registry = ring_registry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& ring : registry.rings) ring->written = 0;
}

std::string trace_to_json(std::vector<TraceEvent> events, std::string_view reason) {
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& x, const TraceEvent& y) { return x.seq < y.seq; });
  std::ostringstream out;
  out << "{\n  \"reason\": \"" << json_escape(reason) << "\",\n";
  out << "  \"num_events\": " << events.size() << ",\n";
  out << "  \"events\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out << "    {\"seq\": " << e.seq << ", \"time\": " << json_number(e.time)
        << ", \"kind\": \"" << trace_kind_name(e.kind) << "\", \"a\": " << e.a
        << ", \"b\": " << e.b << ", \"value\": " << json_number(e.value) << "}"
        << (i + 1 == events.size() ? "\n" : ",\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

void set_trace_dump_path(std::string path) {
  DumpPath& state = dump_path_state();
  const std::lock_guard<std::mutex> lock(state.mu);
  state.path = std::move(path);
  state.initialized = true;
}

std::string trace_dump_path() {
  DumpPath& state = dump_path_state();
  const std::lock_guard<std::mutex> lock(state.mu);
  if (!state.initialized) {
    const char* env = std::getenv("EQOS_TRACE_DUMP");
    state.path = (env != nullptr && *env != '\0') ? env : "eqos_trace_dump.json";
    state.initialized = true;
  }
  return state.path;
}

std::string dump_trace(std::string_view reason) {
  if (!trace_enabled()) return {};
  const std::string path = trace_dump_path();
  std::ofstream out(path);
  if (!out) return {};
  out << trace_to_json(collect_trace(), reason);
  return out ? path : std::string{};
}

std::string annotate_audit_failure(const std::string& what) {
  if (!trace_enabled() || what.find(" [trace: ") != std::string::npos) return what;
  const std::string path = dump_trace(what);
  if (path.empty()) return what;
  return what + " [trace: " + path + "]";
}

}  // namespace eqos::obs
