// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Design goals (in order):
//
//  1. The sweep thread pool must never contend on a metric.  Every metric
//     owns a fixed array of kShards cache-line-padded atomic cells; each
//     thread hashes to a stable shard slot and updates only that cell with a
//     relaxed atomic RMW.  Aggregation happens on scrape, not on update, so
//     the hot path is one relaxed fetch_add with no locks and no false
//     sharing between pool workers.
//  2. Exactness.  Updates are atomic RMWs, so totals are exact even when
//     more threads than shards exist (slots are then shared, still without
//     locks).  snapshot() taken while writers are quiescent equals ground
//     truth; tests/test_obs.cpp locks this in at 1/2/8 threads.
//  3. Negligible overhead when disabled.  Instrumented call sites guard on
//     metrics_enabled() — a single relaxed atomic load and a predictable
//     branch — and the handle operations repeat that guard, so leaving a
//     Counter wired into Network costs nothing measurable when the registry
//     is off (the macro-bench goldens stay byte-identical and the perf-smoke
//     gate holds).
//
// Handles (Counter/Gauge/Histogram) are trivially copyable value types
// wrapping a pointer into the registry's stable metric storage; look them up
// once (construction time) and keep them in hot objects.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace eqos::obs {

/// Process-global metrics switch (default off).  Relaxed: callers only need
/// the flag itself, never ordering against metric values.
[[nodiscard]] bool metrics_enabled() noexcept;
/// Flips the switch; returns the previous value (so scopes can restore).
bool set_metrics_enabled(bool enabled) noexcept;

namespace detail {

/// Shard count: power of two, sized so an 8..16-thread pool practically
/// never shares a cell (sharing would still be exact, just contended).
inline constexpr std::size_t kShards = 64;

struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> bits{0};
};

/// This thread's stable shard slot in [0, kShards).
[[nodiscard]] std::size_t shard_slot() noexcept;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One registered metric.  Counters/gauges use cells[slot] as an unsigned /
/// two's-complement accumulator.  Histograms lay out their per-shard state
/// as bucket counts (bounds.size() + 1 of them) followed by one cell holding
/// the running sum as double bits (CAS-accumulated).
struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::vector<double> bounds;  ///< histogram upper bounds, ascending
  std::vector<ShardCell> cells;

  [[nodiscard]] std::size_t cells_per_shard() const noexcept {
    return kind == MetricKind::kHistogram ? bounds.size() + 2 : 1;
  }
};

void counter_add(Metric& m, std::uint64_t n) noexcept;
void gauge_add(Metric& m, std::int64_t delta) noexcept;
void histogram_observe(Metric& m, double value) noexcept;
[[nodiscard]] std::uint64_t counter_value(const Metric& m) noexcept;
[[nodiscard]] std::int64_t gauge_value(const Metric& m) noexcept;

}  // namespace detail

/// Monotonic event count.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) noexcept {
    if (m_ != nullptr && metrics_enabled()) detail::counter_add(*m_, n);
  }
  /// Aggregated total across all shards.
  [[nodiscard]] std::uint64_t value() const noexcept {
    return m_ == nullptr ? 0 : detail::counter_value(*m_);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::Metric* m) : m_(m) {}
  detail::Metric* m_ = nullptr;
};

/// Signed additive level (e.g. active connections): aggregate = sum of
/// deltas across all shards.
class Gauge {
 public:
  Gauge() = default;
  void add(std::int64_t delta) noexcept {
    if (m_ != nullptr && metrics_enabled()) detail::gauge_add(*m_, delta);
  }
  void sub(std::int64_t delta) noexcept { add(-delta); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return m_ == nullptr ? 0 : detail::gauge_value(*m_);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::Metric* m) : m_(m) {}
  detail::Metric* m_ = nullptr;
};

/// Fixed-bucket histogram: counts per (-inf, bounds[0]], (bounds[0],
/// bounds[1]], ..., (bounds.back(), +inf), plus a running sum.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) noexcept {
    if (m_ != nullptr && metrics_enabled()) detail::histogram_observe(*m_, value);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::Metric* m) : m_(m) {}
  detail::Metric* m_ = nullptr;
};

/// Aggregated state of every registered metric at one scrape.
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    detail::MetricKind kind;
    std::uint64_t count = 0;            ///< counter total / histogram observations
    std::int64_t gauge = 0;             ///< gauge level
    double sum = 0.0;                   ///< histogram sum
    std::vector<double> bounds;         ///< histogram bucket upper bounds
    std::vector<std::uint64_t> buckets; ///< histogram bucket counts
  };
  std::vector<Entry> entries;  ///< sorted by name

  /// Entry lookup by name; nullptr when absent.
  [[nodiscard]] const Entry* find(std::string_view name) const noexcept;
  /// Serializes as a JSON object {"name": {...}, ...}.  Inner lines are
  /// indented `indent + 2` and the closing brace `indent`, so the result
  /// embeds into a larger document after a "key": prefix at depth `indent`.
  [[nodiscard]] std::string to_json(std::size_t indent = 0) const;
};

/// Entry-wise `after - before` keyed by name: counter totals, gauge levels,
/// and histogram buckets/sums subtract; entries absent from `before` pass
/// through unchanged.  The basis of per-point metric snapshots in serial
/// sweeps (core/sweep.hpp).
[[nodiscard]] MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                                             const MetricsSnapshot& after);

/// Name-keyed metric registry.  Lookups lock a mutex (do them at setup
/// time); handle operations never do.
class MetricsRegistry {
 public:
  /// The process-global registry (leaked: safe to touch from thread_local
  /// destructors at exit).
  [[nodiscard]] static MetricsRegistry& global();

  /// Finds or creates.  A name registered with a different kind (or, for
  /// histograms, different bounds) throws std::logic_error.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name, std::vector<double> bounds);

  /// Aggregates every metric across its shards.  Exact while writers are
  /// quiescent; concurrent updates may or may not be included (each is
  /// atomically included or not — no torn values).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every cell of every metric (registrations are kept).  Callers
  /// must quiesce writers first; tests use this between scenarios.
  void reset() noexcept;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  detail::Metric& find_or_create(std::string_view name, detail::MetricKind kind,
                                 std::vector<double> bounds);

  mutable std::mutex mu_;
  /// Stable storage: handles keep raw pointers, so nodes must never move.
  std::deque<detail::Metric> metrics_;
};

}  // namespace eqos::obs
