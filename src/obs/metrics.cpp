#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

namespace eqos::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Monotonic thread-slot source; slots wrap modulo kShards (sharing a slot
/// is exact because every update is an atomic RMW).
std::atomic<std::size_t> g_next_slot{0};

const char* kind_name(detail::MetricKind kind) {
  switch (kind) {
    case detail::MetricKind::kCounter: return "counter";
    case detail::MetricKind::kGauge: return "gauge";
    case detail::MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::string json_number(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

bool set_metrics_enabled(bool enabled) noexcept {
  return g_metrics_enabled.exchange(enabled, std::memory_order_relaxed);
}

namespace detail {

std::size_t shard_slot() noexcept {
  thread_local const std::size_t slot =
      g_next_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

void counter_add(Metric& m, std::uint64_t n) noexcept {
  m.cells[shard_slot()].bits.fetch_add(n, std::memory_order_relaxed);
}

void gauge_add(Metric& m, std::int64_t delta) noexcept {
  // Two's-complement wraparound makes unsigned fetch_add exact for signed
  // deltas; the aggregate is re-interpreted as signed on scrape.
  m.cells[shard_slot()].bits.fetch_add(static_cast<std::uint64_t>(delta),
                                       std::memory_order_relaxed);
}

void histogram_observe(Metric& m, double value) noexcept {
  const std::size_t per = m.cells_per_shard();
  const std::size_t base = shard_slot() * per;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(m.bounds.begin(), m.bounds.end(), value) - m.bounds.begin());
  m.cells[base + bucket].bits.fetch_add(1, std::memory_order_relaxed);
  // The per-shard sum is double bits; a CAS loop keeps it exact even when
  // threads beyond the shard count share a slot.
  std::atomic<std::uint64_t>& sum = m.cells[base + m.bounds.size() + 1].bits;
  std::uint64_t old_bits = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(
      old_bits, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old_bits) + value),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

std::uint64_t counter_value(const Metric& m) noexcept {
  std::uint64_t total = 0;
  for (const ShardCell& cell : m.cells) total += cell.bits.load(std::memory_order_relaxed);
  return total;
}

std::int64_t gauge_value(const Metric& m) noexcept {
  return static_cast<std::int64_t>(counter_value(m));
}

}  // namespace detail

const MetricsSnapshot::Entry* MetricsSnapshot::find(std::string_view name) const noexcept {
  for (const Entry& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

std::string MetricsSnapshot::to_json(std::size_t indent) const {
  const std::string pad(indent, ' ');
  std::ostringstream out;
  out << "{\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << pad << "  \"" << e.name << "\": {\"kind\": \"" << kind_name(e.kind) << "\", ";
    switch (e.kind) {
      case detail::MetricKind::kCounter:
        out << "\"value\": " << e.count;
        break;
      case detail::MetricKind::kGauge:
        out << "\"value\": " << e.gauge;
        break;
      case detail::MetricKind::kHistogram: {
        out << "\"count\": " << e.count << ", \"sum\": " << json_number(e.sum)
            << ", \"bounds\": [";
        for (std::size_t b = 0; b < e.bounds.size(); ++b)
          out << (b ? ", " : "") << json_number(e.bounds[b]);
        out << "], \"buckets\": [";
        for (std::size_t b = 0; b < e.buckets.size(); ++b)
          out << (b ? ", " : "") << e.buckets[b];
        out << "]";
        break;
      }
    }
    out << "}" << (i + 1 == entries.size() ? "\n" : ",\n");
  }
  out << pad << "}";
  return out.str();
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& before, const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  delta.entries.reserve(after.entries.size());
  for (const MetricsSnapshot::Entry& e : after.entries) {
    MetricsSnapshot::Entry d = e;
    if (const MetricsSnapshot::Entry* b = before.find(e.name); b != nullptr) {
      d.count -= b->count;
      d.gauge -= b->gauge;
      d.sum -= b->sum;
      for (std::size_t i = 0; i < d.buckets.size() && i < b->buckets.size(); ++i)
        d.buckets[i] -= b->buckets[i];
    }
    delta.entries.push_back(std::move(d));
  }
  return delta;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry;  // leaked by design
  return *registry;
}

detail::Metric& MetricsRegistry::find_or_create(std::string_view name,
                                                detail::MetricKind kind,
                                                std::vector<double> bounds) {
  if (name.empty()) throw std::invalid_argument("metrics: empty metric name");
  if (!std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end())
    throw std::invalid_argument("metrics: histogram bounds must be strictly ascending");
  const std::lock_guard<std::mutex> lock(mu_);
  for (detail::Metric& m : metrics_) {
    if (m.name != name) continue;
    if (m.kind != kind || m.bounds != bounds)
      throw std::logic_error("metrics: '" + std::string(name) +
                             "' re-registered with a different kind or bounds");
    return m;
  }
  detail::Metric& m = metrics_.emplace_back();
  m.name = std::string(name);
  m.kind = kind;
  m.bounds = std::move(bounds);
  m.cells = std::vector<detail::ShardCell>(detail::kShards * m.cells_per_shard());
  return m;
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(&find_or_create(name, detail::MetricKind::kCounter, {}));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(&find_or_create(name, detail::MetricKind::kGauge, {}));
}

Histogram MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  return Histogram(&find_or_create(name, detail::MetricKind::kHistogram, std::move(bounds)));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mu_);
  snap.entries.reserve(metrics_.size());
  for (const detail::Metric& m : metrics_) {
    MetricsSnapshot::Entry e;
    e.name = m.name;
    e.kind = m.kind;
    switch (m.kind) {
      case detail::MetricKind::kCounter:
        e.count = detail::counter_value(m);
        break;
      case detail::MetricKind::kGauge:
        e.gauge = detail::gauge_value(m);
        break;
      case detail::MetricKind::kHistogram: {
        e.bounds = m.bounds;
        const std::size_t per = m.cells_per_shard();
        e.buckets.assign(m.bounds.size() + 1, 0);
        for (std::size_t shard = 0; shard < detail::kShards; ++shard) {
          const std::size_t base = shard * per;
          for (std::size_t b = 0; b <= m.bounds.size(); ++b)
            e.buckets[b] += m.cells[base + b].bits.load(std::memory_order_relaxed);
          e.sum += std::bit_cast<double>(
              m.cells[base + m.bounds.size() + 1].bits.load(std::memory_order_relaxed));
        }
        for (std::uint64_t b : e.buckets) e.count += b;
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void MetricsRegistry::reset() noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  for (detail::Metric& m : metrics_)
    for (detail::ShardCell& cell : m.cells) cell.bits.store(0, std::memory_order_relaxed);
}

}  // namespace eqos::obs
