// Trace flight recorder: bounded per-thread ring buffers of compact
// structured events, dumped as JSON when an invariant audit fails.
//
// The recorder answers the question a bare `std::logic_error("ledger
// drift")` cannot: *what did the event loop actually do right before the
// invariant broke?*  Every instrumented site (arrival admitted/rejected,
// retreat, redistribute, backup activation, reroute/rescue, drop, link
// fail/repair, audit step) appends one fixed-size TraceEvent to its
// thread's ring; when an audit throws, annotate_audit_failure() dumps the
// merged, sequence-ordered tail of every ring to a JSON file and appends
// the dump path to the exception message — turning "assert fired at event
// 73k" into a replayable last-N-events timeline.
//
// Cost model: when disabled (the default), trace_event() is one relaxed
// atomic load and a branch — free enough for the innermost event paths (the
// macro-bench goldens stay byte-identical and perf-smoke holds).  When
// enabled, an event is one relaxed fetch_add (global sequence) plus five
// stores into this thread's ring; rings never lock and never allocate after
// their first event.
//
// Concurrency: each ring is written only by its owning thread.
// collect_trace()/dump are exact when writers are quiescent (tests, or the
// serial audit path that just threw); a dump taken while *other* sweep
// threads keep running may smear their in-flight slots, which is the usual
// flight-recorder trade and fine for a crash artifact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eqos::obs {

/// What happened.  Operand meaning per kind is documented in
/// trace_kind_name(); `a`/`b` are connection/link ids or counts, `value` a
/// bandwidth or quanta figure.
enum class TraceKind : std::uint8_t {
  kArrivalAdmitted,   ///< a=connection, b=hops, value=initial quanta
  kArrivalRejected,   ///< a=src, b=dst, value=reject reason code
  kTermination,       ///< a=connection, b=active after
  kRetreat,           ///< a=connection, value=quanta revoked
  kRedistribute,      ///< a=candidates, b=gainable candidates
  kBackupActivated,   ///< a=connection, b=failed link
  kBackupLost,        ///< a=connection, b=failed link (parked backup died)
  kReroute,           ///< a=connection, b=1 fresh pair / 2 degraded
  kDrop,              ///< a=connection, b=failed link
  kFailLink,          ///< a=link, b=primaries hit
  kRepairLink,        ///< a=link, b=backups re-established
  kAuditStep,         ///< a=audit target, b=checks run so far
};

[[nodiscard]] const char* trace_kind_name(TraceKind kind) noexcept;

/// One ring slot (fixed-size, trivially copyable).
struct TraceEvent {
  std::uint64_t seq = 0;  ///< global record order (merge key)
  double time = 0.0;      ///< simulated time (see set_trace_time)
  TraceKind kind = TraceKind::kArrivalAdmitted;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  double value = 0.0;
};

/// Process-global trace switch (default off).
[[nodiscard]] bool trace_enabled() noexcept;
/// Flips the switch; returns the previous value.
bool set_trace_enabled(bool enabled) noexcept;

/// Per-thread ring capacity for rings created *after* the call (default
/// 512).  Existing rings keep their size.
void set_trace_capacity(std::size_t events);

/// Simulated-time context of subsequent trace_event() calls on this thread
/// (each sweep worker drives its own Simulator, so the clock is per-thread).
void set_trace_time(double now) noexcept;

namespace detail {
void trace_event_slow(TraceKind kind, std::uint32_t a, std::uint32_t b,
                      double value) noexcept;
}

/// Records one event on this thread's ring.  Free (one relaxed load + branch)
/// when tracing is disabled.
inline void trace_event(TraceKind kind, std::uint32_t a = 0, std::uint32_t b = 0,
                        double value = 0.0) noexcept {
  if (trace_enabled()) detail::trace_event_slow(kind, a, b, value);
}

/// Merged, seq-ascending view over every ring's surviving events.
[[nodiscard]] std::vector<TraceEvent> collect_trace();

/// Drops all recorded events (ring registrations survive).
void clear_trace();

/// Serializes `events` (any order; they are sorted by seq) into the audit
/// dump JSON document:  {"reason": ..., "events": [...]}.
[[nodiscard]] std::string trace_to_json(std::vector<TraceEvent> events,
                                        std::string_view reason);

/// Dump file for audit failures (default "eqos_trace_dump.json", overridden
/// by the EQOS_TRACE_DUMP environment variable at first use).
void set_trace_dump_path(std::string path);
[[nodiscard]] std::string trace_dump_path();

/// Writes the current trace to trace_dump_path().  Returns the path, or ""
/// when tracing is disabled or the file cannot be written.
std::string dump_trace(std::string_view reason);

/// Audit-failure hook used by Network::audit, BackupManager::audit, and
/// fault::audit_network: dumps the trace (when tracing is enabled) and
/// returns `what` with " [trace: PATH]" appended.  Idempotent — a message
/// that already carries a trace marker is returned unchanged, so nested
/// audits (auditor -> network -> backup manager) dump exactly once.
[[nodiscard]] std::string annotate_audit_failure(const std::string& what);

}  // namespace eqos::obs
