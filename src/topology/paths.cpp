#include "topology/paths.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace eqos::topology {
namespace {

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

Path reconstruct(const Graph& g, NodeId src, NodeId dst,
                 const std::vector<LinkId>& via_link) {
  Path p;
  NodeId at = dst;
  while (at != src) {
    const LinkId l = via_link[at];
    p.links.push_back(l);
    p.nodes.push_back(at);
    at = g.link(l).other(at);
  }
  p.nodes.push_back(src);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

bool usable(const LinkFilter& filter, LinkId l) { return !filter || filter(l); }

}  // namespace

util::DynamicBitset Path::link_set(std::size_t num_links) const {
  util::DynamicBitset bits(num_links);
  for (LinkId l : links) bits.set(l);
  return bits;
}

std::size_t Path::overlap(const Path& other) const {
  std::size_t n = 0;
  for (LinkId l : links)
    if (std::find(other.links.begin(), other.links.end(), l) != other.links.end()) ++n;
  return n;
}

std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst,
                                  const LinkFilter& filter) {
  if (src >= g.num_nodes() || dst >= g.num_nodes())
    throw std::invalid_argument("shortest_path: unknown node");
  if (src == dst) return Path{{src}, {}};

  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreached);
  std::vector<LinkId> via_link(g.num_nodes(), 0);
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const auto& adj : g.adjacent(u)) {
      if (!usable(filter, adj.link) || dist[adj.neighbor] != kUnreached) continue;
      dist[adj.neighbor] = dist[u] + 1;
      via_link[adj.neighbor] = adj.link;
      if (adj.neighbor == dst) return reconstruct(g, src, dst, via_link);
      frontier.push(adj.neighbor);
    }
  }
  return std::nullopt;
}

std::optional<Path> widest_shortest_path(const Graph& g, NodeId src, NodeId dst,
                                         const LinkWidth& width,
                                         const LinkFilter& filter) {
  if (src >= g.num_nodes() || dst >= g.num_nodes())
    throw std::invalid_argument("widest_shortest_path: unknown node");
  if (!width) throw std::invalid_argument("widest_shortest_path: null width");
  if (src == dst) return Path{{src}, {}};

  // Lexicographic Dijkstra on (hops asc, bottleneck width desc).
  struct Label {
    std::uint32_t hops = kUnreached;
    double width = 0.0;
  };
  const auto better = [](const Label& a, const Label& b) {
    return a.hops != b.hops ? a.hops < b.hops : a.width > b.width;
  };

  std::vector<Label> best(g.num_nodes());
  std::vector<LinkId> via_link(g.num_nodes(), 0);
  using QueueEntry = std::pair<Label, NodeId>;
  const auto cmp = [&](const QueueEntry& a, const QueueEntry& b) {
    return better(b.first, a.first);  // min-heap by label
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, decltype(cmp)> heap(cmp);
  best[src] = {0, std::numeric_limits<double>::infinity()};
  heap.push({best[src], src});
  while (!heap.empty()) {
    const auto [label, u] = heap.top();
    heap.pop();
    if (better(best[u], label)) continue;  // stale entry
    if (u == dst) break;
    for (const auto& adj : g.adjacent(u)) {
      if (!usable(filter, adj.link)) continue;
      const Label candidate{label.hops + 1, std::min(label.width, width(adj.link))};
      if (better(candidate, best[adj.neighbor])) {
        best[adj.neighbor] = candidate;
        via_link[adj.neighbor] = adj.link;
        heap.push({candidate, adj.neighbor});
      }
    }
  }
  if (best[dst].hops == kUnreached) return std::nullopt;
  return reconstruct(g, src, dst, via_link);
}

std::optional<Path> min_overlap_path(const Graph& g, NodeId src, NodeId dst,
                                     const util::DynamicBitset& avoid,
                                     const LinkFilter& filter) {
  if (src >= g.num_nodes() || dst >= g.num_nodes())
    throw std::invalid_argument("min_overlap_path: unknown node");
  if (src == dst) return Path{{src}, {}};

  // Dijkstra with cost = overlap * kPenalty + hops; the penalty dominates any
  // possible hop count so overlap is minimized first.
  const double kPenalty = static_cast<double>(g.num_links() + 1);
  std::vector<double> best(g.num_nodes(), std::numeric_limits<double>::infinity());
  std::vector<LinkId> via_link(g.num_nodes(), 0);
  using QueueEntry = std::pair<double, NodeId>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> heap;
  best[src] = 0.0;
  heap.push({0.0, src});
  while (!heap.empty()) {
    const auto [cost, u] = heap.top();
    heap.pop();
    if (cost > best[u]) continue;
    if (u == dst) break;
    for (const auto& adj : g.adjacent(u)) {
      if (!usable(filter, adj.link)) continue;
      const double step = 1.0 + (avoid.test(adj.link) ? kPenalty : 0.0);
      const double candidate = cost + step;
      if (candidate < best[adj.neighbor]) {
        best[adj.neighbor] = candidate;
        via_link[adj.neighbor] = adj.link;
        heap.push({candidate, adj.neighbor});
      }
    }
  }
  if (!std::isfinite(best[dst])) return std::nullopt;
  return reconstruct(g, src, dst, via_link);
}

std::vector<Path> k_shortest_paths(const Graph& g, NodeId src, NodeId dst, std::size_t k,
                                   const LinkFilter& filter) {
  std::vector<Path> result;
  if (k == 0) return result;
  auto first = shortest_path(g, src, dst, filter);
  if (!first) return result;
  result.push_back(std::move(*first));

  // Yen: candidates are spur deviations from already-accepted paths.
  const auto path_key = [](const Path& p) { return p.links; };
  std::set<std::vector<LinkId>> seen{path_key(result[0])};
  std::vector<Path> candidates;

  while (result.size() < k) {
    const Path& last = result.back();
    for (std::size_t spur = 0; spur < last.nodes.size() - 1; ++spur) {
      const NodeId spur_node = last.nodes[spur];
      // Links banned at this spur: the next link of every accepted path that
      // shares the root prefix, plus all links of the root itself (loopless).
      std::vector<bool> banned(g.num_links(), false);
      for (const Path& p : result) {
        if (p.links.size() <= spur) continue;
        if (std::equal(p.links.begin(), p.links.begin() + static_cast<std::ptrdiff_t>(spur),
                       last.links.begin()))
          banned[p.links[spur]] = true;
      }
      std::vector<bool> banned_node(g.num_nodes(), false);
      for (std::size_t i = 0; i < spur; ++i) banned_node[last.nodes[i]] = true;

      const LinkFilter spur_filter = [&](LinkId l) {
        if (banned[l]) return false;
        const Link& link = g.link(l);
        if (banned_node[link.a] || banned_node[link.b]) return false;
        return usable(filter, l);
      };
      auto tail = shortest_path(g, spur_node, dst, spur_filter);
      if (!tail) continue;
      Path candidate;
      candidate.nodes.assign(last.nodes.begin(),
                             last.nodes.begin() + static_cast<std::ptrdiff_t>(spur));
      candidate.links.assign(last.links.begin(),
                             last.links.begin() + static_cast<std::ptrdiff_t>(spur));
      candidate.nodes.insert(candidate.nodes.end(), tail->nodes.begin(), tail->nodes.end());
      candidate.links.insert(candidate.links.end(), tail->links.begin(), tail->links.end());
      if (seen.insert(path_key(candidate)).second)
        candidates.push_back(std::move(candidate));
    }
    if (candidates.empty()) break;
    const auto best_it =
        std::min_element(candidates.begin(), candidates.end(),
                         [](const Path& a, const Path& b) { return a.hops() < b.hops(); });
    result.push_back(std::move(*best_it));
    candidates.erase(best_it);
  }
  return result;
}

}  // namespace eqos::topology
