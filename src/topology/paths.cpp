#include "topology/paths.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "topology/goal.hpp"

namespace eqos::topology {

static_assert(HopDistanceField::kUnreachable ==
                  std::numeric_limits<std::uint32_t>::max(),
              "distance-field hints must share the searches' unreached label");

namespace detail {

Path reconstruct(const Graph& g, NodeId src, NodeId dst,
                 const std::vector<LinkId>& via_link) {
  Path p;
  NodeId at = dst;
  while (at != src) {
    const LinkId l = via_link[at];
    p.links.push_back(l);
    p.nodes.push_back(at);
    at = g.link(l).other(at);
  }
  p.nodes.push_back(src);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

}  // namespace detail

namespace {

bool usable(const LinkFilter& filter, LinkId l) { return !filter || filter(l); }

}  // namespace

util::DynamicBitset Path::link_set(std::size_t num_links) const {
  util::DynamicBitset bits(num_links);
  for (LinkId l : links) bits.set(l);
  return bits;
}

std::size_t Path::overlap(const Path& other) const {
  std::size_t n = 0;
  for (LinkId l : links)
    if (std::find(other.links.begin(), other.links.end(), l) != other.links.end()) ++n;
  return n;
}

std::optional<Path> PathSearch::shortest(const Graph& g, NodeId src, NodeId dst,
                                         const LinkFilter& filter) {
  if (!filter) return shortest(g, src, dst, AllLinks{});
  return shortest(g, src, dst, detail::FilterRef{&filter});
}

std::optional<Path> PathSearch::widest_shortest(const Graph& g, NodeId src, NodeId dst,
                                                const LinkWidth& width,
                                                const LinkFilter& filter) {
  if (!width) throw std::invalid_argument("widest_shortest_path: null width");
  if (!filter) return widest_shortest(g, src, dst, detail::WidthRef{&width}, AllLinks{});
  return widest_shortest(g, src, dst, detail::WidthRef{&width},
                         detail::FilterRef{&filter});
}

std::optional<Path> PathSearch::min_overlap(const Graph& g, NodeId src, NodeId dst,
                                            const util::DynamicBitset& avoid,
                                            const LinkFilter& filter) {
  if (!filter) return min_overlap(g, src, dst, avoid, AllLinks{});
  return min_overlap(g, src, dst, avoid, detail::FilterRef{&filter});
}

namespace {
// Scratch behind the free-function entry points.  Every search fully
// re-initializes the buffers it uses, so reuse cannot change results (the
// equality against a fresh PathSearch is asserted in tests/test_sweep.cpp);
// thread_local keeps the free functions safe under the sweep's thread pool.
thread_local PathSearch free_search;
}  // namespace

std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst,
                                  const LinkFilter& filter) {
  return free_search.shortest(g, src, dst, filter);
}

std::optional<Path> widest_shortest_path(const Graph& g, NodeId src, NodeId dst,
                                         const LinkWidth& width,
                                         const LinkFilter& filter) {
  return free_search.widest_shortest(g, src, dst, width, filter);
}

std::optional<Path> min_overlap_path(const Graph& g, NodeId src, NodeId dst,
                                     const util::DynamicBitset& avoid,
                                     const LinkFilter& filter) {
  return free_search.min_overlap(g, src, dst, avoid, filter);
}

std::vector<Path> k_shortest_paths(const Graph& g, NodeId src, NodeId dst, std::size_t k,
                                   const LinkFilter& filter) {
  std::vector<Path> result;
  if (k == 0) return result;
  auto first = shortest_path(g, src, dst, filter);
  if (!first) return result;
  result.push_back(std::move(*first));

  // Yen: candidates are spur deviations from already-accepted paths.
  const auto path_key = [](const Path& p) { return p.links; };
  std::set<std::vector<LinkId>> seen{path_key(result[0])};
  std::vector<Path> candidates;

  while (result.size() < k) {
    const Path& last = result.back();
    for (std::size_t spur = 0; spur < last.nodes.size() - 1; ++spur) {
      const NodeId spur_node = last.nodes[spur];
      // Links banned at this spur: the next link of every accepted path that
      // shares the root prefix, plus all links of the root itself (loopless).
      std::vector<bool> banned(g.num_links(), false);
      for (const Path& p : result) {
        if (p.links.size() <= spur) continue;
        if (std::equal(p.links.begin(), p.links.begin() + static_cast<std::ptrdiff_t>(spur),
                       last.links.begin()))
          banned[p.links[spur]] = true;
      }
      std::vector<bool> banned_node(g.num_nodes(), false);
      for (std::size_t i = 0; i < spur; ++i) banned_node[last.nodes[i]] = true;

      const LinkFilter spur_filter = [&](LinkId l) {
        if (banned[l]) return false;
        const Link& link = g.link(l);
        if (banned_node[link.a] || banned_node[link.b]) return false;
        return usable(filter, l);
      };
      auto tail = shortest_path(g, spur_node, dst, spur_filter);
      if (!tail) continue;
      Path candidate;
      candidate.nodes.assign(last.nodes.begin(),
                             last.nodes.begin() + static_cast<std::ptrdiff_t>(spur));
      candidate.links.assign(last.links.begin(),
                             last.links.begin() + static_cast<std::ptrdiff_t>(spur));
      candidate.nodes.insert(candidate.nodes.end(), tail->nodes.begin(), tail->nodes.end());
      candidate.links.insert(candidate.links.end(), tail->links.begin(), tail->links.end());
      if (seen.insert(path_key(candidate)).second)
        candidates.push_back(std::move(candidate));
    }
    if (candidates.empty()) break;
    const auto best_it =
        std::min_element(candidates.begin(), candidates.end(),
                         [](const Path& a, const Path& b) { return a.hops() < b.hops(); });
    result.push_back(std::move(*best_it));
    candidates.erase(best_it);
  }
  return result;
}

}  // namespace eqos::topology
