#include "topology/paths.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

namespace eqos::topology {
namespace {

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

Path reconstruct(const Graph& g, NodeId src, NodeId dst,
                 const std::vector<LinkId>& via_link) {
  Path p;
  NodeId at = dst;
  while (at != src) {
    const LinkId l = via_link[at];
    p.links.push_back(l);
    p.nodes.push_back(at);
    at = g.link(l).other(at);
  }
  p.nodes.push_back(src);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

bool usable(const LinkFilter& filter, LinkId l) { return !filter || filter(l); }

}  // namespace

util::DynamicBitset Path::link_set(std::size_t num_links) const {
  util::DynamicBitset bits(num_links);
  for (LinkId l : links) bits.set(l);
  return bits;
}

std::size_t Path::overlap(const Path& other) const {
  std::size_t n = 0;
  for (LinkId l : links)
    if (std::find(other.links.begin(), other.links.end(), l) != other.links.end()) ++n;
  return n;
}

std::optional<Path> PathSearch::shortest(const Graph& g, NodeId src, NodeId dst,
                                         const LinkFilter& filter) {
  if (src >= g.num_nodes() || dst >= g.num_nodes())
    throw std::invalid_argument("shortest_path: unknown node");
  if (src == dst) return Path{{src}, {}};

  dist_.assign(g.num_nodes(), kUnreached);
  via_link_.assign(g.num_nodes(), 0);
  queue_.clear();
  dist_[src] = 0;
  queue_.push_back(src);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const NodeId u = queue_[head];
    for (const auto& adj : g.adjacent(u)) {
      if (!usable(filter, adj.link) || dist_[adj.neighbor] != kUnreached) continue;
      dist_[adj.neighbor] = dist_[u] + 1;
      via_link_[adj.neighbor] = adj.link;
      if (adj.neighbor == dst) return reconstruct(g, src, dst, via_link_);
      queue_.push_back(adj.neighbor);
    }
  }
  return std::nullopt;
}

std::optional<Path> PathSearch::widest_shortest(const Graph& g, NodeId src, NodeId dst,
                                                const LinkWidth& width,
                                                const LinkFilter& filter) {
  if (src >= g.num_nodes() || dst >= g.num_nodes())
    throw std::invalid_argument("widest_shortest_path: unknown node");
  if (!width) throw std::invalid_argument("widest_shortest_path: null width");
  if (src == dst) return Path{{src}, {}};

  // Lexicographic Dijkstra on (hops asc, bottleneck width desc).  The heap
  // runs on the reused wide_heap_ buffer via push_heap/pop_heap — the same
  // operations std::priority_queue performs, so the pop order (and thus the
  // chosen route) is identical to the historical implementation.
  const auto better = [](const WideLabel& a, const WideLabel& b) {
    return a.hops != b.hops ? a.hops < b.hops : a.width > b.width;
  };
  using QueueEntry = std::pair<WideLabel, NodeId>;
  const auto cmp = [&](const QueueEntry& a, const QueueEntry& b) {
    return better(b.first, a.first);  // min-heap by label
  };

  wide_best_.assign(g.num_nodes(), WideLabel{kUnreached, 0.0});
  via_link_.assign(g.num_nodes(), 0);
  wide_heap_.clear();
  wide_best_[src] = {0, std::numeric_limits<double>::infinity()};
  wide_heap_.push_back({wide_best_[src], src});
  while (!wide_heap_.empty()) {
    std::pop_heap(wide_heap_.begin(), wide_heap_.end(), cmp);
    const auto [label, u] = wide_heap_.back();
    wide_heap_.pop_back();
    if (better(wide_best_[u], label)) continue;  // stale entry
    if (u == dst) break;
    for (const auto& adj : g.adjacent(u)) {
      if (!usable(filter, adj.link)) continue;
      const WideLabel candidate{label.hops + 1, std::min(label.width, width(adj.link))};
      if (better(candidate, wide_best_[adj.neighbor])) {
        wide_best_[adj.neighbor] = candidate;
        via_link_[adj.neighbor] = adj.link;
        wide_heap_.push_back({candidate, adj.neighbor});
        std::push_heap(wide_heap_.begin(), wide_heap_.end(), cmp);
      }
    }
  }
  if (wide_best_[dst].hops == kUnreached) return std::nullopt;
  return reconstruct(g, src, dst, via_link_);
}

std::optional<Path> PathSearch::min_overlap(const Graph& g, NodeId src, NodeId dst,
                                            const util::DynamicBitset& avoid,
                                            const LinkFilter& filter) {
  if (src >= g.num_nodes() || dst >= g.num_nodes())
    throw std::invalid_argument("min_overlap_path: unknown node");
  if (src == dst) return Path{{src}, {}};

  // Dijkstra with cost = overlap * kPenalty + hops; the penalty dominates any
  // possible hop count so overlap is minimized first.
  const double kPenalty = static_cast<double>(g.num_links() + 1);
  const auto cmp = std::greater<std::pair<double, NodeId>>{};
  cost_best_.assign(g.num_nodes(), std::numeric_limits<double>::infinity());
  via_link_.assign(g.num_nodes(), 0);
  cost_heap_.clear();
  cost_best_[src] = 0.0;
  cost_heap_.push_back({0.0, src});
  while (!cost_heap_.empty()) {
    std::pop_heap(cost_heap_.begin(), cost_heap_.end(), cmp);
    const auto [cost, u] = cost_heap_.back();
    cost_heap_.pop_back();
    if (cost > cost_best_[u]) continue;
    if (u == dst) break;
    for (const auto& adj : g.adjacent(u)) {
      if (!usable(filter, adj.link)) continue;
      const double step = 1.0 + (avoid.test(adj.link) ? kPenalty : 0.0);
      const double candidate = cost + step;
      if (candidate < cost_best_[adj.neighbor]) {
        cost_best_[adj.neighbor] = candidate;
        via_link_[adj.neighbor] = adj.link;
        cost_heap_.push_back({candidate, adj.neighbor});
        std::push_heap(cost_heap_.begin(), cost_heap_.end(), cmp);
      }
    }
  }
  if (!std::isfinite(cost_best_[dst])) return std::nullopt;
  return reconstruct(g, src, dst, via_link_);
}

namespace {
// Scratch behind the free-function entry points.  Every search fully
// re-initializes the buffers it uses, so reuse cannot change results (the
// equality against a fresh PathSearch is asserted in tests/test_sweep.cpp);
// thread_local keeps the free functions safe under the sweep's thread pool.
thread_local PathSearch free_search;
}  // namespace

std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst,
                                  const LinkFilter& filter) {
  return free_search.shortest(g, src, dst, filter);
}

std::optional<Path> widest_shortest_path(const Graph& g, NodeId src, NodeId dst,
                                         const LinkWidth& width,
                                         const LinkFilter& filter) {
  return free_search.widest_shortest(g, src, dst, width, filter);
}

std::optional<Path> min_overlap_path(const Graph& g, NodeId src, NodeId dst,
                                     const util::DynamicBitset& avoid,
                                     const LinkFilter& filter) {
  return free_search.min_overlap(g, src, dst, avoid, filter);
}

std::vector<Path> k_shortest_paths(const Graph& g, NodeId src, NodeId dst, std::size_t k,
                                   const LinkFilter& filter) {
  std::vector<Path> result;
  if (k == 0) return result;
  auto first = shortest_path(g, src, dst, filter);
  if (!first) return result;
  result.push_back(std::move(*first));

  // Yen: candidates are spur deviations from already-accepted paths.
  const auto path_key = [](const Path& p) { return p.links; };
  std::set<std::vector<LinkId>> seen{path_key(result[0])};
  std::vector<Path> candidates;

  while (result.size() < k) {
    const Path& last = result.back();
    for (std::size_t spur = 0; spur < last.nodes.size() - 1; ++spur) {
      const NodeId spur_node = last.nodes[spur];
      // Links banned at this spur: the next link of every accepted path that
      // shares the root prefix, plus all links of the root itself (loopless).
      std::vector<bool> banned(g.num_links(), false);
      for (const Path& p : result) {
        if (p.links.size() <= spur) continue;
        if (std::equal(p.links.begin(), p.links.begin() + static_cast<std::ptrdiff_t>(spur),
                       last.links.begin()))
          banned[p.links[spur]] = true;
      }
      std::vector<bool> banned_node(g.num_nodes(), false);
      for (std::size_t i = 0; i < spur; ++i) banned_node[last.nodes[i]] = true;

      const LinkFilter spur_filter = [&](LinkId l) {
        if (banned[l]) return false;
        const Link& link = g.link(l);
        if (banned_node[link.a] || banned_node[link.b]) return false;
        return usable(filter, l);
      };
      auto tail = shortest_path(g, spur_node, dst, spur_filter);
      if (!tail) continue;
      Path candidate;
      candidate.nodes.assign(last.nodes.begin(),
                             last.nodes.begin() + static_cast<std::ptrdiff_t>(spur));
      candidate.links.assign(last.links.begin(),
                             last.links.begin() + static_cast<std::ptrdiff_t>(spur));
      candidate.nodes.insert(candidate.nodes.end(), tail->nodes.begin(), tail->nodes.end());
      candidate.links.insert(candidate.links.end(), tail->links.begin(), tail->links.end());
      if (seen.insert(path_key(candidate)).second)
        candidates.push_back(std::move(candidate));
    }
    if (candidates.empty()) break;
    const auto best_it =
        std::min_element(candidates.begin(), candidates.end(),
                         [](const Path& a, const Path& b) { return a.hops() < b.hops(); });
    result.push_back(std::move(*best_it));
    candidates.erase(best_it);
  }
  return result;
}

}  // namespace eqos::topology
