#include "topology/graph.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace eqos::topology {

double distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

NodeId Link::other(NodeId node) const {
  assert(node == a || node == b);
  return node == a ? b : a;
}

Graph::Graph(std::size_t nodes) : positions_(nodes), adjacency_(nodes) {}

NodeId Graph::add_node(Point position) {
  positions_.push_back(position);
  adjacency_.emplace_back();
  return static_cast<NodeId>(positions_.size() - 1);
}

LinkId Graph::add_link(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("graph: self-loop");
  if (a >= num_nodes() || b >= num_nodes())
    throw std::invalid_argument("graph: unknown node");
  if (find_link(a, b)) throw std::invalid_argument("graph: duplicate link");
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b});
  adjacency_[a].push_back(Adjacency{b, id});
  adjacency_[b].push_back(Adjacency{a, id});
  return id;
}

const Link& Graph::link(LinkId id) const {
  assert(id < links_.size());
  return links_[id];
}

Point Graph::position(NodeId node) const {
  assert(node < num_nodes());
  return positions_[node];
}

void Graph::set_position(NodeId node, Point p) {
  assert(node < num_nodes());
  positions_[node] = p;
}

std::span<const Adjacency> Graph::adjacent(NodeId node) const {
  assert(node < num_nodes());
  return adjacency_[node];
}

std::size_t Graph::degree(NodeId node) const { return adjacent(node).size(); }

std::optional<LinkId> Graph::find_link(NodeId a, NodeId b) const {
  if (a >= num_nodes() || b >= num_nodes()) return std::nullopt;
  // Scan the smaller adjacency list.
  const NodeId probe = degree(a) <= degree(b) ? a : b;
  const NodeId target = probe == a ? b : a;
  for (const auto& adj : adjacent(probe))
    if (adj.neighbor == target) return adj.link;
  return std::nullopt;
}

double Graph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_links()) / static_cast<double>(num_nodes());
}

}  // namespace eqos::topology
