#include "topology/goal.hpp"

#include <cassert>

namespace eqos::topology {

HopDistanceField::HopDistanceField(const Graph& graph)
    : graph_(graph),
      usable_(graph.num_links(), 1),
      dist_(graph.num_nodes()),
      built_version_(graph.num_nodes(), 0) {}

void HopDistanceField::set_link_usable(LinkId link, bool usable) {
  assert(link < usable_.size());
  const char value = usable ? 1 : 0;
  if (usable_[link] == value) return;
  usable_[link] = value;
  ++version_;
}

const std::uint32_t* HopDistanceField::to_destination(NodeId dst) {
  assert(dst < graph_.num_nodes());
  if (built_version_[dst] == version_) return dist_[dst].data();

  std::vector<std::uint32_t>& dist = dist_[dst];
  dist.assign(graph_.num_nodes(), kUnreachable);
  queue_.clear();
  dist[dst] = 0;
  queue_.push_back(dst);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const NodeId u = queue_[head];
    const std::uint32_t next = dist[u] + 1;
    for (const auto& adj : graph_.adjacent(u)) {
      if (!usable_[adj.link] || dist[adj.neighbor] != kUnreachable) continue;
      dist[adj.neighbor] = next;
      queue_.push_back(adj.neighbor);
    }
  }
  built_version_[dst] = version_;
  ++rebuilds_;
  return dist.data();
}

}  // namespace eqos::topology
