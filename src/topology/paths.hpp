// Path search over the network graph.
//
// Route selection in the paper is distributed bounded flooding: the request
// copy that reaches the destination first has effectively traversed the
// fewest hops among routes with sufficient bandwidth, and ties are broken by
// the better bandwidth allowance.  Centralized equivalents are used here:
// hop-count BFS restricted to admissible links, a widest-shortest variant
// matching the tie-break, and a minimum-overlap search for backup routes
// ("maximally link-disjoint" when no fully disjoint path exists).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "topology/graph.hpp"
#include "util/bitset.hpp"

namespace eqos::topology {

/// A simple path: nodes[0] .. nodes.back() with links[i] connecting
/// nodes[i] and nodes[i+1].
struct Path {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  [[nodiscard]] std::size_t hops() const noexcept { return links.size(); }
  [[nodiscard]] bool empty() const noexcept { return links.empty(); }
  /// Link ids as a bitset over `num_links` positions.
  [[nodiscard]] util::DynamicBitset link_set(std::size_t num_links) const;
  /// Number of links shared with `other`.
  [[nodiscard]] std::size_t overlap(const Path& other) const;
};

/// Predicate deciding whether a link may be used by the search.  The
/// type-erased entry points below take this; the hot path (net::Router)
/// passes concrete callables to the member templates instead, so each edge
/// relaxation costs a direct (inlinable) call rather than a std::function
/// dispatch.
using LinkFilter = std::function<bool(LinkId)>;
/// Width (e.g. spare bandwidth) of a link, used for tie-breaking.
using LinkWidth = std::function<double(LinkId)>;

/// Filter admitting every link — the concrete stand-in for a null
/// LinkFilter on the templated fast path.
struct AllLinks {
  constexpr bool operator()(LinkId) const noexcept { return true; }
};

namespace detail {

/// Rebuilds the node/link sequence from the predecessor array.
[[nodiscard]] Path reconstruct(const Graph& g, NodeId src, NodeId dst,
                               const std::vector<LinkId>& via_link);

/// Concrete adapter for a (known non-null) LinkFilter.
struct FilterRef {
  const LinkFilter* fn;
  bool operator()(LinkId l) const { return (*fn)(l); }
};

/// Concrete adapter for a (known non-null) LinkWidth.
struct WidthRef {
  const LinkWidth* fn;
  double operator()(LinkId l) const { return (*fn)(l); }
};

}  // namespace detail

/// Reusable workspace for the path searches below.
///
/// The searches need per-node label, predecessor, and frontier storage;
/// allocating those on every call dominates route-search cost in the
/// simulator's churn loop (every arrival runs one primary and one backup
/// search).  A PathSearch owns those buffers and reuses them across calls,
/// so after the first search on a given graph size no scratch allocation
/// happens (only the returned Path is built fresh).  Results are identical
/// to the free functions for every input — asserted in
/// tests/test_sweep.cpp and tests/test_fastpath.cpp.  Not thread-safe; use
/// one instance per thread.
///
/// The member templates additionally accept `dist_to_dst`, a per-node
/// admissible lower bound on the remaining hop count (usually
/// HopDistanceField::to_destination).  The bound must be computed over a
/// link set that CONTAINS every link the filter admits; passing a tighter
/// field is undefined (it could prune a node on the true route).  With a
/// valid field the returned routes are bit-identical to the unpruned
/// searches.  Which cuts each search makes — and why nothing more is sound
/// — is documented on the implementations below and in DESIGN.md §7.
class PathSearch {
 public:
  /// See topology::shortest_path.  Prunes nodes the field marks unreachable
  /// from dst: BFS frontier order is FIFO (stable), and a node that cannot
  /// reach dst over the bound's link superset can never be relaxed from —
  /// nor relax — any node that can (an edge between the two classes would
  /// contradict the bound), so skipping the class leaves every label and
  /// predecessor the route reconstruction can read untouched.
  template <typename Filter>
  [[nodiscard]] std::optional<Path> shortest(const Graph& g, NodeId src, NodeId dst,
                                             Filter&& filter,
                                             const std::uint32_t* dist_to_dst = nullptr) {
    if (src >= g.num_nodes() || dst >= g.num_nodes())
      throw std::invalid_argument("shortest_path: unknown node");
    if (src == dst) return Path{{src}, {}};
    if (dist_to_dst && dist_to_dst[src] == kUnreached) return std::nullopt;

    dist_.assign(g.num_nodes(), kUnreached);
    via_link_.assign(g.num_nodes(), 0);
    queue_.clear();
    dist_[src] = 0;
    queue_.push_back(src);
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const NodeId u = queue_[head];
      for (const auto& adj : g.adjacent(u)) {
        if (!filter(adj.link) || dist_[adj.neighbor] != kUnreached) continue;
        if (dist_to_dst && dist_to_dst[adj.neighbor] == kUnreached) continue;
        dist_[adj.neighbor] = dist_[u] + 1;
        via_link_[adj.neighbor] = adj.link;
        if (adj.neighbor == dst) return detail::reconstruct(g, src, dst, via_link_);
        queue_.push_back(adj.neighbor);
      }
    }
    return std::nullopt;
  }

  /// See topology::widest_shortest_path.  The only goal-directed cut here
  /// is the disconnected-source short-circuit.  Anything deeper is unsound
  /// for bit-identity: the heap orders entries by label alone (hops, then
  /// width — NOT a total order over entries), so which of two equal-label
  /// nodes pops first depends on the heap's array layout, which any
  /// suppressed push would perturb.  Equal-label pops can relax a shared
  /// neighbor to the same candidate label through different links, where
  /// pop order decides the recorded predecessor — i.e. the route.  Only
  /// content-preserving cuts are sound, and those save nothing.
  template <typename Width, typename Filter>
  [[nodiscard]] std::optional<Path> widest_shortest(
      const Graph& g, NodeId src, NodeId dst, Width&& width, Filter&& filter,
      const std::uint32_t* dist_to_dst = nullptr) {
    if (src >= g.num_nodes() || dst >= g.num_nodes())
      throw std::invalid_argument("widest_shortest_path: unknown node");
    if (src == dst) return Path{{src}, {}};
    if (dist_to_dst && dist_to_dst[src] == kUnreached) return std::nullopt;

    // Lexicographic Dijkstra on (hops asc, bottleneck width desc).  The heap
    // runs on the reused wide_heap_ buffer via push_heap/pop_heap — the same
    // operations std::priority_queue performs, so the pop order (and thus the
    // chosen route) is identical to the historical implementation.
    const auto better = [](const WideLabel& a, const WideLabel& b) {
      return a.hops != b.hops ? a.hops < b.hops : a.width > b.width;
    };
    using QueueEntry = std::pair<WideLabel, NodeId>;
    const auto cmp = [&](const QueueEntry& a, const QueueEntry& b) {
      return better(b.first, a.first);  // min-heap by label
    };

    wide_best_.assign(g.num_nodes(), WideLabel{kUnreached, 0.0});
    via_link_.assign(g.num_nodes(), 0);
    wide_heap_.clear();
    wide_best_[src] = {0, std::numeric_limits<double>::infinity()};
    wide_heap_.push_back({wide_best_[src], src});
    while (!wide_heap_.empty()) {
      std::pop_heap(wide_heap_.begin(), wide_heap_.end(), cmp);
      const auto [label, u] = wide_heap_.back();
      wide_heap_.pop_back();
      if (better(wide_best_[u], label)) continue;  // stale entry
      if (u == dst) break;
      for (const auto& adj : g.adjacent(u)) {
        if (!filter(adj.link)) continue;
        const WideLabel candidate{label.hops + 1,
                                  std::min(label.width, width(adj.link))};
        if (better(candidate, wide_best_[adj.neighbor])) {
          wide_best_[adj.neighbor] = candidate;
          via_link_[adj.neighbor] = adj.link;
          wide_heap_.push_back({candidate, adj.neighbor});
          std::push_heap(wide_heap_.begin(), wide_heap_.end(), cmp);
        }
      }
    }
    if (wide_best_[dst].hops == kUnreached) return std::nullopt;
    return detail::reconstruct(g, src, dst, via_link_);
  }

  /// See topology::min_overlap_path.  Full goal-directed pruning: a
  /// candidate label c for node v is dropped when v cannot reach dst over
  /// the bound's links, or when c + dist_to_dst[v] (each remaining hop
  /// costs >= 1; avoid-penalties only add) exceeds dst's current best
  /// label.  This is bit-identity-sound because the heap comparator is a
  /// strict total order over entries — (cost, node id) — so the pop
  /// sequence is the sorted order of whatever was pushed, independent of
  /// array layout.  Every node on the final route receives its optimal
  /// label through a chain of relaxations that all satisfy the bound
  /// (label + admissible remainder <= final dst cost), so no pruned
  /// candidate can be, or reorder, a relaxation the reconstruction reads;
  /// pruned candidates are exactly the transient improvements a later
  /// strict improvement would have overwritten anyway.
  template <typename Filter>
  [[nodiscard]] std::optional<Path> min_overlap(
      const Graph& g, NodeId src, NodeId dst, const util::DynamicBitset& avoid,
      Filter&& filter, const std::uint32_t* dist_to_dst = nullptr) {
    if (src >= g.num_nodes() || dst >= g.num_nodes())
      throw std::invalid_argument("min_overlap_path: unknown node");
    if (src == dst) return Path{{src}, {}};
    if (dist_to_dst && dist_to_dst[src] == kUnreached) return std::nullopt;

    // Dijkstra with cost = overlap * kPenalty + hops; the penalty dominates
    // any possible hop count so overlap is minimized first.  All costs are
    // small integers stored in doubles, so the pruning comparison below is
    // exact.
    const double kPenalty = static_cast<double>(g.num_links() + 1);
    const auto cmp = std::greater<std::pair<double, NodeId>>{};
    cost_best_.assign(g.num_nodes(), std::numeric_limits<double>::infinity());
    via_link_.assign(g.num_nodes(), 0);
    cost_heap_.clear();
    cost_best_[src] = 0.0;
    cost_heap_.push_back({0.0, src});
    while (!cost_heap_.empty()) {
      std::pop_heap(cost_heap_.begin(), cost_heap_.end(), cmp);
      const auto [cost, u] = cost_heap_.back();
      cost_heap_.pop_back();
      if (cost > cost_best_[u]) continue;
      if (u == dst) break;
      for (const auto& adj : g.adjacent(u)) {
        if (!filter(adj.link)) continue;
        const double step = 1.0 + (avoid.test(adj.link) ? kPenalty : 0.0);
        const double candidate = cost + step;
        if (candidate < cost_best_[adj.neighbor]) {
          if (dist_to_dst) {
            const std::uint32_t left = dist_to_dst[adj.neighbor];
            if (left == kUnreached ||
                candidate + static_cast<double>(left) > cost_best_[dst])
              continue;
          }
          cost_best_[adj.neighbor] = candidate;
          via_link_[adj.neighbor] = adj.link;
          cost_heap_.push_back({candidate, adj.neighbor});
          std::push_heap(cost_heap_.begin(), cost_heap_.end(), cmp);
        }
      }
    }
    if (!std::isfinite(cost_best_[dst])) return std::nullopt;
    return detail::reconstruct(g, src, dst, via_link_);
  }

  // ---- Type-erased overloads (historical API) -----------------------------
  // Thin wrappers over the member templates: a null filter becomes
  // AllLinks, a non-null one a FilterRef, so existing callers (and the free
  // functions) compile and behave exactly as before.

  /// See topology::shortest_path.
  [[nodiscard]] std::optional<Path> shortest(const Graph& g, NodeId src, NodeId dst,
                                             const LinkFilter& filter = nullptr);
  /// See topology::widest_shortest_path.
  [[nodiscard]] std::optional<Path> widest_shortest(const Graph& g, NodeId src,
                                                    NodeId dst, const LinkWidth& width,
                                                    const LinkFilter& filter = nullptr);
  /// See topology::min_overlap_path.
  [[nodiscard]] std::optional<Path> min_overlap(const Graph& g, NodeId src, NodeId dst,
                                                const util::DynamicBitset& avoid,
                                                const LinkFilter& filter = nullptr);

 private:
  /// Matches HopDistanceField::kUnreachable (static_asserted in paths.cpp).
  static constexpr std::uint32_t kUnreached = 0xffffffffu;

  struct WideLabel {
    std::uint32_t hops;
    double width;
  };

  std::vector<std::uint32_t> dist_;        // BFS levels
  std::vector<LinkId> via_link_;           // predecessors
  std::vector<NodeId> queue_;              // BFS ring buffer
  std::vector<WideLabel> wide_best_;       // widest-shortest labels
  std::vector<std::pair<WideLabel, NodeId>> wide_heap_;
  std::vector<double> cost_best_;          // min-overlap costs
  std::vector<std::pair<double, NodeId>> cost_heap_;
};

/// Fewest-hop path from src to dst using only links passing `filter`
/// (nullptr = all links).  Empty optional when disconnected.
[[nodiscard]] std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst,
                                                const LinkFilter& filter = nullptr);

/// Fewest-hop path that, among equal-hop candidates, maximizes the minimum
/// `width` along the path — the flooding tie-break ("better bandwidth
/// allowance").
[[nodiscard]] std::optional<Path> widest_shortest_path(const Graph& g, NodeId src,
                                                       NodeId dst, const LinkWidth& width,
                                                       const LinkFilter& filter = nullptr);

/// Path minimizing (number of links shared with `avoid`, then hops).  Used
/// for backup routes: a result with zero overlap is fully link-disjoint from
/// the primary; otherwise it is maximally link-disjoint.  Links rejected by
/// `filter` are never used.
[[nodiscard]] std::optional<Path> min_overlap_path(const Graph& g, NodeId src, NodeId dst,
                                                   const util::DynamicBitset& avoid,
                                                   const LinkFilter& filter = nullptr);

/// Yen's algorithm: up to k loopless fewest-hop paths, ascending by hops.
[[nodiscard]] std::vector<Path> k_shortest_paths(const Graph& g, NodeId src, NodeId dst,
                                                 std::size_t k,
                                                 const LinkFilter& filter = nullptr);

}  // namespace eqos::topology
