// Path search over the network graph.
//
// Route selection in the paper is distributed bounded flooding: the request
// copy that reaches the destination first has effectively traversed the
// fewest hops among routes with sufficient bandwidth, and ties are broken by
// the better bandwidth allowance.  Centralized equivalents are used here:
// hop-count BFS restricted to admissible links, a widest-shortest variant
// matching the tie-break, and a minimum-overlap search for backup routes
// ("maximally link-disjoint" when no fully disjoint path exists).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "topology/graph.hpp"
#include "util/bitset.hpp"

namespace eqos::topology {

/// A simple path: nodes[0] .. nodes.back() with links[i] connecting
/// nodes[i] and nodes[i+1].
struct Path {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  [[nodiscard]] std::size_t hops() const noexcept { return links.size(); }
  [[nodiscard]] bool empty() const noexcept { return links.empty(); }
  /// Link ids as a bitset over `num_links` positions.
  [[nodiscard]] util::DynamicBitset link_set(std::size_t num_links) const;
  /// Number of links shared with `other`.
  [[nodiscard]] std::size_t overlap(const Path& other) const;
};

/// Predicate deciding whether a link may be used by the search.
using LinkFilter = std::function<bool(LinkId)>;
/// Width (e.g. spare bandwidth) of a link, used for tie-breaking.
using LinkWidth = std::function<double(LinkId)>;

/// Reusable workspace for the path searches below.
///
/// The searches need per-node label, predecessor, and frontier storage;
/// allocating those on every call dominates route-search cost in the
/// simulator's churn loop (every arrival runs one primary and one backup
/// search).  A PathSearch owns those buffers and reuses them across calls,
/// so after the first search on a given graph size no scratch allocation
/// happens (only the returned Path is built fresh).  Results are identical
/// to the free functions for every input — asserted in
/// tests/test_sweep.cpp.  Not thread-safe; use one instance per thread.
class PathSearch {
 public:
  /// See topology::shortest_path.
  [[nodiscard]] std::optional<Path> shortest(const Graph& g, NodeId src, NodeId dst,
                                             const LinkFilter& filter = nullptr);
  /// See topology::widest_shortest_path.
  [[nodiscard]] std::optional<Path> widest_shortest(const Graph& g, NodeId src,
                                                    NodeId dst, const LinkWidth& width,
                                                    const LinkFilter& filter = nullptr);
  /// See topology::min_overlap_path.
  [[nodiscard]] std::optional<Path> min_overlap(const Graph& g, NodeId src, NodeId dst,
                                                const util::DynamicBitset& avoid,
                                                const LinkFilter& filter = nullptr);

 private:
  struct WideLabel {
    std::uint32_t hops;
    double width;
  };

  std::vector<std::uint32_t> dist_;        // BFS levels
  std::vector<LinkId> via_link_;           // predecessors
  std::vector<NodeId> queue_;              // BFS ring buffer
  std::vector<WideLabel> wide_best_;       // widest-shortest labels
  std::vector<std::pair<WideLabel, NodeId>> wide_heap_;
  std::vector<double> cost_best_;          // min-overlap costs
  std::vector<std::pair<double, NodeId>> cost_heap_;
};

/// Fewest-hop path from src to dst using only links passing `filter`
/// (nullptr = all links).  Empty optional when disconnected.
[[nodiscard]] std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst,
                                                const LinkFilter& filter = nullptr);

/// Fewest-hop path that, among equal-hop candidates, maximizes the minimum
/// `width` along the path — the flooding tie-break ("better bandwidth
/// allowance").
[[nodiscard]] std::optional<Path> widest_shortest_path(const Graph& g, NodeId src,
                                                       NodeId dst, const LinkWidth& width,
                                                       const LinkFilter& filter = nullptr);

/// Path minimizing (number of links shared with `avoid`, then hops).  Used
/// for backup routes: a result with zero overlap is fully link-disjoint from
/// the primary; otherwise it is maximally link-disjoint.  Links rejected by
/// `filter` are never used.
[[nodiscard]] std::optional<Path> min_overlap_path(const Graph& g, NodeId src, NodeId dst,
                                                   const util::DynamicBitset& avoid,
                                                   const LinkFilter& filter = nullptr);

/// Yen's algorithm: up to k loopless fewest-hop paths, ascending by hops.
[[nodiscard]] std::vector<Path> k_shortest_paths(const Graph& g, NodeId src, NodeId dst,
                                                 std::size_t k,
                                                 const LinkFilter& filter = nullptr);

}  // namespace eqos::topology
