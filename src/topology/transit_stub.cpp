#include "topology/transit_stub.hpp"

#include <cmath>
#include <stdexcept>

namespace eqos::topology {

std::size_t TransitStubGraph::num_transit_nodes() const {
  std::size_t n = 0;
  for (auto r : roles)
    if (r == NodeRole::kTransit) ++n;
  return n;
}

std::size_t TransitStubGraph::num_stub_nodes() const {
  return roles.size() - num_transit_nodes();
}

TransitStubGraph generate_transit_stub(const TransitStubConfig& config,
                                       std::uint64_t seed) {
  if (config.transit_domains == 0 || config.nodes_per_transit == 0 ||
      config.nodes_per_stub == 0)
    throw std::invalid_argument("transit_stub: empty hierarchy");

  util::Rng rng(seed);
  TransitStubGraph out;
  Graph& g = out.graph;
  std::uint32_t next_domain = 0;

  // --- Transit domains: nodes clustered near the square's center row. ---
  std::vector<std::vector<NodeId>> transit(config.transit_domains);
  for (std::size_t d = 0; d < config.transit_domains; ++d) {
    const std::uint32_t domain = next_domain++;
    const double cx = (static_cast<double>(d) + 0.5) /
                      static_cast<double>(config.transit_domains);
    for (std::size_t i = 0; i < config.nodes_per_transit; ++i) {
      const Point p{cx + rng.uniform(-0.05, 0.05), 0.5 + rng.uniform(-0.05, 0.05)};
      const NodeId id = g.add_node(p);
      transit[d].push_back(id);
      out.roles.push_back(NodeRole::kTransit);
      out.domain_of.push_back(domain);
    }
    // Ring for guaranteed connectivity, plus random chords.
    const auto& nodes = transit[d];
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) g.add_link(nodes[i], nodes[i + 1]);
    if (nodes.size() > 2) g.add_link(nodes.back(), nodes.front());
    for (std::size_t i = 0; i < nodes.size(); ++i)
      for (std::size_t j = i + 2; j < nodes.size(); ++j)
        if (!(i == 0 && j + 1 == nodes.size()) && !g.find_link(nodes[i], nodes[j]) &&
            rng.chance(config.transit_edge_prob))
          g.add_link(nodes[i], nodes[j]);
  }
  // Inter-domain transit links: chain plus closing edge.
  for (std::size_t d = 0; d + 1 < config.transit_domains; ++d)
    g.add_link(transit[d][rng.index(transit[d].size())],
               transit[d + 1][rng.index(transit[d + 1].size())]);
  if (config.transit_domains > 2)
    g.add_link(transit.back()[rng.index(transit.back().size())],
               transit.front()[rng.index(transit.front().size())]);

  // --- Stub domains hanging off each transit node. ---
  for (std::size_t d = 0; d < config.transit_domains; ++d) {
    for (std::size_t t = 0; t < transit[d].size(); ++t) {
      const NodeId gateway = transit[d][t];
      const Point gp = g.position(gateway);
      for (std::size_t s = 0; s < config.stubs_per_transit_node; ++s) {
        const std::uint32_t domain = next_domain++;
        // Place the stub cluster on a small circle around its gateway.
        const double angle =
            2.0 * M_PI *
            (static_cast<double>(s) + rng.uniform(0.0, 0.5)) /
            static_cast<double>(config.stubs_per_transit_node);
        const Point center{gp.x + 0.22 * std::cos(angle), gp.y + 0.22 * std::sin(angle)};
        std::vector<NodeId> stub;
        for (std::size_t i = 0; i < config.nodes_per_stub; ++i) {
          const Point p{center.x + rng.uniform(-0.06, 0.06),
                        center.y + rng.uniform(-0.06, 0.06)};
          const NodeId id = g.add_node(p);
          stub.push_back(id);
          out.roles.push_back(NodeRole::kStub);
          out.domain_of.push_back(domain);
        }
        // Random spanning tree for connectivity, then random extra edges.
        for (std::size_t i = 1; i < stub.size(); ++i)
          g.add_link(stub[i], stub[rng.index(i)]);
        for (std::size_t i = 0; i < stub.size(); ++i)
          for (std::size_t j = i + 1; j < stub.size(); ++j)
            if (!g.find_link(stub[i], stub[j]) && rng.chance(config.stub_edge_prob))
              g.add_link(stub[i], stub[j]);
        // Single uplink from the stub to its transit gateway.
        g.add_link(stub[rng.index(stub.size())], gateway);
      }
    }
  }
  return out;
}

}  // namespace eqos::topology
