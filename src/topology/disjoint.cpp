#include "topology/disjoint.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

namespace eqos::topology {
namespace {

struct Arc {
  NodeId from;
  NodeId to;
  LinkId link;
  int cost;
};

/// Directed arc list of the residual graph: P1's links become single
/// reverse arcs of cost -1; every other admissible link contributes both
/// directions at cost 1.
std::vector<Arc> residual_arcs(const Graph& g, const Path& p1,
                               const LinkFilter& filter) {
  // Direction P1 traverses each of its links.
  std::map<LinkId, std::pair<NodeId, NodeId>> p1_dir;
  for (std::size_t i = 0; i < p1.links.size(); ++i)
    p1_dir[p1.links[i]] = {p1.nodes[i], p1.nodes[i + 1]};

  std::vector<Arc> arcs;
  arcs.reserve(2 * g.num_links());
  for (LinkId l = 0; l < g.num_links(); ++l) {
    if (filter && !filter(l)) continue;
    const Link& link = g.link(l);
    const auto it = p1_dir.find(l);
    if (it == p1_dir.end()) {
      arcs.push_back({link.a, link.b, l, 1});
      arcs.push_back({link.b, link.a, l, 1});
    } else {
      arcs.push_back({it->second.second, it->second.first, l, -1});
    }
  }
  return arcs;
}

}  // namespace

std::optional<DisjointPair> shortest_disjoint_pair(const Graph& g, NodeId src,
                                                   NodeId dst,
                                                   const LinkFilter& filter) {
  if (src >= g.num_nodes() || dst >= g.num_nodes())
    throw std::invalid_argument("disjoint pair: unknown endpoint");
  if (src == dst) throw std::invalid_argument("disjoint pair: src == dst");

  const auto p1 = shortest_path(g, src, dst, filter);
  if (!p1 || p1->links.empty()) return std::nullopt;

  // Bellman-Ford over the residual graph (negative arcs from P1 reversals;
  // no negative cycles because P1 is shortest).
  const auto arcs = residual_arcs(g, *p1, filter);
  constexpr int kInf = std::numeric_limits<int>::max() / 2;
  std::vector<int> dist(g.num_nodes(), kInf);
  std::vector<std::size_t> pred(g.num_nodes(), std::numeric_limits<std::size_t>::max());
  dist[src] = 0;
  for (std::size_t round = 0; round + 1 < g.num_nodes(); ++round) {
    bool changed = false;
    for (std::size_t a = 0; a < arcs.size(); ++a) {
      const Arc& arc = arcs[a];
      if (dist[arc.from] == kInf) continue;
      if (dist[arc.from] + arc.cost < dist[arc.to]) {
        dist[arc.to] = dist[arc.from] + arc.cost;
        pred[arc.to] = a;
        changed = true;
      }
    }
    if (!changed) break;
  }
  if (dist[dst] == kInf) return std::nullopt;

  // Directed arc sets of P1 and P2; a P2 arc reversing a P1 link cancels.
  std::map<LinkId, std::pair<NodeId, NodeId>> flow;  // link -> direction
  for (std::size_t i = 0; i < p1->links.size(); ++i)
    flow[p1->links[i]] = {p1->nodes[i], p1->nodes[i + 1]};
  for (NodeId at = dst; at != src;) {
    const Arc& arc = arcs[pred[at]];
    const auto it = flow.find(arc.link);
    if (it != flow.end() && it->second.first == arc.to && it->second.second == arc.from)
      flow.erase(it);  // cancellation
    else
      flow[arc.link] = {arc.from, arc.to};
    at = arc.from;
  }

  // Decompose the value-2 flow into two arc-disjoint src->dst walks.
  std::vector<std::vector<std::pair<LinkId, NodeId>>> out(g.num_nodes());
  for (const auto& [link, dir] : flow) out[dir.first].push_back({link, dir.second});
  const auto walk = [&]() {
    Path p;
    p.nodes.push_back(src);
    NodeId at = src;
    while (at != dst) {
      if (out[at].empty())
        throw std::logic_error("disjoint pair: flow decomposition stuck");
      const auto [link, next] = out[at].back();
      out[at].pop_back();
      p.links.push_back(link);
      p.nodes.push_back(next);
      at = next;
    }
    return p;
  };
  DisjointPair pair{walk(), walk()};
  if (pair.second.hops() < pair.first.hops()) std::swap(pair.first, pair.second);
  return pair;
}

}  // namespace eqos::topology
