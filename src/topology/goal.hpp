// Per-destination hop-distance fields for goal-directed route search.
//
// Every route search the simulator runs knows its destination, so an
// admissible lower bound on the remaining hop count lets the searches in
// topology/paths.hpp skip work that provably cannot contribute to the
// chosen route (see PathSearch's pruning notes for exactly which cuts are
// sound).  A HopDistanceField owns one BFS distance vector per destination,
// computed over the links currently marked usable (the network marks failed
// links unusable), built lazily on first request and cached until the
// topology version changes.
//
// Admissibility contract: a field computed over link set M is a valid lower
// bound for any search whose filter admits only links in M.  The network
// masks exactly the failed links, and both of its filters
// (LinkState::admits_primary and the backup admissibility test) reject
// failed links, so the bound holds for every search the Router issues.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace eqos::topology {

/// Lazily-computed, version-cached BFS hop distances to each destination.
class HopDistanceField {
 public:
  /// Distance value of nodes that cannot reach the destination over the
  /// usable links.  Matches the searches' "unreached" label.
  static constexpr std::uint32_t kUnreachable = 0xffffffffu;

  /// Borrow the graph; all links start usable.  The graph must outlive the
  /// field and must not gain nodes or links afterwards.
  explicit HopDistanceField(const Graph& graph);

  /// Marks a link (un)usable; a change bumps the topology version and
  /// invalidates every cached field.
  void set_link_usable(LinkId link, bool usable);

  [[nodiscard]] bool link_usable(LinkId link) const { return usable_[link] != 0; }

  /// Monotone counter identifying the current usable-link set.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Hop distances from every node to `dst` over the usable links,
  /// recomputing only when the version moved since the last request for
  /// this destination.  The pointer stays valid until the next
  /// set_link_usable call for this destination... in fact until the field
  /// itself is destroyed (storage is per-destination and only overwritten
  /// in place).  `dist[v] == kUnreachable` marks nodes with no usable
  /// route to `dst`.
  [[nodiscard]] const std::uint32_t* to_destination(NodeId dst);

  /// Number of cached-field rebuilds (test observability).
  [[nodiscard]] std::size_t rebuilds() const noexcept { return rebuilds_; }

 private:
  const Graph& graph_;
  std::vector<char> usable_;
  std::uint64_t version_ = 1;

  /// dist_[dst] is valid iff built_version_[dst] == version_.
  std::vector<std::vector<std::uint32_t>> dist_;
  std::vector<std::uint64_t> built_version_;
  std::vector<NodeId> queue_;  // reused BFS frontier
  std::size_t rebuilds_ = 0;
};

}  // namespace eqos::topology
