// Whole-graph metrics used to characterize generated topologies.
//
// The paper reports its instances by node count, edge count, average degree,
// and (average) diameter; the benches print the same statistics next to each
// experiment so the reproduced topology can be compared with the reported
// one.  `average_hops` of established channels feeds the ideal-bandwidth
// formula of Figure 2.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/graph.hpp"

namespace eqos::topology {

/// Component index per node (0-based; equal index = same component).
[[nodiscard]] std::vector<std::uint32_t> connected_components(const Graph& g);

/// True iff the graph has exactly one connected component (and >= 1 node).
[[nodiscard]] bool is_connected(const Graph& g);

/// Hop distances from `src` to every node (kUnreachableDistance when
/// disconnected).
inline constexpr std::uint32_t kUnreachableDistance = 0xffffffffu;
[[nodiscard]] std::vector<std::uint32_t> hop_distances(const Graph& g, NodeId src);

/// Longest shortest-path hop distance over all reachable pairs; 0 for graphs
/// with fewer than two nodes.
[[nodiscard]] std::size_t diameter(const Graph& g);

/// Mean shortest-path hop distance over all reachable ordered pairs.
[[nodiscard]] double average_path_length(const Graph& g);

/// Summary statistics bundle for printing.
struct GraphStats {
  std::size_t nodes = 0;
  std::size_t links = 0;
  double average_degree = 0.0;
  std::size_t diameter = 0;
  double average_path_length = 0.0;
  bool connected = false;
};

[[nodiscard]] GraphStats graph_stats(const Graph& g);

}  // namespace eqos::topology
