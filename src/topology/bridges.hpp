// Bridge (cut-edge) analysis.
//
// A DR-connection whose endpoints are separated by a bridge can never get a
// fully link-disjoint backup, and no backup scheme survives the bridge's
// failure (the graph disconnects).  The failure-recovery experiments showed
// that in sparse random topologies the *busiest* links are often exactly the
// bridges, so exposing them is operationally important: the examples report
// bridge exposure, and tests assert the routing layer's maximal-disjointness
// fallback triggers precisely on bridge-separated pairs.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/graph.hpp"

namespace eqos::topology {

/// All bridges (cut edges) of the graph, ascending by link id.  Tarjan's
/// low-link algorithm, O(nodes + links).
[[nodiscard]] std::vector<LinkId> find_bridges(const Graph& g);

/// True iff the graph is connected and has no bridges (every pair of nodes
/// admits two link-disjoint paths).
[[nodiscard]] bool is_two_edge_connected(const Graph& g);

/// Fraction of distinct node pairs whose every route crosses at least one
/// bridge (these connections can only be maximally link-disjoint protected).
[[nodiscard]] double bridge_separated_pair_fraction(const Graph& g);

}  // namespace eqos::topology
