#include "topology/bridges.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace eqos::topology {

std::vector<LinkId> find_bridges(const Graph& g) {
  constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();
  const std::size_t n = g.num_nodes();
  std::vector<std::uint32_t> disc(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<LinkId> bridges;
  std::uint32_t timer = 0;

  // Iterative DFS; each frame remembers the link taken into the node so the
  // reverse traversal of that same link is skipped (parallel links cannot
  // exist in a simple graph, so skipping by link id is exact).
  struct Frame {
    NodeId node;
    LinkId in_link;
    bool has_in_link;
    std::size_t next_adj;
  };
  for (NodeId root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    std::vector<Frame> stack{{root, 0, false, 0}};
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto adjacent = g.adjacent(f.node);
      if (f.next_adj < adjacent.size()) {
        const Adjacency a = adjacent[f.next_adj++];
        if (f.has_in_link && a.link == f.in_link) continue;
        if (disc[a.neighbor] == kUnvisited) {
          disc[a.neighbor] = low[a.neighbor] = timer++;
          stack.push_back({a.neighbor, a.link, true, 0});
        } else {
          low[f.node] = std::min(low[f.node], disc[a.neighbor]);
        }
        continue;
      }
      // Finished this node: propagate low-link to the parent and test the
      // tree edge for bridge-ness.
      const Frame done = f;
      stack.pop_back();
      if (!stack.empty()) {
        Frame& parent = stack.back();
        low[parent.node] = std::min(low[parent.node], low[done.node]);
        if (low[done.node] > disc[parent.node]) bridges.push_back(done.in_link);
      }
    }
  }
  std::sort(bridges.begin(), bridges.end());
  return bridges;
}

bool is_two_edge_connected(const Graph& g) {
  if (g.num_nodes() == 0) return false;
  // Connectivity check via the DFS discovery side effect: count reachable.
  constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> seen(g.num_nodes(), kUnvisited);
  std::vector<NodeId> stack{0};
  seen[0] = 0;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const auto& a : g.adjacent(u)) {
      if (seen[a.neighbor] != kUnvisited) continue;
      seen[a.neighbor] = 0;
      ++visited;
      stack.push_back(a.neighbor);
    }
  }
  return visited == g.num_nodes() && find_bridges(g).empty();
}

double bridge_separated_pair_fraction(const Graph& g) {
  const auto bridges = find_bridges(g);
  if (g.num_nodes() < 2) return 0.0;
  if (bridges.empty()) return 0.0;

  // Contract away the bridges: nodes in the same 2-edge-connected component
  // share a component id; a pair is bridge-separated iff the ids differ.
  std::vector<bool> is_bridge(g.num_links(), false);
  for (LinkId b : bridges) is_bridge[b] = true;
  constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> comp(g.num_nodes(), kNone);
  std::uint32_t next = 0;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (comp[start] != kNone) continue;
    comp[start] = next;
    std::vector<NodeId> stack{start};
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const auto& a : g.adjacent(u)) {
        if (is_bridge[a.link] || comp[a.neighbor] != kNone) continue;
        comp[a.neighbor] = next;
        stack.push_back(a.neighbor);
      }
    }
    ++next;
  }
  std::size_t separated = 0;
  for (NodeId a = 0; a < g.num_nodes(); ++a)
    for (NodeId b = a + 1; b < g.num_nodes(); ++b)
      if (comp[a] != comp[b]) ++separated;
  const double pairs =
      static_cast<double>(g.num_nodes()) * static_cast<double>(g.num_nodes() - 1) / 2.0;
  return static_cast<double>(separated) / pairs;
}

}  // namespace eqos::topology
