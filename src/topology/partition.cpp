#include "topology/partition.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/rng.hpp"

namespace eqos::topology {

namespace {

/// Splits `nodes` (sorted ascending) into two halves, the first of size
/// `left_size`, by growing a BFS region from a seeded start node.  The
/// frontier is a min-heap over node id, so growth order is a pure function
/// of the graph and the start node.  On disconnected remainders the growth
/// restarts from the smallest unassigned id.
void bisect(const Graph& graph, const std::vector<NodeId>& nodes,
            std::size_t left_size, std::uint64_t seed,
            std::vector<NodeId>& left, std::vector<NodeId>& right) {
  std::vector<char> eligible(graph.num_nodes(), 0);
  for (NodeId n : nodes) eligible[n] = 1;

  util::Rng rng(seed);
  const NodeId start = nodes[rng.index(nodes.size())];

  std::vector<char> taken(graph.num_nodes(), 0);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> frontier;
  frontier.push(start);
  std::vector<char> queued(graph.num_nodes(), 0);
  queued[start] = 1;
  std::size_t next_restart = 0;  // scan cursor over `nodes` for restarts

  left.clear();
  right.clear();
  while (left.size() < left_size) {
    if (frontier.empty()) {
      // Disconnected remainder: restart from the smallest unassigned id.
      while (taken[nodes[next_restart]] || queued[nodes[next_restart]]) {
        ++next_restart;
      }
      frontier.push(nodes[next_restart]);
      queued[nodes[next_restart]] = 1;
    }
    const NodeId n = frontier.top();
    frontier.pop();
    if (taken[n]) continue;
    taken[n] = 1;
    left.push_back(n);
    for (const Adjacency& adj : graph.adjacent(n)) {
      if (eligible[adj.neighbor] && !taken[adj.neighbor] && !queued[adj.neighbor]) {
        frontier.push(adj.neighbor);
        queued[adj.neighbor] = 1;
      }
    }
  }
  for (NodeId n : nodes) {
    if (!taken[n]) right.push_back(n);
  }
  std::sort(left.begin(), left.end());
}

/// Assigns shards [shard_lo, shard_lo + k) to `nodes` recursively.
void assign(const Graph& graph, const std::vector<NodeId>& nodes,
            std::uint32_t shard_lo, std::uint32_t k, std::uint64_t seed,
            Partition& out) {
  if (k == 1) {
    for (NodeId n : nodes) out.shard_of[n] = shard_lo;
    return;
  }
  const std::uint32_t k_left = (k + 1) / 2;
  // Node count proportional to the shard split so K need not be a power
  // of two: sizes stay within one of each other.
  const std::size_t left_size =
      nodes.size() * k_left / k + ((nodes.size() * k_left) % k != 0 ? 1 : 0);
  std::vector<NodeId> left;
  std::vector<NodeId> right;
  bisect(graph, nodes, std::min(left_size, nodes.size()), seed, left, right);
  assign(graph, left, shard_lo, k_left, util::Rng::substream_seed(seed, 1), out);
  assign(graph, right, shard_lo + k_left, k - k_left,
         util::Rng::substream_seed(seed, 2), out);
}

}  // namespace

Partition partition_graph(const Graph& graph, std::uint32_t shards,
                          std::uint64_t seed) {
  Partition p;
  p.shard_of.assign(graph.num_nodes(), 0);
  if (graph.num_nodes() == 0) {
    p.shards = 1;
    return p;
  }
  std::uint32_t k = std::max<std::uint32_t>(shards, 1);
  k = std::min<std::uint32_t>(k, static_cast<std::uint32_t>(graph.num_nodes()));
  p.shards = k;
  if (k == 1) return p;
  std::vector<NodeId> all(graph.num_nodes());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<NodeId>(i);
  assign(graph, all, 0, k, seed, p);
  return p;
}

std::size_t count_cut_links(const Graph& graph, const Partition& p) {
  if (p.shard_of.size() != graph.num_nodes()) {
    throw std::invalid_argument("count_cut_links: partition/graph size mismatch");
  }
  std::size_t cut = 0;
  for (const Link& l : graph.links()) {
    if (p.shard_of[l.a] != p.shard_of[l.b]) ++cut;
  }
  return cut;
}

}  // namespace eqos::topology
