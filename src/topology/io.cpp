#include "topology/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace eqos::topology {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "eqos-graph 1\n";
  out << "nodes " << g.num_nodes() << "\n";
  out.precision(17);
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    const Point p = g.position(i);
    out << "node " << i << ' ' << p.x << ' ' << p.y << "\n";
  }
  for (const Link& l : g.links()) out << "link " << l.a << ' ' << l.b << "\n";
}

Graph read_edge_list(std::istream& in) {
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != "eqos-graph" || version != 1)
    throw std::invalid_argument("edge list: bad header");
  std::size_t n = 0;
  if (!(in >> tag >> n) || tag != "nodes")
    throw std::invalid_argument("edge list: missing node count");
  Graph g(n);
  while (in >> tag) {
    if (tag == "node") {
      std::size_t id = 0;
      Point p;
      if (!(in >> id >> p.x >> p.y) || id >= n)
        throw std::invalid_argument("edge list: bad node line");
      g.set_position(static_cast<NodeId>(id), p);
    } else if (tag == "link") {
      std::size_t a = 0;
      std::size_t b = 0;
      if (!(in >> a >> b) || a >= n || b >= n)
        throw std::invalid_argument("edge list: bad link line");
      g.add_link(static_cast<NodeId>(a), static_cast<NodeId>(b));
    } else {
      throw std::invalid_argument("edge list: unknown record '" + tag + "'");
    }
  }
  return g;
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream out;
  write_edge_list(out, g);
  return out.str();
}

Graph from_edge_list(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

void write_dot(std::ostream& out, const Graph& g, const std::string& name) {
  out << "graph " << name << " {\n";
  out << "  node [shape=point];\n";
  out.precision(6);
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    const Point p = g.position(i);
    out << "  n" << i << " [pos=\"" << p.x * 10.0 << ',' << p.y * 10.0 << "!\"];\n";
  }
  for (const Link& l : g.links()) out << "  n" << l.a << " -- n" << l.b << ";\n";
  out << "}\n";
}

}  // namespace eqos::topology
