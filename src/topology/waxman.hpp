// Waxman random-graph generator (GT-ITM replacement, "Random" networks).
//
// Nodes are placed uniformly in the unit square and each pair (u, v) is
// linked with probability
//
//     P(u, v) = alpha * exp(-d(u, v) / (beta * L)),
//
// where d is Euclidean distance and L = sqrt(2) is the maximal distance
// (GT-ITM parameter convention: alpha scales density, beta controls the
// length of typical links).  A degenerate beta <= 0 is interpreted as a
// distance-independent edge probability alpha, which is GT-ITM's "pure
// random" method.  Generated graphs are made connected by joining the
// closest node pairs of distinct components, matching common GT-ITM
// post-processing.
//
// The paper's "Random" network is 100 nodes / 354 edges at alpha = 0.33;
// `calibrate_beta` finds the beta that reproduces a target edge count so the
// reproduction can match the reported instance statistics.
#pragma once

#include <cstdint>

#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace eqos::topology {

/// Parameters of the Waxman model.
struct WaxmanConfig {
  std::size_t nodes = 100;
  double alpha = 0.33;  ///< density scale in (0, 1]
  double beta = 0.20;   ///< link-length decay; <= 0 means distance-independent
  bool ensure_connected = true;
};

/// Generates a Waxman graph.  Deterministic in (config, seed).
[[nodiscard]] Graph generate_waxman(const WaxmanConfig& config, std::uint64_t seed);

/// Bisects beta so the expected edge count of `generate_waxman` is within
/// `tolerance` edges of `target_edges` (averaged over a few instances).
/// Returns the calibrated beta.
[[nodiscard]] double calibrate_beta(std::size_t nodes, double alpha,
                                    std::size_t target_edges, std::uint64_t seed,
                                    double tolerance = 10.0);

}  // namespace eqos::topology
