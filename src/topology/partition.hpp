// Deterministic graph partitioning for sharded simulation.
//
// `partition_graph` cuts a graph into K balanced node groups with a seeded
// recursive-bisection: each bisection grows one half from a seeded start
// node by BFS, always absorbing the smallest-id frontier node, until the
// half reaches its target size.  The result depends only on (graph, shards,
// seed) — never on thread scheduling or iteration order of any hash
// container — which is what lets a sharded run reproduce bit-identically.
// Cut quality is secondary to determinism and balance here: the BFS-grown
// halves are contiguous on connected graphs, which keeps cross-shard links
// to a thin frontier on the geometric topologies the paper evaluates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace eqos::topology {

/// A K-way node partition of a graph.
struct Partition {
  /// shard_of[node] in [0, shards).
  std::vector<std::uint32_t> shard_of;
  std::uint32_t shards = 1;

  [[nodiscard]] std::uint32_t shard(NodeId n) const { return shard_of[n]; }
};

/// Partitions `graph` into `shards` balanced groups (sizes differ by at most
/// one) by seeded recursive bisection.  `shards` == 0 is treated as 1;
/// `shards` > num_nodes caps at num_nodes.  Deterministic in (graph, shards,
/// seed).
[[nodiscard]] Partition partition_graph(const Graph& graph, std::uint32_t shards,
                                        std::uint64_t seed);

/// Number of links whose endpoints land in different shards.
[[nodiscard]] std::size_t count_cut_links(const Graph& graph, const Partition& p);

}  // namespace eqos::topology
