// Shortest pairs of link-disjoint paths (Suurballe / Bhandari).
//
// Sequential route selection — shortest primary first, then a disjoint
// backup in what remains — fails on "trap" topologies where the shortest
// path uses links every disjoint alternative needs, even though a fully
// disjoint *pair* exists.  The classic remedy computes both paths jointly:
// find a shortest path, make its links resemble negative-cost residual
// arcs, find a second shortest path in the residual graph, and take the
// symmetric difference.  The result minimizes the pair's total hop count.
//
// The Network uses this as a fallback when the paper's sequential
// establishment cannot protect a connection (NetworkConfig::
// joint_disjoint_fallback); the trap-topology tests show it rescuing
// requests the sequential scheme rejects.
#pragma once

#include <optional>

#include "topology/graph.hpp"
#include "topology/paths.hpp"

namespace eqos::topology {

/// A link-disjoint pair of paths between the same endpoints.  `first` is
/// the shorter (ties: the one found first).
struct DisjointPair {
  Path first;
  Path second;
};

/// Shortest (by total hops) pair of link-disjoint simple paths from `src`
/// to `dst` using only links accepted by `filter` (nullptr = all links).
/// Returns nullopt when no such pair exists.  Bhandari's variant of
/// Suurballe on unit weights: Bellman-Ford tolerates the negative residual
/// arcs; graphs of this library's size make the O(V*E) cost irrelevant.
[[nodiscard]] std::optional<DisjointPair> shortest_disjoint_pair(
    const Graph& g, NodeId src, NodeId dst, const LinkFilter& filter = nullptr);

}  // namespace eqos::topology
