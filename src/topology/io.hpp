// Topology serialization.
//
// Plain-text edge-list format for persisting generated instances (so a
// reported experiment can pin its exact topology) and Graphviz DOT export
// for eyeballing them.  The edge-list format is:
//
//   eqos-graph 1
//   nodes <n>
//   node <id> <x> <y>          (one per node, ascending id)
//   link <a> <b>               (one per link, in link-id order)
//
// Link ids are assigned by line order on load, so a round trip preserves
// both node and link identities — which matters because seeds and link ids
// appear in experiment records.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/graph.hpp"

namespace eqos::topology {

/// Writes the edge-list format.
void write_edge_list(std::ostream& out, const Graph& g);

/// Parses the edge-list format.  Throws std::invalid_argument on malformed
/// input (bad header, out-of-range ids, duplicate links).
[[nodiscard]] Graph read_edge_list(std::istream& in);

/// Serializes to a string (convenience for tests and tools).
[[nodiscard]] std::string to_edge_list(const Graph& g);
[[nodiscard]] Graph from_edge_list(const std::string& text);

/// Graphviz DOT (undirected), with node positions as `pos` attributes.
void write_dot(std::ostream& out, const Graph& g, const std::string& name = "eqos");

}  // namespace eqos::topology
