#include "topology/waxman.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "topology/metrics.hpp"

namespace eqos::topology {
namespace {

constexpr double kMaxDistance = 1.4142135623730951;  // sqrt(2), unit square

double link_probability(const WaxmanConfig& config, double d) {
  if (config.beta <= 0.0) return config.alpha;  // pure-random method
  return config.alpha * std::exp(-d / (config.beta * kMaxDistance));
}

// Joins components by repeatedly linking the geometrically closest pair of
// nodes that lie in different components.
void connect_components(Graph& g) {
  for (;;) {
    const auto comp = connected_components(g);
    const std::size_t num_comps =
        comp.empty() ? 0 : 1 + *std::max_element(comp.begin(), comp.end());
    if (num_comps <= 1) return;
    double best = std::numeric_limits<double>::infinity();
    NodeId best_a = 0;
    NodeId best_b = 0;
    for (NodeId a = 0; a < g.num_nodes(); ++a) {
      for (NodeId b = a + 1; b < g.num_nodes(); ++b) {
        if (comp[a] == comp[b]) continue;
        const double d = distance(g.position(a), g.position(b));
        if (d < best) {
          best = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    g.add_link(best_a, best_b);
  }
}

}  // namespace

Graph generate_waxman(const WaxmanConfig& config, std::uint64_t seed) {
  if (config.nodes < 2) throw std::invalid_argument("waxman: need at least two nodes");
  if (config.alpha <= 0.0 || config.alpha > 1.0)
    throw std::invalid_argument("waxman: alpha must be in (0, 1]");

  util::Rng rng(seed);
  Graph g;
  for (std::size_t i = 0; i < config.nodes; ++i)
    g.add_node(Point{rng.uniform(), rng.uniform()});

  for (NodeId a = 0; a < config.nodes; ++a) {
    for (NodeId b = a + 1; b < config.nodes; ++b) {
      const double d = distance(g.position(a), g.position(b));
      if (rng.chance(link_probability(config, d))) g.add_link(a, b);
    }
  }
  if (config.ensure_connected) connect_components(g);
  return g;
}

double calibrate_beta(std::size_t nodes, double alpha, std::size_t target_edges,
                      std::uint64_t seed, double tolerance) {
  const auto mean_edges = [&](double beta) {
    constexpr int kSamples = 3;
    double total = 0.0;
    for (int s = 0; s < kSamples; ++s) {
      WaxmanConfig c{nodes, alpha, beta, /*ensure_connected=*/false};
      total += static_cast<double>(
          generate_waxman(c, seed + static_cast<std::uint64_t>(s)).num_links());
    }
    return total / kSamples;
  };

  double lo = 1e-3;
  double hi = 10.0;  // effectively distance-independent
  if (mean_edges(hi) < static_cast<double>(target_edges))
    throw std::invalid_argument("calibrate_beta: target unreachable at this alpha");
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double e = mean_edges(mid);
    if (std::abs(e - static_cast<double>(target_edges)) <= tolerance) return mid;
    if (e < static_cast<double>(target_edges))
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace eqos::topology
