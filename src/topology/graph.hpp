// Undirected network graph.
//
// Nodes and links carry dense integer ids (NodeId, LinkId) so that the
// simulator can key per-link state by plain vectors and per-channel link
// sets by bitsets.  The graph is a simple undirected graph: at most one link
// per node pair, no self-loops.  Node positions (unit-square coordinates)
// are kept because the Waxman generator and the transit-stub generator are
// geometric, and examples plot distances.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace eqos::topology {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

/// Position of a node in the unit square (used by geometric generators).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two points.
[[nodiscard]] double distance(Point a, Point b);

/// One undirected link.
struct Link {
  NodeId a;
  NodeId b;
  /// The endpoint opposite to `node`; `node` must be an endpoint.
  [[nodiscard]] NodeId other(NodeId node) const;
};

/// Adjacency entry: the neighbor reached and the link used.
struct Adjacency {
  NodeId neighbor;
  LinkId link;
};

/// A simple undirected graph with geometric node positions.
class Graph {
 public:
  Graph() = default;
  /// `nodes` isolated nodes at the origin.
  explicit Graph(std::size_t nodes);

  /// Appends a node; returns its id.
  NodeId add_node(Point position = {});

  /// Adds an undirected link between distinct existing nodes; returns its id.
  /// Throws std::invalid_argument on self-loops or duplicate links.
  LinkId add_link(NodeId a, NodeId b);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return positions_.size(); }
  [[nodiscard]] std::size_t num_links() const noexcept { return links_.size(); }

  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] Point position(NodeId node) const;
  void set_position(NodeId node, Point p);

  /// Neighbors of `node` with the connecting links.
  [[nodiscard]] std::span<const Adjacency> adjacent(NodeId node) const;
  [[nodiscard]] std::size_t degree(NodeId node) const;

  /// The link between `a` and `b`, if present.
  [[nodiscard]] std::optional<LinkId> find_link(NodeId a, NodeId b) const;

  /// Mean node degree (2m / n); 0 for an empty graph.
  [[nodiscard]] double average_degree() const;

  [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }

 private:
  std::vector<Point> positions_;
  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

}  // namespace eqos::topology
