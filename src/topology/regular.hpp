// Regular topologies and exact chaining probabilities.
//
// Section 3.3 notes that for a regular-topology network the chaining
// probabilities "depend solely on the network topology and the average
// number of hops of channels" — i.e. they can be computed without
// simulation.  This header provides the classic regular families (ring,
// torus, star, complete) and an exact computation of the direct-chaining
// probability Pf for *any* graph under shortest-path routing with uniform
// random endpoints.  Comparing it with the simulator's measured Pf is a
// strong end-to-end check of the estimation machinery (see
// tests/test_topology_regular.cpp).
#pragma once

#include <cstddef>

#include "topology/graph.hpp"

namespace eqos::topology {

/// Cycle of `nodes` >= 3 nodes laid out on a circle.
[[nodiscard]] Graph generate_ring(std::size_t nodes);

/// rows x cols torus (wrap-around mesh); both dimensions >= 3 to avoid
/// duplicate links.
[[nodiscard]] Graph generate_torus(std::size_t rows, std::size_t cols);

/// Star: node 0 is the hub, `leaves` >= 1 spokes.
[[nodiscard]] Graph generate_star(std::size_t leaves);

/// Complete graph on `nodes` >= 2 nodes.
[[nodiscard]] Graph generate_complete(std::size_t nodes);

/// Exact Pf under deterministic fewest-hop routing (BFS tie-break) with
/// uniformly random distinct endpoint pairs: the probability that two
/// independently chosen channels share at least one link.  O(pairs^2) bitset
/// intersections — fine for graphs up to a few hundred nodes.
[[nodiscard]] double exact_direct_chaining_probability(const Graph& g);

/// The same routing's average hop count over all distinct pairs (the
/// `avghop` of the ideal-bandwidth formula, computed exactly).
[[nodiscard]] double exact_average_hops(const Graph& g);

}  // namespace eqos::topology
