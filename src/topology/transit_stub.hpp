// Transit-stub topology generator (GT-ITM "Tier" replacement).
//
// A two-level internet-like hierarchy: transit domains whose nodes form a
// well-connected core, each transit node hosting several stub domains of
// leaf networks.  All traffic between stubs must cross transit links, which
// is what makes the paper's "Tier" networks saturate long before the flat
// Waxman "Random" networks do (Table 1: most DR-connection requests are
// rejected on the tiered topology).
#pragma once

#include <cstdint>

#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace eqos::topology {

/// Parameters of the transit-stub hierarchy.  The defaults build the paper's
/// 100-node instance: 1 transit domain x 4 transit nodes, 3 stub domains per
/// transit node, 8 nodes per stub (4 + 4*3*8 = 100 nodes).
struct TransitStubConfig {
  std::size_t transit_domains = 1;
  std::size_t nodes_per_transit = 4;
  std::size_t stubs_per_transit_node = 3;
  std::size_t nodes_per_stub = 8;
  double transit_edge_prob = 0.6;  ///< extra intra-transit edges beyond a ring
  double stub_edge_prob = 0.42;    ///< extra intra-stub edges beyond a tree
};

/// Node roles in the generated hierarchy.
enum class NodeRole : std::uint8_t { kTransit, kStub };

/// A transit-stub graph plus per-node role annotations.
struct TransitStubGraph {
  Graph graph;
  std::vector<NodeRole> roles;          // size == graph.num_nodes()
  std::vector<std::uint32_t> domain_of; // domain index per node

  [[nodiscard]] std::size_t num_transit_nodes() const;
  [[nodiscard]] std::size_t num_stub_nodes() const;
};

/// Generates a connected transit-stub topology.  Deterministic in
/// (config, seed).
[[nodiscard]] TransitStubGraph generate_transit_stub(const TransitStubConfig& config,
                                                     std::uint64_t seed);

}  // namespace eqos::topology
