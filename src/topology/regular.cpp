#include "topology/regular.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "topology/paths.hpp"
#include "util/bitset.hpp"

namespace eqos::topology {

Graph generate_ring(std::size_t nodes) {
  if (nodes < 3) throw std::invalid_argument("ring: need at least 3 nodes");
  Graph g;
  for (std::size_t i = 0; i < nodes; ++i) {
    const double angle = 2.0 * M_PI * static_cast<double>(i) / static_cast<double>(nodes);
    g.add_node(Point{0.5 + 0.45 * std::cos(angle), 0.5 + 0.45 * std::sin(angle)});
  }
  for (std::size_t i = 0; i < nodes; ++i)
    g.add_link(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % nodes));
  return g;
}

Graph generate_torus(std::size_t rows, std::size_t cols) {
  if (rows < 3 || cols < 3)
    throw std::invalid_argument("torus: both dimensions must be >= 3");
  Graph g;
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      g.add_node(Point{static_cast<double>(c) / static_cast<double>(cols),
                       static_cast<double>(r) / static_cast<double>(rows)});
  const auto id = [&](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_link(id(r, c), id(r, (c + 1) % cols));
      g.add_link(id(r, c), id((r + 1) % rows, c));
    }
  }
  return g;
}

Graph generate_star(std::size_t leaves) {
  if (leaves < 1) throw std::invalid_argument("star: need at least one leaf");
  Graph g;
  g.add_node(Point{0.5, 0.5});
  for (std::size_t i = 0; i < leaves; ++i) {
    const double angle = 2.0 * M_PI * static_cast<double>(i) / static_cast<double>(leaves);
    const NodeId leaf =
        g.add_node(Point{0.5 + 0.4 * std::cos(angle), 0.5 + 0.4 * std::sin(angle)});
    g.add_link(0, leaf);
  }
  return g;
}

Graph generate_complete(std::size_t nodes) {
  if (nodes < 2) throw std::invalid_argument("complete: need at least 2 nodes");
  Graph g(nodes);
  for (NodeId a = 0; a < nodes; ++a)
    for (NodeId b = a + 1; b < nodes; ++b) g.add_link(a, b);
  return g;
}

namespace {

/// Link sets of the deterministic shortest route for every distinct ordered
/// pair is symmetric in hop count but not necessarily in links; channels are
/// unordered pairs here, matching the simulator's uniform pair choice up to
/// route determinism.
std::vector<util::DynamicBitset> all_pair_routes(const Graph& g) {
  std::vector<util::DynamicBitset> routes;
  routes.reserve(g.num_nodes() * (g.num_nodes() - 1) / 2);
  for (NodeId a = 0; a < g.num_nodes(); ++a) {
    for (NodeId b = a + 1; b < g.num_nodes(); ++b) {
      const auto p = shortest_path(g, a, b);
      if (!p) throw std::invalid_argument("chaining probability: graph disconnected");
      routes.push_back(p->link_set(g.num_links()));
    }
  }
  return routes;
}

}  // namespace

double exact_direct_chaining_probability(const Graph& g) {
  const auto routes = all_pair_routes(g);
  if (routes.size() < 2)
    throw std::invalid_argument("chaining probability: need >= 2 node pairs");
  // Two independent channels may pick the same pair; include the diagonal
  // (same route always shares links), matching independent uniform draws.
  std::size_t sharing = routes.size();  // diagonal terms
  for (std::size_t i = 0; i < routes.size(); ++i)
    for (std::size_t j = i + 1; j < routes.size(); ++j)
      if (routes[i].intersects(routes[j])) sharing += 2;
  const double total = static_cast<double>(routes.size()) *
                       static_cast<double>(routes.size());
  return static_cast<double>(sharing) / total;
}

double exact_average_hops(const Graph& g) {
  const auto routes = all_pair_routes(g);
  double hops = 0.0;
  for (const auto& r : routes) hops += static_cast<double>(r.count());
  return hops / static_cast<double>(routes.size());
}

}  // namespace eqos::topology
