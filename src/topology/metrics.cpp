#include "topology/metrics.hpp"

#include <algorithm>
#include <queue>

namespace eqos::topology {

std::vector<std::uint32_t> connected_components(const Graph& g) {
  constexpr std::uint32_t kNone = 0xffffffffu;
  std::vector<std::uint32_t> comp(g.num_nodes(), kNone);
  std::uint32_t next = 0;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (comp[start] != kNone) continue;
    comp[start] = next;
    std::queue<NodeId> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const auto& adj : g.adjacent(u)) {
        if (comp[adj.neighbor] != kNone) continue;
        comp[adj.neighbor] = next;
        frontier.push(adj.neighbor);
      }
    }
    ++next;
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return false;
  const auto comp = connected_components(g);
  return std::all_of(comp.begin(), comp.end(), [](std::uint32_t c) { return c == 0; });
}

std::vector<std::uint32_t> hop_distances(const Graph& g, NodeId src) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachableDistance);
  dist[src] = 0;
  std::queue<NodeId> frontier;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const auto& adj : g.adjacent(u)) {
      if (dist[adj.neighbor] != kUnreachableDistance) continue;
      dist[adj.neighbor] = dist[u] + 1;
      frontier.push(adj.neighbor);
    }
  }
  return dist;
}

std::size_t diameter(const Graph& g) {
  std::size_t best = 0;
  for (NodeId src = 0; src < g.num_nodes(); ++src) {
    const auto dist = hop_distances(g, src);
    for (auto d : dist)
      if (d != kUnreachableDistance) best = std::max(best, static_cast<std::size_t>(d));
  }
  return best;
}

double average_path_length(const Graph& g) {
  double total = 0.0;
  std::size_t pairs = 0;
  for (NodeId src = 0; src < g.num_nodes(); ++src) {
    const auto dist = hop_distances(g, src);
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
      if (dst == src || dist[dst] == kUnreachableDistance) continue;
      total += dist[dst];
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

GraphStats graph_stats(const Graph& g) {
  GraphStats s;
  s.nodes = g.num_nodes();
  s.links = g.num_links();
  s.average_degree = g.average_degree();
  s.diameter = diameter(g);
  s.average_path_length = average_path_length(g);
  s.connected = is_connected(g);
  return s;
}

}  // namespace eqos::topology
