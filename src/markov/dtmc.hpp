// Discrete-time Markov chains.
//
// Used for the embedded jump chains of CTMCs and as an independent
// cross-check of steady-state results (power iteration vs GTH).  Rows of the
// transition matrix must be stochastic.
#pragma once

#include <cstddef>

#include "matrix/dense.hpp"

namespace eqos::markov {

/// A finite-state DTMC described by a row-stochastic transition matrix.
class Dtmc {
 public:
  /// Validates and wraps a transition matrix.  Throws std::invalid_argument
  /// if the matrix is not square, has negative entries, or rows that do not
  /// sum to ~1.
  explicit Dtmc(matrix::Matrix transition);

  [[nodiscard]] std::size_t states() const noexcept { return p_.rows(); }
  [[nodiscard]] const matrix::Matrix& transition() const noexcept { return p_; }

  /// Distribution after `steps` steps from `pi0`.
  [[nodiscard]] matrix::Vector evolve(const matrix::Vector& pi0, std::size_t steps) const;

  /// Stationary distribution via GTH.  Requires irreducibility.
  [[nodiscard]] matrix::Vector steady_state() const;

  /// Stationary distribution via power iteration; `tol` is the L1 change
  /// threshold.  Requires an aperiodic, irreducible chain to converge; throws
  /// std::runtime_error after `max_iters` without convergence.
  [[nodiscard]] matrix::Vector steady_state_power(double tol = 1e-12,
                                                  std::size_t max_iters = 1'000'000) const;

 private:
  matrix::Matrix p_;
};

}  // namespace eqos::markov
