#include "markov/ctmc.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "matrix/gth.hpp"
#include "matrix/lu.hpp"

namespace eqos::markov {

Ctmc::Ctmc(std::size_t states) : q_(states, states) {
  if (states == 0) throw std::invalid_argument("ctmc: needs at least one state");
}

Ctmc Ctmc::from_generator(matrix::Matrix generator) {
  if (!generator.square()) throw std::invalid_argument("ctmc: generator must be square");
  const std::size_t n = generator.rows();
  const double scale = std::max(generator.max_abs(), 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && generator(i, j) < 0.0)
        throw std::invalid_argument("ctmc: negative off-diagonal rate");
      row_sum += generator(i, j);
    }
    if (std::abs(row_sum) > 1e-9 * scale)
      throw std::invalid_argument("ctmc: generator row " + std::to_string(i) +
                                  " does not sum to zero");
  }
  return Ctmc(std::move(generator));
}

void Ctmc::add_rate(std::size_t from, std::size_t to, double rate) {
  assert(from < states() && to < states());
  if (from == to) throw std::invalid_argument("ctmc: self-loop rate is meaningless");
  if (rate < 0.0) throw std::invalid_argument("ctmc: negative rate");
  q_(from, to) += rate;
  q_(from, from) -= rate;
}

double Ctmc::rate(std::size_t from, std::size_t to) const {
  assert(from < states() && to < states());
  return q_(from, to);
}

double Ctmc::exit_rate(std::size_t state) const {
  assert(state < states());
  return -q_(state, state);
}

matrix::Vector Ctmc::steady_state() const { return matrix::gth_steady_state(q_); }

matrix::Vector Ctmc::steady_state_linear() const {
  // Solve pi Q = 0 with sum(pi) = 1: transpose to Q^T pi^T = 0 and replace
  // the last equation with the normalization row.
  const std::size_t n = states();
  matrix::Matrix a = q_.transpose();
  matrix::Vector b(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;
  b[n - 1] = 1.0;
  matrix::Vector pi = matrix::solve_linear(a, b);
  // Clamp tiny negative round-off and re-normalize.
  for (auto& x : pi) x = std::max(x, 0.0);
  matrix::normalize_l1(pi);
  return pi;
}

matrix::Vector Ctmc::transient(const matrix::Vector& pi0, double t, double tol) const {
  if (pi0.size() != states())
    throw std::invalid_argument("ctmc: initial distribution size mismatch");
  if (t < 0.0) throw std::invalid_argument("ctmc: negative time");

  // Uniformization: P = I + Q / Lambda with Lambda >= max exit rate; then
  // pi(t) = sum_k Poisson(Lambda t, k) * pi0 P^k, truncated when the
  // accumulated Poisson mass exceeds 1 - tol.
  double lambda = 0.0;
  for (std::size_t i = 0; i < states(); ++i) lambda = std::max(lambda, exit_rate(i));
  if (lambda == 0.0 || t == 0.0) return pi0;  // no transitions possible
  lambda *= 1.02;                             // mild inflation improves conditioning

  matrix::Matrix p = q_;
  p *= (1.0 / lambda);
  p += matrix::Matrix::identity(states());

  const double a = lambda * t;
  matrix::Vector term = pi0;       // pi0 P^k
  matrix::Vector result(states(), 0.0);
  // Poisson weights computed iteratively in log space to survive large a.
  double log_weight = -a;          // log P(k=0)
  double accumulated = 0.0;
  for (std::size_t k = 0;; ++k) {
    const double weight = std::exp(log_weight);
    for (std::size_t i = 0; i < states(); ++i) result[i] += weight * term[i];
    accumulated += weight;
    if (accumulated >= 1.0 - tol) break;
    if (k > 10'000'000) throw std::runtime_error("ctmc: uniformization did not converge");
    term = p.apply_left(term);
    log_weight += std::log(a / static_cast<double>(k + 1));
  }
  // Normalize away the truncated tail.
  matrix::normalize_l1(result);
  return result;
}

double Ctmc::expected_reward(const matrix::Vector& rewards) const {
  if (rewards.size() != states())
    throw std::invalid_argument("ctmc: reward vector size mismatch");
  return matrix::dot(steady_state(), rewards);
}

matrix::Matrix Ctmc::embedded_jump_chain() const {
  const std::size_t n = states();
  matrix::Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double exit = exit_rate(i);
    if (exit <= 0.0) {
      p(i, i) = 1.0;  // absorbing
      continue;
    }
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) p(i, j) = q_(i, j) / exit;
  }
  return p;
}

}  // namespace eqos::markov
