// State classification for finite Markov chains.
//
// Empirically estimated chains (the paper's A/B/T matrices come from
// simulation counts) are not always irreducible: states the simulation never
// left, or never reached, produce zero rows/columns.  This header provides
// communicating-class decomposition (Tarjan SCC over the positive-rate
// digraph) and a steady-state solver that restricts to the unique closed
// class, which is the correct limit distribution whenever every open state
// eventually drains into that class.
#pragma once

#include <cstddef>
#include <vector>

#include "matrix/dense.hpp"

namespace eqos::markov {

/// One communicating class of a chain.
struct CommunicatingClass {
  std::vector<std::size_t> states;  // members, ascending
  bool closed = false;              // no transitions leaving the class
};

/// Decomposes the digraph "i -> j iff weight(i,j) > 0 (i != j)" into
/// communicating classes (strongly connected components) and marks the closed
/// ones.  `weights` may be a CTMC generator (diagonal ignored) or a DTMC
/// transition matrix.
[[nodiscard]] std::vector<CommunicatingClass> communicating_classes(
    const matrix::Matrix& weights);

/// Steady state of a CTMC generator that may have transient states: finds the
/// closed communicating classes; if there is exactly one, solves the
/// restricted chain and returns the distribution embedded in the full state
/// space (zero on transient states).  Throws std::invalid_argument when
/// multiple closed classes exist (the limit then depends on the initial
/// state).
[[nodiscard]] matrix::Vector steady_state_closed_class(const matrix::Matrix& generator);

}  // namespace eqos::markov
