// First-passage and sojourn analysis for CTMCs.
//
// The stationary distribution answers "what QoS does a channel hold on
// average"; first-passage quantities answer the operator's follow-up
// questions: "once a channel is at full quality, how long until contention
// drags it to the bare minimum?" and "how long does a degraded channel stay
// degraded?".  Both are classic absorption computations on the chain of
// Section 3.2 and are exposed by core::ElasticQosAnalyzer through
// degradation/recovery helpers.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/ctmc.hpp"
#include "matrix/dense.hpp"

namespace eqos::markov {

/// Expected time to first reach any state in `targets` from each state.
/// Entries of `targets` must be valid state indices; target states get 0.
/// Throws std::invalid_argument if some state cannot reach a target (the
/// expectation would be infinite).
[[nodiscard]] matrix::Vector mean_first_passage_times(
    const Ctmc& chain, const std::vector<std::size_t>& targets);

/// Probability, for each starting state, of hitting `goal` before `avoid`.
/// Goal states map to 1, avoid states to 0.  Throws std::invalid_argument
/// when some state can reach neither set.
[[nodiscard]] matrix::Vector hit_probability_before(
    const Ctmc& chain, const std::vector<std::size_t>& goal,
    const std::vector<std::size_t>& avoid);

/// Expected total time spent in each state before first reaching a target,
/// starting from `start` (the fundamental-matrix row).  Target states get 0.
[[nodiscard]] matrix::Vector expected_sojourn_before(
    const Ctmc& chain, std::size_t start, const std::vector<std::size_t>& targets);

}  // namespace eqos::markov
