#include "markov/passage.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "matrix/lu.hpp"

namespace eqos::markov {
namespace {

std::vector<bool> target_mask(std::size_t n, const std::vector<std::size_t>& targets,
                              const char* what) {
  if (targets.empty()) throw std::invalid_argument(std::string(what) + ": empty set");
  std::vector<bool> mask(n, false);
  for (std::size_t t : targets) {
    if (t >= n) throw std::invalid_argument(std::string(what) + ": state out of range");
    mask[t] = true;
  }
  return mask;
}

/// Indices of the non-target ("transient") states, in ascending order.
std::vector<std::size_t> complement(const std::vector<bool>& mask) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < mask.size(); ++i)
    if (!mask[i]) out.push_back(i);
  return out;
}

/// Restriction of the generator to rows/cols `keep`.
matrix::Matrix restrict_generator(const Ctmc& chain, const std::vector<std::size_t>& keep) {
  matrix::Matrix sub(keep.size(), keep.size());
  for (std::size_t a = 0; a < keep.size(); ++a)
    for (std::size_t b = 0; b < keep.size(); ++b)
      sub(a, b) = chain.generator()(keep[a], keep[b]);
  return sub;
}

}  // namespace

matrix::Vector mean_first_passage_times(const Ctmc& chain,
                                        const std::vector<std::size_t>& targets) {
  const std::size_t n = chain.states();
  const auto mask = target_mask(n, targets, "mean_first_passage_times");
  const auto transient = complement(mask);

  matrix::Vector result(n, 0.0);
  if (transient.empty()) return result;

  // Solve -Q_TT h = 1 for the transient block (h = expected hitting times).
  matrix::Matrix qtt = restrict_generator(chain, transient);
  qtt *= -1.0;
  const matrix::Vector ones(transient.size(), 1.0);
  matrix::Vector h;
  try {
    h = matrix::solve_linear(qtt, ones);
  } catch (const matrix::SingularMatrixError&) {
    throw std::invalid_argument(
        "mean_first_passage_times: some state cannot reach the target set");
  }
  for (std::size_t a = 0; a < transient.size(); ++a) {
    if (h[a] < 0.0)
      throw std::invalid_argument(
          "mean_first_passage_times: target set unreachable from state " +
          std::to_string(transient[a]));
    result[transient[a]] = h[a];
  }
  return result;
}

matrix::Vector hit_probability_before(const Ctmc& chain,
                                      const std::vector<std::size_t>& goal,
                                      const std::vector<std::size_t>& avoid) {
  const std::size_t n = chain.states();
  const auto goal_mask = target_mask(n, goal, "hit_probability_before(goal)");
  const auto avoid_mask = target_mask(n, avoid, "hit_probability_before(avoid)");
  for (std::size_t i = 0; i < n; ++i)
    if (goal_mask[i] && avoid_mask[i])
      throw std::invalid_argument("hit_probability_before: goal and avoid overlap");

  std::vector<std::size_t> transient;
  for (std::size_t i = 0; i < n; ++i)
    if (!goal_mask[i] && !avoid_mask[i]) transient.push_back(i);

  matrix::Vector result(n, 0.0);
  for (std::size_t g : goal) result[g] = 1.0;
  if (transient.empty()) return result;

  // Q_TT p = -r, where r_i = sum of rates from i into the goal set.
  matrix::Matrix qtt = restrict_generator(chain, transient);
  matrix::Vector rhs(transient.size(), 0.0);
  for (std::size_t a = 0; a < transient.size(); ++a)
    for (std::size_t g : goal) rhs[a] -= chain.generator()(transient[a], g);
  matrix::Vector p;
  try {
    p = matrix::solve_linear(qtt, rhs);
  } catch (const matrix::SingularMatrixError&) {
    throw std::invalid_argument(
        "hit_probability_before: some state reaches neither goal nor avoid");
  }
  for (std::size_t a = 0; a < transient.size(); ++a)
    result[transient[a]] = std::clamp(p[a], 0.0, 1.0);
  return result;
}

matrix::Vector expected_sojourn_before(const Ctmc& chain, std::size_t start,
                                       const std::vector<std::size_t>& targets) {
  const std::size_t n = chain.states();
  if (start >= n) throw std::invalid_argument("expected_sojourn_before: bad start");
  const auto mask = target_mask(n, targets, "expected_sojourn_before");
  const auto transient = complement(mask);

  matrix::Vector result(n, 0.0);
  if (mask[start] || transient.empty()) return result;

  // Row of the fundamental matrix: solve u^T (-Q_TT) = e_start^T, i.e.
  // (-Q_TT)^T u = e_start.
  matrix::Matrix a = restrict_generator(chain, transient);
  a *= -1.0;
  a = a.transpose();
  matrix::Vector e(transient.size(), 0.0);
  for (std::size_t i = 0; i < transient.size(); ++i)
    if (transient[i] == start) e[i] = 1.0;
  matrix::Vector u;
  try {
    u = matrix::solve_linear(a, e);
  } catch (const matrix::SingularMatrixError&) {
    throw std::invalid_argument(
        "expected_sojourn_before: target set unreachable from start");
  }
  for (std::size_t i = 0; i < transient.size(); ++i)
    result[transient[i]] = std::max(u[i], 0.0);
  return result;
}

}  // namespace eqos::markov
