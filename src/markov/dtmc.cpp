#include "markov/dtmc.hpp"

#include <cmath>
#include <stdexcept>

#include "matrix/gth.hpp"

namespace eqos::markov {

Dtmc::Dtmc(matrix::Matrix transition) : p_(std::move(transition)) {
  if (!p_.square()) throw std::invalid_argument("dtmc: matrix must be square");
  if (p_.rows() == 0) throw std::invalid_argument("dtmc: needs at least one state");
  for (std::size_t i = 0; i < p_.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < p_.cols(); ++j) {
      if (p_(i, j) < 0.0) throw std::invalid_argument("dtmc: negative probability");
      row_sum += p_(i, j);
    }
    if (std::abs(row_sum - 1.0) > 1e-9)
      throw std::invalid_argument("dtmc: row " + std::to_string(i) +
                                  " does not sum to one");
  }
}

matrix::Vector Dtmc::evolve(const matrix::Vector& pi0, std::size_t steps) const {
  if (pi0.size() != states())
    throw std::invalid_argument("dtmc: initial distribution size mismatch");
  matrix::Vector pi = pi0;
  for (std::size_t s = 0; s < steps; ++s) pi = p_.apply_left(pi);
  return pi;
}

matrix::Vector Dtmc::steady_state() const { return matrix::gth_steady_state_dtmc(p_); }

matrix::Vector Dtmc::steady_state_power(double tol, std::size_t max_iters) const {
  matrix::Vector pi(states(), 1.0 / static_cast<double>(states()));
  for (std::size_t it = 0; it < max_iters; ++it) {
    matrix::Vector next = p_.apply_left(pi);
    double change = 0.0;
    for (std::size_t i = 0; i < next.size(); ++i) change += std::abs(next[i] - pi[i]);
    pi = std::move(next);
    if (change < tol) return pi;
  }
  throw std::runtime_error("dtmc: power iteration did not converge");
}

}  // namespace eqos::markov
