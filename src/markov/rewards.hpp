// Reward analysis over finite horizons.
//
// The stationary expected reward answers "what bandwidth does a channel hold
// on average, forever"; operators also ask for finite-horizon quantities:
// "how much bandwidth-time will a channel starting at full quality actually
// deliver over the next hour?".  `accumulated_reward` integrates
// E[r(X_s)] ds over [0, t] by uniformization (the standard transient-reward
// construction), and `time_averaged_reward` divides by the horizon.
#pragma once

#include "markov/ctmc.hpp"
#include "matrix/dense.hpp"

namespace eqos::markov {

/// Expected accumulated reward  E[ integral_0^t r(X_s) ds ]  for the chain
/// started from distribution `pi0`, with per-state reward rates `rewards`.
/// `tol` bounds the uniformization truncation error.  Throws
/// std::invalid_argument on size mismatches or negative time.
[[nodiscard]] double accumulated_reward(const Ctmc& chain, const matrix::Vector& pi0,
                                        const matrix::Vector& rewards, double t,
                                        double tol = 1e-10);

/// accumulated_reward / t; for t = 0 returns the instantaneous rate
/// dot(pi0, rewards).  Converges to the stationary expected reward as t
/// grows (for irreducible chains).
[[nodiscard]] double time_averaged_reward(const Ctmc& chain, const matrix::Vector& pi0,
                                          const matrix::Vector& rewards, double t,
                                          double tol = 1e-10);

}  // namespace eqos::markov
