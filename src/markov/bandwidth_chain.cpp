#include "markov/bandwidth_chain.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "markov/classify.hpp"
#include "matrix/gth.hpp"

namespace eqos::markov {
namespace {

void check_move_matrix(const matrix::Matrix& m, std::size_t n, const std::string& name) {
  if (m.rows() != n || m.cols() != n)
    throw std::invalid_argument("bandwidth chain: " + name + " must be " +
                                std::to_string(n) + "x" + std::to_string(n));
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (m(i, j) < 0.0)
        throw std::invalid_argument("bandwidth chain: negative entry in " + name);
      row_sum += m(i, j);
    }
    if (std::abs(row_sum - 1.0) > 1e-6 && std::abs(row_sum) > 1e-6)
      throw std::invalid_argument("bandwidth chain: row " + std::to_string(i) + " of " +
                                  name + " sums to " + std::to_string(row_sum) +
                                  " (expected ~1 or ~0)");
  }
}

void check_probability(double p, const std::string& name) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("bandwidth chain: " + name + " out of [0,1]");
}

void check_rate(double r, const std::string& name) {
  if (r < 0.0 || !std::isfinite(r))
    throw std::invalid_argument("bandwidth chain: " + name + " must be finite and >= 0");
}

}  // namespace

std::size_t ChainParameters::num_states() const {
  const double span = bmax_kbps - bmin_kbps;
  return 1 + static_cast<std::size_t>(std::llround(span / increment_kbps));
}

void ChainParameters::validate() const {
  if (!(bmin_kbps > 0.0) || !(bmax_kbps >= bmin_kbps))
    throw std::invalid_argument("bandwidth chain: need 0 < bmin <= bmax");
  if (!(increment_kbps > 0.0))
    throw std::invalid_argument("bandwidth chain: increment must be positive");
  const double span = bmax_kbps - bmin_kbps;
  const double steps = span / increment_kbps;
  if (std::abs(steps - std::llround(steps)) > 1e-9)
    throw std::invalid_argument(
        "bandwidth chain: (bmax - bmin) must be an integral multiple of the increment");

  check_rate(arrival_rate, "arrival rate");
  check_rate(termination_rate, "termination rate");
  check_rate(failure_rate, "failure rate");
  check_probability(p_direct, "Pf");
  check_probability(p_indirect, "Ps");
  if (p_direct_termination) check_probability(*p_direct_termination, "Pf (termination)");

  const std::size_t n = num_states();
  check_move_matrix(arrival_move, n, "A");
  check_move_matrix(indirect_move, n, "B");
  check_move_matrix(termination_move, n, "T");
  if (failure_move) check_move_matrix(*failure_move, n, "F");
}

BandwidthChain::BandwidthChain(ChainParameters params)
    : params_(std::move(params)), ctmc_(params_.num_states()) {
  params_.validate();
  const std::size_t n = params_.num_states();
  const matrix::Matrix& f =
      params_.failure_move ? *params_.failure_move : params_.arrival_move;
  const double pf_term =
      params_.p_direct_termination ? *params_.p_direct_termination : params_.p_direct;

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double rate =
          params_.arrival_rate * params_.p_direct * params_.arrival_move(i, j) +
          params_.failure_rate * params_.p_direct * f(i, j) +
          params_.arrival_rate * params_.p_indirect * params_.indirect_move(i, j) +
          params_.termination_rate * pf_term * params_.termination_move(i, j);
      if (rate > 0.0) ctmc_.add_rate(i, j, rate);
    }
  }
}

double BandwidthChain::state_bandwidth(std::size_t i) const {
  if (i >= num_states()) throw std::out_of_range("bandwidth chain: state index");
  return params_.bmin_kbps + static_cast<double>(i) * params_.increment_kbps;
}

matrix::Vector BandwidthChain::state_bandwidths() const {
  matrix::Vector b(num_states());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = state_bandwidth(i);
  return b;
}

matrix::Vector BandwidthChain::steady_state() const {
  try {
    return ctmc_.steady_state();
  } catch (const std::invalid_argument&) {
    // Empirically estimated chains can be reducible: states the measurement
    // window never saw have zero rows *and* zero columns.  Such isolated
    // states carry no stationary mass — drop them, then solve the remaining
    // chain restricted to its (unique) closed communicating class.
    const matrix::Matrix& q = ctmc_.generator();
    const std::size_t n = q.rows();
    std::vector<std::size_t> touched;
    for (std::size_t i = 0; i < n; ++i) {
      bool any = false;
      for (std::size_t j = 0; j < n && !any; ++j)
        if (i != j && (q(i, j) > 0.0 || q(j, i) > 0.0)) any = true;
      if (any) touched.push_back(i);
    }
    if (touched.empty())
      throw std::invalid_argument(
          "bandwidth chain: no transitions at all; steady state undetermined");
    matrix::Matrix sub(touched.size(), touched.size());
    for (std::size_t a = 0; a < touched.size(); ++a)
      for (std::size_t b = 0; b < touched.size(); ++b)
        if (a != b) sub(a, b) = q(touched[a], touched[b]);
    for (std::size_t a = 0; a < touched.size(); ++a) {
      double off = 0.0;
      for (std::size_t b = 0; b < touched.size(); ++b)
        if (a != b) off += sub(a, b);
      sub(a, a) = -off;
    }
    const matrix::Vector sub_pi = steady_state_closed_class(sub);
    matrix::Vector pi(n, 0.0);
    for (std::size_t a = 0; a < touched.size(); ++a) pi[touched[a]] = sub_pi[a];
    return pi;
  }
}

double BandwidthChain::average_bandwidth_kbps() const {
  return matrix::dot(steady_state(), state_bandwidths());
}

double BandwidthChain::mean_bandwidth_at(const matrix::Vector& pi0, double t) const {
  const matrix::Vector pi = ctmc_.transient(pi0, t);
  return matrix::dot(pi, state_bandwidths());
}

}  // namespace eqos::markov
