// Continuous-time Markov chains.
//
// This is the in-tree replacement for the SHARPE package the paper used to
// solve its models: steady-state analysis (GTH by default, LU linear solve as
// a cross-check), transient analysis by uniformization, and expected-reward
// evaluation.  Chains are built either from a full generator matrix or
// incrementally with `add_rate`.
#pragma once

#include <cstddef>
#include <vector>

#include "matrix/dense.hpp"

namespace eqos::markov {

/// A finite-state CTMC described by its generator (infinitesimal rate)
/// matrix Q: off-diagonal q_ij >= 0, diagonal q_ii = -sum_{j != i} q_ij.
class Ctmc {
 public:
  /// An empty chain with `states` states and no transitions.
  explicit Ctmc(std::size_t states);

  /// Wraps an existing generator.  Throws std::invalid_argument if the
  /// matrix is not square, has negative off-diagonal entries, or rows that
  /// do not sum to ~0.
  static Ctmc from_generator(matrix::Matrix generator);

  /// Adds `rate` to the transition i -> j (and fixes both diagonals).
  /// Requires i != j and rate >= 0.
  void add_rate(std::size_t from, std::size_t to, double rate);

  [[nodiscard]] std::size_t states() const noexcept { return q_.rows(); }
  [[nodiscard]] const matrix::Matrix& generator() const noexcept { return q_; }
  [[nodiscard]] double rate(std::size_t from, std::size_t to) const;

  /// Total exit rate of a state (= -q_ii).
  [[nodiscard]] double exit_rate(std::size_t state) const;

  /// Stationary distribution via GTH (cancellation-free; preferred).
  /// Throws std::invalid_argument if the chain is not irreducible.
  [[nodiscard]] matrix::Vector steady_state() const;

  /// Stationary distribution by solving the balance equations with LU,
  /// replacing one equation by the normalization constraint.  Used as an
  /// independent cross-check of GTH in tests.
  [[nodiscard]] matrix::Vector steady_state_linear() const;

  /// Transient distribution pi(t) from initial distribution pi0, computed by
  /// uniformization with truncation error below `tol`.
  [[nodiscard]] matrix::Vector transient(const matrix::Vector& pi0, double t,
                                         double tol = 1e-12) const;

  /// Steady-state expected reward: sum_i pi_i * reward_i.
  [[nodiscard]] double expected_reward(const matrix::Vector& rewards) const;

  /// Embedded jump chain P (row-stochastic); an absorbing state gets a
  /// self-loop of probability 1.
  [[nodiscard]] matrix::Matrix embedded_jump_chain() const;

 private:
  explicit Ctmc(matrix::Matrix q) : q_(std::move(q)) {}
  matrix::Matrix q_;
};

}  // namespace eqos::markov
