// The paper's N-state bandwidth Markov chain (Section 3.2).
//
// A tagged primary channel of a DR-connection holds Bmin + i*Delta bandwidth
// in state S_i, i = 0..N-1, N = 1 + (Bmax - Bmin)/Delta.  Transitions:
//
//   S_i -> S_j, rate  lambda * Pf * A_ij   a new connection arrives and is
//                                          directly chained (shares a link):
//                                          retreat-and-redistribute
//          +     gamma  * Pf * F_ij        a link failure activates backups
//                                          (the paper reuses A for F)
//          +     lambda * Ps * B_ij        an indirectly-chained arrival
//                                          frees capacity elsewhere
//          +     mu     * Pf' * T_ij       a channel sharing a link
//                                          terminates
//
// A, B, T, F are conditional state-change matrices measured from simulation
// (SHARPE-style parameterization); Pf and Ps are the direct/indirect chaining
// probabilities.  The paper restricts A/F to downward and B/T to upward
// moves; this implementation accepts arbitrary row-stochastic matrices, of
// which the paper's structure is a special case.
#pragma once

#include <cstddef>
#include <optional>

#include "markov/ctmc.hpp"
#include "matrix/dense.hpp"

namespace eqos::markov {

/// Inputs of the bandwidth chain.  All bandwidths in Kbit/s.
struct ChainParameters {
  double bmin_kbps = 100.0;   ///< bandwidth at state S_0
  double bmax_kbps = 500.0;   ///< bandwidth at state S_{N-1}
  double increment_kbps = 50.0;  ///< Delta; (bmax-bmin) must be a multiple

  double arrival_rate = 1e-3;      ///< lambda: DR-connection request arrivals
  double termination_rate = 1e-3;  ///< mu: DR-connection terminations
  double failure_rate = 0.0;       ///< gamma: link failures

  double p_direct = 0.0;    ///< Pf: share >= 1 link with a random newcomer
  double p_indirect = 0.0;  ///< Ps: indirectly chained with a newcomer

  matrix::Matrix arrival_move;      ///< A (N x N, row-stochastic)
  matrix::Matrix indirect_move;     ///< B (N x N, row-stochastic)
  matrix::Matrix termination_move;  ///< T (N x N, row-stochastic)
  /// F; when absent the paper's choice F = A is used.
  std::optional<matrix::Matrix> failure_move;
  /// Pf measured against terminating channels; defaults to p_direct.
  std::optional<double> p_direct_termination;

  /// N = 1 + (bmax - bmin) / increment.
  [[nodiscard]] std::size_t num_states() const;

  /// Throws std::invalid_argument on inconsistent sizes, rates, or
  /// probabilities.  Rows of A/B/T/F must sum to ~1, or to 0 (a state never
  /// observed in that context, treated as "no move").
  void validate() const;
};

/// The assembled chain plus its reward (bandwidth) structure.
class BandwidthChain {
 public:
  /// Validates `params` and builds the CTMC generator.
  explicit BandwidthChain(ChainParameters params);

  [[nodiscard]] const ChainParameters& parameters() const noexcept { return params_; }
  [[nodiscard]] const Ctmc& ctmc() const noexcept { return ctmc_; }
  [[nodiscard]] std::size_t num_states() const noexcept { return ctmc_.states(); }

  /// Bandwidth of state S_i: bmin + i * increment.
  [[nodiscard]] double state_bandwidth(std::size_t i) const;
  /// All state bandwidths, ascending.
  [[nodiscard]] matrix::Vector state_bandwidths() const;

  /// Stationary distribution.  Uses GTH on the full chain when irreducible,
  /// otherwise restricts to the unique closed communicating class (zero-rate
  /// rows from unobserved states make empirical chains reducible).
  [[nodiscard]] matrix::Vector steady_state() const;

  /// The paper's headline metric: E[B] = sum_i pi_i (bmin + i*increment).
  [[nodiscard]] double average_bandwidth_kbps() const;

  /// Transient mean bandwidth at time t from initial distribution pi0.
  [[nodiscard]] double mean_bandwidth_at(const matrix::Vector& pi0, double t) const;

 private:
  ChainParameters params_;
  Ctmc ctmc_;
};

}  // namespace eqos::markov
