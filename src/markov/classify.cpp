#include "markov/classify.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "matrix/gth.hpp"

namespace eqos::markov {
namespace {

// Iterative Tarjan strongly-connected-components over the positive-weight
// digraph.  Iterative to stay safe for large chains.
class TarjanScc {
 public:
  explicit TarjanScc(const matrix::Matrix& w)
      : w_(w),
        n_(w.rows()),
        index_(n_, kUnvisited),
        lowlink_(n_, 0),
        on_stack_(n_, false),
        component_(n_, kUnvisited) {}

  [[nodiscard]] std::vector<std::vector<std::size_t>> run() {
    for (std::size_t v = 0; v < n_; ++v)
      if (index_[v] == kUnvisited) strong_connect(v);
    return std::move(components_);
  }

  [[nodiscard]] const std::vector<std::size_t>& component_of() const noexcept {
    return component_;
  }

 private:
  static constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);

  [[nodiscard]] bool edge(std::size_t i, std::size_t j) const {
    return i != j && w_(i, j) > 0.0;
  }

  void strong_connect(std::size_t root) {
    struct Frame {
      std::size_t v;
      std::size_t next_child;
    };
    std::vector<Frame> call_stack{{root, 0}};
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::size_t v = frame.v;
      if (frame.next_child == 0) {
        index_[v] = lowlink_[v] = counter_++;
        stack_.push_back(v);
        on_stack_[v] = true;
      }
      bool descended = false;
      while (frame.next_child < n_) {
        const std::size_t w = frame.next_child++;
        if (!edge(v, w)) continue;
        if (index_[w] == kUnvisited) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack_[w]) lowlink_[v] = std::min(lowlink_[v], index_[w]);
      }
      if (descended) continue;
      if (lowlink_[v] == index_[v]) {
        std::vector<std::size_t> comp;
        for (;;) {
          const std::size_t w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          component_[w] = components_.size();
          comp.push_back(w);
          if (w == v) break;
        }
        std::sort(comp.begin(), comp.end());
        components_.push_back(std::move(comp));
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        Frame& parent = call_stack.back();
        lowlink_[parent.v] = std::min(lowlink_[parent.v], lowlink_[v]);
      }
    }
  }

  const matrix::Matrix& w_;
  std::size_t n_;
  std::size_t counter_ = 0;
  std::vector<std::size_t> index_;
  std::vector<std::size_t> lowlink_;
  std::vector<bool> on_stack_;
  std::vector<std::size_t> stack_;
  std::vector<std::size_t> component_;
  std::vector<std::vector<std::size_t>> components_;
};

}  // namespace

std::vector<CommunicatingClass> communicating_classes(const matrix::Matrix& weights) {
  assert(weights.square());
  TarjanScc scc(weights);
  auto comps = scc.run();
  const auto& component_of = scc.component_of();

  std::vector<CommunicatingClass> classes;
  classes.reserve(comps.size());
  for (auto& members : comps) {
    CommunicatingClass c;
    c.states = std::move(members);
    c.closed = true;
    classes.push_back(std::move(c));
  }
  const std::size_t n = weights.rows();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j && weights(i, j) > 0.0 && component_of[i] != component_of[j])
        classes[component_of[i]].closed = false;
  return classes;
}

matrix::Vector steady_state_closed_class(const matrix::Matrix& generator) {
  const auto classes = communicating_classes(generator);
  const CommunicatingClass* closed = nullptr;
  std::size_t closed_count = 0;
  for (const auto& c : classes) {
    if (c.closed) {
      ++closed_count;
      closed = &c;
    }
  }
  if (closed_count != 1)
    throw std::invalid_argument(
        "steady_state_closed_class: chain has " + std::to_string(closed_count) +
        " closed classes; the limit distribution is not unique");

  const auto& members = closed->states;
  matrix::Matrix sub(members.size(), members.size());
  for (std::size_t a = 0; a < members.size(); ++a)
    for (std::size_t b = 0; b < members.size(); ++b)
      sub(a, b) = generator(members[a], members[b]);
  // Rebuild diagonals within the class: rates leaving the class do not exist
  // for a closed class, so row sums within members already balance, but the
  // original diagonal may include rates to transient states (impossible for
  // a closed class).  Recompute defensively.
  for (std::size_t a = 0; a < members.size(); ++a) {
    double off = 0.0;
    for (std::size_t b = 0; b < members.size(); ++b)
      if (a != b) off += sub(a, b);
    sub(a, a) = -off;
  }
  const matrix::Vector sub_pi = matrix::gth_steady_state(sub);
  matrix::Vector pi(generator.rows(), 0.0);
  for (std::size_t a = 0; a < members.size(); ++a) pi[members[a]] = sub_pi[a];
  return pi;
}

}  // namespace eqos::markov
