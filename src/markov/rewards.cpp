#include "markov/rewards.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eqos::markov {

double accumulated_reward(const Ctmc& chain, const matrix::Vector& pi0,
                          const matrix::Vector& rewards, double t, double tol) {
  const std::size_t n = chain.states();
  if (pi0.size() != n || rewards.size() != n)
    throw std::invalid_argument("accumulated_reward: size mismatch");
  if (t < 0.0) throw std::invalid_argument("accumulated_reward: negative time");
  if (t == 0.0) return 0.0;

  double lambda = 0.0;
  for (std::size_t i = 0; i < n; ++i) lambda = std::max(lambda, chain.exit_rate(i));
  if (lambda == 0.0) return matrix::dot(pi0, rewards) * t;  // frozen chain
  lambda *= 1.02;

  // Uniformized DTMC P = I + Q/Lambda.  The standard identity:
  //   E[int_0^t r(X_s) ds] = (1/Lambda) sum_{k>=0} P(N_t > k) * pi0 P^k r,
  // where N_t ~ Poisson(Lambda t): each uniformization epoch contributes its
  // expected sojourn (1/Lambda) weighted by the probability that the chain
  // has made more than k jumps by time t.
  matrix::Matrix p = chain.generator();
  p *= (1.0 / lambda);
  p += matrix::Matrix::identity(n);

  const double a = lambda * t;
  matrix::Vector pi = pi0;  // pi0 P^k
  double log_pmf = -a;      // log Poisson pmf at k
  double cdf = std::exp(log_pmf);
  double total = 0.0;
  for (std::size_t k = 0;; ++k) {
    const double tail = std::max(0.0, 1.0 - cdf);  // P(N_t > k)
    total += tail * matrix::dot(pi, rewards);
    // Stop when the remaining tail mass cannot matter: expected remaining
    // epochs = a - E[min(N_t, k)] <= a * tail bound.
    if (tail < tol && static_cast<double>(k) > a) break;
    if (k > 10'000'000)
      throw std::runtime_error("accumulated_reward: did not converge");
    pi = p.apply_left(pi);
    log_pmf += std::log(a / static_cast<double>(k + 1));
    cdf += std::exp(log_pmf);
  }
  return total / lambda;
}

double time_averaged_reward(const Ctmc& chain, const matrix::Vector& pi0,
                            const matrix::Vector& rewards, double t, double tol) {
  if (t == 0.0) {
    if (pi0.size() != chain.states() || rewards.size() != chain.states())
      throw std::invalid_argument("time_averaged_reward: size mismatch");
    return matrix::dot(pi0, rewards);
  }
  return accumulated_reward(chain, pi0, rewards, t, tol) / t;
}

}  // namespace eqos::markov
