#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace eqos::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void init_from_env() {
  if (const char* env = std::getenv("EQOS_LOG")) {
    g_level.store(parse_log_level(env), std::memory_order_relaxed);
  }
}

}  // namespace

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return g_level.load(std::memory_order_relaxed);
}

LogLevel set_log_level(LogLevel level) {
  std::call_once(g_env_once, init_from_env);
  return g_level.exchange(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  // Warn once per process: a misspelled EQOS_LOG silently behaving like
  // "warn" is the kind of config typo that hides for months.
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::cerr << "[eqos:WARN] unknown log level '" << name
              << "' (accepted: trace|debug|info|warn|error|off); using warn\n";
  }
  return LogLevel::kWarn;
}

namespace detail {

void emit(LogLevel level, std::string_view message) {
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::cerr << "[eqos:" << level_name(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace eqos::util
