#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

namespace eqos::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      // Right-align everything; headers and numerics line up cleanly.
      out.width(static_cast<std::streamsize>(width[c]));
      out << row[c];
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t rule_len = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule_len += width[c] + (c ? 2 : 0);
  out << std::string(rule_len, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double value, int digits) {
  std::ostringstream s;
  s.setf(std::ios::fixed);
  s.precision(digits);
  s << value;
  return s.str();
}

std::string Table::sci(double value, int digits) {
  std::ostringstream s;
  s.setf(std::ios::scientific);
  s.precision(digits);
  s << value;
  return s.str();
}

}  // namespace eqos::util
