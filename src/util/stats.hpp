// Statistics collectors used by the simulator and the benches.
//
// `RunningStat` accumulates mean/variance with Welford's algorithm (stable
// for long runs).  `TimeWeightedMean` integrates a piecewise-constant signal
// over simulated time — the paper's "average bandwidth reserved" metric is a
// time-weighted average of each primary channel's reservation, so this is the
// core measurement primitive.  `Histogram` counts integer-bucketed samples
// (used for the empirical state-occupancy distribution that is compared with
// the Markov chain's stationary vector).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eqos::util {

/// Percentile of a sample set by linear interpolation between closest ranks
/// (the numpy default).  `q` in [0, 100].  Returns NaN for an empty sample —
/// "no observations" must stay distinguishable from "recovered in 0 time";
/// reporting layers omit the metric instead of printing the NaN.  Sorts a
/// copy; callers with several queries should use `percentiles`.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Batched percentiles: sorts `samples` once and answers every query in
/// `qs` (same rank interpolation as `percentile`).  Returns one value per
/// query, in query order; all NaN for an empty sample set.
[[nodiscard]] std::vector<double> percentiles(std::vector<double> samples,
                                              const std::vector<double>& qs);

/// Streaming mean / variance / min / max (Welford).
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// Mean of the samples so far.  Requires count() > 0.
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance.  Returns 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double sem() const;
  /// Approximate 95% confidence half-width (normal approximation).
  [[nodiscard]] double ci95_halfwidth() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal.
///
/// Call `update(t, v)` whenever the signal changes to value `v` at time `t`;
/// the value is held constant until the next update.  `mean(t_end)` closes
/// the last segment at `t_end` and returns the integral divided by the
/// observed span.  Updates must have non-decreasing timestamps; a
/// non-monotone `update`/`integral` throws std::invalid_argument (a clock
/// running backwards would silently corrupt the integral otherwise).
class TimeWeightedMean {
 public:
  void update(double time, double value);
  /// Integral of the signal divided by elapsed span up to `end_time`.
  /// Returns `fallback` if no time has elapsed yet.
  [[nodiscard]] double mean(double end_time, double fallback = 0.0) const;
  /// Raw integral of the signal up to `end_time`.
  [[nodiscard]] double integral(double end_time) const;
  /// Time of the first update, or 0 if none.
  [[nodiscard]] double start_time() const noexcept { return start_; }
  [[nodiscard]] bool started() const noexcept { return started_; }
  /// Value currently held (last update).  Requires started().
  [[nodiscard]] double current_value() const;

 private:
  bool started_ = false;
  double start_ = 0.0;
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double area_ = 0.0;
};

/// Fixed-width histogram over integer buckets [0, buckets).
class Histogram {
 public:
  explicit Histogram(std::size_t buckets);

  /// Adds `weight` to `bucket`.  Out-of-range buckets are clamped into range
  /// (callers bucket by construction; clamping guards float edge cases).
  void add(std::size_t bucket, double weight = 1.0);

  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }
  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] double count(std::size_t bucket) const;
  /// Normalized bucket probabilities; all zeros if the histogram is empty.
  [[nodiscard]] std::vector<double> probabilities() const;

 private:
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Renders "mean ± ci95 [min, max] (n)" for human-readable bench output.
[[nodiscard]] std::string describe(const RunningStat& s);

}  // namespace eqos::util
