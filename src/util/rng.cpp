#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace eqos::util {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

bool Rng::chance(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return uniform() < clamped;
}

Rng Rng::split() {
  // SplitMix64-style avalanche of a fresh draw gives a well-separated child
  // seed even for adjacent parent states.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return Rng(z);
}

std::string Rng::engine_state() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

void Rng::set_engine_state(std::uint64_t seed, const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 engine;
  if (!(in >> engine))
    throw std::invalid_argument("Rng::set_engine_state: malformed engine state");
  engine_ = engine;
  seed_ = seed;
}

std::uint64_t Rng::substream_seed(std::uint64_t base, std::uint64_t stream_id) {
  // The (stream_id)-th output of SplitMix64 seeded with `base`: advance the
  // Weyl state stream_id+1 steps (a single multiply), then avalanche.
  std::uint64_t z = base + (stream_id + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace eqos::util
