// Aligned plain-text table printer.
//
// The bench harnesses regenerate the paper's tables and figure series as
// rows on stdout; this helper right-aligns numeric columns and keeps the
// output stable enough to diff between runs.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace eqos::util {

/// Collects rows of string cells and renders them with per-column widths.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing trailing cells render empty, extra cells are
  /// an error.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Renders the table (header, rule, rows) to the stream.
  void print(std::ostream& out) const;

  /// Formats a double with `digits` places after the point.
  [[nodiscard]] static std::string num(double value, int digits = 1);
  /// Formats a double in scientific notation ("1.0e-05").
  [[nodiscard]] static std::string sci(double value, int digits = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eqos::util
