// Deterministic random-number utilities.
//
// Every stochastic component in the library takes an explicit 64-bit seed so
// that simulations, tests, and benchmarks are exactly reproducible.  `Rng`
// wraps a 64-bit Mersenne twister and exposes the small set of distributions
// the simulator needs (uniform, exponential, integer ranges) plus `split()`,
// which derives an independent child stream — used to give each workload
// process (arrivals, terminations, failures) its own stream so adding one
// process does not perturb the draws of another.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace eqos::util {

/// A seeded pseudo-random stream.  Copyable; copies replay the same draws.
class Rng {
 public:
  /// Constructs a stream from an explicit seed.  Equal seeds give equal
  /// streams on every platform (mt19937_64 is fully specified by the
  /// standard).
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// The seed this stream was created with (for logging / reproduction).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform real in [lo, hi).  Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n).  Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Exponentially distributed variate with the given rate (mean 1/rate).
  /// Requires rate > 0.
  [[nodiscard]] double exponential(double rate);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p);

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Derives an independent child stream.  Successive calls yield distinct
  /// children; the parent's future draws are advanced by one.
  [[nodiscard]] Rng split();

  /// Derives the child stream for `stream_id` *without* consuming parent
  /// state: the child seed is the `stream_id`-th output of a SplitMix64
  /// generator seeded with this stream's seed.  Equal (seed, stream_id)
  /// pairs give equal children on every platform, so sweep points and
  /// replications can derive their sub-streams independently and in any
  /// order (the property core::run_sweep relies on for thread-count
  /// invariance).  Distinct stream ids give well-separated children; see
  /// test_util's overlap checks.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const {
    return Rng(substream_seed(seed_, stream_id));
  }

  /// The seed `split(stream_id)` would use: SplitMix64 output number
  /// `stream_id` from state `base`.  Exposed so callers that only need a
  /// derived 64-bit seed (not a constructed engine) avoid the mt19937_64
  /// init cost.
  [[nodiscard]] static std::uint64_t substream_seed(std::uint64_t base,
                                                    std::uint64_t stream_id);

  /// The full engine state as the standard's textual serialization (624
  /// space-separated words).  Together with seed(), this captures the stream
  /// exactly: a checkpoint restored via set_engine_state() replays the
  /// remaining draws bit-for-bit.
  [[nodiscard]] std::string engine_state() const;

  /// Restores a stream captured by seed() + engine_state().  Throws
  /// std::invalid_argument when `state` is not a valid mt19937_64 dump.
  void set_engine_state(std::uint64_t seed, const std::string& state);

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace eqos::util
