// Minimal leveled logger.
//
// The library is a research artifact whose binaries (benches, examples) are
// expected to produce clean tabular stdout; diagnostics therefore go to
// stderr and default to `Warn`.  The level is process-global and can be
// raised by tests or via the EQOS_LOG environment variable
// (trace|debug|info|warn|error|off) read at first use.
#pragma once

#include <optional>
#include <sstream>
#include <string_view>

namespace eqos::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Current process-global level (initialized from EQOS_LOG on first call).
[[nodiscard]] LogLevel log_level();

/// Overrides the process-global level; returns the previous level (so scopes
/// — tests, benches — can restore it).
LogLevel set_log_level(LogLevel level);

/// Parses a level name; returns kWarn for unknown names, after warning once
/// per process on stderr with the offending value and the accepted set.
[[nodiscard]] LogLevel parse_log_level(std::string_view name);

namespace detail {
void emit(LogLevel level, std::string_view message);
}

/// Statement-style logging:  EQOS_LOG_AT(LogLevel::kInfo) << "x=" << x;
///
/// The ostringstream is not constructed until the first << on an *enabled*
/// line, so a disabled statement costs two loads and a branch — no stream
/// construction, no allocation (bench_micro's BM_log_disabled guards this).
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= log_level()) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (enabled_) detail::emit(level_, stream_ ? stream_->str() : std::string());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) {
      if (!stream_) stream_.emplace();
      *stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::optional<std::ostringstream> stream_;
};

}  // namespace eqos::util

#define EQOS_LOG_AT(level) ::eqos::util::LogLine(level)
#define EQOS_DEBUG() EQOS_LOG_AT(::eqos::util::LogLevel::kDebug)
#define EQOS_INFO() EQOS_LOG_AT(::eqos::util::LogLevel::kInfo)
#define EQOS_WARN() EQOS_LOG_AT(::eqos::util::LogLevel::kWarn)
#define EQOS_ERROR() EQOS_LOG_AT(::eqos::util::LogLevel::kError)
