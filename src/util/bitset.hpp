// A small dynamic bitset tuned for path/link-set operations.
//
// The simulator classifies, on every connection arrival, each existing
// channel as directly chained (shares >= 1 link with the newcomer),
// indirectly chained, or unaffected.  With thousands of channels this test is
// the hot path, so each channel keeps its traversed-link set as a bitset and
// the tests reduce to word-wise AND / OR.  Header-only.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace eqos::util {

/// Fixed-capacity bitset whose size is chosen at run time.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates an all-zero bitset with `bits` addressable positions.
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) {
    assert(i < bits_);
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }

  void reset(std::size_t i) {
    assert(i < bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] bool test(std::size_t i) const {
    assert(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  [[nodiscard]] bool any() const noexcept {
    for (auto w : words_)
      if (w != 0) return true;
    return false;
  }

  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// True iff this and `other` share at least one set bit.
  /// Both operands must have the same size.
  [[nodiscard]] bool intersects(const DynamicBitset& other) const {
    assert(bits_ == other.bits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & other.words_[i]) != 0) return true;
    return false;
  }

  /// In-place union.  Both operands must have the same size.
  DynamicBitset& operator|=(const DynamicBitset& other) {
    assert(bits_ == other.bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  /// In-place intersection.  Both operands must have the same size.
  DynamicBitset& operator&=(const DynamicBitset& other) {
    assert(bits_ == other.bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }

  /// Calls `fn(index)` for every set bit, ascending, without allocating.
  template <typename Fn>
  void for_each_set_bit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> set_bits() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        out.push_back(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
    return out;
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace eqos::util
