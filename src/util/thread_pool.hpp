// A fixed-size thread pool for embarrassingly parallel sweeps.
//
// Deliberately work-stealing-free: tasks are claimed from a single shared
// index counter, so the only scheduling nondeterminism is *which thread*
// runs a task — never what the task computes.  Sweep code stores each
// task's result into a slot owned by its index, which makes sweep results
// bit-identical regardless of thread count (see core/sweep.hpp).
// Header-only; used by core::run_sweep and the bench harnesses.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace eqos::util {

/// Fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).  `threads == 0` means
  /// std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads) {
    if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueues a task.  Tasks must not submit further tasks to the same pool
  /// from within wait() (no nested parallelism — sweeps don't need it).
  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++outstanding_;
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished.  Rethrows the first
  /// exception a task raised (by submission-claim order of the failing
  /// tasks, not deterministic across thread counts — exceptions in sweep
  /// points are bugs, not results).
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
    if (first_error_) {
      std::exception_ptr e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  /// Runs `fn(i)` for every i in [0, n) across the pool and waits.  Each
  /// index is claimed exactly once; `fn` must only touch state owned by its
  /// index (plus read-only shared state) for deterministic results.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    std::shared_ptr<std::atomic<std::size_t>> next =
        std::make_shared<std::atomic<std::size_t>>(0);
    const std::size_t lanes = std::min(n, workers_.size());
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      submit([next, n, &fn] {
        for (std::size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) fn(i);
      });
    }
    wait();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping_ and drained
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --outstanding_;
      }
      idle_cv_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::size_t outstanding_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace eqos::util
