#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace eqos::util {

namespace {

/// Rank interpolation over an already-sorted, non-empty sample set.
double sorted_percentile(const std::vector<double>& sorted, double q) {
  if (q <= 0.0) return sorted.front();
  if (q >= 100.0) return sorted.back();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(samples.begin(), samples.end());
  return sorted_percentile(samples, q);
}

std::vector<double> percentiles(std::vector<double> samples,
                                const std::vector<double>& qs) {
  if (samples.empty()) {
    return std::vector<double>(qs.size(),
                               std::numeric_limits<double>::quiet_NaN());
  }
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(sorted_percentile(samples, q));
  return out;
}

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const {
  assert(n_ > 0);
  return mean_;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::sem() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStat::ci95_halfwidth() const { return 1.96 * sem(); }

double RunningStat::min() const {
  assert(n_ > 0);
  return min_;
}

double RunningStat::max() const {
  assert(n_ > 0);
  return max_;
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void TimeWeightedMean::update(double time, double value) {
  if (!started_) {
    started_ = true;
    start_ = time;
  } else {
    if (time < last_time_) {
      throw std::invalid_argument("TimeWeightedMean::update: non-monotone time");
    }
    area_ += last_value_ * (time - last_time_);
  }
  last_time_ = time;
  last_value_ = value;
}

double TimeWeightedMean::integral(double end_time) const {
  if (!started_) return 0.0;
  if (end_time < last_time_) {
    throw std::invalid_argument("TimeWeightedMean::integral: end before last update");
  }
  return area_ + last_value_ * (end_time - last_time_);
}

double TimeWeightedMean::mean(double end_time, double fallback) const {
  if (!started_ || end_time <= start_) return fallback;
  return integral(end_time) / (end_time - start_);
}

double TimeWeightedMean::current_value() const {
  assert(started_);
  return last_value_;
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets, 0.0) {
  assert(buckets > 0);
}

void Histogram::add(std::size_t bucket, double weight) {
  const std::size_t b = std::min(bucket, counts_.size() - 1);
  counts_[b] += weight;
  total_ += weight;
}

double Histogram::count(std::size_t bucket) const {
  assert(bucket < counts_.size());
  return counts_[bucket];
}

std::vector<double> Histogram::probabilities() const {
  std::vector<double> p(counts_.size(), 0.0);
  if (total_ <= 0.0) return p;
  for (std::size_t i = 0; i < counts_.size(); ++i) p[i] = counts_[i] / total_;
  return p;
}

std::string describe(const RunningStat& s) {
  std::ostringstream out;
  if (s.empty()) return "(no samples)";
  out.precision(4);
  out << std::fixed << s.mean() << " +/- " << s.ci95_halfwidth() << " [" << s.min()
      << ", " << s.max() << "] (n=" << s.count() << ")";
  return out.str();
}

}  // namespace eqos::util
