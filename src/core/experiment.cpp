#include "core/experiment.hpp"

#include <algorithm>
#include <chrono>

#include "core/ideal.hpp"
#include "util/rng.hpp"

namespace eqos::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point& mark) {
  const Clock::time_point now = Clock::now();
  const double s = std::chrono::duration<double>(now - mark).count();
  mark = now;
  return s;
}

}  // namespace

ExperimentResult run_experiment(const topology::Graph& graph,
                                const ExperimentConfig& config) {
  ExperimentResult result;
  Clock::time_point mark = Clock::now();

  net::Network network(graph, config.network);
  // The partition seed derives from the workload seed but the plan never
  // feeds any fingerprint: shard count is an execution-layout knob, not part
  // of the experiment's identity.
  sim::Simulator simulator(
      network, config.workload,
      sim::make_shard_plan(network.graph(),
                           static_cast<std::uint32_t>(std::max<std::size_t>(config.shards, 1)),
                           config.network,
                           util::Rng::substream_seed(config.workload.seed,
                                                     0x73686172647325ULL)));

  result.established = simulator.populate(config.target_connections);
  result.attempted = simulator.stats().populate_attempts;
  result.timings.populate_seconds = seconds_since(mark);

  if (config.warmup_events > 0) simulator.run_events(config.warmup_events);
  result.timings.warmup_seconds = seconds_since(mark);

  sim::TransitionRecorder recorder(config.workload.qos, simulator.now());
  simulator.attach_recorder(&recorder);
  simulator.run_events(config.measure_events);
  simulator.attach_recorder(nullptr);
  result.timings.measure_seconds = seconds_since(mark);

  result.estimates = recorder.estimates(simulator.now(), network);
  result.sim_mean_bandwidth_kbps = result.estimates.mean_bandwidth_kbps;

  result.paper_analysis = analyze(result.estimates, config.workload, Fidelity::kPaper);
  result.refined_analysis =
      analyze(result.estimates, config.workload, Fidelity::kRefined);
  result.analytic_paper_kbps = result.paper_analysis.average_bandwidth_kbps;
  result.analytic_refined_kbps = result.refined_analysis.average_bandwidth_kbps;

  result.active_at_end = network.num_active();
  result.mean_hops = network.mean_primary_hops();
  result.protected_fraction = network.protected_fraction();
  if (result.active_at_end > 0 && result.mean_hops > 0.0) {
    result.ideal_kbps = ideal_average_bandwidth_kbps(
        config.network.link_capacity_kbps, graph.num_links(), result.active_at_end,
        result.mean_hops);
    result.ideal_clamped_kbps = clamped_ideal_bandwidth_kbps(
        config.network.link_capacity_kbps, graph.num_links(), result.active_at_end,
        result.mean_hops, config.workload.qos.bmin_kbps, config.workload.qos.bmax_kbps);
  }
  result.network_stats = network.stats();
  result.sim_stats = simulator.stats();
  result.timings.analyze_seconds = seconds_since(mark);
  result.events_per_second = churn_events_per_second(result.sim_stats, result.timings);
  return result;
}

double churn_events_per_second(const sim::SimulationStats& stats,
                               const PhaseTimings& timings) {
  const double churn_seconds = timings.warmup_seconds + timings.measure_seconds;
  if (!(churn_seconds > 0.0)) return 0.0;
  const std::size_t events = stats.arrival_events + stats.termination_events +
                             stats.failure_events + stats.repair_events;
  return static_cast<double>(events) / churn_seconds;
}

}  // namespace eqos::core
