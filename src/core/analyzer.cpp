#include "core/analyzer.hpp"

#include "markov/passage.hpp"

#include <algorithm>
#include <stdexcept>

namespace eqos::core {

namespace {

/// Direction an event type pushes a channel: -1 (retreat) or +1 (gain).
enum class Push : int { kDown = -1, kUp = +1 };

/// Adds `weight` pseudo-observations of a one-increment move in `direction`
/// to every row that has such a neighbor, then row-normalizes.  A matrix
/// with no observations at all is left all-zero (the chain treats zero rows
/// as "no move", and the degenerate fallback handles fully-empty chains).
matrix::Matrix smooth_and_normalize(const matrix::Matrix& counts, Push direction,
                                    double weight) {
  bool any = false;
  for (std::size_t i = 0; i < counts.rows() && !any; ++i)
    for (std::size_t j = 0; j < counts.cols() && !any; ++j)
      if (counts(i, j) > 0.0) any = true;
  if (!any || weight <= 0.0) return sim::row_normalize(counts);

  matrix::Matrix smoothed = counts;
  const std::size_t n = counts.rows();
  for (std::size_t i = 0; i < n; ++i) {
    if (direction == Push::kDown && i > 0) smoothed(i, i - 1) += weight;
    if (direction == Push::kUp && i + 1 < n) smoothed(i, i + 1) += weight;
  }
  return sim::row_normalize(smoothed);
}

}  // namespace

markov::ChainParameters make_chain_parameters(const sim::ModelEstimates& estimates,
                                              const sim::WorkloadConfig& workload,
                                              Fidelity fidelity, double smoothing) {
  markov::ChainParameters p;
  p.bmin_kbps = workload.qos.bmin_kbps;
  p.bmax_kbps = workload.qos.bmax_kbps;
  p.increment_kbps = workload.qos.increment_kbps;
  p.arrival_rate = workload.arrival_rate;
  p.termination_rate = workload.termination_rate;
  p.failure_rate = workload.failure_rate;
  p.p_direct = estimates.pf;
  p.p_indirect = estimates.ps;
  // Fall back to the pre-normalized matrices when raw counts are absent
  // (hand-built estimates in tests and examples).
  const bool have_counts = estimates.arrival_counts.rows() == p.num_states();
  if (have_counts) {
    p.arrival_move =
        smooth_and_normalize(estimates.arrival_counts, Push::kDown, smoothing);
    p.indirect_move =
        smooth_and_normalize(estimates.indirect_counts, Push::kUp, smoothing);
    p.termination_move =
        smooth_and_normalize(estimates.termination_counts, Push::kUp, smoothing);
  } else {
    p.arrival_move = estimates.arrival_move;
    p.indirect_move = estimates.indirect_move;
    p.termination_move = estimates.termination_move;
  }
  if (fidelity == Fidelity::kRefined) {
    p.failure_move = have_counts ? smooth_and_normalize(estimates.failure_counts,
                                                        Push::kDown, smoothing)
                                 : estimates.failure_move;
    p.p_direct_termination = estimates.pf_termination;
  }
  return p;
}

AnalysisResult analyze(const sim::ModelEstimates& estimates,
                       const sim::WorkloadConfig& workload, Fidelity fidelity,
                       double smoothing) {
  AnalysisResult result;
  result.parameters = make_chain_parameters(estimates, workload, fidelity, smoothing);
  const markov::BandwidthChain chain(result.parameters);
  const std::size_t n = chain.num_states();

  try {
    result.steady_state = chain.steady_state();
  } catch (const std::invalid_argument&) {
    // No transition structure at all: nothing ever moved during the window.
    // The chain then says "stay wherever you started"; the best stand-in is
    // the empirically dominant state (at negligible load, S_{N-1}).
    result.degenerate = true;
    std::size_t dominant = n - 1;
    if (estimates.occupancy.size() == n) {
      const auto it =
          std::max_element(estimates.occupancy.begin(), estimates.occupancy.end());
      if (*it > 0.0)
        dominant = static_cast<std::size_t>(it - estimates.occupancy.begin());
    }
    result.steady_state.assign(n, 0.0);
    result.steady_state[dominant] = 1.0;
  }
  result.average_bandwidth_kbps =
      matrix::dot(result.steady_state, chain.state_bandwidths());

  // Degradation / recovery horizons (first-passage times across the QoS
  // range).  Undefined for degenerate or one-state chains; unreachable
  // targets (possible in sparsely observed chains) leave the field at 0.
  if (!result.degenerate && n >= 2) {
    try {
      result.mean_degradation_time =
          markov::mean_first_passage_times(chain.ctmc(), {0})[n - 1];
    } catch (const std::invalid_argument&) {
    }
    try {
      result.mean_recovery_time =
          markov::mean_first_passage_times(chain.ctmc(), {n - 1})[0];
    } catch (const std::invalid_argument&) {
    }
  }
  return result;
}

double expected_revenue_per_connection(const AnalysisResult& analysis,
                                       const net::RevenueModel& tariff) {
  tariff.validate();
  const auto& p = analysis.parameters;
  double expected_extra = 0.0;
  for (std::size_t i = 0; i < analysis.steady_state.size(); ++i)
    expected_extra +=
        analysis.steady_state[i] * static_cast<double>(i) * p.increment_kbps;
  return p.bmin_kbps * tariff.base_rate_per_kbps +
         expected_extra * tariff.elastic_rate_per_kbps;
}

}  // namespace eqos::core
