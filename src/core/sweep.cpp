#include "core/sweep.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace eqos::core {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::size_t mean_count(const std::vector<ExperimentResult>& reps,
                       std::size_t ExperimentResult::* field) {
  double sum = 0.0;
  for (const auto& r : reps) sum += static_cast<double>(r.*field);
  return static_cast<std::size_t>(
      std::llround(sum / static_cast<double>(reps.size())));
}

double mean_value(const std::vector<ExperimentResult>& reps,
                  double ExperimentResult::* field) {
  double sum = 0.0;
  for (const auto& r : reps) sum += r.*field;
  return sum / static_cast<double>(reps.size());
}

template <typename S, typename T>
void average_member(const std::vector<ExperimentResult>& reps, S& out,
                    S ExperimentResult::* group, T S::* field) {
  double sum = 0.0;
  for (const auto& r : reps) sum += static_cast<double>(r.*group.*field);
  const double mean = sum / static_cast<double>(reps.size());
  if constexpr (std::is_floating_point_v<T>)
    out.*field = mean;
  else
    out.*field = static_cast<T>(std::llround(mean));
}

}  // namespace

std::uint64_t sweep_seed(std::uint64_t base, std::size_t point, std::size_t rep) {
  if (rep == 0) return base;  // single-rep sweeps replay the serial benches
  return util::Rng::substream_seed(base, sweep_substream(point, rep));
}

std::vector<ExperimentResult> SweepOutcome::point_results(std::size_t point) const {
  const std::size_t reps = report.reps == 0 ? 1 : report.reps;
  const std::size_t begin = point * reps;
  if (begin + reps > results.size())
    throw std::out_of_range("sweep: point index out of range");
  return {results.begin() + static_cast<std::ptrdiff_t>(begin),
          results.begin() + static_cast<std::ptrdiff_t>(begin + reps)};
}

ExperimentResult SweepOutcome::point_mean(std::size_t point) const {
  return mean_result(point_results(point));
}

SweepOutcome run_sweep(const std::vector<SweepPoint>& points,
                       const SweepOptions& options) {
  const std::size_t reps = options.reps == 0 ? 1 : options.reps;
  std::size_t threads = options.threads;
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());

  for (const SweepPoint& p : points)
    if (p.graph == nullptr)
      throw std::invalid_argument("sweep: point without a graph");

  SweepOutcome outcome;
  outcome.results.resize(points.size() * reps);
  outcome.report.points = points.size();
  outcome.report.reps = reps;
  outcome.report.threads = threads;

  const auto run_one = [&](std::size_t slot) {
    const std::size_t point = slot / reps;
    const std::size_t rep = slot % reps;
    const SweepPoint& p = points[point];
    ExperimentConfig cfg = p.config;
    cfg.workload.seed = sweep_seed(p.config.workload.seed, point, rep);
    outcome.results[slot] = run_experiment(*p.graph, cfg);
  };

  const Clock::time_point start = Clock::now();
  const std::size_t total = outcome.results.size();
  if (threads <= 1 || total <= 1) {
    const bool per_point = obs::metrics_enabled();
    obs::MetricsSnapshot before;
    if (per_point) before = obs::MetricsRegistry::global().snapshot();
    for (std::size_t slot = 0; slot < total; ++slot) {
      run_one(slot);
      if (per_point) {
        obs::MetricsSnapshot after = obs::MetricsRegistry::global().snapshot();
        outcome.report.point_metrics.emplace_back(
            "point" + std::to_string(slot / reps) + ".rep" + std::to_string(slot % reps),
            obs::snapshot_delta(before, after));
        before = std::move(after);
      }
    }
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(total, run_one);
  }
  if (obs::metrics_enabled()) {
    outcome.report.has_metrics = true;
    outcome.report.metrics = obs::MetricsRegistry::global().snapshot();
  }
  outcome.report.wall_seconds = elapsed_seconds(start);
  if (outcome.report.wall_seconds > 0.0)
    outcome.report.points_per_second =
        static_cast<double>(total) / outcome.report.wall_seconds;
  for (const ExperimentResult& r : outcome.results)
    outcome.report.phases += r.timings;
  return outcome;
}

ExperimentResult mean_result(const std::vector<ExperimentResult>& reps) {
  if (reps.empty()) return {};
  if (reps.size() == 1) return reps.front();

  // Nested model structures (matrices, analyses) come from rep 0; every
  // scalar the benches print is averaged below.
  ExperimentResult out = reps.front();
  out.attempted = mean_count(reps, &ExperimentResult::attempted);
  out.established = mean_count(reps, &ExperimentResult::established);
  out.active_at_end = mean_count(reps, &ExperimentResult::active_at_end);
  for (auto field :
       {&ExperimentResult::sim_mean_bandwidth_kbps, &ExperimentResult::analytic_paper_kbps,
        &ExperimentResult::analytic_refined_kbps, &ExperimentResult::ideal_kbps,
        &ExperimentResult::ideal_clamped_kbps, &ExperimentResult::mean_hops,
        &ExperimentResult::protected_fraction})
    out.*field = mean_value(reps, field);

  for (auto field : {&sim::ModelEstimates::pf, &sim::ModelEstimates::ps,
                     &sim::ModelEstimates::pf_termination, &sim::ModelEstimates::pf_failure,
                     &sim::ModelEstimates::mean_bandwidth_kbps,
                     &sim::ModelEstimates::unprotected_time,
                     &sim::ModelEstimates::unprotected_fraction})
    average_member(reps, out.estimates, &ExperimentResult::estimates, field);

  for (auto field :
       {&net::NetworkStats::requests, &net::NetworkStats::accepted,
        &net::NetworkStats::rejected_no_primary, &net::NetworkStats::rejected_no_backup,
        &net::NetworkStats::terminated, &net::NetworkStats::failures_injected,
        &net::NetworkStats::repairs, &net::NetworkStats::backups_activated,
        &net::NetworkStats::connections_dropped, &net::NetworkStats::backups_reestablished,
        &net::NetworkStats::backups_evicted, &net::NetworkStats::unprotected_victims,
        &net::NetworkStats::reestablished_pair, &net::NetworkStats::reestablished_degraded,
        &net::NetworkStats::quanta_adjustments})
    average_member(reps, out.network_stats, &ExperimentResult::network_stats, field);

  for (auto field :
       {&sim::SimulationStats::arrival_events, &sim::SimulationStats::termination_events,
        &sim::SimulationStats::failure_events, &sim::SimulationStats::repair_events,
        &sim::SimulationStats::populate_attempts, &sim::SimulationStats::populate_accepted})
    average_member(reps, out.sim_stats, &ExperimentResult::sim_stats, field);

  for (auto field : {&PhaseTimings::populate_seconds, &PhaseTimings::warmup_seconds,
                     &PhaseTimings::measure_seconds, &PhaseTimings::analyze_seconds})
    average_member(reps, out.timings, &ExperimentResult::timings, field);
  return out;
}

namespace {

/// Serializes one report as the body of a per-bench entry (indented two
/// levels, no trailing newline after the closing brace).
std::string sweep_entry_json(const SweepReport& report) {
  const auto num = [](double v) { return std::isfinite(v) ? v : 0.0; };
  std::ostringstream out;
  out << "{\n";
  out << "      \"points\": " << report.points << ",\n";
  out << "      \"reps\": " << report.reps << ",\n";
  out << "      \"threads\": " << report.threads << ",\n";
  out << "      \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n";
  out << "      \"wall_seconds\": " << num(report.wall_seconds) << ",\n";
  out << "      \"serial_wall_seconds\": " << num(report.serial_wall_seconds) << ",\n";
  out << "      \"points_per_second\": " << num(report.points_per_second) << ",\n";
  out << "      \"speedup_vs_serial\": " << num(report.speedup_vs_serial) << ",\n";
  out << "      \"phases\": {\n";
  out << "        \"populate_seconds\": " << num(report.phases.populate_seconds) << ",\n";
  out << "        \"warmup_seconds\": " << num(report.phases.warmup_seconds) << ",\n";
  out << "        \"measure_seconds\": " << num(report.phases.measure_seconds) << ",\n";
  out << "        \"analyze_seconds\": " << num(report.phases.analyze_seconds) << "\n";
  out << "      }";
  // Metrics sections exist only when the run had --metrics on, so files
  // produced with observability disabled stay byte-identical to before.
  if (report.has_metrics) {
    out << ",\n      \"metrics\": " << report.metrics.to_json(6);
    if (!report.point_metrics.empty()) {
      out << ",\n      \"point_metrics\": {\n";
      for (std::size_t i = 0; i < report.point_metrics.size(); ++i) {
        const auto& [label, snap] = report.point_metrics[i];
        out << "        \"" << label << "\": " << snap.to_json(8)
            << (i + 1 == report.point_metrics.size() ? "\n" : ",\n");
      }
      out << "      }";
    }
  }
  out << "\n    }";
  return out.str();
}

/// Captures the brace-balanced object starting at text[open] ('{'); returns
/// one past the closing brace, or npos when unbalanced.  The writer never
/// emits braces inside strings, so plain counting suffices.
std::size_t match_braces(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Parses the per-bench entries out of an existing measurement file (either
/// the keyed format this writer produces or the historical single-object
/// format with a top-level "bench" name).  Unparseable content is dropped —
/// the file is a measurement cache, not a source of truth.
std::map<std::string, std::string> parse_sweep_entries(const std::string& text) {
  std::map<std::string, std::string> entries;
  const std::size_t benches = text.find("\"benches\"");
  if (benches != std::string::npos) {
    std::size_t map_open = text.find('{', benches);
    if (map_open == std::string::npos) return entries;
    std::size_t pos = map_open + 1;
    while (true) {
      const std::size_t name_open = text.find('"', pos);
      if (name_open == std::string::npos) break;
      const std::size_t name_close = text.find('"', name_open + 1);
      if (name_close == std::string::npos) break;
      const std::size_t body_open = text.find('{', name_close + 1);
      if (body_open == std::string::npos) break;
      const std::size_t body_end = match_braces(text, body_open);
      if (body_end == std::string::npos) break;
      entries[text.substr(name_open + 1, name_close - name_open - 1)] =
          text.substr(body_open, body_end - body_open);
      pos = body_end;
    }
    return entries;
  }
  // Historical flat format: one object with a "bench": "<name>" field.
  const std::size_t bench_key = text.find("\"bench\"");
  if (bench_key == std::string::npos) return entries;
  const std::size_t name_open = text.find('"', text.find(':', bench_key) + 1);
  if (name_open == std::string::npos) return entries;
  const std::size_t name_close = text.find('"', name_open + 1);
  if (name_close == std::string::npos) return entries;
  const std::string name = text.substr(name_open + 1, name_close - name_open - 1);
  // Keep the old fields minus the name line (now the key).
  std::istringstream in(text);
  std::ostringstream body;
  std::string line;
  while (std::getline(in, line))
    if (line.find("\"bench\"") == std::string::npos) body << line << '\n';
  std::string migrated = body.str();
  while (!migrated.empty() && (migrated.back() == '\n' || migrated.back() == ' '))
    migrated.pop_back();
  if (!migrated.empty()) entries[name] = migrated;
  return entries;
}

}  // namespace

bool write_sweep_json(const std::string& path, const std::string& bench,
                      const SweepReport& report) {
  std::map<std::string, std::string> entries;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      entries = parse_sweep_entries(text.str());
    }
  }
  entries[bench] = sweep_entry_json(report);

  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"benches\": {\n";
  std::size_t i = 0;
  for (const auto& [name, body] : entries) {
    out << "    \"" << name << "\": " << body;
    out << (++i == entries.size() ? "\n" : ",\n");
  }
  out << "  }\n}\n";
  return static_cast<bool>(out);
}

}  // namespace eqos::core
