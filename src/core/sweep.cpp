#include "core/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/result_io.hpp"
#include "util/rng.hpp"

namespace eqos::core {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double steady_seconds() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

std::size_t mean_count(const std::vector<ExperimentResult>& reps,
                       std::size_t ExperimentResult::* field) {
  double sum = 0.0;
  for (const auto& r : reps) sum += static_cast<double>(r.*field);
  return static_cast<std::size_t>(
      std::llround(sum / static_cast<double>(reps.size())));
}

double mean_value(const std::vector<ExperimentResult>& reps,
                  double ExperimentResult::* field) {
  double sum = 0.0;
  for (const auto& r : reps) sum += r.*field;
  return sum / static_cast<double>(reps.size());
}

template <typename S, typename T>
void average_member(const std::vector<ExperimentResult>& reps, S& out,
                    S ExperimentResult::* group, T S::* field) {
  double sum = 0.0;
  for (const auto& r : reps) sum += static_cast<double>(r.*group.*field);
  const double mean = sum / static_cast<double>(reps.size());
  if constexpr (std::is_floating_point_v<T>)
    out.*field = mean;
  else
    out.*field = static_cast<T>(std::llround(mean));
}

}  // namespace

std::uint64_t sweep_seed(std::uint64_t base, std::size_t point, std::size_t rep) {
  if (rep == 0) return base;  // single-rep sweeps replay the serial benches
  return util::Rng::substream_seed(base, sweep_substream(point, rep));
}

bool fixed_timing() {
  static const bool enabled = [] {
    const char* env = std::getenv("EQOS_FIXED_TIMING");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
  }();
  return enabled;
}

namespace {

void put_workload(state::Buffer& fp, const sim::WorkloadConfig& w) {
  fp.put_f64(w.arrival_rate);
  fp.put_f64(w.termination_rate);
  fp.put_f64(w.failure_rate);
  fp.put_f64(w.repair_rate);
  const auto put_spec = [&fp](const net::ElasticQosSpec& q) {
    fp.put_f64(q.bmin_kbps);
    fp.put_f64(q.bmax_kbps);
    fp.put_f64(q.increment_kbps);
    fp.put_f64(q.utility);
  };
  put_spec(w.qos);
  fp.put_u64(w.qos_mix.size());
  for (const auto& [spec, weight] : w.qos_mix) {
    put_spec(spec);
    fp.put_f64(weight);
  }
  fp.put_u64(w.seed);
}

}  // namespace

std::uint64_t sweep_fingerprint(const std::vector<SweepPoint>& points, std::size_t reps) {
  state::Buffer fp;
  fp.put_u64(points.size());
  fp.put_u64(reps);
  for (const SweepPoint& p : points) {
    if (p.graph != nullptr) {
      fp.put_u64(p.graph->num_nodes());
      fp.put_u64(p.graph->num_links());
      for (std::size_t l = 0; l < p.graph->num_links(); ++l) {
        const topology::Link& link = p.graph->link(static_cast<topology::LinkId>(l));
        fp.put_u64(link.a);
        fp.put_u64(link.b);
      }
    }
    const net::NetworkConfig& nc = p.config.network;
    fp.put_f64(nc.link_capacity_kbps);
    fp.put_u8(static_cast<std::uint8_t>(nc.adaptation));
    fp.put_bool(nc.backup_multiplexing);
    fp.put_bool(nc.require_backup);
    fp.put_bool(nc.require_full_disjoint);
    fp.put_u8(static_cast<std::uint8_t>(nc.route_policy));
    fp.put_bool(nc.joint_disjoint_fallback);
    fp.put_u8(static_cast<std::uint8_t>(nc.second_failure_policy));
    fp.put_u8(static_cast<std::uint8_t>(nc.backup_scheme));
    fp.put_u64(nc.segment_span_hops);
    fp.put_u8(static_cast<std::uint8_t>(nc.srlg_policy));
    fp.put_f64(nc.recovery_detect_time);
    fp.put_f64(nc.recovery_xc_time_per_hop);
    fp.put_f64(nc.recovery_setup_time_per_hop);
    put_workload(fp, p.config.workload);
    fp.put_u64(p.config.target_connections);
    fp.put_u64(p.config.warmup_events);
    fp.put_u64(p.config.measure_events);
  }
  return fp.crc();
}

std::uint64_t grid_fingerprint(const std::string& bench, std::size_t points,
                               std::size_t reps, std::size_t row_bytes) {
  state::Buffer fp;
  fp.put_str(bench);
  fp.put_u64(points);
  fp.put_u64(reps);
  fp.put_u64(row_bytes);
  return fp.crc();
}

CellHarness::CellHarness(const SweepCheckpoint& options, std::uint32_t payload_kind,
                         std::uint64_t fingerprint, std::size_t points, std::size_t reps)
    : options_(options),
      points_(points),
      reps_(reps == 0 ? 1 : reps),
      loaded_(points * reps_, 0),
      running_since_(points * reps_),
      watchdog_hit_(points * reps_) {
  for (auto& stamp : running_since_) stamp.store(-1.0, std::memory_order_relaxed);
  if (!options_.dir.empty())
    store_ = std::make_unique<state::CheckpointStore>(options_.dir, payload_kind,
                                                      fingerprint);
  if (options_.watchdog_seconds > 0.0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

CellHarness::~CellHarness() {
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stop_mutex_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    watchdog_.join();
  }
}

void CellHarness::watchdog_loop() {
  const double budget = options_.watchdog_seconds;
  const auto poll = std::chrono::duration<double>(std::max(0.05, budget / 4.0));
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stop_cv_.wait_for(lock, poll, [this] { return stop_; })) {
    const double now = steady_seconds();
    for (std::size_t slot = 0; slot < running_since_.size(); ++slot) {
      const double since = running_since_[slot].load(std::memory_order_relaxed);
      if (since < 0.0 || now - since <= budget) continue;
      if (watchdog_hit_[slot].exchange(true)) continue;
      watchdog_flagged_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "sweep watchdog: cell (point %zu, rep %zu) has been running "
                   "%.1f s (budget %.1f s)\n",
                   slot / reps_, slot % reps_, now - since, budget);
    }
  }
}

void CellHarness::mark_running(std::size_t slot, bool running) {
  running_since_[slot].store(running ? steady_seconds() : -1.0,
                             std::memory_order_relaxed);
}

void CellHarness::resume(const Decode& decode) {
  if (!store_) return;
  state::CheckpointStore::ScanResult scanned = store_->scan();
  cells_quarantined_ += scanned.quarantined;
  for (state::CheckpointStore::Cell& cell : scanned.cells) {
    const std::size_t slot = cell.point * reps_ + cell.rep;
    if (cell.point >= points_ || cell.rep >= reps_) {
      // A cell from a different sweep shape; the fingerprint normally
      // catches this, but quarantine rather than index out of bounds.
      state::CheckpointStore::quarantine(cell.file);
      ++cells_quarantined_;
      continue;
    }
    try {
      decode(cell.point, cell.rep, cell.payload);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sweep resume: quarantining %s: %s\n",
                   cell.file.string().c_str(), e.what());
      state::CheckpointStore::quarantine(cell.file);
      ++cells_quarantined_;
      continue;
    }
    loaded_[slot] = 1;
    ++cells_loaded_;
    store_->note_completed(cell.point, cell.rep, cell.payload.crc(),
                          cell.payload.size(), options_.every == 0 ? 1 : options_.every);
  }
}

void CellHarness::run_cell(std::size_t slot, const std::function<void()>& body,
                          const Encode& encode) {
  if (loaded(slot)) return;
  const std::size_t point = slot / reps_;
  const std::size_t rep = slot % reps_;
  const std::size_t attempts_allowed = options_.max_retries + 1;
  for (std::size_t attempt = 1;; ++attempt) {
    mark_running(slot, true);
    try {
      body();
      mark_running(slot, false);
      if (store_) {
        state::Buffer payload;
        encode(payload);
        const std::uint32_t crc = payload.crc();
        const std::size_t bytes = payload.size();
        store_->write_cell(point, rep, payload);
        store_->note_completed(point, rep, crc, bytes,
                               options_.every == 0 ? 1 : options_.every);
      }
      return;
    } catch (const std::exception& e) {
      mark_running(slot, false);
      if (attempt < attempts_allowed) {
        cells_retried_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "sweep: cell (point %zu, rep %zu) attempt %zu/%zu failed: "
                     "%s -- retrying\n",
                     point, rep, attempt, attempts_allowed, e.what());
        if (options_.retry_backoff_seconds > 0.0)
          std::this_thread::sleep_for(std::chrono::duration<double>(
              options_.retry_backoff_seconds * static_cast<double>(attempt)));
        continue;
      }
      std::fprintf(stderr,
                   "sweep: cell (point %zu, rep %zu) failed after %zu attempt(s): %s\n",
                   point, rep, attempt, e.what());
      std::lock_guard<std::mutex> lock(failures_mutex_);
      failures_.push_back({point, rep, attempt, e.what()});
      return;
    }
  }
}

void CellHarness::finish(SweepReport& report) {
  if (store_) store_->flush_manifest();
  std::lock_guard<std::mutex> lock(failures_mutex_);
  std::sort(failures_.begin(), failures_.end(),
            [](const SweepCellFailure& a, const SweepCellFailure& b) {
              return a.point != b.point ? a.point < b.point : a.rep < b.rep;
            });
  report.failures.insert(report.failures.end(), failures_.begin(), failures_.end());
  report.cells_loaded += cells_loaded_;
  report.cells_quarantined += cells_quarantined_;
  report.cells_retried += cells_retried_.load(std::memory_order_relaxed);
  report.watchdog_flagged += watchdog_flagged_.load(std::memory_order_relaxed);
}

std::vector<ExperimentResult> SweepOutcome::point_results(std::size_t point) const {
  const std::size_t reps = report.reps == 0 ? 1 : report.reps;
  const std::size_t begin = point * reps;
  if (begin + reps > results.size())
    throw std::out_of_range("sweep: point index out of range");
  return {results.begin() + static_cast<std::ptrdiff_t>(begin),
          results.begin() + static_cast<std::ptrdiff_t>(begin + reps)};
}

ExperimentResult SweepOutcome::point_mean(std::size_t point) const {
  return mean_result(point_results(point));
}

SweepOutcome run_sweep(const std::vector<SweepPoint>& points,
                       const SweepOptions& options) {
  const std::size_t reps = options.reps == 0 ? 1 : options.reps;
  std::size_t threads = options.threads;
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());

  for (const SweepPoint& p : points)
    if (p.graph == nullptr)
      throw std::invalid_argument("sweep: point without a graph");

  SweepOutcome outcome;
  outcome.results.resize(points.size() * reps);
  outcome.report.points = points.size();
  outcome.report.reps = reps;
  outcome.report.threads = threads;

  CellHarness harness(options.checkpoint, state::kKindSweepCell,
                      sweep_fingerprint(points, reps), points.size(), reps);
  if (options.checkpoint.resume)
    harness.resume([&](std::size_t point, std::size_t rep, state::Buffer& payload) {
      outcome.results[point * reps + rep] = load_result(payload);
      payload.expect_consumed();
    });

  const auto run_one = [&](std::size_t slot) {
    const std::size_t point = slot / reps;
    const std::size_t rep = slot % reps;
    const SweepPoint& p = points[point];
    ExperimentConfig cfg = p.config;
    cfg.workload.seed = sweep_seed(p.config.workload.seed, point, rep);
    outcome.results[slot] = run_experiment(*p.graph, cfg);
  };
  const auto run_slot = [&](std::size_t slot) {
    harness.run_cell(
        slot, [&] { run_one(slot); },
        [&](state::Buffer& payload) { save_result(payload, outcome.results[slot]); });
  };

  const Clock::time_point start = Clock::now();
  const std::size_t total = outcome.results.size();
  if (threads <= 1 || total <= 1) {
    const bool per_point = obs::metrics_enabled();
    obs::MetricsSnapshot before;
    if (per_point) before = obs::MetricsRegistry::global().snapshot();
    for (std::size_t slot = 0; slot < total; ++slot) {
      run_slot(slot);
      if (per_point) {
        obs::MetricsSnapshot after = obs::MetricsRegistry::global().snapshot();
        outcome.report.point_metrics.emplace_back(
            "point" + std::to_string(slot / reps) + ".rep" + std::to_string(slot % reps),
            obs::snapshot_delta(before, after));
        before = std::move(after);
      }
    }
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(total, run_slot);
  }
  harness.finish(outcome.report);
  if (obs::metrics_enabled()) {
    outcome.report.has_metrics = true;
    outcome.report.metrics = obs::MetricsRegistry::global().snapshot();
  }
  outcome.report.wall_seconds = elapsed_seconds(start);
  if (outcome.report.wall_seconds > 0.0) {
    outcome.report.points_per_second =
        static_cast<double>(total) / outcome.report.wall_seconds;
    std::size_t events = 0;
    for (const ExperimentResult& r : outcome.results)
      events += r.sim_stats.arrival_events + r.sim_stats.termination_events +
                r.sim_stats.failure_events + r.sim_stats.repair_events;
    outcome.report.events_per_second =
        static_cast<double>(events) / outcome.report.wall_seconds;
  }
  for (const ExperimentResult& r : outcome.results)
    outcome.report.phases += r.timings;
  return outcome;
}

ExperimentResult mean_result(const std::vector<ExperimentResult>& reps) {
  if (reps.empty()) return {};
  if (reps.size() == 1) return reps.front();

  // Nested model structures (matrices, analyses) come from rep 0; every
  // scalar the benches print is averaged below.
  ExperimentResult out = reps.front();
  out.attempted = mean_count(reps, &ExperimentResult::attempted);
  out.established = mean_count(reps, &ExperimentResult::established);
  out.active_at_end = mean_count(reps, &ExperimentResult::active_at_end);
  for (auto field :
       {&ExperimentResult::sim_mean_bandwidth_kbps, &ExperimentResult::analytic_paper_kbps,
        &ExperimentResult::analytic_refined_kbps, &ExperimentResult::ideal_kbps,
        &ExperimentResult::ideal_clamped_kbps, &ExperimentResult::mean_hops,
        &ExperimentResult::protected_fraction, &ExperimentResult::events_per_second})
    out.*field = mean_value(reps, field);

  for (auto field : {&sim::ModelEstimates::pf, &sim::ModelEstimates::ps,
                     &sim::ModelEstimates::pf_termination, &sim::ModelEstimates::pf_failure,
                     &sim::ModelEstimates::mean_bandwidth_kbps,
                     &sim::ModelEstimates::unprotected_time,
                     &sim::ModelEstimates::unprotected_fraction})
    average_member(reps, out.estimates, &ExperimentResult::estimates, field);

  for (auto field :
       {&net::NetworkStats::requests, &net::NetworkStats::accepted,
        &net::NetworkStats::rejected_no_primary, &net::NetworkStats::rejected_no_backup,
        &net::NetworkStats::terminated, &net::NetworkStats::failures_injected,
        &net::NetworkStats::repairs, &net::NetworkStats::backups_activated,
        &net::NetworkStats::connections_dropped, &net::NetworkStats::backups_reestablished,
        &net::NetworkStats::backups_evicted, &net::NetworkStats::unprotected_victims,
        &net::NetworkStats::reestablished_pair, &net::NetworkStats::reestablished_degraded,
        &net::NetworkStats::quanta_adjustments,
        &net::NetworkStats::survived_via_backup_set})
    average_member(reps, out.network_stats, &ExperimentResult::network_stats, field);

  for (auto field :
       {&sim::SimulationStats::arrival_events, &sim::SimulationStats::termination_events,
        &sim::SimulationStats::failure_events, &sim::SimulationStats::repair_events,
        &sim::SimulationStats::populate_attempts, &sim::SimulationStats::populate_accepted})
    average_member(reps, out.sim_stats, &ExperimentResult::sim_stats, field);

  for (auto field : {&PhaseTimings::populate_seconds, &PhaseTimings::warmup_seconds,
                     &PhaseTimings::measure_seconds, &PhaseTimings::analyze_seconds})
    average_member(reps, out.timings, &ExperimentResult::timings, field);
  return out;
}

namespace {

/// Minimal JSON string escaping for error messages (quotes, backslashes,
/// control characters).
std::string json_escape(const std::string& s) {
  std::ostringstream out;
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

/// Serializes one report as the body of a per-bench entry (indented two
/// levels, no trailing newline after the closing brace).
std::string sweep_entry_json(const SweepReport& report) {
  const auto num = [](double v) { return std::isfinite(v) ? v : 0.0; };
  // Wall-clock fields are the only nondeterministic output; EQOS_FIXED_TIMING
  // zeroes them so resumed and straight-through runs byte-compare equal.
  const auto wall = [&num](double v) { return fixed_timing() ? 0.0 : num(v); };
  std::ostringstream out;
  out << "{\n";
  out << "      \"points\": " << report.points << ",\n";
  out << "      \"reps\": " << report.reps << ",\n";
  out << "      \"threads\": " << report.threads << ",\n";
  out << "      \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n";
  out << "      \"wall_seconds\": " << wall(report.wall_seconds) << ",\n";
  out << "      \"serial_wall_seconds\": " << wall(report.serial_wall_seconds) << ",\n";
  out << "      \"points_per_second\": " << wall(report.points_per_second) << ",\n";
  out << "      \"events_per_second\": " << wall(report.events_per_second) << ",\n";
  out << "      \"speedup_vs_serial\": " << wall(report.speedup_vs_serial) << ",\n";
  out << "      \"phases\": {\n";
  out << "        \"populate_seconds\": " << wall(report.phases.populate_seconds) << ",\n";
  out << "        \"warmup_seconds\": " << wall(report.phases.warmup_seconds) << ",\n";
  out << "        \"measure_seconds\": " << wall(report.phases.measure_seconds) << ",\n";
  out << "        \"analyze_seconds\": " << wall(report.phases.analyze_seconds) << "\n";
  out << "      }";
  // Bench-specific scalars (deterministic simulation outputs, not wall
  // clock); absent when the bench supplies none, so existing entries stay
  // byte-identical.
  if (!report.extra.empty()) {
    out << ",\n      \"extra\": {\n";
    for (std::size_t i = 0; i < report.extra.size(); ++i) {
      out << "        \"" << report.extra[i].first << "\": " << num(report.extra[i].second)
          << (i + 1 == report.extra.size() ? "\n" : ",\n");
    }
    out << "      }";
  }
  // Failed cells surface in the report file (and the bench exit code), so a
  // sweep that silently skipped points can never pass for a complete one.
  // Absent for clean runs, keeping those files byte-identical to before.
  if (!report.failures.empty()) {
    out << ",\n      \"failures\": [\n";
    for (std::size_t i = 0; i < report.failures.size(); ++i) {
      const SweepCellFailure& f = report.failures[i];
      out << "        {\"point\": " << f.point << ", \"rep\": " << f.rep
          << ", \"attempts\": " << f.attempts << ", \"error\": \""
          << json_escape(f.error) << "\"}"
          << (i + 1 == report.failures.size() ? "\n" : ",\n");
    }
    out << "      ]";
  }
  // Metrics sections exist only when the run had --metrics on, so files
  // produced with observability disabled stay byte-identical to before.
  if (report.has_metrics) {
    out << ",\n      \"metrics\": " << report.metrics.to_json(6);
    if (!report.point_metrics.empty()) {
      out << ",\n      \"point_metrics\": {\n";
      for (std::size_t i = 0; i < report.point_metrics.size(); ++i) {
        const auto& [label, snap] = report.point_metrics[i];
        out << "        \"" << label << "\": " << snap.to_json(8)
            << (i + 1 == report.point_metrics.size() ? "\n" : ",\n");
      }
      out << "      }";
    }
  }
  out << "\n    }";
  return out.str();
}

/// Captures the brace-balanced object starting at text[open] ('{'); returns
/// one past the closing brace, or npos when unbalanced.  The writer never
/// emits braces inside strings, so plain counting suffices.
std::size_t match_braces(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Parses the per-bench entries out of an existing measurement file (either
/// the keyed format this writer produces or the historical single-object
/// format with a top-level "bench" name).  Unparseable content is dropped —
/// the file is a measurement cache, not a source of truth.
std::map<std::string, std::string> parse_sweep_entries(const std::string& text) {
  std::map<std::string, std::string> entries;
  const std::size_t benches = text.find("\"benches\"");
  if (benches != std::string::npos) {
    std::size_t map_open = text.find('{', benches);
    if (map_open == std::string::npos) return entries;
    std::size_t pos = map_open + 1;
    while (true) {
      const std::size_t name_open = text.find('"', pos);
      if (name_open == std::string::npos) break;
      const std::size_t name_close = text.find('"', name_open + 1);
      if (name_close == std::string::npos) break;
      const std::size_t body_open = text.find('{', name_close + 1);
      if (body_open == std::string::npos) break;
      const std::size_t body_end = match_braces(text, body_open);
      if (body_end == std::string::npos) break;
      entries[text.substr(name_open + 1, name_close - name_open - 1)] =
          text.substr(body_open, body_end - body_open);
      pos = body_end;
    }
    return entries;
  }
  // Historical flat format: one object with a "bench": "<name>" field.
  const std::size_t bench_key = text.find("\"bench\"");
  if (bench_key == std::string::npos) return entries;
  const std::size_t name_open = text.find('"', text.find(':', bench_key) + 1);
  if (name_open == std::string::npos) return entries;
  const std::size_t name_close = text.find('"', name_open + 1);
  if (name_close == std::string::npos) return entries;
  const std::string name = text.substr(name_open + 1, name_close - name_open - 1);
  // Keep the old fields minus the name line (now the key).
  std::istringstream in(text);
  std::ostringstream body;
  std::string line;
  while (std::getline(in, line))
    if (line.find("\"bench\"") == std::string::npos) body << line << '\n';
  std::string migrated = body.str();
  while (!migrated.empty() && (migrated.back() == '\n' || migrated.back() == ' '))
    migrated.pop_back();
  if (!migrated.empty()) entries[name] = migrated;
  return entries;
}

}  // namespace

bool write_sweep_json(const std::string& path, const std::string& bench,
                      const SweepReport& report) {
  std::map<std::string, std::string> entries;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      entries = parse_sweep_entries(text.str());
    }
  }
  entries[bench] = sweep_entry_json(report);

  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"benches\": {\n";
  std::size_t i = 0;
  for (const auto& [name, body] : entries) {
    out << "    \"" << name << "\": " << body;
    out << (++i == entries.size() ? "\n" : ",\n");
  }
  out << "  }\n}\n";
  return static_cast<bool>(out);
}

}  // namespace eqos::core
