#include "core/result_io.hpp"

#include <cstdint>
#include <vector>

namespace eqos::core {
namespace {

void put_matrix(state::Buffer& out, const matrix::Matrix& m) {
  out.put_u64(m.rows());
  out.put_u64(m.cols());
  out.put_f64_vec(m.data());
}

matrix::Matrix get_matrix(state::Buffer& in) {
  const std::size_t rows = in.get_u64();
  const std::size_t cols = in.get_u64();
  const std::vector<double> data = in.get_f64_vec();
  if (data.size() != rows * cols || (rows != 0) != (cols != 0))
    throw state::CorruptError("checkpoint matrix shape inconsistent");
  matrix::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = data[r * cols + c];
  return m;
}

void put_losses(state::Buffer& out, const net::LossBreakdown& l) {
  out.put_u64(l.primary_hit);
  out.put_u64(l.backup_hit_while_active);
  out.put_u64(l.double_hit);
  out.put_u64(l.reestablish_failed);
  out.put_u64(l.survived_backup_set);
}

void get_losses(state::Buffer& in, net::LossBreakdown& l) {
  l.primary_hit = in.get_u64();
  l.backup_hit_while_active = in.get_u64();
  l.double_hit = in.get_u64();
  l.reestablish_failed = in.get_u64();
  l.survived_backup_set = in.get_u64();
}

void put_estimates(state::Buffer& out, const sim::ModelEstimates& e) {
  out.put_f64(e.pf);
  out.put_f64(e.ps);
  out.put_f64(e.pf_termination);
  out.put_f64(e.pf_failure);
  put_matrix(out, e.arrival_move);
  put_matrix(out, e.indirect_move);
  put_matrix(out, e.termination_move);
  put_matrix(out, e.failure_move);
  put_matrix(out, e.arrival_counts);
  put_matrix(out, e.indirect_counts);
  put_matrix(out, e.termination_counts);
  put_matrix(out, e.failure_counts);
  out.put_u64(e.arrivals_observed);
  out.put_u64(e.terminations_observed);
  out.put_u64(e.failures_observed);
  out.put_f64(e.mean_bandwidth_kbps);
  out.put_f64_vec(e.occupancy);
  put_losses(out, e.losses);
  out.put_u64(e.unprotected_victims);
  out.put_u64(e.reestablished_pair);
  out.put_u64(e.reestablished_degraded);
  out.put_f64(e.unprotected_time);
  out.put_f64(e.unprotected_fraction);
}

sim::ModelEstimates get_estimates(state::Buffer& in) {
  sim::ModelEstimates e;
  e.pf = in.get_f64();
  e.ps = in.get_f64();
  e.pf_termination = in.get_f64();
  e.pf_failure = in.get_f64();
  e.arrival_move = get_matrix(in);
  e.indirect_move = get_matrix(in);
  e.termination_move = get_matrix(in);
  e.failure_move = get_matrix(in);
  e.arrival_counts = get_matrix(in);
  e.indirect_counts = get_matrix(in);
  e.termination_counts = get_matrix(in);
  e.failure_counts = get_matrix(in);
  e.arrivals_observed = in.get_u64();
  e.terminations_observed = in.get_u64();
  e.failures_observed = in.get_u64();
  e.mean_bandwidth_kbps = in.get_f64();
  e.occupancy = in.get_f64_vec();
  get_losses(in, e.losses);
  e.unprotected_victims = in.get_u64();
  e.reestablished_pair = in.get_u64();
  e.reestablished_degraded = in.get_u64();
  e.unprotected_time = in.get_f64();
  e.unprotected_fraction = in.get_f64();
  return e;
}

void put_chain(state::Buffer& out, const markov::ChainParameters& p) {
  out.put_f64(p.bmin_kbps);
  out.put_f64(p.bmax_kbps);
  out.put_f64(p.increment_kbps);
  out.put_f64(p.arrival_rate);
  out.put_f64(p.termination_rate);
  out.put_f64(p.failure_rate);
  out.put_f64(p.p_direct);
  out.put_f64(p.p_indirect);
  put_matrix(out, p.arrival_move);
  put_matrix(out, p.indirect_move);
  put_matrix(out, p.termination_move);
  out.put_bool(p.failure_move.has_value());
  if (p.failure_move) put_matrix(out, *p.failure_move);
  out.put_bool(p.p_direct_termination.has_value());
  if (p.p_direct_termination) out.put_f64(*p.p_direct_termination);
}

markov::ChainParameters get_chain(state::Buffer& in) {
  markov::ChainParameters p;
  p.bmin_kbps = in.get_f64();
  p.bmax_kbps = in.get_f64();
  p.increment_kbps = in.get_f64();
  p.arrival_rate = in.get_f64();
  p.termination_rate = in.get_f64();
  p.failure_rate = in.get_f64();
  p.p_direct = in.get_f64();
  p.p_indirect = in.get_f64();
  p.arrival_move = get_matrix(in);
  p.indirect_move = get_matrix(in);
  p.termination_move = get_matrix(in);
  if (in.get_bool()) p.failure_move = get_matrix(in);
  if (in.get_bool()) p.p_direct_termination = in.get_f64();
  return p;
}

void put_analysis(state::Buffer& out, const AnalysisResult& a) {
  put_chain(out, a.parameters);
  out.put_f64_vec(a.steady_state);
  out.put_f64(a.average_bandwidth_kbps);
  out.put_bool(a.degenerate);
  out.put_f64(a.mean_degradation_time);
  out.put_f64(a.mean_recovery_time);
}

AnalysisResult get_analysis(state::Buffer& in) {
  AnalysisResult a;
  a.parameters = get_chain(in);
  a.steady_state = in.get_f64_vec();
  a.average_bandwidth_kbps = in.get_f64();
  a.degenerate = in.get_bool();
  a.mean_degradation_time = in.get_f64();
  a.mean_recovery_time = in.get_f64();
  return a;
}

void put_network_stats(state::Buffer& out, const net::NetworkStats& s) {
  out.put_u64(s.requests);
  out.put_u64(s.accepted);
  out.put_u64(s.rejected_no_primary);
  out.put_u64(s.rejected_no_backup);
  out.put_u64(s.terminated);
  out.put_u64(s.failures_injected);
  out.put_u64(s.repairs);
  out.put_u64(s.backups_activated);
  out.put_u64(s.connections_dropped);
  out.put_u64(s.backups_reestablished);
  out.put_u64(s.backups_evicted);
  out.put_u64(s.unprotected_victims);
  out.put_u64(s.reestablished_pair);
  out.put_u64(s.reestablished_degraded);
  out.put_u64(s.quanta_adjustments);
  out.put_u64(s.survived_via_backup_set);
  put_losses(out, s.drop_causes);
  out.put_vec(s.recovery_times, [&out](double t) { out.put_f64(t); });
}

void get_network_stats(state::Buffer& in, net::NetworkStats& s) {
  s.requests = in.get_u64();
  s.accepted = in.get_u64();
  s.rejected_no_primary = in.get_u64();
  s.rejected_no_backup = in.get_u64();
  s.terminated = in.get_u64();
  s.failures_injected = in.get_u64();
  s.repairs = in.get_u64();
  s.backups_activated = in.get_u64();
  s.connections_dropped = in.get_u64();
  s.backups_reestablished = in.get_u64();
  s.backups_evicted = in.get_u64();
  s.unprotected_victims = in.get_u64();
  s.reestablished_pair = in.get_u64();
  s.reestablished_degraded = in.get_u64();
  s.quanta_adjustments = in.get_u64();
  s.survived_via_backup_set = in.get_u64();
  get_losses(in, s.drop_causes);
  s.recovery_times.clear();
  const std::size_t n_ttr = in.get_count(8);
  s.recovery_times.reserve(n_ttr);
  for (std::size_t i = 0; i < n_ttr; ++i) s.recovery_times.push_back(in.get_f64());
}

}  // namespace

void save_result(state::Buffer& out, const ExperimentResult& result) {
  out.put_u64(result.attempted);
  out.put_u64(result.established);
  out.put_u64(result.active_at_end);
  out.put_f64(result.sim_mean_bandwidth_kbps);
  out.put_f64(result.analytic_paper_kbps);
  out.put_f64(result.analytic_refined_kbps);
  out.put_f64(result.ideal_kbps);
  out.put_f64(result.ideal_clamped_kbps);
  out.put_f64(result.mean_hops);
  out.put_f64(result.protected_fraction);
  put_estimates(out, result.estimates);
  put_analysis(out, result.paper_analysis);
  put_analysis(out, result.refined_analysis);
  put_network_stats(out, result.network_stats);
  out.put_u64(result.sim_stats.arrival_events);
  out.put_u64(result.sim_stats.termination_events);
  out.put_u64(result.sim_stats.failure_events);
  out.put_u64(result.sim_stats.repair_events);
  out.put_u64(result.sim_stats.populate_attempts);
  out.put_u64(result.sim_stats.populate_accepted);
  out.put_f64(result.timings.populate_seconds);
  out.put_f64(result.timings.warmup_seconds);
  out.put_f64(result.timings.measure_seconds);
  out.put_f64(result.timings.analyze_seconds);
}

ExperimentResult load_result(state::Buffer& in) {
  ExperimentResult r;
  r.attempted = in.get_u64();
  r.established = in.get_u64();
  r.active_at_end = in.get_u64();
  r.sim_mean_bandwidth_kbps = in.get_f64();
  r.analytic_paper_kbps = in.get_f64();
  r.analytic_refined_kbps = in.get_f64();
  r.ideal_kbps = in.get_f64();
  r.ideal_clamped_kbps = in.get_f64();
  r.mean_hops = in.get_f64();
  r.protected_fraction = in.get_f64();
  r.estimates = get_estimates(in);
  r.paper_analysis = get_analysis(in);
  r.refined_analysis = get_analysis(in);
  get_network_stats(in, r.network_stats);
  r.sim_stats.arrival_events = in.get_u64();
  r.sim_stats.termination_events = in.get_u64();
  r.sim_stats.failure_events = in.get_u64();
  r.sim_stats.repair_events = in.get_u64();
  r.sim_stats.populate_attempts = in.get_u64();
  r.sim_stats.populate_accepted = in.get_u64();
  r.timings.populate_seconds = in.get_f64();
  r.timings.warmup_seconds = in.get_f64();
  r.timings.measure_seconds = in.get_f64();
  r.timings.analyze_seconds = in.get_f64();
  // Derived from the stats and timings above; recomputing keeps the cell
  // wire format unchanged.
  r.events_per_second = churn_events_per_second(r.sim_stats, r.timings);
  return r;
}

}  // namespace eqos::core
