// The paper's analytic pipeline (Sections 3.2-3.3).
//
// Given the workload rates (lambda, mu, gamma) and the simulation-measured
// parameters (Pf, Ps, A, B, T, F), assemble the N-state bandwidth chain and
// solve for the average reserved bandwidth of a primary channel.  Two
// fidelity levels are provided:
//
//  * kPaper   — exactly the model of Section 3.2: one chaining probability
//               Pf shared by arrivals, terminations and failures, and the
//               failure matrix folded into A.
//  * kRefined — uses the separately measured termination/failure chaining
//               probabilities and the measured F matrix (an extension the
//               paper's conclusion anticipates).
#pragma once

#include "markov/bandwidth_chain.hpp"
#include "net/revenue.hpp"
#include "sim/recorder.hpp"
#include "sim/simulator.hpp"

namespace eqos::core {

/// Which parameterization of the chain to build.
enum class Fidelity { kPaper, kRefined };

/// Builds the chain parameters from measured estimates plus workload rates.
///
/// `smoothing` adds a structural-prior pseudo-count to each conditional
/// matrix before normalization: arrivals and failures get `smoothing`
/// observations of a one-increment retreat (i -> i-1), terminations and
/// indirect arrivals one-increment gains (i -> i+1).  Rarely-visited states
/// often have *no* sampled exits in one direction; without the prior such a
/// state becomes absorbing and the stationary vector collapses onto it even
/// though the simulation visits it for a vanishing fraction of time.  The
/// prior is negligible against well-sampled rows (hundreds of counts) and
/// guarantees irreducibility.  Pass 0 for the raw matrices.
[[nodiscard]] markov::ChainParameters make_chain_parameters(
    const sim::ModelEstimates& estimates, const sim::WorkloadConfig& workload,
    Fidelity fidelity, double smoothing = 0.5);

/// Solved analytic model for one experiment.
struct AnalysisResult {
  markov::ChainParameters parameters;
  matrix::Vector steady_state;          ///< pi over S_0..S_{N-1}
  double average_bandwidth_kbps = 0.0;  ///< E[B] = sum pi_i (bmin + i*delta)
  /// True when the chain had no usable transition structure (nothing moved
  /// during measurement) and the result fell back to the empirical
  /// occupancy's dominant state.
  bool degenerate = false;

  /// Expected time for a channel at full quality (S_{N-1}) to first drop to
  /// the bare minimum (S_0); 0 when undefined (degenerate or unreachable).
  double mean_degradation_time = 0.0;
  /// Expected time for a channel at the bare minimum to first regain full
  /// quality; 0 when undefined.
  double mean_recovery_time = 0.0;
};

/// Assembles and solves the chain.  When the measured chain has no
/// transitions at all (a completely uncontended network), returns a point
/// mass on the empirically dominant state and sets `degenerate`.
[[nodiscard]] AnalysisResult analyze(const sim::ModelEstimates& estimates,
                                     const sim::WorkloadConfig& workload,
                                     Fidelity fidelity = Fidelity::kPaper,
                                     double smoothing = 0.5);

/// Expected per-connection revenue under a linear tariff, evaluated from the
/// chain's stationary distribution: base * bmin + elastic * E[extra].
[[nodiscard]] double expected_revenue_per_connection(const AnalysisResult& analysis,
                                                     const net::RevenueModel& tariff);

}  // namespace eqos::core
