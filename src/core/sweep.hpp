// Parallel experiment sweeps.
//
// Every figure of the paper is a sweep — offered load × failure rate ×
// topology — and its points are embarrassingly parallel: run_experiment is
// a pure function of (graph, config).  run_sweep executes a vector of such
// points on a fixed thread pool (util::ThreadPool) and guarantees results
// **bit-identical regardless of thread count**:
//
//  * each (point, replication) computes from its own Network/Simulator and
//    its own RNG stream — no shared mutable state;
//  * replication r of point i uses the point's own workload seed for r = 0
//    (so a single-rep sweep reproduces the historical serial output of the
//    benches exactly) and the SplitMix64 sub-stream
//    util::Rng::substream_seed(seed, sweep_substream(i, r)) for r > 0, so
//    sub-seeds are derivable without any cross-point coordination;
//  * results land in slots indexed by (point, rep) — claim order is
//    irrelevant.
//
// The harness also measures throughput (points/sec, per-phase wall time)
// and can serialize the measurement as JSON (BENCH_sweep.json) so the perf
// trajectory is tracked across PRs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace eqos::core {

/// One point of a sweep: an experiment configuration bound to a topology.
/// The graph is borrowed and must outlive the sweep; several points may
/// share one graph (it is only read).
struct SweepPoint {
  const topology::Graph* graph = nullptr;
  ExperimentConfig config;
  std::string label;  ///< free-form, carried into reports
};

/// Execution options of a sweep.
struct SweepOptions {
  /// Worker threads.  1 (the default) runs points inline on the calling
  /// thread — byte-for-byte the historical serial behavior.  0 means
  /// hardware concurrency.
  std::size_t threads = 1;
  /// Independent replications per point.  Rep 0 keeps each point's
  /// configured workload seed; rep r > 0 derives a SplitMix64 sub-seed.
  std::size_t reps = 1;
};

/// Throughput measurement of one run_sweep call.
struct SweepReport {
  std::size_t points = 0;
  std::size_t reps = 0;
  std::size_t threads = 0;
  double wall_seconds = 0.0;        ///< the parallel run
  double serial_wall_seconds = 0.0; ///< optional 1-thread baseline (0 = unmeasured)
  double points_per_second = 0.0;   ///< (points*reps) / wall_seconds
  /// serial_wall_seconds / wall_seconds when the baseline was measured.
  double speedup_vs_serial = 0.0;
  /// Sum of per-(point,rep) phase wall times (CPU-side work breakdown).
  PhaseTimings phases;
  /// Aggregate obs::MetricsRegistry snapshot at sweep end; only captured
  /// (has_metrics) when obs::metrics_enabled() — the JSON writer then emits
  /// a "metrics" section, and the default output stays byte-identical.
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;
  /// Per-(point,rep) snapshot deltas, labelled "point<i>.rep<r>".  Captured
  /// only for serial sweeps: concurrent points share the process-global
  /// registry, so per-point deltas are well-defined only when points run one
  /// at a time.
  std::vector<std::pair<std::string, obs::MetricsSnapshot>> point_metrics;
};

/// Results of a sweep: `results[point * reps + rep]`.
struct SweepOutcome {
  std::vector<ExperimentResult> results;
  SweepReport report;

  /// Replications of one point, rep-major.
  [[nodiscard]] std::vector<ExperimentResult> point_results(std::size_t point) const;
  /// Rep-averaged result of one point (see mean_result); rep 0's nested
  /// model structures are kept as representative.
  [[nodiscard]] ExperimentResult point_mean(std::size_t point) const;
};

/// The sub-stream id replication `rep` of point `point` draws its seed
/// from (rep >= 1; rep 0 keeps the configured seed).  Point-major so seeds
/// stay distinct across an entire sweep whatever its shape.
[[nodiscard]] constexpr std::uint64_t sweep_substream(std::size_t point,
                                                      std::size_t rep) noexcept {
  return (static_cast<std::uint64_t>(point) << 20) | static_cast<std::uint64_t>(rep);
}

/// The effective workload seed of (point, rep) under `base` (the point's
/// configured seed).
[[nodiscard]] std::uint64_t sweep_seed(std::uint64_t base, std::size_t point,
                                       std::size_t rep);

/// Runs every (point, rep) across `options.threads` workers.  Results are
/// bit-identical for any thread count (timings excepted).  Exceptions from
/// points propagate after all workers drain.
[[nodiscard]] SweepOutcome run_sweep(const std::vector<SweepPoint>& points,
                                     const SweepOptions& options);

/// Element-wise replication average: scalar doubles are averaged, counters
/// are averaged and rounded to the nearest integer, per-phase timings are
/// averaged, and nested model structures (matrices, analyses) are taken
/// from the first replication as representative.  Empty input returns a
/// default result.
[[nodiscard]] ExperimentResult mean_result(const std::vector<ExperimentResult>& reps);

/// Serializes a report (plus environment metadata: hardware concurrency)
/// into the sweep-measurement file at `path`, which holds ONE entry per
/// bench keyed by bench name:  {"benches": {"bench_fig2": {...}, ...}}.
/// Entries of other benches already in the file are preserved (a file in
/// the historical single-object format is migrated), this bench's entry is
/// replaced, and keys are written in sorted order so the file is stable
/// under re-runs.  Returns false when the file cannot be written.
bool write_sweep_json(const std::string& path, const std::string& bench,
                      const SweepReport& report);

/// Runs `fn(i)` for i in [0, n) with `threads` workers and collects the
/// returned values in index order; threads <= 1 runs inline (exact serial
/// execution).  The generic building block behind run_sweep, for bench
/// drivers whose per-point protocol is not run_experiment.
template <typename Fn>
auto parallel_points(std::size_t n, std::size_t threads, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> results(n);
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }
  util::ThreadPool pool(threads);
  pool.parallel_for(n, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace eqos::core
