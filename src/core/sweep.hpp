// Parallel experiment sweeps.
//
// Every figure of the paper is a sweep — offered load × failure rate ×
// topology — and its points are embarrassingly parallel: run_experiment is
// a pure function of (graph, config).  run_sweep executes a vector of such
// points on a fixed thread pool (util::ThreadPool) and guarantees results
// **bit-identical regardless of thread count**:
//
//  * each (point, replication) computes from its own Network/Simulator and
//    its own RNG stream — no shared mutable state;
//  * replication r of point i uses the point's own workload seed for r = 0
//    (so a single-rep sweep reproduces the historical serial output of the
//    benches exactly) and the SplitMix64 sub-stream
//    util::Rng::substream_seed(seed, sweep_substream(i, r)) for r > 0, so
//    sub-seeds are derivable without any cross-point coordination;
//  * results land in slots indexed by (point, rep) — claim order is
//    irrelevant.
//
// The harness also measures throughput (points/sec, per-phase wall time)
// and can serialize the measurement as JSON (BENCH_sweep.json) so the perf
// trajectory is tracked across PRs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "state/cellstore.hpp"
#include "state/serial.hpp"
#include "util/thread_pool.hpp"

namespace eqos::core {

/// One point of a sweep: an experiment configuration bound to a topology.
/// The graph is borrowed and must outlive the sweep; several points may
/// share one graph (it is only read).
struct SweepPoint {
  const topology::Graph* graph = nullptr;
  ExperimentConfig config;
  std::string label;  ///< free-form, carried into reports
};

/// Crash-tolerance options of a sweep.  With a non-empty `dir` every
/// completed (point, rep) cell is persisted as a self-validating checkpoint
/// file; `resume` loads the completed cells back and only recomputes the
/// rest.  Retry/watchdog settings apply whether or not persistence is on.
struct SweepCheckpoint {
  /// Cell-store directory; empty (the default) disables persistence.
  std::string dir;
  /// Rewrite MANIFEST.tsv after every N cell completions.
  std::size_t every = 1;
  /// Load completed cells from `dir` before running.  Corrupt, truncated,
  /// version-mismatched, or wrong-fingerprint cells are quarantined
  /// (renamed *.corrupt) and recomputed.
  bool resume = false;
  /// Re-attempts for a cell whose computation throws.
  std::size_t max_retries = 2;
  /// Sleep attempt * backoff seconds between retries of one cell.
  double retry_backoff_seconds = 0.0;
  /// Flag (on stderr and in the report) cells running longer than this
  /// wall-clock budget; 0 disables the watchdog.
  double watchdog_seconds = 0.0;
};

/// Execution options of a sweep.
struct SweepOptions {
  /// Worker threads.  1 (the default) runs points inline on the calling
  /// thread — byte-for-byte the historical serial behavior.  0 means
  /// hardware concurrency.
  std::size_t threads = 1;
  /// Independent replications per point.  Rep 0 keeps each point's
  /// configured workload seed; rep r > 0 derives a SplitMix64 sub-seed.
  std::size_t reps = 1;
  /// Crash tolerance (persistence off by default).
  SweepCheckpoint checkpoint;
};

/// One (point, rep) whose computation threw on every attempt.  The sweep
/// continues past it; the cell's result slot stays default-constructed.
struct SweepCellFailure {
  std::size_t point = 0;
  std::size_t rep = 0;
  std::size_t attempts = 0;  ///< tries made (1 + retries)
  std::string error;         ///< what() of the final attempt
};

/// Throughput measurement of one run_sweep call.
struct SweepReport {
  std::size_t points = 0;
  std::size_t reps = 0;
  std::size_t threads = 0;
  double wall_seconds = 0.0;        ///< the parallel run
  double serial_wall_seconds = 0.0; ///< optional 1-thread baseline (0 = unmeasured)
  double points_per_second = 0.0;   ///< (points*reps) / wall_seconds
  /// Total churn events of every result / wall_seconds — the event-engine
  /// throughput the sweep sustained.  0 for grid benches whose rows carry no
  /// event counts.
  double events_per_second = 0.0;
  /// serial_wall_seconds / wall_seconds when the baseline was measured.
  double speedup_vs_serial = 0.0;
  /// Sum of per-(point,rep) phase wall times (CPU-side work breakdown).
  PhaseTimings phases;
  /// Bench-specific scalar results (e.g. recovery-time percentiles), emitted
  /// as an "extra" JSON object in insertion order.  Empty for most benches,
  /// keeping their entries byte-identical to before the field existed.
  std::vector<std::pair<std::string, double>> extra;
  /// Aggregate obs::MetricsRegistry snapshot at sweep end; only captured
  /// (has_metrics) when obs::metrics_enabled() — the JSON writer then emits
  /// a "metrics" section, and the default output stays byte-identical.
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;
  /// Per-(point,rep) snapshot deltas, labelled "point<i>.rep<r>".  Captured
  /// only for serial sweeps: concurrent points share the process-global
  /// registry, so per-point deltas are well-defined only when points run one
  /// at a time.
  std::vector<std::pair<std::string, obs::MetricsSnapshot>> point_metrics;

  // Crash-tolerance accounting (all zero for a plain run).
  /// Cells whose computation threw on every attempt, sorted by (point, rep).
  std::vector<SweepCellFailure> failures;
  std::size_t cells_loaded = 0;       ///< completed cells restored on resume
  std::size_t cells_quarantined = 0;  ///< corrupt cell files renamed *.corrupt
  std::size_t cells_retried = 0;      ///< re-attempts after a thrown cell
  std::size_t watchdog_flagged = 0;   ///< cells that blew the wall-clock budget
};

/// Results of a sweep: `results[point * reps + rep]`.
struct SweepOutcome {
  std::vector<ExperimentResult> results;
  SweepReport report;

  /// Replications of one point, rep-major.
  [[nodiscard]] std::vector<ExperimentResult> point_results(std::size_t point) const;
  /// Rep-averaged result of one point (see mean_result); rep 0's nested
  /// model structures are kept as representative.
  [[nodiscard]] ExperimentResult point_mean(std::size_t point) const;
};

/// The sub-stream id replication `rep` of point `point` draws its seed
/// from (rep >= 1; rep 0 keeps the configured seed).  Point-major so seeds
/// stay distinct across an entire sweep whatever its shape.
[[nodiscard]] constexpr std::uint64_t sweep_substream(std::size_t point,
                                                      std::size_t rep) noexcept {
  return (static_cast<std::uint64_t>(point) << 20) | static_cast<std::uint64_t>(rep);
}

/// The effective workload seed of (point, rep) under `base` (the point's
/// configured seed).
[[nodiscard]] std::uint64_t sweep_seed(std::uint64_t base, std::size_t point,
                                       std::size_t rep);

/// True when EQOS_FIXED_TIMING is set (non-empty, not "0").  Sweep JSON and
/// the bench "# sweep:" line then print zeros for every wall-clock field, so
/// a resumed run's output is byte-comparable against a straight-through run
/// (timing is the only legitimately nondeterministic output).
[[nodiscard]] bool fixed_timing();

/// Fingerprint binding a checkpoint directory to a sweep's full
/// configuration: every point's topology, network config, and workload,
/// plus the replication count.  Resuming against cells written by a
/// different sweep quarantines them instead of merging wrong results.
[[nodiscard]] std::uint64_t sweep_fingerprint(const std::vector<SweepPoint>& points,
                                              std::size_t reps);

/// Fingerprint for bench-specific grid sweeps (run_point_grid): the bench
/// name, grid shape, and the row payload size.
[[nodiscard]] std::uint64_t grid_fingerprint(const std::string& bench, std::size_t points,
                                             std::size_t reps, std::size_t row_bytes);

/// Crash-tolerance harness for one sweep's (point, rep) cells, shared by
/// run_sweep and the bench grid drivers.  Wraps each cell's computation
/// with retry + backoff, records cells that keep throwing instead of
/// aborting the sweep, optionally persists every completed cell to a
/// state::CheckpointStore, and (with a watchdog budget) flags cells whose
/// wall-clock time explodes.  run_cell is safe to call concurrently for
/// distinct slots.
class CellHarness {
 public:
  /// `options.dir` empty disables persistence (retry/watchdog still work).
  /// `payload_kind` and `fingerprint` stamp and validate the cell files.
  CellHarness(const SweepCheckpoint& options, std::uint32_t payload_kind,
              std::uint64_t fingerprint, std::size_t points, std::size_t reps);
  ~CellHarness();

  CellHarness(const CellHarness&) = delete;
  CellHarness& operator=(const CellHarness&) = delete;

  /// Whether completed cells are persisted to disk.
  [[nodiscard]] bool persistent() const noexcept { return store_ != nullptr; }

  using Decode = std::function<void(std::size_t point, std::size_t rep, state::Buffer&)>;
  using Encode = std::function<void(state::Buffer&)>;

  /// Scans the store and feeds every valid cell to `decode` (which should
  /// throw state::CorruptError on a payload it cannot apply — the cell is
  /// then quarantined and recomputed).  Decoded cells are marked loaded and
  /// skipped by run_cell.  No-op without a store.
  void resume(const Decode& decode);

  [[nodiscard]] bool loaded(std::size_t slot) const { return loaded_[slot] != 0; }

  /// Runs `body` for one cell unless the cell was loaded by resume().  On
  /// an exception the cell is retried (bounded, linear backoff); the final
  /// failure is recorded, not rethrown.  On success `encode` serializes the
  /// result into the store (when persistent).
  void run_cell(std::size_t slot, const std::function<void()>& body, const Encode& encode);

  /// Flushes the manifest and folds counters + failures into `report`.
  void finish(SweepReport& report);

 private:
  void watchdog_loop();
  void mark_running(std::size_t slot, bool running);

  SweepCheckpoint options_;
  std::size_t points_;
  std::size_t reps_;
  std::unique_ptr<state::CheckpointStore> store_;
  std::vector<char> loaded_;
  /// Start stamp (seconds on the steady clock) per in-flight slot; negative
  /// when the slot is not running.  Written by workers, read by the
  /// watchdog.
  std::vector<std::atomic<double>> running_since_;
  std::vector<std::atomic<bool>> watchdog_hit_;
  std::atomic<std::size_t> cells_retried_{0};
  std::atomic<std::size_t> watchdog_flagged_{0};
  std::size_t cells_loaded_ = 0;       ///< resume() only (single-threaded)
  std::size_t cells_quarantined_ = 0;  ///< resume() only
  std::mutex failures_mutex_;
  std::vector<SweepCellFailure> failures_;
  std::thread watchdog_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
};

/// Runs every (point, rep) across `options.threads` workers.  Results are
/// bit-identical for any thread count (timings excepted).  A cell whose
/// computation throws is retried per `options.checkpoint` and, when it
/// keeps throwing, recorded in report.failures with its slot left
/// default-constructed — one bad point no longer aborts the whole sweep.
/// With `options.checkpoint.dir` set, completed cells are persisted and
/// `options.checkpoint.resume` skips them on a re-run.
[[nodiscard]] SweepOutcome run_sweep(const std::vector<SweepPoint>& points,
                                     const SweepOptions& options);

/// Element-wise replication average: scalar doubles are averaged, counters
/// are averaged and rounded to the nearest integer, per-phase timings are
/// averaged, and nested model structures (matrices, analyses) are taken
/// from the first replication as representative.  Empty input returns a
/// default result.
[[nodiscard]] ExperimentResult mean_result(const std::vector<ExperimentResult>& reps);

/// Serializes a report (plus environment metadata: hardware concurrency)
/// into the sweep-measurement file at `path`, which holds ONE entry per
/// bench keyed by bench name:  {"benches": {"bench_fig2": {...}, ...}}.
/// Entries of other benches already in the file are preserved (a file in
/// the historical single-object format is migrated), this bench's entry is
/// replaced, and keys are written in sorted order so the file is stable
/// under re-runs.  Returns false when the file cannot be written.
bool write_sweep_json(const std::string& path, const std::string& bench,
                      const SweepReport& report);

/// Runs `fn(i)` for i in [0, n) with `threads` workers and collects the
/// returned values in index order; threads <= 1 runs inline (exact serial
/// execution).  The generic building block behind run_sweep, for bench
/// drivers whose per-point protocol is not run_experiment.
template <typename Fn>
auto parallel_points(std::size_t n, std::size_t threads, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> results(n);
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }
  util::ThreadPool pool(threads);
  pool.parallel_for(n, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace eqos::core
