// The paper's ideal average bandwidth (Figure 2's upper dotted line).
//
// If every unit of link capacity were usable and divided equally among the
// channels crossing each link, the average channel would get
//
//     BW * Edges / (NChan * avghop),
//
// i.e. total network capacity divided by total link-slots consumed.  It is
// an upper bound; the reproduction prints both the raw value and the value
// clamped to [bmin, bmax], since a real channel can never hold more than
// bmax.
#pragma once

#include <cstddef>

namespace eqos::core {

/// Raw ideal average bandwidth in Kbit/s.  Requires positive channel count
/// and hop count.
[[nodiscard]] double ideal_average_bandwidth_kbps(double link_bandwidth_kbps,
                                                  std::size_t edges,
                                                  std::size_t num_channels,
                                                  double average_hops);

/// The same, clamped into the achievable range [bmin, bmax].
[[nodiscard]] double clamped_ideal_bandwidth_kbps(double link_bandwidth_kbps,
                                                  std::size_t edges,
                                                  std::size_t num_channels,
                                                  double average_hops, double bmin_kbps,
                                                  double bmax_kbps);

}  // namespace eqos::core
