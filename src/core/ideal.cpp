#include "core/ideal.hpp"

#include <algorithm>
#include <stdexcept>

namespace eqos::core {

double ideal_average_bandwidth_kbps(double link_bandwidth_kbps, std::size_t edges,
                                    std::size_t num_channels, double average_hops) {
  if (num_channels == 0 || !(average_hops > 0.0))
    throw std::invalid_argument("ideal bandwidth: needs channels and positive hops");
  return link_bandwidth_kbps * static_cast<double>(edges) /
         (static_cast<double>(num_channels) * average_hops);
}

double clamped_ideal_bandwidth_kbps(double link_bandwidth_kbps, std::size_t edges,
                                    std::size_t num_channels, double average_hops,
                                    double bmin_kbps, double bmax_kbps) {
  return std::clamp(ideal_average_bandwidth_kbps(link_bandwidth_kbps, edges,
                                                 num_channels, average_hops),
                    bmin_kbps, bmax_kbps);
}

}  // namespace eqos::core
