// Bit-exact serialization of ExperimentResult for sweep checkpoints.
//
// A resumable sweep persists every completed (point, rep) cell so a crashed
// run can pick up where it left off and still produce *byte-identical*
// output.  That only works if the serialized result round-trips exactly:
// every double is stored as its IEEE-754 bit pattern, every matrix with its
// shape, and optional members with a presence flag.  Structural validation
// throws state::CorruptError so damaged cells are quarantined and
// recomputed, never silently merged into the sweep output.
#pragma once

#include "core/experiment.hpp"
#include "state/serial.hpp"

namespace eqos::core {

/// Serializes `result` (all fields, including nested model structures and
/// phase timings) into `out`.
void save_result(state::Buffer& out, const ExperimentResult& result);

/// Reads a result saved by save_result.  Throws state::CorruptError on any
/// structural inconsistency (bad matrix shape, truncated payload).
[[nodiscard]] ExperimentResult load_result(state::Buffer& in);

}  // namespace eqos::core
