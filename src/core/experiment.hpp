// One-stop experiment runner shared by the benches and examples.
//
// Implements the paper's measurement protocol: build the network, establish
// an initial population of DR-connections, churn it with arrivals and
// terminations (plus optional failures) for a warm-up phase, then open the
// recorder window and keep churning; finally solve the measured chain and
// report simulated vs analytic vs ideal average bandwidth.
#pragma once

#include <cstdint>

#include "core/analyzer.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topology/graph.hpp"

namespace eqos::core {

/// Full configuration of one experiment run.
struct ExperimentConfig {
  net::NetworkConfig network;
  sim::WorkloadConfig workload;
  /// Initial population the paper calls "the number of DR-connections".
  std::size_t target_connections = 1000;
  /// Churn events discarded before measurement starts.
  std::size_t warmup_events = 500;
  /// Churn events inside the measurement window.
  std::size_t measure_events = 2000;
  /// Event-engine shards (>= 1).  Purely an execution-layout knob: results
  /// are bit-identical at every value, so it is excluded from checkpoint
  /// and sweep fingerprints (a run checkpointed at one shard count resumes
  /// at another).
  std::size_t shards = 1;
};

/// Wall-clock cost of one experiment, split by protocol phase.  Timing is
/// measurement metadata, not simulation output: every other field of
/// ExperimentResult is a deterministic function of (graph, config), while
/// these depend on the hardware and are excluded from reproducibility
/// comparisons (tests/test_sweep.cpp compares results with timings zeroed).
struct PhaseTimings {
  double populate_seconds = 0.0;  ///< initial population establishment
  double warmup_seconds = 0.0;    ///< discarded churn
  double measure_seconds = 0.0;   ///< recorded churn
  double analyze_seconds = 0.0;   ///< chain solve + analytic models
  [[nodiscard]] double total_seconds() const noexcept {
    return populate_seconds + warmup_seconds + measure_seconds + analyze_seconds;
  }
  PhaseTimings& operator+=(const PhaseTimings& o) noexcept {
    populate_seconds += o.populate_seconds;
    warmup_seconds += o.warmup_seconds;
    measure_seconds += o.measure_seconds;
    analyze_seconds += o.analyze_seconds;
    return *this;
  }
};

/// Everything an experiment produces.
struct ExperimentResult {
  std::size_t attempted = 0;    ///< establishment attempts during populate
  std::size_t established = 0;  ///< connections alive after populate
  std::size_t active_at_end = 0;

  double sim_mean_bandwidth_kbps = 0.0;  ///< time-weighted simulation truth
  double analytic_paper_kbps = 0.0;      ///< Section 3.2 model
  double analytic_refined_kbps = 0.0;    ///< refined parameterization
  double ideal_kbps = 0.0;               ///< BW*Edges/(NChan*avghop), raw
  double ideal_clamped_kbps = 0.0;

  double mean_hops = 0.0;                ///< avg primary hops at window end
  double protected_fraction = 0.0;       ///< share of connections w/ backup

  sim::ModelEstimates estimates;
  AnalysisResult paper_analysis;
  AnalysisResult refined_analysis;
  net::NetworkStats network_stats;
  sim::SimulationStats sim_stats;
  PhaseTimings timings;  ///< wall-clock phase breakdown (non-deterministic)
  /// Discrete events processed per wall-clock second across the churn phases
  /// (warmup + measurement).  Like `timings`, a hardware-dependent
  /// measurement, excluded from reproducibility comparisons; 0 when the
  /// churn phases were too fast to time.
  double events_per_second = 0.0;
};

/// Event throughput of the churn phases: (arrival + termination + failure +
/// repair events) / (warmup + measure wall seconds), 0 when the denominator
/// is not positive.  Shared by run_experiment and the checkpoint codec
/// (load_result re-derives the rate instead of widening the cell format).
[[nodiscard]] double churn_events_per_second(const sim::SimulationStats& stats,
                                             const PhaseTimings& timings);

/// Runs the two-phase protocol on (a copy of) `graph`.
[[nodiscard]] ExperimentResult run_experiment(const topology::Graph& graph,
                                              const ExperimentConfig& config);

}  // namespace eqos::core
