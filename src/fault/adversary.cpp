#include "fault/adversary.hpp"

#include <algorithm>

#include "net/network.hpp"

namespace eqos::fault {

namespace {

/// Damage ordering: dropped connections, then revenue at risk, then sheer
/// victim count (more disruption even when everything survives).
bool worse(const DamageAssessment& a, const DamageAssessment& b) {
  if (a.dropped != b.dropped) return a.dropped > b.dropped;
  if (a.revenue_at_risk != b.revenue_at_risk)
    return a.revenue_at_risk > b.revenue_at_risk;
  return a.victims > b.victims;
}

/// Advances `idx` to the next k-combination of {0..n-1} in lexicographic
/// order; false when exhausted.
bool next_combination(std::vector<std::size_t>& idx, std::size_t n) {
  const std::size_t k = idx.size();
  std::size_t i = k;
  while (i > 0) {
    --i;
    if (idx[i] != i + n - k) {
      ++idx[i];
      for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
      return true;
    }
  }
  return false;
}

}  // namespace

DamageAssessment assess_damage(const net::Network& network,
                               const util::DynamicBitset& failed_links) {
  DamageAssessment out;
  for (net::ConnectionId id : network.active_ids()) {
    const net::DrConnection& c = network.connection(id);
    if (c.recovering) {
      // In-flight recovery (the event-driven protocol): the victim is
      // already disrupted, so it counts whatever the attack adds; it can
      // still be saved iff some channel covering its severed link stays
      // clear of the attack.
      ++out.victims;
      bool covered = false;
      for (const net::BackupChannel& ch : c.backups) {
        if (!ch.trigger_links.test(c.recovering_link)) continue;
        if (ch.links.intersects(failed_links)) continue;
        covered = true;
        break;
      }
      if (covered) {
        ++out.survivable;
      } else {
        ++out.dropped;
        out.revenue_at_risk += c.qos.bmin_kbps;
      }
      continue;
    }
    if (!c.primary_links.intersects(failed_links)) continue;
    ++out.victims;
    // The victim keeps service iff every failed primary link is defended by
    // a channel that triggers on it and is itself clear of the attack.
    // Per-link coverage is the scheme-uniform test: a full-span channel
    // triggers on the whole primary, a segment channel on its span.
    bool survives = true;
    for (topology::LinkId l : c.primary.links) {
      if (!failed_links.test(l)) continue;
      bool covered = false;
      for (const net::BackupChannel& ch : c.backups) {
        if (!ch.trigger_links.test(l)) continue;
        if (ch.links.intersects(failed_links)) continue;
        covered = true;
        break;
      }
      if (!covered) {
        survives = false;
        break;
      }
    }
    if (survives) {
      ++out.survivable;
    } else {
      ++out.dropped;
      out.revenue_at_risk += c.qos.bmin_kbps;
    }
  }
  return out;
}

AttackPlan worst_case_attack(const net::Network& network,
                             const std::vector<SrlgGroup>& groups,
                             const AdversaryBudget& budget) {
  const std::size_t num_links = network.graph().num_links();
  AttackPlan plan;
  plan.failed_links = util::DynamicBitset(num_links);
  if (groups.empty() || budget.max_groups == 0) {
    plan.damage = assess_damage(network, plan.failed_links);
    plan.exhaustive = true;
    return plan;
  }
  const std::size_t k = std::min(budget.max_groups, groups.size());

  std::vector<util::DynamicBitset> bits;
  bits.reserve(groups.size());
  for (const SrlgGroup& g : groups) {
    util::DynamicBitset b(num_links);
    for (topology::LinkId l : g.links) b.set(l);
    bits.push_back(std::move(b));
  }

  // C(n, k) in floating point: only compared against the cap, so the loss
  // of precision on astronomically large counts is irrelevant.
  double combos = 1.0;
  for (std::size_t i = 0; i < k; ++i)
    combos = combos * static_cast<double>(groups.size() - i) /
             static_cast<double>(i + 1);

  if (combos <= static_cast<double>(budget.max_combinations)) {
    // Exhaustive: damage is monotone in the failed-link set, so the worst
    // plan uses exactly k groups.
    std::vector<std::size_t> idx(k);
    for (std::size_t i = 0; i < k; ++i) idx[i] = i;
    bool first = true;
    do {
      util::DynamicBitset failed(num_links);
      for (std::size_t g : idx) failed |= bits[g];
      DamageAssessment d = assess_damage(network, failed);
      if (first || worse(d, plan.damage)) {
        first = false;
        plan.group_indices = idx;
        plan.failed_links = std::move(failed);
        plan.damage = d;
      }
    } while (next_combination(idx, groups.size()));
    plan.exhaustive = true;
    return plan;
  }

  // Greedy: one group per round, maximizing marginal damage; ties keep the
  // lowest group index.
  std::vector<bool> used(groups.size(), false);
  util::DynamicBitset failed(num_links);
  for (std::size_t round = 0; round < k; ++round) {
    std::size_t best = groups.size();
    DamageAssessment best_damage;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (used[g]) continue;
      util::DynamicBitset trial = failed;
      trial |= bits[g];
      DamageAssessment d = assess_damage(network, trial);
      if (best == groups.size() || worse(d, best_damage)) {
        best = g;
        best_damage = d;
      }
    }
    used[best] = true;
    failed |= bits[best];
    plan.group_indices.push_back(best);
    plan.damage = best_damage;
  }
  plan.failed_links = std::move(failed);
  return plan;
}

}  // namespace eqos::fault
