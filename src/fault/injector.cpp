#include "fault/injector.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "fault/audit.hpp"
#include "obs/trace.hpp"

namespace eqos::fault {

FaultInjector::FaultInjector(net::Network& network, Scheduler scheduler, Hooks hooks)
    : network_(network), scheduler_(std::move(scheduler)), hooks_(std::move(hooks)) {
  if (!scheduler_.now || !scheduler_.schedule_at) {
    throw std::invalid_argument("fault injector: scheduler must provide now and schedule_at");
  }
}

void FaultInjector::sched(double time, std::uint32_t kind, std::uint64_t a) {
  if (scheduler_.schedule_event) {
    scheduler_.schedule_event(time, kind, a, 0);
  } else if (scheduler_.schedule_tagged) {
    scheduler_.schedule_tagged(time, kind, a, 0, rebuild_action(kind, a));
  } else {
    scheduler_.schedule_at(time, rebuild_action(kind, a));
  }
}

void FaultInjector::dispatch(std::uint32_t kind, std::uint64_t a) {
  switch (kind) {
    case kTagLegacyFailure:
      do_legacy_failure();
      break;
    case kTagLegacyRepair:
      do_legacy_repair(static_cast<topology::LinkId>(a));
      break;
    case kTagScripted:
      apply_scripted(scripted_events_[static_cast<std::size_t>(a)]);
      break;
    case kTagLinkProcess:
      fire_link_process(static_cast<std::size_t>(a));
      break;
    case kTagBurst:
      fire_burst_process();
      break;
    case kTagAutoRepair:
      do_auto_repair(static_cast<topology::LinkId>(a));
      break;
    default:
      throw std::logic_error("fault injector: dispatch of unknown kind " +
                             std::to_string(kind));
  }
}

void FaultInjector::audit_after(const char* what, std::size_t target) {
  if (!auditor_) return;
  obs::set_trace_time(scheduler_.now());
  auditor_->check("after " + std::string(what) + " " + std::to_string(target) + " @t=" +
                  std::to_string(scheduler_.now()));
  obs::trace_event(obs::TraceKind::kAuditStep, static_cast<std::uint32_t>(target),
                   static_cast<std::uint32_t>(auditor_->checks_run()));
}

// ---- Legacy mode ------------------------------------------------------------

void FaultInjector::enable_legacy_poisson(double failure_rate, double repair_rate,
                                          util::Rng rng) {
  if (!(failure_rate > 0.0) || !(repair_rate > 0.0)) {
    throw std::invalid_argument("fault injector: legacy rates must be > 0");
  }
  legacy_failure_rate_ = failure_rate;
  legacy_repair_rate_ = repair_rate;
  legacy_rng_.emplace(std::move(rng));
  sched(scheduler_.now() + legacy_rng_->exponential(legacy_failure_rate_),
        kTagLegacyFailure, 0);
}

void FaultInjector::do_legacy_failure() {
  // Draw-for-draw reproduction of the pre-injector Simulator::do_failure:
  // alive-link pick, then the repair delay, then the next failure delay, all
  // from one stream in this exact order.
  obs::set_trace_time(scheduler_.now());
  if (hooks_.before_event) hooks_.before_event(scheduler_.now());
  const std::size_t num_links = network_.graph().num_links();
  std::size_t alive = 0;
  for (topology::LinkId l = 0; l < num_links; ++l)
    if (!network_.link_state(l).failed()) ++alive;
  if (alive > 0) {
    std::size_t pick = legacy_rng_->index(alive);
    topology::LinkId chosen = 0;
    for (topology::LinkId l = 0; l < num_links; ++l) {
      if (network_.link_state(l).failed()) continue;
      if (pick-- == 0) {
        chosen = l;
        break;
      }
    }
    const net::FailureReport report = network_.fail_link(chosen);
    ++stats_.poisson_failures;
    if (hooks_.on_failure) hooks_.on_failure(report);
    audit_after("legacy fail-link", chosen);
    sched(scheduler_.now() + legacy_rng_->exponential(legacy_repair_rate_),
          kTagLegacyRepair, chosen);
  }
  if (hooks_.on_fault_event) hooks_.on_fault_event();
  sched(scheduler_.now() + legacy_rng_->exponential(legacy_failure_rate_),
        kTagLegacyFailure, 0);
}

void FaultInjector::do_legacy_repair(topology::LinkId link) {
  obs::set_trace_time(scheduler_.now());
  if (hooks_.before_event) hooks_.before_event(scheduler_.now());
  network_.repair_link(link);
  ++stats_.auto_repairs;
  if (hooks_.on_repair) hooks_.on_repair();
  audit_after("legacy repair-link", link);
}

// ---- Scenario mode ----------------------------------------------------------

void FaultInjector::load_scenario(const FaultScenario& scenario, util::Rng rng) {
  scenario.validate(network_.graph().num_links(), network_.graph().num_nodes());
  groups_ = scenario.groups();
  stochastic_ = scenario.stochastic();
  auto_repair_scripted_ = scenario.auto_repair_scripted;

  // Independent split streams: scripted repairs first, per-link processes in
  // ascending link order, then the burst process — adding a process never
  // perturbs the draws of another.
  scripted_rng_.emplace(rng.split());
  link_processes_.clear();
  link_rates_.clear();
  for (topology::LinkId l = 0; l < network_.graph().num_links(); ++l) {
    const double rate = stochastic_.rate_for(l);
    if (rate > 0.0) {
      link_processes_.emplace_back(l, rng.split());
      link_rates_.push_back(rate);
    }
  }
  if (stochastic_.group_failure_rate > 0.0) burst_rng_.emplace(rng.split());

  scripted_events_ = scenario.sorted_events();
  for (std::size_t i = 0; i < scripted_events_.size(); ++i) {
    sched(scripted_events_[i].time, kTagScripted, i);
  }
  for (std::size_t i = 0; i < link_processes_.size(); ++i) {
    const double t =
        scheduler_.now() + link_processes_[i].second.exponential(link_rates_[i]);
    if (t <= stochastic_.horizon) {
      sched(t, kTagLinkProcess, i);
    }
  }
  if (burst_rng_) {
    const double t =
        scheduler_.now() + burst_rng_->exponential(stochastic_.group_failure_rate);
    if (t <= stochastic_.horizon) {
      sched(t, kTagBurst, 0);
    }
  }
}

void FaultInjector::apply_scripted(const FaultEvent& event) {
  obs::set_trace_time(scheduler_.now());
  if (hooks_.before_event) hooks_.before_event(scheduler_.now());
  switch (event.kind) {
    case FaultKind::kFailLink:
      inject_link_failure(event.target, auto_repair_scripted_, *scripted_rng_);
      ++stats_.scripted_failures;
      if (hooks_.on_fault_event) hooks_.on_fault_event();
      audit_after("fail-link", event.target);
      break;
    case FaultKind::kFailNode:
      // Per-link injection (same order as Network::fail_node) so hooks and
      // auto-repair see each constituent link failure.
      for (const auto& adj : network_.graph().adjacent(event.target)) {
        inject_link_failure(adj.link, auto_repair_scripted_, *scripted_rng_);
      }
      ++stats_.scripted_failures;
      if (hooks_.on_fault_event) hooks_.on_fault_event();
      audit_after("fail-node", event.target);
      break;
    case FaultKind::kFailGroup:
      for (topology::LinkId l : groups_[event.target].links) {
        inject_link_failure(l, auto_repair_scripted_, *scripted_rng_);
      }
      ++stats_.scripted_failures;
      if (hooks_.on_fault_event) hooks_.on_fault_event();
      audit_after("fail-group", event.target);
      break;
    case FaultKind::kRepairLink:
      network_.repair_link(event.target);
      ++stats_.scripted_repairs;
      if (hooks_.on_repair) hooks_.on_repair();
      audit_after("repair-link", event.target);
      break;
    case FaultKind::kRepairNode:
      network_.repair_node(event.target);
      ++stats_.scripted_repairs;
      if (hooks_.on_repair) hooks_.on_repair();
      audit_after("repair-node", event.target);
      break;
    case FaultKind::kRepairGroup:
      for (topology::LinkId l : groups_[event.target].links) network_.repair_link(l);
      ++stats_.scripted_repairs;
      if (hooks_.on_repair) hooks_.on_repair();
      audit_after("repair-group", event.target);
      break;
  }
}

void FaultInjector::fire_link_process(std::size_t process) {
  auto& [link, rng] = link_processes_[process];
  obs::set_trace_time(scheduler_.now());
  if (hooks_.before_event) hooks_.before_event(scheduler_.now());
  if (inject_link_failure(link, stochastic_.auto_repair, rng)) ++stats_.poisson_failures;
  if (hooks_.on_fault_event) hooks_.on_fault_event();
  audit_after("poisson fail-link", link);
  const double t = scheduler_.now() + rng.exponential(link_rates_[process]);
  if (t <= stochastic_.horizon) {
    sched(t, kTagLinkProcess, process);
  }
}

void FaultInjector::fire_burst_process() {
  obs::set_trace_time(scheduler_.now());
  if (hooks_.before_event) hooks_.before_event(scheduler_.now());
  double total = 0.0;
  for (const SrlgGroup& g : groups_) total += g.weight;
  double pick = burst_rng_->uniform(0.0, total);
  std::size_t chosen = groups_.size() - 1;
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (pick < groups_[i].weight) {
      chosen = i;
      break;
    }
    pick -= groups_[i].weight;
  }
  for (topology::LinkId l : groups_[chosen].links) {
    inject_link_failure(l, stochastic_.auto_repair, *burst_rng_);
  }
  ++stats_.burst_failures;
  if (hooks_.on_fault_event) hooks_.on_fault_event();
  audit_after("burst fail-group", chosen);
  const double t =
      scheduler_.now() + burst_rng_->exponential(stochastic_.group_failure_rate);
  if (t <= stochastic_.horizon) {
    sched(t, kTagBurst, 0);
  }
}

bool FaultInjector::inject_link_failure(topology::LinkId link, bool auto_repair,
                                        util::Rng& repair_rng) {
  if (network_.link_state(link).failed()) {
    ++stats_.skipped_failures;
    return false;
  }
  const net::FailureReport report = network_.fail_link(link);
  if (hooks_.on_failure) hooks_.on_failure(report);
  if (auto_repair) schedule_auto_repair(link, repair_rng);
  return true;
}

void FaultInjector::schedule_auto_repair(topology::LinkId link, util::Rng& repair_rng) {
  const double delay = stochastic_.repair.sample(repair_rng);
  sched(scheduler_.now() + delay, kTagAutoRepair, link);
}

void FaultInjector::do_auto_repair(topology::LinkId link) {
  // A scripted repair may have beaten us to it; repair_link is a no-op
  // (returns 0 without touching stats) for an alive link.
  obs::set_trace_time(scheduler_.now());
  if (hooks_.before_event) hooks_.before_event(scheduler_.now());
  network_.repair_link(link);
  ++stats_.auto_repairs;
  if (hooks_.on_repair) hooks_.on_repair();
  audit_after("auto repair-link", link);
}

// ---- Checkpointing ----------------------------------------------------------

namespace {

void put_opt_rng(state::Buffer& out, const std::optional<util::Rng>& rng) {
  out.put_bool(rng.has_value());
  if (rng) {
    out.put_u64(rng->seed());
    out.put_str(rng->engine_state());
  }
}

void get_opt_rng(state::Buffer& in, std::optional<util::Rng>& rng, const char* name) {
  const bool present = in.get_bool();
  if (present != rng.has_value())
    throw state::CorruptError(std::string("checkpoint injector mode mismatch: ") + name +
                              (present ? " saved but not configured" : " configured but not saved"));
  if (!present) return;
  const std::uint64_t seed = in.get_u64();
  rng->set_engine_state(seed, in.get_str());
}

}  // namespace

void FaultInjector::save_state(state::Buffer& out) const {
  put_opt_rng(out, legacy_rng_);
  put_opt_rng(out, scripted_rng_);
  put_opt_rng(out, burst_rng_);
  out.put_u64(link_processes_.size());
  for (const auto& [link, rng] : link_processes_) {
    out.put_u64(link);
    out.put_u64(rng.seed());
    out.put_str(rng.engine_state());
  }
  out.put_u64(stats_.scripted_failures);
  out.put_u64(stats_.scripted_repairs);
  out.put_u64(stats_.poisson_failures);
  out.put_u64(stats_.burst_failures);
  out.put_u64(stats_.auto_repairs);
  out.put_u64(stats_.skipped_failures);
}

void FaultInjector::load_state(state::Buffer& in) {
  get_opt_rng(in, legacy_rng_, "legacy rng");
  get_opt_rng(in, scripted_rng_, "scripted rng");
  get_opt_rng(in, burst_rng_, "burst rng");
  const std::size_t n = in.get_count(1);
  if (n != link_processes_.size())
    throw state::CorruptError("checkpoint injector has " + std::to_string(n) +
                              " link processes, this scenario has " +
                              std::to_string(link_processes_.size()));
  for (auto& [link, rng] : link_processes_) {
    if (in.get_u64() != link)
      throw state::CorruptError("checkpoint injector link-process set differs from scenario");
    const std::uint64_t seed = in.get_u64();
    rng.set_engine_state(seed, in.get_str());
  }
  stats_.scripted_failures = in.get_u64();
  stats_.scripted_repairs = in.get_u64();
  stats_.poisson_failures = in.get_u64();
  stats_.burst_failures = in.get_u64();
  stats_.auto_repairs = in.get_u64();
  stats_.skipped_failures = in.get_u64();
}

std::function<void()> FaultInjector::rebuild_action(std::uint32_t kind, std::uint64_t a) {
  switch (kind) {
    case kTagLegacyFailure:
      return [this] { do_legacy_failure(); };
    case kTagLegacyRepair: {
      const auto link = static_cast<topology::LinkId>(a);
      return [this, link] { do_legacy_repair(link); };
    }
    case kTagScripted: {
      if (a >= scripted_events_.size())
        throw state::CorruptError("checkpoint scripted-event index out of range");
      const auto i = static_cast<std::size_t>(a);
      return [this, i] { apply_scripted(scripted_events_[i]); };
    }
    case kTagLinkProcess: {
      if (a >= link_processes_.size())
        throw state::CorruptError("checkpoint link-process index out of range");
      const auto i = static_cast<std::size_t>(a);
      return [this, i] { fire_link_process(i); };
    }
    case kTagBurst:
      return [this] { fire_burst_process(); };
    case kTagAutoRepair: {
      const auto link = static_cast<topology::LinkId>(a);
      return [this, link] { do_auto_repair(link); };
    }
    default:
      return nullptr;  // not an injector kind
  }
}

}  // namespace eqos::fault
