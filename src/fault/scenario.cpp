#include "fault/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace eqos::fault {

bool is_failure(FaultKind kind) noexcept {
  return kind == FaultKind::kFailLink || kind == FaultKind::kFailNode ||
         kind == FaultKind::kFailGroup;
}

// ---- RepairModel ------------------------------------------------------------

double RepairModel::sample(util::Rng& rng) const {
  switch (kind) {
    case RepairDistribution::kExponential:
      return rng.exponential(rate);
    case RepairDistribution::kWeibull: {
      // Inverse transform: F^-1(u) = scale * (-ln(1-u))^(1/shape).
      const double u = rng.uniform();
      return scale * std::pow(-std::log1p(-u), 1.0 / shape);
    }
    case RepairDistribution::kDeterministic:
      return scale;
  }
  throw std::logic_error("RepairModel: unknown distribution");
}

void RepairModel::validate() const {
  switch (kind) {
    case RepairDistribution::kExponential:
      if (!(rate > 0.0)) {
        throw std::invalid_argument("RepairModel: exponential rate must be > 0");
      }
      break;
    case RepairDistribution::kWeibull:
      if (!(shape > 0.0) || !(scale > 0.0)) {
        throw std::invalid_argument("RepairModel: Weibull shape and scale must be > 0");
      }
      break;
    case RepairDistribution::kDeterministic:
      if (!(scale > 0.0)) {
        throw std::invalid_argument("RepairModel: deterministic outage must be > 0");
      }
      break;
  }
}

// ---- StochasticFaultConfig --------------------------------------------------

double StochasticFaultConfig::rate_for(topology::LinkId link) const {
  for (const auto& [id, rate] : per_link_rates) {
    if (id == link) return rate;
  }
  return link_failure_rate;
}

void StochasticFaultConfig::validate(std::size_t num_links) const {
  if (link_failure_rate < 0.0) {
    throw std::invalid_argument("StochasticFaultConfig: negative link failure rate");
  }
  if (group_failure_rate < 0.0) {
    throw std::invalid_argument("StochasticFaultConfig: negative group failure rate");
  }
  for (const auto& [id, rate] : per_link_rates) {
    if (id >= num_links) {
      throw std::invalid_argument("StochasticFaultConfig: per-link rate for link " +
                                  std::to_string(id) + " out of range");
    }
    if (rate < 0.0) {
      throw std::invalid_argument("StochasticFaultConfig: negative rate for link " +
                                  std::to_string(id));
    }
  }
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("StochasticFaultConfig: horizon must be > 0");
  }
  const bool any_rate =
      link_failure_rate > 0.0 || group_failure_rate > 0.0 ||
      std::any_of(per_link_rates.begin(), per_link_rates.end(),
                  [](const auto& e) { return e.second > 0.0; });
  if (any_rate && auto_repair) repair.validate();
}

// ---- FaultScenario ----------------------------------------------------------

std::size_t FaultScenario::define_group(std::string name,
                                        std::vector<topology::LinkId> links,
                                        double weight) {
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].name == name) {
      auto& g = groups_[i];
      for (topology::LinkId l : links) {
        if (std::find(g.links.begin(), g.links.end(), l) == g.links.end()) {
          g.links.push_back(l);
        }
      }
      g.weight = weight;
      return i;
    }
  }
  groups_.push_back(SrlgGroup{std::move(name), std::move(links), weight});
  return groups_.size() - 1;
}

std::size_t FaultScenario::group_index(std::string_view name) const {
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].name == name) return i;
  }
  throw std::invalid_argument("FaultScenario: unknown group '" + std::string(name) + "'");
}

FaultScenario& FaultScenario::fail_link(double time, topology::LinkId link) {
  events_.push_back({time, FaultKind::kFailLink, link});
  return *this;
}
FaultScenario& FaultScenario::fail_node(double time, topology::NodeId node) {
  events_.push_back({time, FaultKind::kFailNode, node});
  return *this;
}
FaultScenario& FaultScenario::fail_group(double time, std::string_view name) {
  events_.push_back({time, FaultKind::kFailGroup, group_index(name)});
  return *this;
}
FaultScenario& FaultScenario::repair_link(double time, topology::LinkId link) {
  events_.push_back({time, FaultKind::kRepairLink, link});
  return *this;
}
FaultScenario& FaultScenario::repair_node(double time, topology::NodeId node) {
  events_.push_back({time, FaultKind::kRepairNode, node});
  return *this;
}
FaultScenario& FaultScenario::repair_group(double time, std::string_view name) {
  events_.push_back({time, FaultKind::kRepairGroup, group_index(name)});
  return *this;
}

std::vector<FaultEvent> FaultScenario::sorted_events() const {
  std::vector<FaultEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  return sorted;
}

void FaultScenario::validate(std::size_t num_links, std::size_t num_nodes) const {
  for (const auto& g : groups_) {
    if (g.links.empty()) {
      throw std::invalid_argument("FaultScenario: group '" + g.name + "' has no links");
    }
    if (!(g.weight > 0.0)) {
      throw std::invalid_argument("FaultScenario: group '" + g.name +
                                  "' has non-positive weight");
    }
    for (topology::LinkId l : g.links) {
      if (l >= num_links) {
        throw std::invalid_argument("FaultScenario: group '" + g.name + "' names link " +
                                    std::to_string(l) + " out of range");
      }
    }
  }
  for (const auto& e : events_) {
    if (!(e.time >= 0.0) || !std::isfinite(e.time)) {
      throw std::invalid_argument("FaultScenario: event time must be finite and >= 0");
    }
    switch (e.kind) {
      case FaultKind::kFailLink:
      case FaultKind::kRepairLink:
        if (e.target >= num_links) {
          throw std::invalid_argument("FaultScenario: link " + std::to_string(e.target) +
                                      " out of range");
        }
        break;
      case FaultKind::kFailNode:
      case FaultKind::kRepairNode:
        if (e.target >= num_nodes) {
          throw std::invalid_argument("FaultScenario: node " + std::to_string(e.target) +
                                      " out of range");
        }
        break;
      case FaultKind::kFailGroup:
      case FaultKind::kRepairGroup:
        if (e.target >= groups_.size()) {
          throw std::invalid_argument("FaultScenario: group index out of range");
        }
        break;
    }
  }
  if (stochastic_.group_failure_rate > 0.0 && groups_.empty()) {
    throw std::invalid_argument(
        "FaultScenario: group-rate set but no SRLG groups defined");
  }
  stochastic_.validate(num_links);
}

// ---- Text format ------------------------------------------------------------

namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& why) {
  throw std::invalid_argument("FaultScenario: line " + std::to_string(line) + ": " + why);
}

double parse_number(std::istringstream& in, std::size_t line, const char* what) {
  double value = 0.0;
  if (!(in >> value)) parse_fail(line, std::string("expected ") + what);
  return value;
}

std::size_t parse_id(std::istringstream& in, std::size_t line, const char* what) {
  long long value = 0;
  if (!(in >> value) || value < 0) parse_fail(line, std::string("expected ") + what);
  return static_cast<std::size_t>(value);
}

std::string parse_word(std::istringstream& in, std::size_t line, const char* what) {
  std::string word;
  if (!(in >> word)) parse_fail(line, std::string("expected ") + what);
  return word;
}

bool parse_on_off(std::istringstream& in, std::size_t line) {
  const std::string word = parse_word(in, line, "on|off");
  if (word == "on") return true;
  if (word == "off") return false;
  parse_fail(line, "expected on|off, got '" + word + "'");
}

void expect_end(std::istringstream& in, std::size_t line) {
  std::string extra;
  if (in >> extra) parse_fail(line, "trailing token '" + extra + "'");
}

}  // namespace

FaultScenario FaultScenario::parse(std::istream& in) {
  FaultScenario scenario;
  std::string raw;
  std::size_t line_no = 0;
  // Scripted timestamps must be strictly increasing in the file.  A scenario
  // author who writes them out of order (or duplicates one) almost certainly
  // made an editing mistake; silently reordering would mask it, and equal
  // timestamps would make the firing order depend on file position in a way
  // that is easy to get wrong.  Reject with the offending line instead.
  double last_event_time = -1.0;
  std::size_t last_event_line = 0;
  const auto check_order = [&](double t, std::size_t line) {
    if (last_event_line != 0 && t <= last_event_time) {
      parse_fail(line, (t == last_event_time
                            ? std::string("duplicate timestamp ")
                            : std::string("out-of-order timestamp ")) +
                           std::to_string(t) + " (line " +
                           std::to_string(last_event_line) + " already scheduled t=" +
                           std::to_string(last_event_time) + ")");
    }
    last_event_time = t;
    last_event_line = line;
  };
  while (std::getline(in, raw)) {
    ++line_no;
    if (const auto hash = raw.find('#'); hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::string cmd;
    if (!(line >> cmd)) continue;  // blank / comment-only line

    if (cmd == "group") {
      std::string name = parse_word(line, line_no, "group name");
      std::vector<topology::LinkId> links;
      long long id = 0;
      while (line >> id) {
        if (id < 0) parse_fail(line_no, "negative link id");
        links.push_back(static_cast<topology::LinkId>(id));
      }
      if (links.empty()) parse_fail(line_no, "group needs at least one link");
      scenario.define_group(std::move(name), std::move(links));
    } else if (cmd == "group-weight") {
      const std::string name = parse_word(line, line_no, "group name");
      const double weight = parse_number(line, line_no, "weight");
      expect_end(line, line_no);
      try {
        scenario.groups_[scenario.group_index(name)].weight = weight;
      } catch (const std::invalid_argument&) {
        parse_fail(line_no, "unknown group '" + name + "' (define it first)");
      }
    } else if (cmd == "fail-link" || cmd == "repair-link") {
      const double t = parse_number(line, line_no, "time");
      const std::size_t link = parse_id(line, line_no, "link id");
      expect_end(line, line_no);
      check_order(t, line_no);
      cmd == "fail-link" ? scenario.fail_link(t, link) : scenario.repair_link(t, link);
    } else if (cmd == "fail-node" || cmd == "repair-node") {
      const double t = parse_number(line, line_no, "time");
      const std::size_t node = parse_id(line, line_no, "node id");
      expect_end(line, line_no);
      check_order(t, line_no);
      cmd == "fail-node" ? scenario.fail_node(t, node) : scenario.repair_node(t, node);
    } else if (cmd == "fail-group" || cmd == "repair-group") {
      const double t = parse_number(line, line_no, "time");
      const std::string name = parse_word(line, line_no, "group name");
      expect_end(line, line_no);
      check_order(t, line_no);
      try {
        cmd == "fail-group" ? scenario.fail_group(t, name) : scenario.repair_group(t, name);
      } catch (const std::invalid_argument&) {
        parse_fail(line_no, "unknown group '" + name + "' (define it first)");
      }
    } else if (cmd == "link-rate") {
      // Either `link-rate R` (uniform) or `link-rate L R` (override).
      const double first = parse_number(line, line_no, "rate or link id");
      double second = 0.0;
      if (line >> second) {
        expect_end(line, line_no);
        if (first < 0.0 || first != std::floor(first)) {
          parse_fail(line_no, "link id must be a non-negative integer");
        }
        scenario.stochastic_.per_link_rates.emplace_back(
            static_cast<topology::LinkId>(first), second);
      } else {
        scenario.stochastic_.link_failure_rate = first;
      }
    } else if (cmd == "group-rate") {
      scenario.stochastic_.group_failure_rate = parse_number(line, line_no, "rate");
      expect_end(line, line_no);
    } else if (cmd == "repair") {
      const std::string kind = parse_word(line, line_no, "distribution");
      if (kind == "exponential") {
        scenario.stochastic_.repair.kind = RepairDistribution::kExponential;
        scenario.stochastic_.repair.rate = parse_number(line, line_no, "rate");
      } else if (kind == "weibull") {
        scenario.stochastic_.repair.kind = RepairDistribution::kWeibull;
        scenario.stochastic_.repair.shape = parse_number(line, line_no, "shape");
        scenario.stochastic_.repair.scale = parse_number(line, line_no, "scale");
      } else if (kind == "deterministic") {
        scenario.stochastic_.repair.kind = RepairDistribution::kDeterministic;
        scenario.stochastic_.repair.scale = parse_number(line, line_no, "outage");
      } else {
        parse_fail(line_no, "unknown repair distribution '" + kind + "'");
      }
      expect_end(line, line_no);
    } else if (cmd == "auto-repair") {
      scenario.stochastic_.auto_repair = parse_on_off(line, line_no);
      expect_end(line, line_no);
    } else if (cmd == "scripted-auto-repair") {
      scenario.auto_repair_scripted = parse_on_off(line, line_no);
      expect_end(line, line_no);
    } else if (cmd == "horizon") {
      scenario.stochastic_.horizon = parse_number(line, line_no, "time");
      expect_end(line, line_no);
    } else {
      parse_fail(line_no, "unknown directive '" + cmd + "'");
    }
  }
  return scenario;
}

FaultScenario FaultScenario::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

}  // namespace eqos::fault
