// Budgeted SRLG adversary: what is the worst simultaneous k-group failure
// against the network's *current* connection and backup-set state?
//
// Complements the stochastic fault processes (scenario.hpp) with a
// worst-case lens in the spirit of network-interdiction studies of
// geographically-correlated failures: the adversary picks the combination
// of shared-risk groups whose joint failure drops the most protected
// traffic.  Used by bench_multifailure to stress every backup scheme with
// matched attack budgets, and by tests as an oracle for survivability
// claims.  Everything here is a pure read of the network — assessing or
// planning an attack mutates nothing.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/scenario.hpp"
#include "util/bitset.hpp"

namespace eqos::net {
class Network;
}

namespace eqos::fault {

/// How much the adversary may spend.
struct AdversaryBudget {
  /// Simultaneous SRLG groups the adversary may fail (k).
  std::size_t max_groups = 2;
  /// Exhaustive enumeration cap: when C(num_groups, k) exceeds this, the
  /// planner falls back to greedy marginal-damage selection.
  std::size_t max_combinations = 100000;
};

/// Static damage of one simultaneous link-set failure.
struct DamageAssessment {
  /// Active connections whose primary crosses at least one failed link.
  std::size_t victims = 0;
  /// Victims whose backup set still covers them: every failed primary link
  /// is defended by a channel that triggers on it and is itself clear of
  /// the attack.
  std::size_t survivable = 0;
  /// victims - survivable: connections that would lose service outright
  /// (barring a post-hoc re-establishment rescue).
  std::size_t dropped = 0;
  /// Sum of bmin over the non-survivable victims — the revenue the attack
  /// puts at risk.
  double revenue_at_risk = 0.0;
};

/// Evaluates the simultaneous failure of `failed_links` against the
/// network's current state.  Pure read; deterministic.
[[nodiscard]] DamageAssessment assess_damage(const net::Network& network,
                                             const util::DynamicBitset& failed_links);

/// The planner's chosen attack.
struct AttackPlan {
  /// Indices into the group table handed to worst_case_attack, ascending
  /// for exhaustive plans, selection order for greedy ones.
  std::vector<std::size_t> group_indices;
  /// Union of the chosen groups' links.
  util::DynamicBitset failed_links;
  DamageAssessment damage;
  /// True when every k-combination was enumerated (the plan is optimal for
  /// the damage ordering); false means greedy marginal selection.
  bool exhaustive = false;
};

/// Finds the worst simultaneous failure of at most `budget.max_groups`
/// groups.  Damage ordering: more dropped connections first, then more
/// revenue at risk, then more victims; ties keep the lexicographically
/// first combination, so plans are deterministic.
[[nodiscard]] AttackPlan worst_case_attack(const net::Network& network,
                                           const std::vector<SrlgGroup>& groups,
                                           const AdversaryBudget& budget);

}  // namespace eqos::fault
