// Fault scenarios: scripted multi-failure scripts plus stochastic
// fault-process configuration.
//
// The paper's dependability model assumes the single-link-failure scenario;
// a FaultScenario is how the testbed expresses everything beyond it: an
// ordered script of timed fault events (link, node, and SRLG-group failures
// and repairs) merged with stochastic generators (per-link Poisson failure
// processes, correlated bursts sampled from an SRLG table, and exponential /
// Weibull / deterministic repair times).  A scenario is pure data — the
// FaultInjector executes it against a Network — so the same script replays
// bit-identically for a fixed seed.
//
// Scenarios can also be written as small text scripts (see parse()):
//
//     # SRLG "conduit7" takes out three fibers at once
//     group conduit7 3 7 12
//     fail-group 50 conduit7
//     repair-group 180 conduit7
//     fail-link 60 4
//     repair-link 90 4
//     link-rate 1e-4            # uniform per-link Poisson failures
//     link-rate 7 5e-4          # per-link override
//     group-rate 1e-3           # correlated bursts from the SRLG table
//     group-weight conduit7 2.5
//     repair weibull 1.5 80     # shape, scale
//     auto-repair on
//     horizon 5000
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace eqos::fault {

/// What a scripted fault event does.
enum class FaultKind : std::uint8_t {
  kFailLink,
  kFailNode,    ///< atomically fails every incident link
  kFailGroup,   ///< SRLG: a named set of links failing together
  kRepairLink,
  kRepairNode,
  kRepairGroup,
};

[[nodiscard]] bool is_failure(FaultKind kind) noexcept;

/// One scripted fault event.  `target` is a link id, node id, or group
/// index depending on `kind`.
struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::kFailLink;
  std::size_t target = 0;
};

/// A shared-risk link group: links that fail together (same conduit, duct,
/// or span).  `weight` biases stochastic burst sampling.
struct SrlgGroup {
  std::string name;
  std::vector<topology::LinkId> links;
  double weight = 1.0;
};

/// How long a failed link stays down under automatic repair.
enum class RepairDistribution : std::uint8_t {
  kExponential,    ///< rate parameter (the paper's model)
  kWeibull,        ///< shape / scale (aging repair crews)
  kDeterministic,  ///< fixed outage of `scale` time units
};

struct RepairModel {
  RepairDistribution kind = RepairDistribution::kExponential;
  double rate = 1e-2;    ///< exponential rate
  double shape = 1.0;    ///< Weibull shape k
  double scale = 100.0;  ///< Weibull scale / deterministic outage

  /// Draws one repair delay.
  [[nodiscard]] double sample(util::Rng& rng) const;
  void validate() const;
};

/// Stochastic fault-process configuration (all rates per unit simulated
/// time; zero disables a process).
struct StochasticFaultConfig {
  /// Uniform per-link Poisson failure rate.
  double link_failure_rate = 0.0;
  /// Per-link overrides (link id -> rate); entries replace the uniform rate.
  std::vector<std::pair<topology::LinkId, double>> per_link_rates;
  /// Rate of correlated bursts; each burst fails one SRLG group sampled by
  /// weight from the scenario's group table.
  double group_failure_rate = 0.0;
  /// Repair-time model for automatically repaired failures.
  RepairModel repair;
  /// Automatically repair stochastic failures after a sampled delay.
  bool auto_repair = true;
  /// Stop generating stochastic failures past this simulated time.
  double horizon = std::numeric_limits<double>::infinity();

  [[nodiscard]] double rate_for(topology::LinkId link) const;
  void validate(std::size_t num_links) const;
};

/// An ordered, validated script of fault events plus stochastic generators.
class FaultScenario {
 public:
  /// Defines (or extends) an SRLG.  Returns the group index.
  std::size_t define_group(std::string name, std::vector<topology::LinkId> links,
                           double weight = 1.0);
  /// Index of a named group; throws std::invalid_argument when unknown.
  [[nodiscard]] std::size_t group_index(std::string_view name) const;

  FaultScenario& fail_link(double time, topology::LinkId link);
  FaultScenario& fail_node(double time, topology::NodeId node);
  FaultScenario& fail_group(double time, std::string_view name);
  FaultScenario& repair_link(double time, topology::LinkId link);
  FaultScenario& repair_node(double time, topology::NodeId node);
  FaultScenario& repair_group(double time, std::string_view name);

  [[nodiscard]] const std::vector<SrlgGroup>& groups() const noexcept { return groups_; }
  /// Scripted events sorted by time (ties keep insertion order).
  [[nodiscard]] std::vector<FaultEvent> sorted_events() const;
  [[nodiscard]] std::size_t num_events() const noexcept { return events_.size(); }

  [[nodiscard]] StochasticFaultConfig& stochastic() noexcept { return stochastic_; }
  [[nodiscard]] const StochasticFaultConfig& stochastic() const noexcept {
    return stochastic_;
  }

  /// Apply the stochastic repair model to scripted failures too (defaults
  /// to false: a script repairs exactly what it says).
  bool auto_repair_scripted = false;

  /// Checks every event and group against the topology bounds; throws
  /// std::invalid_argument on the first inconsistency.
  void validate(std::size_t num_links, std::size_t num_nodes) const;

  /// Parses the text format documented at the top of this header.
  /// Throws std::invalid_argument with a line number on malformed input.
  [[nodiscard]] static FaultScenario parse(std::istream& in);
  [[nodiscard]] static FaultScenario parse_string(const std::string& text);

 private:
  std::vector<FaultEvent> events_;
  std::vector<SrlgGroup> groups_;
  StochasticFaultConfig stochastic_;
};

}  // namespace eqos::fault
