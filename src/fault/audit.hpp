// Runtime invariant auditor.
//
// Two layers of defence against ledger drift under fault churn:
//
//  * Network::audit() (net/network.cpp) checks the network's *internal*
//    consistency — its own caches against its own registries.
//  * audit_network() here recomputes every per-link ledger from scratch
//    through the public observer API only (walking active connections and
//    summing what each should hold) and compares the results against the
//    LinkState ledgers and the BackupManager's cached reservations.  A bug
//    that corrupts both a cache and its registry in the same way slips past
//    the internal audit but not this external recomputation.
//
// InvariantAuditor bundles both and is designed to be wired into a
// FaultInjector (audit after every injected fault) or called from tests
// after every workload event.
#pragma once

#include <cstddef>
#include <string>

namespace eqos::net {
class Network;
}

namespace eqos::fault {

/// From-scratch external recomputation of all per-link ledgers via the
/// public API, compared against the Network's own bookkeeping.  Throws
/// std::logic_error describing the first discrepancy.
void audit_network(const net::Network& network);

/// Convenience wrapper running Network::audit() plus audit_network(), with
/// violations rethrown carrying a caller-supplied context string (e.g.
/// "after fail-link 7 @t=50").
class InvariantAuditor {
 public:
  explicit InvariantAuditor(const net::Network& network) : network_(&network) {}

  /// Runs the full audit; throws std::logic_error prefixed with `context`
  /// on the first violation.
  void check(const std::string& context);

  /// Number of successful audits performed.
  [[nodiscard]] std::size_t checks_run() const noexcept { return checks_; }

 private:
  const net::Network* network_;
  std::size_t checks_ = 0;
};

}  // namespace eqos::fault
