#include "fault/audit.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/link_state.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"

namespace eqos::fault {

namespace {

[[noreturn]] void violation(const std::string& what) {
  // annotate_audit_failure dumps the trace flight recorder (when enabled)
  // and appends the dump path; it is a no-op for messages already annotated
  // by a nested audit (e.g. BackupManager::audit below).
  throw std::logic_error(
      obs::annotate_audit_failure("audit_network: " + what));
}

bool close(double a, double b) {
  return std::abs(a - b) <= net::LinkState::kEpsilon;
}

}  // namespace

void audit_network(const net::Network& network) {
  const std::size_t num_links = network.graph().num_links();
  std::vector<double> committed(num_links, 0.0);
  std::vector<double> elastic(num_links, 0.0);
  std::vector<std::size_t> backup_count(num_links, 0);

  for (net::ConnectionId id : network.active_ids()) {
    const net::DrConnection& c = network.connection(id);
    if (c.recovering) {
      // A recovering victim parks with its primary resources released
      // (mirrors Network::audit()): the stale primary path is kept only as
      // splice context, so it is exempt from the ledger walk and the
      // failed-link check.  Its surviving backup reservations still count.
      if (!network.config().recovery_protocol) {
        violation("connection " + std::to_string(id) +
                  " recovering with the recovery protocol off");
      }
      if (c.extra_quanta != 0) {
        violation("connection " + std::to_string(id) +
                  " recovering but still holds an elastic grant");
      }
    } else {
      const double reserved = c.reserved_kbps();
      if (reserved < c.qos.bmin_kbps - net::LinkState::kEpsilon ||
          reserved > c.qos.bmax_kbps + net::LinkState::kEpsilon) {
        violation("connection " + std::to_string(id) + " reserved " +
                  std::to_string(reserved) + " outside [bmin, bmax]");
      }
      for (topology::LinkId l : c.primary.links) {
        committed[l] += c.qos.bmin_kbps;
        elastic[l] += c.extra_kbps();
        if (network.link_state(l).failed()) {
          violation("connection " + std::to_string(id) + " active path crosses failed link " +
                    std::to_string(l));
        }
      }
    }
    // Backup-set invariants: every channel clear of failed links, siblings
    // pairwise link-disjoint (the scheme's disjointness promise), and no
    // channel sharing a declared risk group with its primary or a sibling
    // when the SRLG policy requires it.
    util::DynamicBitset sibling_union(num_links);
    for (std::size_t bi = 0; bi < c.backups.size(); ++bi) {
      const net::BackupChannel& ch = c.backups[bi];
      for (topology::LinkId l : ch.path.links) {
        ++backup_count[l];
        if (network.link_state(l).failed()) {
          violation("connection " + std::to_string(id) + " backup parked on failed link " +
                    std::to_string(l));
        }
      }
      if (ch.links.intersects(sibling_union)) {
        violation("connection " + std::to_string(id) +
                  " backup channels share a link");
      }
      if (network.config().srlg_policy == net::SrlgPolicy::kRequire) {
        for (const util::DynamicBitset& g : network.risk_groups()) {
          if (!g.intersects(ch.links)) continue;
          if (g.intersects(c.primary_links)) {
            violation("connection " + std::to_string(id) +
                      " backup shares an SRLG with its primary");
          }
          if (g.intersects(sibling_union)) {
            violation("connection " + std::to_string(id) +
                      " backup channels share an SRLG");
          }
        }
      }
      sibling_union |= ch.links;
    }
  }

  for (topology::LinkId l = 0; l < num_links; ++l) {
    const net::LinkState& s = network.link_state(l);
    const std::string where = "link " + std::to_string(l);
    if (!close(s.committed_min(), committed[l])) {
      violation(where + ": committed_min ledger " + std::to_string(s.committed_min()) +
                " != recomputed " + std::to_string(committed[l]));
    }
    if (!close(s.elastic_granted(), elastic[l])) {
      violation(where + ": elastic_granted ledger " + std::to_string(s.elastic_granted()) +
                " != recomputed " + std::to_string(elastic[l]));
    }
    if (network.backups().count_on_link(l) != backup_count[l]) {
      violation(where + ": backup registry holds " +
                std::to_string(network.backups().count_on_link(l)) + " entries, walk found " +
                std::to_string(backup_count[l]));
    }
    // Every registered id must belong to an active connection whose backup
    // traverses this link (catches a stale slot left by swap-erase).
    for (net::ConnectionId id : network.backups().backups_on_link(l)) {
      if (!network.is_active(id)) {
        violation(where + ": backup registry references inactive connection " +
                  std::to_string(id));
      }
      const net::DrConnection& c = network.connection(id);
      if (!c.backup_on_link(l)) {
        violation(where + ": registered backup of connection " + std::to_string(id) +
                  " does not traverse the link");
      }
    }
    // recompute_reservation() rebuilds R_l from the registry entries; the
    // cached value and the LinkState mirror must both agree with it.
    const double fresh = network.backups().recompute_reservation(l);
    if (!close(network.backups().reservation(l), fresh)) {
      violation(where + ": cached backup reservation " +
                std::to_string(network.backups().reservation(l)) + " != recomputed " +
                std::to_string(fresh));
    }
    if (!close(s.backup_reserved(), fresh)) {
      violation(where + ": LinkState backup_reserved " + std::to_string(s.backup_reserved()) +
                " != recomputed " + std::to_string(fresh));
    }
    // Capacity conservation.  Backup reservations may have been rendered
    // infeasible by a failure elsewhere (overbooking debt the network is
    // still settling), but committed minimums and elastic grants are hard.
    if (s.committed_min() + s.elastic_granted() > s.capacity() + net::LinkState::kEpsilon) {
      violation(where + ": committed + elastic " +
                std::to_string(s.committed_min() + s.elastic_granted()) + " exceeds capacity " +
                std::to_string(s.capacity()));
    }
    if (committed[l] > 0.0 && s.failed()) {
      violation(where + ": failed link still carries committed bandwidth");
    }
  }

  // BackupManager internal bookkeeping (swap-erase slot caches, flat
  // scenario ledger ordering, interned primary sets).
  try {
    network.backups().audit();
  } catch (const std::logic_error& e) {
    violation(e.what());
  }
}

void InvariantAuditor::check(const std::string& context) {
  try {
    network_->audit();
    audit_network(*network_);
  } catch (const std::logic_error& e) {
    // The innermost audit already dumped the flight recorder and tagged the
    // message; annotate here too so a dump exists even for audit paths that
    // bypass the instrumented sites (idempotent on tagged messages).
    throw std::logic_error(obs::annotate_audit_failure("invariant violation " + context +
                                                       ": " + e.what()));
  }
  ++checks_;
}

}  // namespace eqos::fault
