// Fault injector: executes scenarios against a Network through any
// discrete-event scheduler.
//
// The injector is the single owner of the fault processes that used to live
// ad hoc inside sim::Simulator:
//
//  * legacy mode (enable_legacy_poisson) reproduces the old network-wide
//    Poisson failure process *draw for draw* — pick a uniformly random
//    alive link, fail it, schedule an exponential repair — so existing
//    benches produce bit-identical results for the same seed;
//  * scenario mode (load_scenario) replays a FaultScenario: scripted events
//    at absolute times, per-link Poisson failure processes, correlated SRLG
//    bursts, and exponential/Weibull/deterministic auto-repairs.  Every
//    stochastic process gets its own split rng stream, so adding one
//    process never perturbs another and the whole run is deterministic for
//    a fixed seed.
//
// The injector talks to its host through a type-erased Scheduler (so
// fault/ does not depend on sim/'s EventQueue) and reports what it did
// through Hooks — the Simulator wires these to its recorder and stats; the
// tests wire them to capture FailureReport sequences.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "fault/scenario.hpp"
#include "net/events.hpp"
#include "net/network.hpp"
#include "state/serial.hpp"
#include "util/rng.hpp"

namespace eqos::fault {

class InvariantAuditor;

/// Type-erased discrete-event scheduler the injector schedules itself on.
struct Scheduler {
  std::function<double()> now;
  /// Schedules an action at an absolute time (>= now()).
  std::function<void(double, std::function<void()>)> schedule_at;
  /// Optional: schedules with a serializable (kind, a, b) tag so the host's
  /// event queue can checkpoint the event.  When absent, schedule_at is used
  /// and the injector's events are untagged (not checkpointable).
  std::function<void(double, std::uint32_t, std::uint64_t, std::uint64_t,
                     std::function<void()>)>
      schedule_tagged;
  /// Optional: schedules a tag-only POD event — no closure at all.  A host
  /// providing this must route the injector's kinds (16..21) back to
  /// FaultInjector::dispatch when they fire.  Preferred over the closure
  /// paths when present.
  std::function<void(double, std::uint32_t, std::uint64_t, std::uint64_t)>
      schedule_event;
};

/// EventTag kinds the injector uses on a tagging scheduler (sim::EventQueue
/// convention: the Simulator owns kinds 1..15, the injector 16+).
inline constexpr std::uint32_t kTagLegacyFailure = 16;  ///< next legacy Poisson failure
inline constexpr std::uint32_t kTagLegacyRepair = 17;   ///< a = link id
inline constexpr std::uint32_t kTagScripted = 18;       ///< a = scripted event index
inline constexpr std::uint32_t kTagLinkProcess = 19;    ///< a = link process index
inline constexpr std::uint32_t kTagBurst = 20;          ///< next SRLG burst
inline constexpr std::uint32_t kTagAutoRepair = 21;     ///< a = link id

/// Host callbacks.  All optional; fired in the order listed within one
/// injected event.
struct Hooks {
  /// Before the event mutates the network (e.g. advance a recorder to the
  /// event's timestamp).  Receives the current time.
  std::function<void(double)> before_event;
  /// After each individual link failure, with the network's report.
  std::function<void(const net::FailureReport&)> on_failure;
  /// After a failure event completes (once per event, even when it failed
  /// multiple links or found none alive) — the "countable event" signal.
  std::function<void()> on_fault_event;
  /// After each repair is applied.
  std::function<void()> on_repair;
};

/// What the injector has done so far.
struct InjectorStats {
  std::size_t scripted_failures = 0;  ///< scripted fail-* events fired
  std::size_t scripted_repairs = 0;   ///< scripted repair-* events fired
  std::size_t poisson_failures = 0;   ///< per-link / legacy Poisson failures
  std::size_t burst_failures = 0;     ///< SRLG burst events fired
  std::size_t auto_repairs = 0;       ///< sampled-delay repairs applied
  std::size_t skipped_failures = 0;   ///< fired on an already-failed target
  [[nodiscard]] std::size_t total_failure_events() const noexcept {
    return scripted_failures + poisson_failures + burst_failures;
  }
};

/// Drives fault processes against a network.  Non-copyable and non-movable:
/// scheduled closures capture `this`.
class FaultInjector {
 public:
  /// The network, scheduler target, and hook targets must outlive the
  /// injector (and any events it has scheduled).
  FaultInjector(net::Network& network, Scheduler scheduler, Hooks hooks = {});

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Reproduces the legacy Simulator failure process exactly: a single
  /// network-wide Poisson process with `failure_rate`; each firing picks a
  /// uniformly random alive link (skipping the event when none is), fails
  /// it, and schedules its repair after an exponential(repair_rate) delay.
  /// All draws come from `rng` in the legacy order, so a Simulator run with
  /// the same seed replays bit-identically.
  void enable_legacy_poisson(double failure_rate, double repair_rate, util::Rng rng);

  /// Loads a scenario: schedules its scripted events at their absolute
  /// times and starts its stochastic processes.  `rng` seeds independent
  /// split streams (scripted repairs first, then per-link processes in
  /// ascending link order, then the SRLG burst process).  Validates the
  /// scenario against the network's topology first.
  void load_scenario(const FaultScenario& scenario, util::Rng rng);

  /// Audits the network after every injected event (nullptr detaches).
  void set_auditor(InvariantAuditor* auditor) noexcept { auditor_ = auditor; }

  [[nodiscard]] const InjectorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] net::Network& network() noexcept { return network_; }

  // ---- Checkpointing --------------------------------------------------------

  /// Serializes the injector's evolving state: every rng engine state and
  /// the stats counters.  Static configuration (scenario structure, rates)
  /// is NOT serialized — a restore host first reconstructs the injector the
  /// same way as the original run (enable_legacy_poisson / load_scenario
  /// with the same inputs), then overwrites the evolving state.
  void save_state(state::Buffer& out) const;

  /// Restores state saved by save_state().  Throws state::CorruptError when
  /// the checkpoint does not match this injector's configuration (different
  /// mode, different per-link process set).
  void load_state(state::Buffer& in);

  /// Turns an injector EventTag (kind 16+) back into its closure during an
  /// event-queue restore.  Returns null for kinds the injector does not own.
  [[nodiscard]] std::function<void()> rebuild_action(std::uint32_t kind, std::uint64_t a);

  /// Executes an injector event by tag — the POD fast path a
  /// Scheduler::schedule_event host routes fired events through.  Throws
  /// std::logic_error for kinds the injector does not own.
  void dispatch(std::uint32_t kind, std::uint64_t a);

  /// The link driven by per-link process `index` (kTagLinkProcess operand),
  /// or nullopt when out of range.  Lets a sharded host map a process event
  /// to the shard owning its link.
  [[nodiscard]] std::optional<topology::LinkId> process_link(std::size_t index) const {
    if (index >= link_processes_.size()) return std::nullopt;
    return link_processes_[index].first;
  }

 private:
  /// Schedules the event named by (kind, a) through schedule_event when
  /// available (no closure), else through schedule_tagged / schedule_at
  /// with the rebuilt closure.
  void sched(double time, std::uint32_t kind, std::uint64_t a);

  // Legacy mode.
  void do_legacy_failure();
  void do_legacy_repair(topology::LinkId link);

  // Scenario mode.
  void apply_scripted(const FaultEvent& event);
  void fire_link_process(std::size_t process);
  void fire_burst_process();
  /// Fails one link (idempotence-aware), reports it, and schedules its
  /// auto-repair when `auto_repair` asks for it.  Returns whether the link
  /// was alive.
  bool inject_link_failure(topology::LinkId link, bool auto_repair, util::Rng& repair_rng);
  void schedule_auto_repair(topology::LinkId link, util::Rng& repair_rng);
  void do_auto_repair(topology::LinkId link);
  void audit_after(const char* what, std::size_t target);

  net::Network& network_;
  Scheduler scheduler_;
  Hooks hooks_;
  InvariantAuditor* auditor_ = nullptr;
  InjectorStats stats_;

  // Legacy process state.
  double legacy_failure_rate_ = 0.0;
  double legacy_repair_rate_ = 0.0;
  std::optional<util::Rng> legacy_rng_;

  // Scenario state.
  std::vector<SrlgGroup> groups_;
  StochasticFaultConfig stochastic_;
  bool auto_repair_scripted_ = false;
  /// The scenario's scripted events in firing order; scheduled closures
  /// capture an index into this vector so they can be tagged and rebuilt.
  std::vector<FaultEvent> scripted_events_;
  std::optional<util::Rng> scripted_rng_;
  /// Per-link Poisson streams, parallel to rates_ (only links with a
  /// positive rate get a stream).
  std::vector<std::pair<topology::LinkId, util::Rng>> link_processes_;
  std::vector<double> link_rates_;
  std::optional<util::Rng> burst_rng_;
};

}  // namespace eqos::fault
