#include "sim/recorder.hpp"

#include <cassert>
#include <stdexcept>

namespace eqos::sim {

matrix::Matrix row_normalize(const matrix::Matrix& counts) {
  matrix::Matrix out(counts.rows(), counts.cols());
  for (std::size_t i = 0; i < counts.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < counts.cols(); ++j) row_sum += counts(i, j);
    if (row_sum <= 0.0) continue;
    for (std::size_t j = 0; j < counts.cols(); ++j) out(i, j) = counts(i, j) / row_sum;
  }
  return out;
}

TransitionRecorder::TransitionRecorder(const net::ElasticQosSpec& qos, double start_time,
                                       ClassFilter class_filter)
    : n_(qos.num_states()),
      qos_(qos),
      class_filter_(std::move(class_filter)),
      last_time_(start_time),
      a_counts_(n_, n_),
      b_counts_(n_, n_),
      t_counts_(n_, n_),
      f_counts_(n_, n_),
      occupancy_area_(n_, 0.0) {
  qos.validate();
}

bool TransitionRecorder::matches(const net::Network& network,
                                 net::ConnectionId id) const {
  if (!class_filter_) return true;
  return class_filter_(network.connection(id));
}

std::size_t TransitionRecorder::count_matching(const net::Network& network) const {
  if (!class_filter_) return network.num_active();
  std::size_t n = 0;
  for (net::ConnectionId id : network.active_ids())
    if (class_filter_(network.connection(id))) ++n;
  return n;
}

void TransitionRecorder::advance_to(double time, const net::Network& network) {
  if (time < last_time_)
    throw std::invalid_argument("recorder: time must be non-decreasing");
  const double dt = time - last_time_;
  last_time_ = time;
  if (dt == 0.0) return;
  double bandwidth_sum = 0.0;
  std::size_t counted = 0;
  std::size_t unprotected = 0;
  for (net::ConnectionId id : network.active_ids()) {
    const net::DrConnection& c = network.connection(id);
    if (class_filter_ && !class_filter_(c)) continue;
    const std::size_t state = std::min(c.extra_quanta, n_ - 1);
    occupancy_area_[state] += dt;
    bandwidth_sum += c.reserved_kbps();
    ++counted;
    if (!c.has_backup()) ++unprotected;
  }
  bandwidth_area_ += dt * bandwidth_sum;
  channel_area_ += dt * static_cast<double>(counted);
  unprotected_area_ += dt * static_cast<double>(unprotected);
}

void TransitionRecorder::count_changes(const std::vector<net::StateChange>& changes,
                                       const net::Network& network,
                                       matrix::Matrix& direct_counts,
                                       matrix::Matrix& indirect_counts,
                                       std::size_t* direct,
                                       std::size_t* indirect) const {
  for (const net::StateChange& ch : changes) {
    if (!matches(network, ch.id)) continue;
    const std::size_t from = std::min(ch.old_quanta, n_ - 1);
    const std::size_t to = std::min(ch.new_quanta, n_ - 1);
    if (ch.chaining == net::Chaining::kDirect) {
      direct_counts(from, to) += 1.0;
      if (direct) ++*direct;
    } else {
      indirect_counts(from, to) += 1.0;
      if (indirect) ++*indirect;
    }
  }
}

void TransitionRecorder::on_arrival(const net::ArrivalOutcome& outcome,
                                    const net::Network& network) {
  if (!outcome.accepted) return;  // rejections perturb nobody
  ++arrivals_;
  std::size_t direct = 0;
  std::size_t indirect = 0;
  count_changes(outcome.changes, network, a_counts_, b_counts_, &direct, &indirect);
  direct_pairs_arrival_ += static_cast<double>(direct);
  indirect_pairs_arrival_ += static_cast<double>(indirect);
  // Eligible = class members that existed before this arrival.
  std::size_t eligible = count_matching(network);
  if (matches(network, outcome.id) && eligible > 0) --eligible;
  eligible_pairs_arrival_ += static_cast<double>(eligible);
}

void TransitionRecorder::on_termination(const net::TerminationReport& report,
                                        const net::Network& network) {
  ++terminations_;
  std::size_t direct = 0;
  matrix::Matrix unused(n_, n_);
  count_changes(report.changes, network, t_counts_, unused, &direct, nullptr);
  direct_pairs_termination_ += static_cast<double>(direct);
  eligible_pairs_termination_ += static_cast<double>(count_matching(network));
}

void TransitionRecorder::on_failure(const net::FailureReport& report,
                                    const net::Network& network) {
  ++failures_;
  // Dependability accounting first: a failure that activated nothing can
  // still have stranded, rescued, or dropped victims.
  losses_ += report.drop_causes;
  unprotected_victims_ += report.unprotected_victims;
  reestablished_pair_ += report.reestablished_pair;
  reestablished_degraded_ += report.reestablished_degraded;
  if (report.backups_activated == 0) return;  // no channel was perturbed
  std::size_t direct = 0;
  matrix::Matrix indirect_ignored(n_, n_);
  count_changes(report.changes, network, f_counts_, indirect_ignored, &direct, nullptr);
  direct_pairs_failure_ += static_cast<double>(direct);
  // Channels eligible for chaining: surviving class members that were not
  // themselves hit (the activated switched paths; the dropped are gone).
  std::size_t eligible = count_matching(network);
  for (net::ConnectionId id : report.activated_ids)
    if (network.is_active(id) && matches(network, id) && eligible > 0) --eligible;
  eligible_pairs_failure_ += static_cast<double>(eligible);
}

ModelEstimates TransitionRecorder::estimates(double end_time,
                                             const net::Network& network) const {
  // Close the occupancy window on a copy of the accumulators.
  TransitionRecorder closed = *this;
  closed.advance_to(end_time, network);

  ModelEstimates est;
  est.pf = closed.eligible_pairs_arrival_ > 0.0
               ? closed.direct_pairs_arrival_ / closed.eligible_pairs_arrival_
               : 0.0;
  est.ps = closed.eligible_pairs_arrival_ > 0.0
               ? closed.indirect_pairs_arrival_ / closed.eligible_pairs_arrival_
               : 0.0;
  est.pf_termination = closed.eligible_pairs_termination_ > 0.0
                           ? closed.direct_pairs_termination_ /
                                 closed.eligible_pairs_termination_
                           : 0.0;
  est.pf_failure = closed.eligible_pairs_failure_ > 0.0
                       ? closed.direct_pairs_failure_ / closed.eligible_pairs_failure_
                       : 0.0;
  est.arrival_move = row_normalize(closed.a_counts_);
  est.indirect_move = row_normalize(closed.b_counts_);
  est.termination_move = row_normalize(closed.t_counts_);
  est.failure_move = row_normalize(closed.f_counts_);
  est.arrival_counts = closed.a_counts_;
  est.indirect_counts = closed.b_counts_;
  est.termination_counts = closed.t_counts_;
  est.failure_counts = closed.f_counts_;
  est.arrivals_observed = closed.arrivals_;
  est.terminations_observed = closed.terminations_;
  est.failures_observed = closed.failures_;

  est.mean_bandwidth_kbps =
      closed.channel_area_ > 0.0 ? closed.bandwidth_area_ / closed.channel_area_ : 0.0;
  est.losses = closed.losses_;
  est.unprotected_victims = closed.unprotected_victims_;
  est.reestablished_pair = closed.reestablished_pair_;
  est.reestablished_degraded = closed.reestablished_degraded_;
  est.unprotected_time = closed.unprotected_area_;
  est.unprotected_fraction =
      closed.channel_area_ > 0.0 ? closed.unprotected_area_ / closed.channel_area_ : 0.0;
  est.occupancy.assign(n_, 0.0);
  double total = 0.0;
  for (double a : closed.occupancy_area_) total += a;
  if (total > 0.0)
    for (std::size_t i = 0; i < n_; ++i) est.occupancy[i] = closed.occupancy_area_[i] / total;
  return est;
}

void TransitionRecorder::save_state(state::Buffer& out) const {
  const auto put_matrix = [&out](const matrix::Matrix& m) {
    out.put_u64(m.rows());
    out.put_u64(m.cols());
    out.put_f64_vec(m.data());
  };
  out.put_u64(n_);
  out.put_f64(last_time_);
  out.put_f64(direct_pairs_arrival_);
  out.put_f64(indirect_pairs_arrival_);
  out.put_f64(eligible_pairs_arrival_);
  out.put_f64(direct_pairs_termination_);
  out.put_f64(eligible_pairs_termination_);
  out.put_f64(direct_pairs_failure_);
  out.put_f64(eligible_pairs_failure_);
  put_matrix(a_counts_);
  put_matrix(b_counts_);
  put_matrix(t_counts_);
  put_matrix(f_counts_);
  out.put_u64(arrivals_);
  out.put_u64(terminations_);
  out.put_u64(failures_);
  out.put_f64_vec(occupancy_area_);
  out.put_f64(bandwidth_area_);
  out.put_f64(channel_area_);
  out.put_u64(losses_.primary_hit);
  out.put_u64(losses_.backup_hit_while_active);
  out.put_u64(losses_.double_hit);
  out.put_u64(losses_.reestablish_failed);
  out.put_u64(losses_.survived_backup_set);
  out.put_u64(unprotected_victims_);
  out.put_u64(reestablished_pair_);
  out.put_u64(reestablished_degraded_);
  out.put_f64(unprotected_area_);
}

void TransitionRecorder::load_state(state::Buffer& in) {
  const auto get_matrix = [&in](matrix::Matrix& m) {
    const std::size_t rows = static_cast<std::size_t>(in.get_u64());
    const std::size_t cols = static_cast<std::size_t>(in.get_u64());
    if (rows != m.rows() || cols != m.cols())
      throw state::CorruptError("checkpoint recorder matrix shape mismatch");
    const std::vector<double> data = in.get_f64_vec();
    if (data.size() != rows * cols)
      throw state::CorruptError("checkpoint recorder matrix payload size mismatch");
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j) m(i, j) = data[i * cols + j];
  };
  if (in.get_u64() != n_)
    throw state::CorruptError(
        "checkpoint recorder state-space size differs from this recorder's QoS");
  last_time_ = in.get_f64();
  direct_pairs_arrival_ = in.get_f64();
  indirect_pairs_arrival_ = in.get_f64();
  eligible_pairs_arrival_ = in.get_f64();
  direct_pairs_termination_ = in.get_f64();
  eligible_pairs_termination_ = in.get_f64();
  direct_pairs_failure_ = in.get_f64();
  eligible_pairs_failure_ = in.get_f64();
  get_matrix(a_counts_);
  get_matrix(b_counts_);
  get_matrix(t_counts_);
  get_matrix(f_counts_);
  arrivals_ = static_cast<std::size_t>(in.get_u64());
  terminations_ = static_cast<std::size_t>(in.get_u64());
  failures_ = static_cast<std::size_t>(in.get_u64());
  occupancy_area_ = in.get_f64_vec();
  if (occupancy_area_.size() != n_)
    throw state::CorruptError("checkpoint recorder occupancy size mismatch");
  bandwidth_area_ = in.get_f64();
  channel_area_ = in.get_f64();
  losses_.primary_hit = in.get_u64();
  losses_.backup_hit_while_active = in.get_u64();
  losses_.double_hit = in.get_u64();
  losses_.reestablish_failed = in.get_u64();
  losses_.survived_backup_set = in.get_u64();
  unprotected_victims_ = static_cast<std::size_t>(in.get_u64());
  reestablished_pair_ = static_cast<std::size_t>(in.get_u64());
  reestablished_degraded_ = static_cast<std::size_t>(in.get_u64());
  unprotected_area_ = in.get_f64();
}

}  // namespace eqos::sim
