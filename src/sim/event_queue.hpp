// Discrete-event simulation core.
//
// A time-ordered queue of closures with a monotonically advancing clock.
// Ties are broken by insertion order so simulations are fully deterministic.
//
// Checkpointing: closures cannot be serialized, so every event that must
// survive a checkpoint carries an EventTag — a (kind, a, b) triple its owner
// knows how to turn back into a closure.  snapshot() emits the pending
// (time, seq, tag) entries; restore() rebuilds the heap by asking a caller-
// supplied Rebuilder for each tag's closure.  Because (time, seq) keys are
// unique, the rebuilt heap pops in exactly the original order, so a restored
// simulation replays event-for-event identically.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace eqos::sim {

/// Serializable identity of a scheduled event.  `kind` namespaces are owned
/// by the scheduling component (Simulator uses 1..15, FaultInjector 16+);
/// `a`/`b` are kind-specific operands (a link id, a scripted-event index).
struct EventTag {
  std::uint32_t kind = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Deterministic future-event list.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute `time` (>= now()).  Events at equal
  /// times fire in scheduling order.  Untagged events cannot be
  /// checkpointed — snapshot() throws if any are pending.
  void schedule(double time, Action action) { schedule(time, EventTag{}, std::move(action)); }

  /// Schedules a tagged (checkpointable) event.
  void schedule(double time, EventTag tag, Action action);

  /// Schedules `action` `delay` time units from now.
  void schedule_in(double delay, Action action) { schedule_in(delay, EventTag{}, std::move(action)); }
  void schedule_in(double delay, EventTag tag, Action action);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Pops and runs the earliest event, advancing the clock.  Returns false
  /// when the queue is empty.
  bool step();

  /// Runs events until the clock would pass `end_time`; the clock finishes
  /// at exactly `end_time`.  Returns the number of events executed.
  std::size_t run_until(double end_time);

  /// Discards all pending events (the clock keeps its value).
  void clear();

  // ---- Checkpointing --------------------------------------------------------

  /// One pending event as seen by a checkpoint.
  struct PendingEvent {
    double time = 0.0;
    std::uint64_t seq = 0;
    EventTag tag;
  };

  /// The pending events in (time, seq) order.  Throws std::logic_error if
  /// any pending event is untagged (kind == 0): such an event cannot be
  /// reconstructed, so the simulation is not checkpointable at this instant.
  [[nodiscard]] std::vector<PendingEvent> snapshot() const;

  /// The sequence number the next schedule() call would receive (serialized
  /// so post-restore scheduling continues the original numbering).
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// Turns a tag back into its closure during restore().
  using Rebuilder = std::function<Action(const EventTag&)>;

  /// Replaces the queue contents: clock set to `now`, next_seq to
  /// `next_seq`, and each event's closure rebuilt from its tag.  Throws
  /// std::invalid_argument if `rebuild` returns a null action.
  void restore(double now, std::uint64_t next_seq,
               const std::vector<PendingEvent>& events, const Rebuilder& rebuild);

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    EventTag tag;
    Action action;
  };
  /// std::push_heap/pop_heap build a max-heap, so "later" compares greater.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace eqos::sim
