// Discrete-event simulation core.
//
// A time-ordered queue of closures with a monotonically advancing clock.
// Ties are broken by insertion order so simulations are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace eqos::sim {

/// Deterministic future-event list.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute `time` (>= now()).  Events at equal
  /// times fire in scheduling order.
  void schedule(double time, Action action);

  /// Schedules `action` `delay` time units from now.
  void schedule_in(double delay, Action action);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

  /// Pops and runs the earliest event, advancing the clock.  Returns false
  /// when the queue is empty.
  bool step();

  /// Runs events until the clock would pass `end_time`; the clock finishes
  /// at exactly `end_time`.  Returns the number of events executed.
  std::size_t run_until(double end_time);

  /// Discards all pending events (the clock keeps its value).
  void clear();

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace eqos::sim
