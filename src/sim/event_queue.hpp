// Discrete-event simulation core.
//
// A time-ordered future-event list with a monotonically advancing clock.
// Ties are broken by insertion order so simulations are fully deterministic.
//
// Layout: a two-level calendar ("ladder") queue.  Near-future events live in
// a rung of lazily-sorted buckets spanning [rung_base, horizon); far-future
// events sit in one unsorted overflow vector.  When the rung drains, the
// overflow is partitioned into a fresh rung sized so each spill moves at
// most ~kMaxSpillEvents into buckets.  Pop order is the exact total order
// (time, seq) — identical to the classic binary heap this replaced —
// because same-time events always map to the same bucket and each bucket is
// sorted by (time, seq) before its first pop.
//
// Execution: events are 32-byte PODs.  An event scheduled through the
// tag-only overloads carries no closure at all — step() dispatches it to the
// per-kind handler registered once via set_handler() (Simulator owns kinds
// 1..15, FaultInjector 16+).  Closure-carrying events (untagged test/bench
// events, or tagged events scheduled with an explicit action) keep their
// std::function in a seq-keyed side table.
//
// Checkpointing: closures cannot be serialized, so every event that must
// survive a checkpoint carries an EventTag — a (kind, a, b) triple its owner
// knows how to turn back into a closure.  snapshot() emits the pending
// (time, seq, tag) entries; restore() asks a caller-supplied Rebuilder for
// each tag's closure (validating the tag), then re-enqueues the event on the
// handler fast path when one is registered for its kind.  Because
// (time, seq) keys are unique, a restored queue pops in exactly the
// original order, so a restored simulation replays event-for-event
// identically.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace eqos::sim {

/// Serializable identity of a scheduled event.  `kind` namespaces are owned
/// by the scheduling component (Simulator uses 1..15, FaultInjector 16+);
/// `a`/`b` are kind-specific operands (a link id, a scripted-event index).
struct EventTag {
  std::uint32_t kind = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Deterministic future-event list.
class EventQueue {
 public:
  using Action = std::function<void()>;
  /// Per-kind execution hook for tag-only (POD) events.
  using Handler = std::function<void(const EventTag&)>;

  /// Largest representable event kind (kinds share the event key's low 16
  /// bits with the closure flag).
  static constexpr std::uint32_t kMaxKind = 0x7fff;

  /// Registers the handler executed for tag-only events of `kind`
  /// (1..kMaxKind).  Handlers are registered once, before scheduling; a
  /// null handler or out-of-range kind throws std::invalid_argument.
  void set_handler(std::uint32_t kind, Handler handler);
  /// True iff a handler is registered for `kind`.
  [[nodiscard]] bool has_handler(std::uint32_t kind) const noexcept {
    return kind < handlers_.size() && static_cast<bool>(handlers_[kind]);
  }

  /// Schedules `action` at absolute `time` (>= now()).  Events at equal
  /// times fire in scheduling order.  Untagged events cannot be
  /// checkpointed — snapshot() throws if any are pending.
  void schedule(double time, Action action) { schedule(time, EventTag{}, std::move(action)); }

  /// Schedules a tagged (checkpointable) event with an explicit closure.
  void schedule(double time, EventTag tag, Action action);

  /// Schedules a tag-only POD event dispatched to the kind's registered
  /// handler — the allocation-free hot path.  Throws std::invalid_argument
  /// if no handler is registered for `tag.kind`.
  void schedule(double time, EventTag tag);

  /// Schedules `action` `delay` time units from now.
  void schedule_in(double delay, Action action) { schedule_in(delay, EventTag{}, std::move(action)); }
  void schedule_in(double delay, EventTag tag, Action action);
  void schedule_in(double delay, EventTag tag);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Pops and runs the earliest event, advancing the clock.  Returns false
  /// when the queue is empty.
  bool step();

  /// Runs events until the clock would pass `end_time`; the clock finishes
  /// at exactly `end_time`.  Returns the number of events executed.
  std::size_t run_until(double end_time);

  /// Discards all pending events (the clock keeps its value; registered
  /// handlers survive).
  void clear();

  // ---- Checkpointing --------------------------------------------------------

  /// One pending event as seen by a checkpoint.
  struct PendingEvent {
    double time = 0.0;
    std::uint64_t seq = 0;
    EventTag tag;
  };

  /// The pending events in (time, seq) order.  Throws std::logic_error if
  /// any pending event is untagged (kind == 0): such an event cannot be
  /// reconstructed, so the simulation is not checkpointable at this instant.
  [[nodiscard]] std::vector<PendingEvent> snapshot() const;

  /// The sequence number the next schedule() call would receive (serialized
  /// so post-restore scheduling continues the original numbering).
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// Turns a tag back into its closure during restore().
  using Rebuilder = std::function<Action(const EventTag&)>;

  /// Replaces the queue contents: clock set to `now`, next_seq to
  /// `next_seq`, and each event's closure rebuilt from its tag.  Throws
  /// std::invalid_argument if `rebuild` returns a null action.  Events
  /// whose kind has a registered handler re-enter the POD fast path (the
  /// rebuilt closure still validates the tag, then is discarded).
  void restore(double now, std::uint64_t next_seq,
               const std::vector<PendingEvent>& events, const Rebuilder& rebuild);

  /// Pure maintenance: re-primes the rung from the overflow if drained and
  /// pre-sorts every live bucket covering times up to `horizon`.  Pop order
  /// and contents are unchanged — this only moves sorting work that step()
  /// would do lazily to a moment of the caller's choosing, which is what
  /// lets a sharded engine run per-shard maintenance concurrently inside a
  /// conservative time window.  Idempotent; safe on an empty queue.
  void prepare(double horizon);

 private:
  /// ShardedEngine drives K ladders through insert/front_event/pop_front
  /// with globally-assigned sequence numbers and its own dispatch tables.
  friend class ShardedEngine;
  /// One pending event.  `key` packs (seq << 16) | closure-flag | kind so a
  /// single integer compare breaks time ties by insertion seq (seqs are
  /// unique, and they occupy the high bits, so key order == seq order).
  struct Event {
    double time;
    std::uint64_t key;
    std::uint64_t a;
    std::uint64_t b;
  };
  static_assert(sizeof(Event) == 32, "events must stay 32-byte PODs");

  static constexpr std::uint64_t kClosureFlag = 0x8000;
  static constexpr unsigned kSeqShift = 16;
  static constexpr std::size_t kNumBuckets = 256;
  /// Target cap on events moved bucket-ward per spill; bounds the work of
  /// re-priming the rung from a huge overflow.
  static constexpr std::size_t kMaxSpillEvents = 32 * 1024;

  static constexpr std::uint32_t kind_of(std::uint64_t key) noexcept {
    return static_cast<std::uint32_t>(key & kMaxKind);
  }
  static constexpr std::uint64_t seq_of(std::uint64_t key) noexcept {
    return key >> kSeqShift;
  }

  /// Ascending (time, key) — the pop order.
  struct Earlier {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time != b.time ? a.time < b.time : a.key < b.key;
    }
  };

  [[nodiscard]] std::uint64_t take_seq();
  void insert(double time, std::uint64_t key, std::uint64_t a, std::uint64_t b);
  [[nodiscard]] std::size_t bucket_index(double time) const noexcept;
  /// Re-primes the rung from the overflow vector (rung empty, far_ not).
  void spill();
  /// The earliest pending event, or nullptr when empty.  Advances
  /// cur_bucket_ and sorts the front bucket as needed.
  [[nodiscard]] const Event* front_event();
  /// Removes the front event (must be the pointer front_event() returned).
  void pop_front();
  /// Runs `ev`'s handler or side-table closure.
  void dispatch(const Event& ev);

  std::array<std::vector<Event>, kNumBuckets> buckets_;
  std::array<std::size_t, kNumBuckets> bucket_head_{};   ///< consumed prefix
  std::array<bool, kNumBuckets> bucket_sorted_{};
  std::vector<Event> far_;                               ///< unsorted, time > horizon_
  double rung_base_ = 0.0;
  double bucket_width_ = 0.0;
  double horizon_ = 0.0;
  bool rung_active_ = false;
  std::size_t rung_count_ = 0;      ///< live events across all buckets
  std::size_t cur_bucket_ = 0;      ///< first possibly non-empty bucket
  std::size_t size_ = 0;

  std::vector<Handler> handlers_;                        ///< indexed by kind
  std::unordered_map<std::uint64_t, Action> closures_;   ///< seq -> action

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace eqos::sim
