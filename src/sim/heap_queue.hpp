// Reference binary-heap event queue.
//
// The pre-ladder EventQueue implementation, kept header-only as (a) the
// differential-test oracle for the ladder queue's (time, seq) pop order and
// snapshot/restore contract, and (b) the "heap" side of the
// BM_EventQueueScheduleRun micro-benchmark.  Not used by the simulator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"

namespace eqos::sim {

/// Deterministic future-event list backed by a binary max-heap of
/// closure-carrying entries (one std::function allocation per event).
class BaselineHeapQueue {
 public:
  using Action = std::function<void()>;
  using PendingEvent = EventQueue::PendingEvent;
  using Rebuilder = EventQueue::Rebuilder;

  void schedule(double time, Action action) { schedule(time, EventTag{}, std::move(action)); }

  void schedule(double time, EventTag tag, Action action) {
    if (time < now_) throw std::invalid_argument("heap_queue: scheduling in the past");
    if (!action) throw std::invalid_argument("heap_queue: null action");
    heap_.push_back(Entry{time, next_seq_++, tag, std::move(action)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  void schedule_in(double delay, Action action) { schedule_in(delay, EventTag{}, std::move(action)); }

  void schedule_in(double delay, EventTag tag, Action action) {
    if (delay < 0.0) throw std::invalid_argument("heap_queue: negative delay");
    schedule(now_ + delay, tag, std::move(action));
  }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  bool step() {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    now_ = entry.time;
    entry.action();
    return true;
  }

  std::size_t run_until(double end_time) {
    if (end_time < now_) throw std::invalid_argument("heap_queue: end time in the past");
    std::size_t executed = 0;
    while (!heap_.empty() && heap_.front().time <= end_time) {
      step();
      ++executed;
    }
    now_ = end_time;
    return executed;
  }

  void clear() { heap_.clear(); }

  [[nodiscard]] std::vector<PendingEvent> snapshot() const {
    std::vector<PendingEvent> events;
    events.reserve(heap_.size());
    for (const Entry& e : heap_) {
      if (e.tag.kind == 0)
        throw std::logic_error("heap_queue: cannot snapshot an untagged event (seq " +
                               std::to_string(e.seq) + ")");
      events.push_back(PendingEvent{e.time, e.seq, e.tag});
    }
    std::sort(events.begin(), events.end(), [](const PendingEvent& a, const PendingEvent& b) {
      return a.time != b.time ? a.time < b.time : a.seq < b.seq;
    });
    return events;
  }

  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  void restore(double now, std::uint64_t next_seq, const std::vector<PendingEvent>& events,
               const Rebuilder& rebuild) {
    heap_.clear();
    now_ = now;
    next_seq_ = next_seq;
    heap_.reserve(events.size());
    for (const PendingEvent& e : events) {
      Action action = rebuild(e.tag);
      if (!action)
        throw std::invalid_argument("heap_queue: restore produced a null action (kind " +
                                    std::to_string(e.tag.kind) + ")");
      heap_.push_back(Entry{e.time, e.seq, e.tag, std::move(action)});
    }
    std::make_heap(heap_.begin(), heap_.end(), Later{});
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    EventTag tag;
    Action action;
  };
  /// std::push_heap/pop_heap build a max-heap, so "later" compares greater.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace eqos::sim
