// Workload driver: Poisson arrivals, terminations, and link failures.
//
// Section 4's methodology: set up an initial population of DR-connections,
// then generate and terminate connections at equal rates (lambda = mu) so
// the population hovers around its initial size, while a recorder measures
// the chaining probabilities and transition matrices.  Failures are driven
// by a fault::FaultInjector: by default the paper's network-wide Poisson
// process with rate gamma and exponential repairs (reproduced draw for draw
// for seed compatibility), and optionally a full FaultScenario — scripted
// multi-failure scripts, SRLG bursts, per-link processes — loaded on top.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "fault/injector.hpp"
#include "fault/scenario.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/recorder.hpp"
#include "sim/recovery.hpp"
#include "sim/shard.hpp"
#include "util/rng.hpp"

namespace eqos::sim {

/// Stochastic workload parameters (rates per unit simulated time).
struct WorkloadConfig {
  double arrival_rate = 1e-3;      ///< lambda
  double termination_rate = 1e-3;  ///< mu
  double failure_rate = 0.0;       ///< gamma (0 disables failures)
  double repair_rate = 1e-2;       ///< per-failed-link repair rate
  net::ElasticQosSpec qos;         ///< QoS spec of every generated connection
  /// Optional heterogeneous traffic: (spec, weight) classes sampled per
  /// request.  When non-empty this overrides `qos` for generated
  /// connections; `qos` then only anchors single-class recorders.
  std::vector<std::pair<net::ElasticQosSpec, double>> qos_mix;
  std::uint64_t seed = 42;

  void validate() const;
  /// Draws a spec for the next request (the fixed `qos` when the mix is
  /// empty).
  [[nodiscard]] const net::ElasticQosSpec& sample_qos(util::Rng& rng) const;
};

/// Counters of the workload driver (distinct from NetworkStats, which counts
/// network-side outcomes).
struct SimulationStats {
  std::size_t arrival_events = 0;
  std::size_t termination_events = 0;
  std::size_t failure_events = 0;
  std::size_t repair_events = 0;
  std::size_t populate_attempts = 0;
  std::size_t populate_accepted = 0;
};

/// Drives a Network with the configured workload.
class Simulator {
 public:
  /// The network must outlive the simulator.  `plan` shards the event
  /// engine over the topology (default: one shard).  Results are
  /// bit-identical at every shard count — the plan affects only how the
  /// event list is stored and maintained, never execution order — so
  /// checkpoints written at one shard count restore at any other.
  Simulator(net::Network& network, WorkloadConfig config, ShardPlan plan = {});

  /// Attempts to establish `attempts` connections between uniformly random
  /// distinct node pairs at the current simulation time and returns how many
  /// were accepted.  This matches the paper's load axis: Table 1's channel
  /// counts are connections "which have been tried to be set up", most of
  /// which are rejected on the saturated "Tier" topology.
  std::size_t populate(std::size_t attempts);

  /// Attaches a measurement window starting now.  Pass nullptr to detach.
  void attach_recorder(TransitionRecorder* recorder);

  /// Loads a fault scenario on top of the workload: scripted events fire at
  /// their absolute times and stochastic fault processes start now.  The
  /// scenario's rng stream derives from the workload seed, so runs replay
  /// bit-identically.  May be combined with `failure_rate > 0` (both
  /// processes run) though scenarios are usually used with it at 0.
  void load_scenario(const fault::FaultScenario& scenario);

  /// The fault injector driving this simulation's failures (e.g. to attach
  /// an InvariantAuditor).
  [[nodiscard]] fault::FaultInjector& injector() noexcept { return *injector_; }

  /// Runs exactly `n` workload events (arrivals + terminations + failures;
  /// repairs piggyback and do not count).
  void run_events(std::size_t n);

  /// Runs until simulated time `t`.
  void run_until(double t);

  [[nodiscard]] double now() const noexcept { return queue_.now(); }
  [[nodiscard]] const SimulationStats& stats() const noexcept { return stats_; }
  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] const WorkloadConfig& config() const noexcept { return config_; }
  /// The sharded event engine (shard layout, barrier/mailbox counters).
  [[nodiscard]] const ShardedEngine& engine() const noexcept { return queue_; }
  /// The simulated recovery control plane, or nullptr when
  /// NetworkConfig::recovery_protocol is off.
  [[nodiscard]] const RecoveryPlane* recovery() const noexcept {
    return recovery_.get();
  }

  // ---- Checkpointing --------------------------------------------------------

  /// Serializes the full simulation state — rng engine states, the pending
  /// event queue (as tags), the network, the fault injector, the attached
  /// recorder, and the driver counters — as a versioned section file with
  /// per-section CRCs.  A run restored from this checkpoint replays the
  /// remaining events bit-for-bit identically to the uninterrupted run.
  void save_checkpoint(std::ostream& out) const;

  /// Restores a checkpoint into a simulator constructed over the SAME
  /// topology, network config, and workload, with the same scenario loaded
  /// and the same recorder attachment.  A fingerprint over graph + config
  /// rejects checkpoints from a different setup.  Throws
  /// state::CorruptError (or VersionMismatchError) on any validation
  /// failure — callers quarantine and recompute, never resume from bad
  /// state.  Network::audit() runs before the method returns.
  void load_checkpoint(std::istream& in);

 private:
  void schedule_arrival();
  void schedule_termination();
  void do_arrival();
  void do_termination();
  [[nodiscard]] std::pair<topology::NodeId, topology::NodeId> random_pair();
  /// CRC over the graph's link list, the network config, and the workload
  /// config — binds a checkpoint to the setup that produced it.
  [[nodiscard]] std::uint64_t config_fingerprint() const;

  net::Network& network_;
  WorkloadConfig config_;
  ShardPlan plan_;
  ShardedEngine queue_;
  util::Rng arrival_rng_;
  util::Rng termination_rng_;
  /// Owns all failure/repair processes; heap-held because its scheduled
  /// closures capture it.
  std::unique_ptr<fault::FaultInjector> injector_;
  /// Event-driven recovery state machines; only constructed when the
  /// network's recovery_protocol is on.
  std::unique_ptr<RecoveryPlane> recovery_;
  TransitionRecorder* recorder_ = nullptr;
  SimulationStats stats_;
  std::size_t countable_events_ = 0;
};

}  // namespace eqos::sim
