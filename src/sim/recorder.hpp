// Measurement of the Markov model's parameters from simulation.
//
// Section 3.3: the chaining probabilities Pf and Ps and the conditional
// state-change matrices A (directly-chained arrival), B (indirectly-chained
// arrival), T (termination of a sharing channel), and F (backup activation)
// "are obtained through detailed simulations".  The recorder consumes the
// structured reports the Network emits and accumulates exactly those
// estimators, plus the simulation-side ground truth the model is compared
// against: the time-weighted average reserved bandwidth and the empirical
// state-occupancy distribution.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "matrix/dense.hpp"
#include "net/events.hpp"
#include "net/network.hpp"
#include "net/qos.hpp"
#include "state/serial.hpp"
#include "util/stats.hpp"

namespace eqos::sim {

/// Everything the analytic model needs, as measured.
struct ModelEstimates {
  /// P(existing channel shares >= 1 link with a random accepted arrival).
  double pf = 0.0;
  /// P(existing channel is indirectly chained with a random arrival).
  double ps = 0.0;
  /// P(surviving channel shares >= 1 link with a terminating channel).
  double pf_termination = 0.0;
  /// P(surviving channel shares >= 1 link with an activated backup path).
  double pf_failure = 0.0;

  matrix::Matrix arrival_move;      ///< A, row-stochastic (zero row = unseen)
  matrix::Matrix indirect_move;     ///< B
  matrix::Matrix termination_move;  ///< T
  matrix::Matrix failure_move;      ///< F

  // Raw observation counts behind the matrices above.  The analyzer needs
  // them to regularize rows of rarely-visited states (a state occupied 0.01%
  // of the window can easily have *no* sampled upward exit, which would make
  // it absorbing and wreck the stationary distribution).
  matrix::Matrix arrival_counts;      ///< raw counts behind A
  matrix::Matrix indirect_counts;     ///< raw counts behind B
  matrix::Matrix termination_counts;  ///< raw counts behind T
  matrix::Matrix failure_counts;      ///< raw counts behind F

  std::size_t arrivals_observed = 0;
  std::size_t terminations_observed = 0;
  std::size_t failures_observed = 0;

  /// Time-weighted mean reserved bandwidth per primary channel (Kbit/s).
  double mean_bandwidth_kbps = 0.0;
  /// Time-weighted empirical distribution over elastic states S_0..S_{N-1}.
  std::vector<double> occupancy;

  // Dependability measurements (multi-failure degradation accounting).
  /// Why connections were lost, summed over the window's failures.
  net::LossBreakdown losses;
  /// Victims whose backup could not seamlessly take over.
  std::size_t unprotected_victims = 0;
  /// Victims re-homed onto a fresh disjoint pair / a degraded single path.
  std::size_t reestablished_pair = 0;
  std::size_t reestablished_degraded = 0;
  /// Integral of (number of backup-less class members) dt over the window.
  double unprotected_time = 0.0;
  /// unprotected_time / channel-time: the fraction of connection-time spent
  /// without backup protection (a dependability-exposure metric).
  double unprotected_fraction = 0.0;
};

/// Accumulates reports and time-weighted occupancy for one measurement
/// window.  Attach it to a Simulator after warm-up.
///
/// For heterogeneous workloads (WorkloadConfig::qos_mix), attach one
/// recorder per traffic class with a `class_filter` selecting that class's
/// connections: occupancy, chaining probabilities, and transition matrices
/// are then measured over class members only, while events of *any* class
/// still drive the transitions (a tagged channel retreats for any newcomer
/// sharing its links, whatever that newcomer asked for).
class TransitionRecorder {
 public:
  /// Selects which connections a recorder measures (nullptr = all).
  using ClassFilter = std::function<bool(const net::DrConnection&)>;

  /// `qos` fixes the state space of the measured class.  `start_time` opens
  /// the measurement window.
  TransitionRecorder(const net::ElasticQosSpec& qos, double start_time,
                     ClassFilter class_filter = nullptr);

  /// Accrues occupancy from the last event time to `time` using `network`'s
  /// pre-event state, then remembers `time`.  Call before applying an event
  /// and once more at the window's end.
  void advance_to(double time, const net::Network& network);

  void on_arrival(const net::ArrivalOutcome& outcome, const net::Network& network);
  void on_termination(const net::TerminationReport& report,
                      const net::Network& network);
  void on_failure(const net::FailureReport& report, const net::Network& network);

  /// Closes the window at `end_time` and produces the estimates.
  [[nodiscard]] ModelEstimates estimates(double end_time,
                                         const net::Network& network) const;

  [[nodiscard]] std::size_t num_states() const noexcept { return n_; }

  /// Serializes every accumulator — chaining tallies, count matrices,
  /// occupancy/bandwidth integrals, dependability counters — and the window
  /// clock, all bit-exact.  The class filter is a closure and is NOT
  /// serialized: the restoring host constructs the recorder with the same
  /// filter before calling load_state().
  void save_state(state::Buffer& out) const;

  /// Restores accumulators saved by save_state().  Throws
  /// state::CorruptError when the serialized state-space size does not
  /// match this recorder's QoS.
  void load_state(state::Buffer& in);

 private:
  void count_changes(const std::vector<net::StateChange>& changes,
                     const net::Network& network, matrix::Matrix& direct_counts,
                     matrix::Matrix& indirect_counts, std::size_t* direct,
                     std::size_t* indirect) const;
  [[nodiscard]] bool matches(const net::Network& network, net::ConnectionId id) const;
  [[nodiscard]] std::size_t count_matching(const net::Network& network) const;

  std::size_t n_;
  net::ElasticQosSpec qos_;
  ClassFilter class_filter_;
  double last_time_;

  // Chaining tallies: numerators are channel-event pairs, denominators are
  // eligible channels summed over events.
  double direct_pairs_arrival_ = 0.0;
  double indirect_pairs_arrival_ = 0.0;
  double eligible_pairs_arrival_ = 0.0;
  double direct_pairs_termination_ = 0.0;
  double eligible_pairs_termination_ = 0.0;
  double direct_pairs_failure_ = 0.0;
  double eligible_pairs_failure_ = 0.0;

  matrix::Matrix a_counts_;
  matrix::Matrix b_counts_;
  matrix::Matrix t_counts_;
  matrix::Matrix f_counts_;

  std::size_t arrivals_ = 0;
  std::size_t terminations_ = 0;
  std::size_t failures_ = 0;

  // Occupancy integral: state -> accumulated (time x channels).
  std::vector<double> occupancy_area_;
  double bandwidth_area_ = 0.0;  ///< integral of sum of reserved bandwidth
  double channel_area_ = 0.0;    ///< integral of channel count

  // Dependability accumulators.
  net::LossBreakdown losses_;
  std::size_t unprotected_victims_ = 0;
  std::size_t reestablished_pair_ = 0;
  std::size_t reestablished_degraded_ = 0;
  double unprotected_area_ = 0.0;  ///< integral of backup-less channel count
};

/// Row-normalizes a count matrix into a conditional-probability matrix;
/// all-zero rows stay zero (callers treat them as "no move").
[[nodiscard]] matrix::Matrix row_normalize(const matrix::Matrix& counts);

}  // namespace eqos::sim
