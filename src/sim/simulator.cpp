#include "sim/simulator.hpp"

#include <stdexcept>

namespace eqos::sim {

void WorkloadConfig::validate() const {
  if (arrival_rate < 0.0 || termination_rate < 0.0 || failure_rate < 0.0 ||
      repair_rate <= 0.0)
    throw std::invalid_argument("workload: rates must be non-negative (repair > 0)");
  qos.validate();
  double total_weight = 0.0;
  for (const auto& [spec, weight] : qos_mix) {
    spec.validate();
    if (!(weight > 0.0))
      throw std::invalid_argument("workload: class weights must be positive");
    total_weight += weight;
  }
  (void)total_weight;
}

const net::ElasticQosSpec& WorkloadConfig::sample_qos(util::Rng& rng) const {
  if (qos_mix.empty()) return qos;
  double total = 0.0;
  for (const auto& [spec, weight] : qos_mix) total += weight;
  double pick = rng.uniform(0.0, total);
  for (const auto& [spec, weight] : qos_mix) {
    if (pick < weight) return spec;
    pick -= weight;
  }
  return qos_mix.back().first;
}

Simulator::Simulator(net::Network& network, WorkloadConfig config)
    : network_(network),
      config_(config),
      arrival_rng_(config.seed),
      termination_rng_(config.seed ^ 0x7465726d696e6174ULL),
      failure_rng_(config.seed ^ 0x6661696c75726573ULL) {
  config_.validate();
  if (config_.arrival_rate > 0.0) schedule_arrival();
  if (config_.termination_rate > 0.0) schedule_termination();
  if (config_.failure_rate > 0.0) schedule_failure();
}

std::pair<topology::NodeId, topology::NodeId> Simulator::random_pair() {
  const std::size_t n = network_.graph().num_nodes();
  const auto src = static_cast<topology::NodeId>(arrival_rng_.index(n));
  auto dst = static_cast<topology::NodeId>(arrival_rng_.index(n - 1));
  if (dst >= src) ++dst;
  return {src, dst};
}

std::size_t Simulator::populate(std::size_t attempts) {
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < attempts; ++i) {
    ++stats_.populate_attempts;
    const auto [src, dst] = random_pair();
    const net::ArrivalOutcome outcome =
        network_.request_connection(src, dst, config_.sample_qos(arrival_rng_));
    if (outcome.accepted) ++accepted;
  }
  stats_.populate_accepted += accepted;
  return accepted;
}

void Simulator::attach_recorder(TransitionRecorder* recorder) { recorder_ = recorder; }

void Simulator::schedule_arrival() {
  queue_.schedule_in(arrival_rng_.exponential(config_.arrival_rate),
                     [this] { do_arrival(); });
}

void Simulator::schedule_termination() {
  queue_.schedule_in(termination_rng_.exponential(config_.termination_rate),
                     [this] { do_termination(); });
}

void Simulator::schedule_failure() {
  queue_.schedule_in(failure_rng_.exponential(config_.failure_rate),
                     [this] { do_failure(); });
}

void Simulator::do_arrival() {
  if (recorder_) recorder_->advance_to(queue_.now(), network_);
  const auto [src, dst] = random_pair();
  const net::ArrivalOutcome outcome =
      network_.request_connection(src, dst, config_.sample_qos(arrival_rng_));
  if (recorder_) recorder_->on_arrival(outcome, network_);
  ++stats_.arrival_events;
  ++countable_events_;
  schedule_arrival();
}

void Simulator::do_termination() {
  if (recorder_) recorder_->advance_to(queue_.now(), network_);
  const auto& ids = network_.active_ids();
  if (!ids.empty()) {
    const net::ConnectionId victim = ids[termination_rng_.index(ids.size())];
    const net::TerminationReport report = network_.terminate_connection(victim);
    if (recorder_) recorder_->on_termination(report, network_);
  }
  ++stats_.termination_events;
  ++countable_events_;
  schedule_termination();
}

void Simulator::do_failure() {
  if (recorder_) recorder_->advance_to(queue_.now(), network_);
  // Pick a uniformly random alive link; skip the event if none is alive.
  const std::size_t num_links = network_.graph().num_links();
  std::size_t alive = 0;
  for (topology::LinkId l = 0; l < num_links; ++l)
    if (!network_.link_state(l).failed()) ++alive;
  if (alive > 0) {
    std::size_t pick = failure_rng_.index(alive);
    topology::LinkId chosen = 0;
    for (topology::LinkId l = 0; l < num_links; ++l) {
      if (network_.link_state(l).failed()) continue;
      if (pick-- == 0) {
        chosen = l;
        break;
      }
    }
    const net::FailureReport report = network_.fail_link(chosen);
    if (recorder_) recorder_->on_failure(report, network_);
    queue_.schedule_in(failure_rng_.exponential(config_.repair_rate), [this, chosen] {
      if (recorder_) recorder_->advance_to(queue_.now(), network_);
      network_.repair_link(chosen);
      ++stats_.repair_events;
    });
  }
  ++stats_.failure_events;
  ++countable_events_;
  schedule_failure();
}

void Simulator::run_events(std::size_t n) {
  const std::size_t start = countable_events_;
  while (countable_events_ - start < n) {
    if (!queue_.step())
      throw std::logic_error("simulator: event queue drained (no processes active?)");
  }
}

void Simulator::run_until(double t) { queue_.run_until(t); }

}  // namespace eqos::sim
