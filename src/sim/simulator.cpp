#include "sim/simulator.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "state/serial.hpp"

namespace eqos::sim {
namespace {

/// EventTag kinds owned by the Simulator (1..15; the injector uses 16+).
constexpr std::uint32_t kTagArrival = 1;
constexpr std::uint32_t kTagTermination = 2;

constexpr char kCheckpointMagic[4] = {'E', 'Q', 'S', 'C'};

void put_rng(state::Buffer& out, const util::Rng& rng) {
  out.put_u64(rng.seed());
  out.put_str(rng.engine_state());
}

void get_rng(state::Buffer& in, util::Rng& rng) {
  const std::uint64_t seed = in.get_u64();
  rng.set_engine_state(seed, in.get_str());
}

}  // namespace

void WorkloadConfig::validate() const {
  if (arrival_rate < 0.0 || termination_rate < 0.0 || failure_rate < 0.0 ||
      repair_rate <= 0.0)
    throw std::invalid_argument("workload: rates must be non-negative (repair > 0)");
  qos.validate();
  double total_weight = 0.0;
  for (const auto& [spec, weight] : qos_mix) {
    spec.validate();
    if (!(weight > 0.0))
      throw std::invalid_argument("workload: class weights must be positive");
    total_weight += weight;
  }
  (void)total_weight;
}

const net::ElasticQosSpec& WorkloadConfig::sample_qos(util::Rng& rng) const {
  if (qos_mix.empty()) return qos;
  double total = 0.0;
  for (const auto& [spec, weight] : qos_mix) total += weight;
  double pick = rng.uniform(0.0, total);
  for (const auto& [spec, weight] : qos_mix) {
    if (pick < weight) return spec;
    pick -= weight;
  }
  return qos_mix.back().first;
}

Simulator::Simulator(net::Network& network, WorkloadConfig config, ShardPlan plan)
    : network_(network),
      config_(config),
      plan_(std::move(plan)),
      arrival_rng_(config.seed),
      termination_rng_(config.seed ^ 0x7465726d696e6174ULL) {
  config_.validate();
  const std::uint32_t shards = plan_.shards();
  if (shards > 1 && plan_.partition.shard_of.size() != network_.graph().num_nodes())
    throw std::invalid_argument("simulator: shard plan does not cover the graph");
  // Event locus: link-scoped events (repairs, per-link fault processes) live
  // on the shard owning the link's first endpoint; everything driven by a
  // global process (arrivals, terminations, network-wide failure draws,
  // scripted scenario events, SRLG bursts) lives on the driver shard 0.
  queue_.configure(
      shards, plan_.lookahead, [this](const EventTag& tag) -> std::uint32_t {
        switch (tag.kind) {
          case fault::kTagLegacyRepair:
          case fault::kTagAutoRepair:
            return plan_.partition.shard(
                network_.graph().link(static_cast<topology::LinkId>(tag.a)).a);
          case fault::kTagLinkProcess: {
            const auto link = injector_->process_link(static_cast<std::size_t>(tag.a));
            if (!link) return 0;
            return plan_.partition.shard(network_.graph().link(*link).a);
          }
          default:
            return 0;
        }
      });
  network_.set_partition(plan_.partition);
  fault::Scheduler scheduler{
      [this] { return queue_.now(); },
      [this](double t, std::function<void()> action) { queue_.schedule(t, std::move(action)); },
      [this](double t, std::uint32_t kind, std::uint64_t a, std::uint64_t b,
             std::function<void()> action) {
        queue_.schedule(t, EventTag{kind, a, b}, std::move(action));
      },
      // The POD fast path: injector events carry only their tag; the
      // per-kind handlers registered below route them back to dispatch().
      [this](double t, std::uint32_t kind, std::uint64_t a, std::uint64_t b) {
        queue_.schedule(t, EventTag{kind, a, b});
      },
  };
  fault::Hooks hooks;
  hooks.before_event = [this](double t) {
    if (recorder_) recorder_->advance_to(t, network_);
  };
  hooks.on_failure = [this](const net::FailureReport& report) {
    if (recorder_) recorder_->on_failure(report, network_);
    // The recovery plane turns each severed victim into an event-driven
    // state machine (detection delay, lossy signaling, deadline).
    if (recovery_) recovery_->on_failure(report);
  };
  hooks.on_fault_event = [this] {
    ++stats_.failure_events;
    ++countable_events_;
  };
  hooks.on_repair = [this] { ++stats_.repair_events; };
  injector_ = std::make_unique<fault::FaultInjector>(network_, std::move(scheduler),
                                                     std::move(hooks));
  if (network_.config().recovery_protocol) {
    recovery_ = std::make_unique<RecoveryPlane>(
        network_, config_.seed ^ 0x7265636f76657279ULL,
        [this] { return queue_.now(); },
        [this](double t, const EventTag& tag) { queue_.schedule(t, tag); });
  }

  // Tag-dispatch handlers, registered once: events on the hot path are
  // 32-byte PODs with no per-event closure allocation.
  queue_.set_handler(kTagArrival, [this](const EventTag&) { do_arrival(); });
  queue_.set_handler(kTagTermination, [this](const EventTag&) { do_termination(); });
  if (recovery_) {
    for (std::uint32_t kind = kTagRecoveryDetect; kind <= kTagRecoveryDeadline;
         ++kind) {
      queue_.set_handler(kind,
                         [this](const EventTag& tag) { recovery_->dispatch(tag); });
    }
  }
  for (std::uint32_t kind = fault::kTagLegacyFailure; kind <= fault::kTagAutoRepair;
       ++kind) {
    queue_.set_handler(kind,
                       [this](const EventTag& tag) { injector_->dispatch(tag.kind, tag.a); });
  }

  if (config_.arrival_rate > 0.0) schedule_arrival();
  if (config_.termination_rate > 0.0) schedule_termination();
  if (config_.failure_rate > 0.0) {
    // The failure stream keeps its historical seed derivation so that
    // pre-injector simulations replay bit-identically.
    injector_->enable_legacy_poisson(config_.failure_rate, config_.repair_rate,
                                     util::Rng(config_.seed ^ 0x6661696c75726573ULL));
  }
}

std::pair<topology::NodeId, topology::NodeId> Simulator::random_pair() {
  const std::size_t n = network_.graph().num_nodes();
  const auto src = static_cast<topology::NodeId>(arrival_rng_.index(n));
  auto dst = static_cast<topology::NodeId>(arrival_rng_.index(n - 1));
  if (dst >= src) ++dst;
  return {src, dst};
}

std::size_t Simulator::populate(std::size_t attempts) {
  obs::set_trace_time(queue_.now());
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < attempts; ++i) {
    ++stats_.populate_attempts;
    const auto [src, dst] = random_pair();
    const net::ArrivalOutcome outcome =
        network_.request_connection(src, dst, config_.sample_qos(arrival_rng_));
    if (outcome.accepted) ++accepted;
  }
  stats_.populate_accepted += accepted;
  return accepted;
}

void Simulator::attach_recorder(TransitionRecorder* recorder) { recorder_ = recorder; }

void Simulator::load_scenario(const fault::FaultScenario& scenario) {
  injector_->load_scenario(scenario, util::Rng(config_.seed ^ 0x7363656e6172696fULL));
  // Declare the scenario's SRLGs to admission control, so the SRLG-aware
  // placement policies see the same risk groups the fault process fails
  // together.  A no-op under SrlgPolicy::kIgnore (the default).
  std::vector<std::vector<topology::LinkId>> groups;
  groups.reserve(scenario.groups().size());
  for (const fault::SrlgGroup& g : scenario.groups()) groups.push_back(g.links);
  network_.set_risk_groups(groups);
}

void Simulator::schedule_arrival() {
  queue_.schedule_in(arrival_rng_.exponential(config_.arrival_rate),
                     EventTag{kTagArrival, 0, 0});
}

void Simulator::schedule_termination() {
  queue_.schedule_in(termination_rng_.exponential(config_.termination_rate),
                     EventTag{kTagTermination, 0, 0});
}

void Simulator::do_arrival() {
  obs::set_trace_time(queue_.now());
  if (recorder_) recorder_->advance_to(queue_.now(), network_);
  const auto [src, dst] = random_pair();
  const net::ArrivalOutcome outcome =
      network_.request_connection(src, dst, config_.sample_qos(arrival_rng_));
  if (recorder_) recorder_->on_arrival(outcome, network_);
  ++stats_.arrival_events;
  ++countable_events_;
  schedule_arrival();
}

void Simulator::do_termination() {
  obs::set_trace_time(queue_.now());
  if (recorder_) recorder_->advance_to(queue_.now(), network_);
  const auto& ids = network_.active_ids();
  if (!ids.empty()) {
    const net::ConnectionId victim = ids[termination_rng_.index(ids.size())];
    const net::TerminationReport report = network_.terminate_connection(victim);
    if (recorder_) recorder_->on_termination(report, network_);
  }
  ++stats_.termination_events;
  ++countable_events_;
  schedule_termination();
}

void Simulator::run_events(std::size_t n) {
  const std::size_t start = countable_events_;
  while (countable_events_ - start < n) {
    if (!queue_.step())
      throw std::logic_error("simulator: event queue drained (no processes active?)");
  }
}

void Simulator::run_until(double t) { queue_.run_until(t); }

std::uint64_t Simulator::config_fingerprint() const {
  state::Buffer fp;
  const topology::Graph& g = network_.graph();
  fp.put_u64(g.num_nodes());
  fp.put_u64(g.num_links());
  for (std::size_t l = 0; l < g.num_links(); ++l) {
    const topology::Link& link = g.link(static_cast<topology::LinkId>(l));
    fp.put_u64(link.a);
    fp.put_u64(link.b);
  }
  const net::NetworkConfig& nc = network_.config();
  fp.put_f64(nc.link_capacity_kbps);
  fp.put_u8(static_cast<std::uint8_t>(nc.adaptation));
  fp.put_bool(nc.backup_multiplexing);
  fp.put_bool(nc.require_backup);
  fp.put_bool(nc.require_full_disjoint);
  fp.put_u8(static_cast<std::uint8_t>(nc.route_policy));
  fp.put_bool(nc.joint_disjoint_fallback);
  fp.put_u8(static_cast<std::uint8_t>(nc.second_failure_policy));
  fp.put_u8(static_cast<std::uint8_t>(nc.backup_scheme));
  fp.put_u64(nc.segment_span_hops);
  fp.put_u8(static_cast<std::uint8_t>(nc.srlg_policy));
  fp.put_f64(nc.recovery_detect_time);
  fp.put_f64(nc.recovery_xc_time_per_hop);
  fp.put_f64(nc.recovery_setup_time_per_hop);
  fp.put_bool(nc.recovery_protocol);
  fp.put_f64(nc.recovery_detect_min);
  fp.put_f64(nc.recovery_detect_max);
  fp.put_f64(nc.recovery_signal_loss_prob);
  fp.put_f64(nc.recovery_signal_timeout);
  fp.put_f64(nc.recovery_signal_backoff);
  fp.put_u64(nc.recovery_retry_cap);
  fp.put_f64(nc.recovery_deadline);
  const auto put_spec = [&fp](const net::ElasticQosSpec& q) {
    fp.put_f64(q.bmin_kbps);
    fp.put_f64(q.bmax_kbps);
    fp.put_f64(q.increment_kbps);
    fp.put_f64(q.utility);
    fp.put_f64(q.recovery_deadline);
  };
  fp.put_f64(config_.arrival_rate);
  fp.put_f64(config_.termination_rate);
  fp.put_f64(config_.failure_rate);
  fp.put_f64(config_.repair_rate);
  put_spec(config_.qos);
  fp.put_u64(config_.qos_mix.size());
  for (const auto& [spec, weight] : config_.qos_mix) {
    put_spec(spec);
    fp.put_f64(weight);
  }
  fp.put_u64(config_.seed);
  return fp.crc();
}

void Simulator::save_checkpoint(std::ostream& out) const {
  std::vector<state::Section> sections;

  state::Section rng{"rng", {}};
  put_rng(rng.payload, arrival_rng_);
  put_rng(rng.payload, termination_rng_);
  sections.push_back(std::move(rng));

  state::Section queue{"queue", {}};
  queue.payload.put_f64(queue_.now());
  queue.payload.put_u64(queue_.next_seq());
  const std::vector<EventQueue::PendingEvent> events = queue_.snapshot();
  queue.payload.put_u64(events.size());
  for (const EventQueue::PendingEvent& e : events) {
    queue.payload.put_f64(e.time);
    queue.payload.put_u64(e.seq);
    queue.payload.put_u32(e.tag.kind);
    queue.payload.put_u64(e.tag.a);
    queue.payload.put_u64(e.tag.b);
  }
  sections.push_back(std::move(queue));

  state::Section network{"network", {}};
  network_.save_state(network.payload);
  sections.push_back(std::move(network));

  state::Section injector{"injector", {}};
  injector_->save_state(injector.payload);
  sections.push_back(std::move(injector));

  state::Section recorder{"recorder", {}};
  recorder.payload.put_bool(recorder_ != nullptr);
  if (recorder_) recorder_->save_state(recorder.payload);
  sections.push_back(std::move(recorder));

  state::Section recovery{"recovery", {}};
  recovery.payload.put_bool(recovery_ != nullptr);
  if (recovery_) recovery_->save_state(recovery.payload);
  sections.push_back(std::move(recovery));

  state::Section sim{"sim", {}};
  sim.payload.put_u64(stats_.arrival_events);
  sim.payload.put_u64(stats_.termination_events);
  sim.payload.put_u64(stats_.failure_events);
  sim.payload.put_u64(stats_.repair_events);
  sim.payload.put_u64(stats_.populate_attempts);
  sim.payload.put_u64(stats_.populate_accepted);
  sim.payload.put_u64(countable_events_);
  sections.push_back(std::move(sim));

  state::write_sections(out, kCheckpointMagic, state::kKindSimulation,
                        config_fingerprint(), sections);
}

void Simulator::load_checkpoint(std::istream& in) {
  state::SectionFile file = state::read_sections(in, kCheckpointMagic);
  if (file.payload_kind != state::kKindSimulation)
    throw state::CorruptError("checkpoint payload kind is not a simulation");
  if (file.fingerprint != config_fingerprint())
    throw state::CorruptError(
        "checkpoint was taken from a different simulation configuration");

  try {
    state::Buffer& rng = file.section("rng");
    get_rng(rng, arrival_rng_);
    get_rng(rng, termination_rng_);
    rng.expect_consumed();

    state::Buffer& network = file.section("network");
    network_.load_state(network);
    network.expect_consumed();

    state::Buffer& injector = file.section("injector");
    injector_->load_state(injector);
    injector.expect_consumed();

    state::Buffer& recorder = file.section("recorder");
    const bool had_recorder = recorder.get_bool();
    if (had_recorder != (recorder_ != nullptr))
      throw state::CorruptError(
          had_recorder
              ? "checkpoint carries recorder state but no recorder is attached"
              : "checkpoint has no recorder state but a recorder is attached");
    if (recorder_) recorder_->load_state(recorder);
    recorder.expect_consumed();

    // After the network: the plane validates its in-flight processes
    // against the restored recovering flags.  (The fingerprint already
    // binds recovery_protocol, so the presence bool can only mismatch on a
    // corrupted file.)
    state::Buffer& recovery = file.section("recovery");
    const bool had_recovery = recovery.get_bool();
    if (had_recovery != (recovery_ != nullptr))
      throw state::CorruptError(
          had_recovery ? "checkpoint carries recovery-plane state but the "
                         "recovery protocol is off"
                       : "checkpoint has no recovery-plane state but the "
                         "recovery protocol is on");
    if (recovery_) recovery_->load_state(recovery);
    recovery.expect_consumed();

    state::Buffer& sim = file.section("sim");
    stats_.arrival_events = sim.get_u64();
    stats_.termination_events = sim.get_u64();
    stats_.failure_events = sim.get_u64();
    stats_.repair_events = sim.get_u64();
    stats_.populate_attempts = sim.get_u64();
    stats_.populate_accepted = sim.get_u64();
    countable_events_ = sim.get_u64();
    sim.expect_consumed();

    // The queue goes last: it discards whatever the constructor scheduled
    // and replaces it with the checkpointed events, whose closures are
    // rebuilt against the state restored above.
    state::Buffer& queue = file.section("queue");
    const double now = queue.get_f64();
    const std::uint64_t next_seq = queue.get_u64();
    const std::size_t n_events = queue.get_count(8 + 8 + 4 + 8 + 8);
    std::vector<EventQueue::PendingEvent> events;
    events.reserve(n_events);
    for (std::size_t i = 0; i < n_events; ++i) {
      EventQueue::PendingEvent e;
      e.time = queue.get_f64();
      e.seq = queue.get_u64();
      e.tag.kind = queue.get_u32();
      e.tag.a = queue.get_u64();
      e.tag.b = queue.get_u64();
      events.push_back(e);
    }
    queue.expect_consumed();
    queue_.restore(now, next_seq, events,
                   [this](const EventTag& tag) -> EventQueue::Action {
                     switch (tag.kind) {
                       case kTagArrival:
                         return [this] { do_arrival(); };
                       case kTagTermination:
                         return [this] { do_termination(); };
                       case kTagRecoveryDetect:
                       case kTagRecoverySignal:
                       case kTagRecoveryTimeout:
                       case kTagRecoveryDeadline: {
                         if (!recovery_)
                           throw state::CorruptError(
                               "checkpoint has recovery events but the "
                               "recovery protocol is off");
                         const EventTag t = tag;
                         return [this, t] { recovery_->dispatch(t); };
                       }
                       default: {
                         auto action = injector_->rebuild_action(tag.kind, tag.a);
                         if (!action)
                           throw state::CorruptError(
                               "checkpoint event has unknown tag kind " +
                               std::to_string(tag.kind));
                         return action;
                       }
                     }
                   });
  } catch (const state::CorruptError&) {
    throw;
  } catch (const std::exception& e) {
    // Ledger mutators and the post-load audit throw ordinary exceptions;
    // reaching one means the checkpoint encodes an impossible state, which
    // is corruption as far as callers are concerned.
    throw state::CorruptError(std::string("checkpoint failed to apply: ") +
                              e.what());
  }
}

}  // namespace eqos::sim
