#include "sim/simulator.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace eqos::sim {

void WorkloadConfig::validate() const {
  if (arrival_rate < 0.0 || termination_rate < 0.0 || failure_rate < 0.0 ||
      repair_rate <= 0.0)
    throw std::invalid_argument("workload: rates must be non-negative (repair > 0)");
  qos.validate();
  double total_weight = 0.0;
  for (const auto& [spec, weight] : qos_mix) {
    spec.validate();
    if (!(weight > 0.0))
      throw std::invalid_argument("workload: class weights must be positive");
    total_weight += weight;
  }
  (void)total_weight;
}

const net::ElasticQosSpec& WorkloadConfig::sample_qos(util::Rng& rng) const {
  if (qos_mix.empty()) return qos;
  double total = 0.0;
  for (const auto& [spec, weight] : qos_mix) total += weight;
  double pick = rng.uniform(0.0, total);
  for (const auto& [spec, weight] : qos_mix) {
    if (pick < weight) return spec;
    pick -= weight;
  }
  return qos_mix.back().first;
}

Simulator::Simulator(net::Network& network, WorkloadConfig config)
    : network_(network),
      config_(config),
      arrival_rng_(config.seed),
      termination_rng_(config.seed ^ 0x7465726d696e6174ULL) {
  config_.validate();
  fault::Scheduler scheduler{
      [this] { return queue_.now(); },
      [this](double t, std::function<void()> action) { queue_.schedule(t, std::move(action)); },
  };
  fault::Hooks hooks;
  hooks.before_event = [this](double t) {
    if (recorder_) recorder_->advance_to(t, network_);
  };
  hooks.on_failure = [this](const net::FailureReport& report) {
    if (recorder_) recorder_->on_failure(report, network_);
  };
  hooks.on_fault_event = [this] {
    ++stats_.failure_events;
    ++countable_events_;
  };
  hooks.on_repair = [this] { ++stats_.repair_events; };
  injector_ = std::make_unique<fault::FaultInjector>(network_, std::move(scheduler),
                                                     std::move(hooks));

  if (config_.arrival_rate > 0.0) schedule_arrival();
  if (config_.termination_rate > 0.0) schedule_termination();
  if (config_.failure_rate > 0.0) {
    // The failure stream keeps its historical seed derivation so that
    // pre-injector simulations replay bit-identically.
    injector_->enable_legacy_poisson(config_.failure_rate, config_.repair_rate,
                                     util::Rng(config_.seed ^ 0x6661696c75726573ULL));
  }
}

std::pair<topology::NodeId, topology::NodeId> Simulator::random_pair() {
  const std::size_t n = network_.graph().num_nodes();
  const auto src = static_cast<topology::NodeId>(arrival_rng_.index(n));
  auto dst = static_cast<topology::NodeId>(arrival_rng_.index(n - 1));
  if (dst >= src) ++dst;
  return {src, dst};
}

std::size_t Simulator::populate(std::size_t attempts) {
  obs::set_trace_time(queue_.now());
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < attempts; ++i) {
    ++stats_.populate_attempts;
    const auto [src, dst] = random_pair();
    const net::ArrivalOutcome outcome =
        network_.request_connection(src, dst, config_.sample_qos(arrival_rng_));
    if (outcome.accepted) ++accepted;
  }
  stats_.populate_accepted += accepted;
  return accepted;
}

void Simulator::attach_recorder(TransitionRecorder* recorder) { recorder_ = recorder; }

void Simulator::load_scenario(const fault::FaultScenario& scenario) {
  injector_->load_scenario(scenario, util::Rng(config_.seed ^ 0x7363656e6172696fULL));
}

void Simulator::schedule_arrival() {
  queue_.schedule_in(arrival_rng_.exponential(config_.arrival_rate),
                     [this] { do_arrival(); });
}

void Simulator::schedule_termination() {
  queue_.schedule_in(termination_rng_.exponential(config_.termination_rate),
                     [this] { do_termination(); });
}

void Simulator::do_arrival() {
  obs::set_trace_time(queue_.now());
  if (recorder_) recorder_->advance_to(queue_.now(), network_);
  const auto [src, dst] = random_pair();
  const net::ArrivalOutcome outcome =
      network_.request_connection(src, dst, config_.sample_qos(arrival_rng_));
  if (recorder_) recorder_->on_arrival(outcome, network_);
  ++stats_.arrival_events;
  ++countable_events_;
  schedule_arrival();
}

void Simulator::do_termination() {
  obs::set_trace_time(queue_.now());
  if (recorder_) recorder_->advance_to(queue_.now(), network_);
  const auto& ids = network_.active_ids();
  if (!ids.empty()) {
    const net::ConnectionId victim = ids[termination_rng_.index(ids.size())];
    const net::TerminationReport report = network_.terminate_connection(victim);
    if (recorder_) recorder_->on_termination(report, network_);
  }
  ++stats_.termination_events;
  ++countable_events_;
  schedule_termination();
}

void Simulator::run_events(std::size_t n) {
  const std::size_t start = countable_events_;
  while (countable_events_ - start < n) {
    if (!queue_.step())
      throw std::logic_error("simulator: event queue drained (no processes active?)");
  }
}

void Simulator::run_until(double t) { queue_.run_until(t); }

}  // namespace eqos::sim
