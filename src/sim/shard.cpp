#include "sim/shard.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace eqos::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Backlog below which the window barrier runs prepare() serially: with few
/// pending events the per-window thread spawn costs more than the sorting
/// it parallelizes.
constexpr std::size_t kParallelPrepareThreshold = 4096;

}  // namespace

ShardPlan make_shard_plan(const topology::Graph& graph, std::uint32_t shards,
                          double detect_time, std::uint64_t seed) {
  ShardPlan plan;
  plan.partition = topology::partition_graph(graph, shards, seed);
  plan.lookahead = detect_time > 0.0 ? detect_time : 1.0;
  if (plan.shards() <= 1) plan.lookahead = kInf;
  return plan;
}

ShardPlan make_shard_plan(const topology::Graph& graph, std::uint32_t shards,
                          const net::NetworkConfig& config, std::uint64_t seed) {
  // The soonest a failure on one shard can trigger activity elsewhere: the
  // protocol's minimum detection delay, or the legacy fixed detect time.
  const double min_detect = config.recovery_protocol
                                ? config.recovery_detect_min
                                : config.recovery_detect_time;
  return make_shard_plan(graph, shards, min_detect, seed);
}

ShardedEngine::ShardedEngine()
    : queues_(1), lookahead_(kInf), window_end_(-kInf) {}

void ShardedEngine::configure(std::uint32_t shards, double lookahead, Locus locus) {
  if (next_seq_ != 0 || pending() != 0)
    throw std::logic_error("sharded_engine: configure after scheduling");
  const std::uint32_t k = std::max<std::uint32_t>(shards, 1);
  if (k > 1 && !locus)
    throw std::invalid_argument("sharded_engine: multi-shard layout needs a locus");
  if (k > 1 && !(lookahead > 0.0))
    throw std::invalid_argument("sharded_engine: lookahead must be positive");
  queues_ = std::vector<EventQueue>(k);
  mailboxes_.assign(static_cast<std::size_t>(k) * k, {});
  locus_ = std::move(locus);
  lookahead_ = k == 1 ? kInf : lookahead;
  window_end_ = -kInf;
  barrier_rounds_ = 0;
  cross_shard_events_ = 0;
}

void ShardedEngine::set_handler(std::uint32_t kind, Handler handler) {
  if (kind == 0 || kind > kMaxKind)
    throw std::invalid_argument("sharded_engine: handler kind out of range (kind " +
                                std::to_string(kind) + ")");
  if (!handler) throw std::invalid_argument("sharded_engine: null handler");
  if (handlers_.size() <= kind) handlers_.resize(kind + 1);
  handlers_[kind] = std::move(handler);
}

std::uint64_t ShardedEngine::take_seq() {
  // Same 48-bit key budget as EventQueue: seqs share keys with the kind bits.
  if (next_seq_ >= (std::uint64_t{1} << 48))
    throw std::overflow_error("sharded_engine: sequence number space exhausted");
  return next_seq_++;
}

std::uint32_t ShardedEngine::locus_of(const EventTag& tag) const {
  if (queues_.size() == 1 || !locus_) return 0;
  const std::uint32_t shard = locus_(tag);
  if (shard >= queues_.size())
    throw std::logic_error("sharded_engine: locus returned shard " +
                           std::to_string(shard) + " of " +
                           std::to_string(queues_.size()));
  return shard;
}

void ShardedEngine::route(double time, std::uint64_t key, std::uint64_t a,
                          std::uint64_t b) {
  const std::uint32_t dst = locus_of(
      EventTag{static_cast<std::uint32_t>(key & kMaxKind), a, b});
  if (in_dispatch_ && dst != dispatching_shard_) {
    mailboxes_[static_cast<std::size_t>(dispatching_shard_) * queues_.size() + dst]
        .push_back(EventQueue::Event{time, key, a, b});
    ++cross_shard_events_;
  } else {
    queues_[dst].insert(time, key, a, b);
  }
}

void ShardedEngine::flush_mailboxes(std::uint32_t src) {
  // Destination-ascending, FIFO within a pair: a fixed drain order so the
  // exchange itself is deterministic.  (Pop order is already pinned by the
  // globally assigned seqs; the fixed order keeps the protocol auditable.)
  const std::size_t k = queues_.size();
  for (std::size_t dst = 0; dst < k; ++dst) {
    std::vector<EventQueue::Event>& box = mailboxes_[src * k + dst];
    for (const EventQueue::Event& ev : box)
      queues_[dst].insert(ev.time, ev.key, ev.a, ev.b);
    box.clear();
  }
}

void ShardedEngine::schedule(double time, EventTag tag, Action action) {
  if (time < now_)
    throw std::invalid_argument("sharded_engine: scheduling in the past (kind " +
                                std::to_string(tag.kind) + ")");
  if (!action) throw std::invalid_argument("sharded_engine: null action");
  if (tag.kind > kMaxKind)
    throw std::invalid_argument("sharded_engine: event kind out of range (kind " +
                                std::to_string(tag.kind) + ")");
  const std::uint64_t seq = take_seq();
  closures_.emplace(seq, std::move(action));
  route(time, (seq << EventQueue::kSeqShift) | EventQueue::kClosureFlag | tag.kind,
        tag.a, tag.b);
}

void ShardedEngine::schedule(double time, EventTag tag) {
  if (time < now_)
    throw std::invalid_argument("sharded_engine: scheduling in the past (kind " +
                                std::to_string(tag.kind) + ")");
  if (!has_handler(tag.kind))
    throw std::invalid_argument("sharded_engine: no handler registered (kind " +
                                std::to_string(tag.kind) + ")");
  route(time, (take_seq() << EventQueue::kSeqShift) | tag.kind, tag.a, tag.b);
}

void ShardedEngine::schedule_in(double delay, EventTag tag, Action action) {
  if (delay < 0.0) throw std::invalid_argument("sharded_engine: negative delay");
  schedule(now_ + delay, tag, std::move(action));
}

void ShardedEngine::schedule_in(double delay, EventTag tag) {
  if (delay < 0.0) throw std::invalid_argument("sharded_engine: negative delay");
  schedule(now_ + delay, tag);
}

std::size_t ShardedEngine::pending() const noexcept {
  std::size_t total = 0;
  for (const EventQueue& q : queues_) total += q.pending();
  return total;
}

void ShardedEngine::open_window(double front_time) {
  window_end_ = front_time + lookahead_;
  ++barrier_rounds_;
  const std::size_t k = queues_.size();
  if (k > 1 && pending() >= kParallelPrepareThreshold) {
    // The parallel maintenance plane: each shard re-primes and pre-sorts
    // its own ladder up to the window end.  prepare() touches only that
    // queue's storage and never changes pop order, so this is free of both
    // data races and ordering effects.
    std::vector<std::thread> workers;
    workers.reserve(k);
    for (std::size_t i = 0; i < k; ++i)
      workers.emplace_back([this, i] { queues_[i].prepare(window_end_); });
    for (std::thread& w : workers) w.join();
  } else {
    for (EventQueue& q : queues_) q.prepare(window_end_);
  }
}

const EventQueue::Event* ShardedEngine::merge_front(std::uint32_t& shard) {
  const EventQueue::Event* best = nullptr;
  for (std::uint32_t i = 0; i < queues_.size(); ++i) {
    const EventQueue::Event* f = queues_[i].front_event();
    if (f == nullptr) continue;
    if (best == nullptr || EventQueue::Earlier{}(*f, *best)) {
      best = f;
      shard = i;
    }
  }
  // prepare() never changes any queue's front, so the window can open after
  // the merge without re-peeking.
  if (best != nullptr && best->time > window_end_) open_window(best->time);
  return best;
}

void ShardedEngine::dispatch(const EventQueue::Event& ev, std::uint32_t shard) {
  in_dispatch_ = true;
  dispatching_shard_ = shard;
  try {
    if (ev.key & EventQueue::kClosureFlag) {
      const auto it = closures_.find(EventQueue::seq_of(ev.key));
      Action action = std::move(it->second);
      closures_.erase(it);
      action();
    } else {
      handlers_[EventQueue::kind_of(ev.key)](
          EventTag{EventQueue::kind_of(ev.key), ev.a, ev.b});
    }
  } catch (...) {
    in_dispatch_ = false;
    flush_mailboxes(shard);
    throw;
  }
  in_dispatch_ = false;
  flush_mailboxes(shard);
}

bool ShardedEngine::step() {
  std::uint32_t shard = 0;
  const EventQueue::Event* front = merge_front(shard);
  if (front == nullptr) return false;
  const EventQueue::Event ev = *front;  // copy before pop: the handler may schedule
  queues_[shard].pop_front();
  now_ = ev.time;
  dispatch(ev, shard);
  return true;
}

std::size_t ShardedEngine::run_until(double end_time) {
  if (end_time < now_)
    throw std::invalid_argument("sharded_engine: end time in the past");
  std::size_t executed = 0;
  for (;;) {
    std::uint32_t shard = 0;
    const EventQueue::Event* front = merge_front(shard);
    if (front == nullptr || front->time > end_time) break;
    const EventQueue::Event ev = *front;
    queues_[shard].pop_front();
    now_ = ev.time;
    dispatch(ev, shard);
    ++executed;
  }
  now_ = end_time;
  return executed;
}

void ShardedEngine::clear() {
  for (EventQueue& q : queues_) q.clear();
  for (std::vector<EventQueue::Event>& box : mailboxes_) box.clear();
  closures_.clear();
  window_end_ = -kInf;
}

std::vector<ShardedEngine::PendingEvent> ShardedEngine::snapshot() const {
  std::vector<PendingEvent> all;
  all.reserve(pending());
  for (const EventQueue& q : queues_) {
    std::vector<PendingEvent> part = q.snapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end(), [](const PendingEvent& a, const PendingEvent& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  });
  return all;
}

void ShardedEngine::restore(double now, std::uint64_t next_seq,
                            const std::vector<PendingEvent>& events,
                            const Rebuilder& rebuild) {
  clear();
  now_ = now;
  next_seq_ = next_seq;
  barrier_rounds_ = 0;
  cross_shard_events_ = 0;
  for (const PendingEvent& e : events) {
    if (e.tag.kind > kMaxKind)
      throw std::invalid_argument("sharded_engine: event kind out of range (kind " +
                                  std::to_string(e.tag.kind) + ")");
    Action action = rebuild(e.tag);
    if (!action)
      throw std::invalid_argument(
          "sharded_engine: restore produced a null action (kind " +
          std::to_string(e.tag.kind) + ")");
    std::uint64_t key = (e.seq << EventQueue::kSeqShift) | (e.tag.kind & kMaxKind);
    if (!has_handler(e.tag.kind)) {
      key |= EventQueue::kClosureFlag;
      closures_.emplace(e.seq, std::move(action));
    }
    // Re-route through the locus: a checkpoint carries no shard layout, so
    // the same file restores at any shard count.
    queues_[locus_of(e.tag)].insert(e.time, key, e.tag.a, e.tag.b);
  }
}

}  // namespace eqos::sim
