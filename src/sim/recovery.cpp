#include "sim/recovery.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace eqos::sim {

RecoveryPlane::RecoveryPlane(net::Network& network, std::uint64_t seed, NowFn now,
                             ScheduleFn schedule)
    : network_(network), seed_(seed), now_(std::move(now)),
      schedule_(std::move(schedule)) {
  if (!now_ || !schedule_)
    throw std::invalid_argument("recovery_plane: null clock or scheduler");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs_.severed = reg.counter("recovery.severed");
  obs_.detections = reg.counter("recovery.detections");
  obs_.signals_sent = reg.counter("recovery.signals_sent");
  obs_.signals_lost = reg.counter("recovery.signals_lost");
  obs_.retries = reg.counter("recovery.retries");
  obs_.fallbacks = reg.counter("recovery.fallbacks");
  obs_.deadline_misses = reg.counter("recovery.deadline_misses");
  obs_.recovered = reg.counter("recovery.recovered");
}

double RecoveryPlane::deadline_for(const net::DrConnection& c) const {
  return c.qos.recovery_deadline > 0.0 ? c.qos.recovery_deadline
                                       : network_.config().recovery_deadline;
}

double RecoveryPlane::hop_time(const Process& p) const {
  return p.mode == Mode::kActivate ? network_.config().recovery_xc_time_per_hop
                                   : network_.config().recovery_setup_time_per_hop;
}

void RecoveryPlane::on_failure(const net::FailureReport& report) {
  const net::NetworkConfig& cfg = network_.config();
  const double t0 = now_();
  for (const net::SeveredVictim& v : report.severed) {
    Process p;
    p.id = v.id;
    p.t0 = t0;
    p.sever_idx = stats_.severed;
    p.epoch = next_epoch_++;
    p.severed_hops = v.primary_hops;
    p.double_hit = v.double_hit;
    p.was_active = v.was_active;
    // Per-victim substream keyed by (plane seed, connection id, plane-wide
    // severance ordinal — the global count of victims severed so far, not a
    // per-connection one): draws are independent of event interleaving, and
    // a connection severed a second time (after a successful recovery) gets
    // a fresh stream instead of replaying its first one.
    p.rng = util::Rng(util::Rng::substream_seed(
        util::Rng::substream_seed(seed_, v.id), p.sever_idx));
    ++stats_.severed;
    obs_.severed.inc();
    const double detect =
        p.rng.uniform(cfg.recovery_detect_min, cfg.recovery_detect_max);
    schedule_(t0 + detect, EventTag{kTagRecoveryDetect, v.id, p.epoch});
    // The deadline carries the severance ordinal, not the epoch: it must
    // survive fallbacks (which bump the epoch) yet go stale if the victim
    // recovers and is severed again before this event fires — a stale
    // deadline matching the successor would drop it at t0_old + D instead
    // of its real t0_new + D.
    schedule_(t0 + deadline_for(network_.connection(v.id)),
              EventTag{kTagRecoveryDeadline, v.id, p.sever_idx});
    processes_.insert_or_assign(v.id, std::move(p));
  }
}

void RecoveryPlane::dispatch(const EventTag& tag) {
  switch (tag.kind) {
    case kTagRecoveryDetect: handle_detect(tag.a, tag.b); return;
    case kTagRecoverySignal: handle_signal(tag.a, tag.b); return;
    case kTagRecoveryTimeout: handle_timeout(tag.a, tag.b); return;
    case kTagRecoveryDeadline: handle_deadline(tag.a, tag.b); return;
    default:
      throw std::logic_error("recovery_plane: unknown tag kind " +
                             std::to_string(tag.kind));
  }
}

std::size_t RecoveryPlane::in_flight() const {
  // processes_ may hold lazily-cancelled stale entries (victims terminated
  // by the workload before their next event fired); count only the live
  // ones so the reported figure never overstates in-flight recoveries.
  std::size_t live = 0;
  for (const auto& [id, p] : processes_)
    if (network_.is_recovering(id)) ++live;
  return live;
}

RecoveryPlane::Process* RecoveryPlane::live_process(net::ConnectionId id,
                                                    std::uint64_t epoch) {
  const auto it = processes_.find(id);
  if (it == processes_.end()) return nullptr;
  if (!network_.is_recovering(id)) {
    // The victim left the recovering state behind our back (terminated by
    // the workload): cancel lazily.
    processes_.erase(it);
    return nullptr;
  }
  return it->second.epoch == epoch ? &it->second : nullptr;
}

void RecoveryPlane::handle_detect(net::ConnectionId id, std::uint64_t epoch) {
  Process* p = live_process(id, epoch);
  if (p == nullptr) return;
  ++stats_.detections;
  obs_.detections.inc();
  begin_attempt(*p);
}

void RecoveryPlane::begin_attempt(Process& p) {
  std::size_t consumed = 0;
  std::optional<topology::Path> patch =
      network_.claim_recovery_channel(p.id, consumed);
  p.consumed += consumed;
  p.hop = 0;
  p.attempt = 0;
  if (patch.has_value()) {
    p.mode = Mode::kActivate;
    p.patch = std::move(*patch);
    // Dual-disjoint channels are pre-cross-connected: one actuation spans
    // the whole channel.  Every other scheme signals hop by hop.
    p.hops_total =
        network_.config().backup_scheme == net::BackupScheme::kDualDisjoint
            ? 1
            : p.patch.links.size();
    send_hop(p);
  } else if (network_.config().second_failure_policy ==
             net::SecondFailurePolicy::kReestablish) {
    // No covering channel left: signal a fresh end-to-end setup.  The new
    // route is only computed at commit time, so the setup length is modeled
    // on the severed primary's hop count.
    p.mode = Mode::kSetup;
    p.patch = topology::Path{};
    p.hops_total = p.severed_hops > 0 ? p.severed_hops : 1;
    send_hop(p);
  } else {
    finish_drop(p, /*deadline_missed=*/false, /*attempted_reestablish=*/false);
  }
}

void RecoveryPlane::send_hop(Process& p) {
  const net::NetworkConfig& cfg = network_.config();
  ++stats_.signals_sent;
  obs_.signals_sent.inc();
  // A message over a failed link is always lost; otherwise it is lost with
  // probability recovery_signal_loss_prob.  The random draw happens
  // unconditionally so each send consumes exactly one draw regardless of
  // the network state.
  bool on_failed_link = false;
  if (p.mode == Mode::kActivate) {
    if (p.hops_total == 1 && p.patch.links.size() > 1) {
      // Dual-disjoint single actuation: the message spans the whole channel.
      for (topology::LinkId l : p.patch.links)
        if (network_.link_state(l).failed()) { on_failed_link = true; break; }
    } else if (p.hop < p.patch.links.size()) {
      on_failed_link = network_.link_state(p.patch.links[p.hop]).failed();
    }
  }
  const bool drawn_lost = p.rng.chance(cfg.recovery_signal_loss_prob);
  if (on_failed_link || drawn_lost) {
    ++stats_.signals_lost;
    obs_.signals_lost.inc();
    // The timeout is the protocol's scheduled reaction to the loss — count
    // it as a retry now so retries >= losses holds at every instant.
    ++stats_.retries;
    obs_.retries.inc();
    const double delay = cfg.recovery_signal_timeout *
                         std::pow(cfg.recovery_signal_backoff,
                                  static_cast<double>(p.attempt));
    schedule_(now_() + delay, EventTag{kTagRecoveryTimeout, p.id, p.epoch});
  } else {
    schedule_(now_() + hop_time(p), EventTag{kTagRecoverySignal, p.id, p.epoch});
  }
}

void RecoveryPlane::handle_timeout(net::ConnectionId id, std::uint64_t epoch) {
  Process* p = live_process(id, epoch);
  if (p == nullptr) return;
  const net::NetworkConfig& cfg = network_.config();
  if (p->attempt < cfg.recovery_retry_cap) {
    ++p->attempt;
    send_hop(*p);
    return;
  }
  // Retry cap exhausted on this hop.
  if (p->mode == Mode::kActivate) {
    // The claimed channel is unreachable (its reservation was already
    // released at claim time): burn it and fall back to the next one.
    ++stats_.fallbacks;
    obs_.fallbacks.inc();
    p->epoch = next_epoch_++;
    ++p->consumed;
    begin_attempt(*p);
  } else {
    finish_drop(*p, /*deadline_missed=*/false, /*attempted_reestablish=*/true);
  }
}

void RecoveryPlane::handle_signal(net::ConnectionId id, std::uint64_t epoch) {
  Process* p = live_process(id, epoch);
  if (p == nullptr) return;
  ++p->hop;
  p->attempt = 0;
  if (p->hop < p->hops_total) {
    send_hop(*p);
    return;
  }
  complete(*p);
}

void RecoveryPlane::complete(Process& p) {
  const double ttr = now_() - p.t0;
  if (p.mode == Mode::kActivate) {
    const net::Network::RecoveryCommit rc = network_.complete_recovery(
        p.id, p.patch, ttr, ttr, /*via_fallback=*/p.consumed > 0);
    if (rc == net::Network::RecoveryCommit::kCommitted) {
      ++stats_.recovered;
      obs_.recovered.inc();
      processes_.erase(p.id);  // the pending deadline event no-ops from here
      return;
    }
    // A second failure (or ledger churn) killed the channel while the
    // activation was in flight: the race lost — fall back.
    ++stats_.fallbacks;
    obs_.fallbacks.inc();
    p.epoch = next_epoch_++;
    ++p.consumed;
    begin_attempt(p);
    return;
  }
  if (network_.complete_recovery_rescue(p.id, ttr, ttr)) {
    ++stats_.recovered;
    obs_.recovered.inc();
    processes_.erase(p.id);
    return;
  }
  finish_drop(p, /*deadline_missed=*/false, /*attempted_reestablish=*/true);
}

void RecoveryPlane::handle_deadline(net::ConnectionId id,
                                    std::uint64_t sever_idx) {
  const auto it = processes_.find(id);
  if (it == processes_.end()) return;
  if (!network_.is_recovering(id)) {
    processes_.erase(it);
    return;
  }
  // A deadline armed by an earlier severance of this connection (which has
  // since recovered and been severed again) must not drop the successor
  // process: only the deadline carrying the live severance ordinal counts.
  if (it->second.sever_idx != sever_idx) return;
  ++stats_.deadline_misses;
  obs_.deadline_misses.inc();
  finish_drop(it->second, /*deadline_missed=*/true,
              /*attempted_reestablish=*/false);
}

void RecoveryPlane::finish_drop(Process& p, bool deadline_missed,
                                bool attempted_reestablish) {
  const net::ConnectionId id = p.id;
  network_.drop_recovering(id, p.double_hit, p.was_active, deadline_missed,
                           attempted_reestablish, now_() - p.t0);
  ++stats_.dropped;
  processes_.erase(id);
}

// ---- Checkpointing ----------------------------------------------------------

void RecoveryPlane::save_state(state::Buffer& out) const {
  out.put_u64(stats_.severed);
  out.put_u64(stats_.detections);
  out.put_u64(stats_.signals_sent);
  out.put_u64(stats_.signals_lost);
  out.put_u64(stats_.retries);
  out.put_u64(stats_.fallbacks);
  out.put_u64(stats_.deadline_misses);
  out.put_u64(stats_.recovered);
  out.put_u64(stats_.dropped);
  out.put_u64(next_epoch_);
  // Only live processes are serialized: a victim terminated by the workload
  // leaves a stale entry that is cancelled lazily, and its pending events
  // no-op identically on both sides of a resume.
  std::vector<const Process*> live;
  live.reserve(processes_.size());
  for (const auto& [id, p] : processes_)
    if (network_.is_recovering(id)) live.push_back(&p);
  out.put_u64(live.size());
  for (const Process* pp : live) {
    const Process& p = *pp;
    out.put_u64(p.id);
    out.put_f64(p.t0);
    out.put_u64(p.sever_idx);
    out.put_u64(p.epoch);
    out.put_u8(static_cast<std::uint8_t>(p.mode));
    out.put_vec(p.patch.nodes, [&](topology::NodeId n) { out.put_u64(n); });
    out.put_vec(p.patch.links, [&](topology::LinkId l) { out.put_u64(l); });
    out.put_u64(p.hops_total);
    out.put_u64(p.hop);
    out.put_u64(p.attempt);
    out.put_u64(p.consumed);
    out.put_u64(p.severed_hops);
    out.put_bool(p.double_hit);
    out.put_bool(p.was_active);
    out.put_u64(p.rng.seed());
    out.put_str(p.rng.engine_state());
  }
}

void RecoveryPlane::load_state(state::Buffer& in) {
  stats_.severed = in.get_u64();
  stats_.detections = in.get_u64();
  stats_.signals_sent = in.get_u64();
  stats_.signals_lost = in.get_u64();
  stats_.retries = in.get_u64();
  stats_.fallbacks = in.get_u64();
  stats_.deadline_misses = in.get_u64();
  stats_.recovered = in.get_u64();
  stats_.dropped = in.get_u64();
  next_epoch_ = in.get_u64();
  processes_.clear();
  const std::size_t n = in.get_count(8);
  for (std::size_t i = 0; i < n; ++i) {
    Process p;
    p.id = in.get_u64();
    p.t0 = in.get_f64();
    p.sever_idx = in.get_u64();
    p.epoch = in.get_u64();
    const std::uint8_t mode = in.get_u8();
    if (mode > 1)
      throw state::CorruptError("recovery checkpoint: invalid process mode");
    p.mode = static_cast<Mode>(mode);
    const std::size_t n_nodes = in.get_count(8);
    p.patch.nodes.reserve(n_nodes);
    for (std::size_t k = 0; k < n_nodes; ++k)
      p.patch.nodes.push_back(static_cast<topology::NodeId>(in.get_u64()));
    const std::size_t n_links = in.get_count(8);
    p.patch.links.reserve(n_links);
    for (std::size_t k = 0; k < n_links; ++k)
      p.patch.links.push_back(static_cast<topology::LinkId>(in.get_u64()));
    p.hops_total = in.get_u64();
    p.hop = in.get_u64();
    p.attempt = in.get_u64();
    p.consumed = in.get_u64();
    p.severed_hops = in.get_u64();
    p.double_hit = in.get_bool();
    p.was_active = in.get_bool();
    const std::uint64_t rng_seed = in.get_u64();
    p.rng.set_engine_state(rng_seed, in.get_str());
    if (!network_.is_recovering(p.id))
      throw state::CorruptError(
          "recovery checkpoint: process for a non-recovering connection");
    if (p.hop > p.hops_total)
      throw state::CorruptError("recovery checkpoint: hop past hops_total");
    if (p.sever_idx >= stats_.severed)
      throw state::CorruptError(
          "recovery checkpoint: severance ordinal past the severed count");
    if (p.epoch >= next_epoch_)
      throw state::CorruptError(
          "recovery checkpoint: process epoch past the epoch allocator");
    processes_.insert_or_assign(p.id, std::move(p));
  }
}

}  // namespace eqos::sim
