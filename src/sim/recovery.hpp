// Simulated recovery control plane.
//
// With NetworkConfig::recovery_protocol on, Network::fail_link no longer
// rescues victims synchronously: it severs them into the kRecovering state
// and reports them (FailureReport::severed).  This plane turns each severed
// victim into an event-driven per-connection state machine:
//
//           failure (t0)
//               │  detect delay ~ U[detect_min, detect_max]
//               ▼
//   ┌──── kTagRecoveryDetect ────┐
//   │ claim next covering channel │──none + kReestablish──► setup signaling
//   │        (activation)         │──none + kDrop─────────► drop
//   └──────────────┬──────────────┘
//                  ▼  per hop: send ── lost? (failed link, or p_loss)
//        kTagRecoverySignal            │yes: kTagRecoveryTimeout at
//        (hop delivered, next hop)     │     timeout · backoff^attempt,
//                  │                   │     resend until retry_cap, then
//                  ▼                   │     fall back to the next channel
//        all hops delivered ──► Network::complete_recovery
//                  │                 │ kChannelDead (second failure raced
//                  │                 ▼  the in-flight activation)
//                  │            fall back: bump epoch, claim next channel
//                  ▼
//        committed — TTR/blackout = now − t0 (measured, not analytic)
//
//   kTagRecoveryDeadline fires once per victim at t0 + deadline (per-class
//   ElasticQosSpec::recovery_deadline, else NetworkConfig::recovery_deadline);
//   a victim still recovering is dropped with the deadline_miss loss cause.
//
// Determinism: every random draw (detect delay, per-hop loss) comes from a
// per-victim Rng substream seeded from (plane seed, connection id,
// plane-wide severance ordinal — the count of victims severed before this
// one, across all connections), so results are independent of thread/shard
// count and of the interleaving of other victims' events, and a connection
// severed a second time gets a fresh stream instead of replaying its first.
// Stale events — a victim that recovered, was dropped, or fell back to a
// new epoch — are cancelled lazily: each handler no-ops unless the tag's
// identity matches a live process that the Network still reports as
// recovering.  Two identities make that safe across re-severance (the same
// connection severed again after a successful recovery): detect/signal/
// timeout carry the process *epoch*, drawn from a plane-lifetime counter
// (never reused, bumped at creation and at every fallback), and the
// deadline carries the severance ordinal, which outlives fallbacks but
// changes per severance — so neither a leftover signaling event nor the
// first severance's deadline can fire against the re-severed successor.
//
// Checkpointing: the plane serializes its stats and every in-flight process
// (including each Rng's engine state) into the Simulator's "recovery"
// section; the pending tag events ride in the queue section like any other
// POD event, so a resumed run replays signaling loss-for-loss.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "state/serial.hpp"
#include "util/rng.hpp"

namespace eqos::sim {

// Simulator-owned tag kinds (1..15) used by the recovery plane.  For all
// four, `a` is the victim's connection id.  For detect/signal/timeout `b`
// is the process epoch that scheduled the event (plane-unique, so stale
// epochs no-op even across re-severance); for deadline `b` is the victim's
// severance ordinal (valid across fallbacks, stale across re-severance).
inline constexpr std::uint32_t kTagRecoveryDetect = 3;
inline constexpr std::uint32_t kTagRecoverySignal = 4;
inline constexpr std::uint32_t kTagRecoveryTimeout = 5;
inline constexpr std::uint32_t kTagRecoveryDeadline = 6;

/// Lifetime counters of the recovery control plane.
struct RecoveryPlaneStats {
  std::uint64_t severed = 0;          ///< victims handed to the plane
  std::uint64_t detections = 0;       ///< detect events that found a live victim
  std::uint64_t signals_sent = 0;     ///< hop messages sent (first try + resends)
  std::uint64_t signals_lost = 0;     ///< hop messages lost (failed link or p_loss)
  /// Retries scheduled — the protocol's timeout reaction to each observed
  /// loss (== signals_lost by construction; kept separate so the invariant
  /// `retries >= losses` is checkable end-to-end through obs export).
  std::uint64_t retries = 0;
  std::uint64_t fallbacks = 0;        ///< switched to the next covering channel
  std::uint64_t deadline_misses = 0;  ///< victims dropped at the deadline
  std::uint64_t recovered = 0;        ///< commits + rescues
  std::uint64_t dropped = 0;          ///< victims the plane dropped (all causes)
};

/// Event-driven recovery state machines for severed victims.  Owned by the
/// Simulator; only constructed when NetworkConfig::recovery_protocol is on.
class RecoveryPlane {
 public:
  /// The host's clock and scheduler (ShardedEngine::now / schedule of a
  /// tag-only POD event at an absolute time).
  using NowFn = std::function<double()>;
  using ScheduleFn = std::function<void(double time, const EventTag& tag)>;

  RecoveryPlane(net::Network& network, std::uint64_t seed, NowFn now,
                ScheduleFn schedule);

  /// Consumes FailureReport::severed: seeds one process per victim and
  /// schedules its detection and deadline events.
  void on_failure(const net::FailureReport& report);

  /// Routes a recovery tag (kinds 3..6) to its handler.
  void dispatch(const EventTag& tag);

  [[nodiscard]] const RecoveryPlaneStats& stats() const noexcept { return stats_; }
  /// In-flight recoveries: processes whose victim the Network still reports
  /// as recovering (lazily-cancelled stale entries are not counted).
  [[nodiscard]] std::size_t in_flight() const;

  /// Serializes stats + every in-flight process (ascending connection id).
  void save_state(state::Buffer& out) const;
  /// Restores a save_state payload; throws state::CorruptError on a
  /// structurally invalid payload.
  void load_state(state::Buffer& in);

 private:
  /// What the claimed signaling is trying to do.
  enum class Mode : std::uint8_t {
    kActivate = 0,  ///< activation signaling along a claimed backup channel
    kSetup = 1,     ///< fresh-route setup signaling (kReestablish, no channel)
  };

  /// One severed victim's in-flight recovery.
  struct Process {
    net::ConnectionId id = 0;
    double t0 = 0.0;               ///< severance instant (TTR/blackout origin)
    /// Plane-wide severance ordinal captured at creation; the deadline
    /// event carries it so a first severance's deadline cannot drop the
    /// re-severed successor process for the same connection.
    std::uint64_t sever_idx = 0;
    /// Drawn from next_epoch_ at creation and per fallback (never reused),
    /// so stale detect/signal/timeout events no-op across re-severance too.
    std::uint64_t epoch = 0;
    Mode mode = Mode::kActivate;
    topology::Path patch;          ///< claimed channel (kActivate only)
    std::size_t hops_total = 0;    ///< signaling hops this attempt needs
    std::size_t hop = 0;           ///< next hop to traverse
    std::size_t attempt = 0;       ///< resends of the current hop so far
    std::size_t consumed = 0;      ///< covering channels burned before this one
    std::size_t severed_hops = 0;  ///< hops of the severed primary (sizes setup)
    bool double_hit = false;       ///< a covering backup died with the primary
    bool was_active = false;       ///< the severed path was an activated backup
    util::Rng rng{0};              ///< per-victim substream (reseeded at creation)
  };

  void handle_detect(net::ConnectionId id, std::uint64_t epoch);
  void handle_signal(net::ConnectionId id, std::uint64_t epoch);
  void handle_timeout(net::ConnectionId id, std::uint64_t epoch);
  void handle_deadline(net::ConnectionId id, std::uint64_t sever_idx);

  /// Looks up a live process for (id, epoch); lazily erases processes whose
  /// victim the network no longer reports as recovering (terminated).
  /// nullptr for stale/unknown events.
  Process* live_process(net::ConnectionId id, std::uint64_t epoch);

  /// Claims the next covering channel (activation), falls back to setup
  /// signaling under kReestablish, or drops the victim.
  void begin_attempt(Process& p);
  /// Sends the current hop's message: draws loss, schedules the delivery or
  /// the retry timeout.
  void send_hop(Process& p);
  /// All hops delivered: commit (activation) or rescue (setup); a dead
  /// channel falls back to the next one.
  void complete(Process& p);
  /// Drops the victim through the network and erases the process.
  void finish_drop(Process& p, bool deadline_missed, bool attempted_reestablish);

  /// Per-hop signaling latency for the process's current mode.
  [[nodiscard]] double hop_time(const Process& p) const;
  /// Effective recovery deadline for a victim (per-class override, else the
  /// network default).
  [[nodiscard]] double deadline_for(const net::DrConnection& c) const;

  net::Network& network_;
  std::uint64_t seed_ = 0;
  NowFn now_;
  ScheduleFn schedule_;
  /// Ordered so serialization and bulk iteration are deterministic.
  std::map<net::ConnectionId, Process> processes_;
  RecoveryPlaneStats stats_;
  /// Plane-lifetime epoch allocator (checkpointed): epochs are never reused,
  /// so events queued for a dead process can never match a later one.
  std::uint64_t next_epoch_ = 0;

  struct ObsHandles {
    obs::Counter severed;
    obs::Counter detections;
    obs::Counter signals_sent;
    obs::Counter signals_lost;
    obs::Counter retries;
    obs::Counter fallbacks;
    obs::Counter deadline_misses;
    obs::Counter recovered;
  } obs_;
};

}  // namespace eqos::sim
