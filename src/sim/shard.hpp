// Sharded deterministic event engine.
//
// `ShardedEngine` partitions the future-event list across K `EventQueue`
// ladder instances — one per graph shard — and advances them under a
// conservative time-windowed barrier protocol while preserving the *exact*
// serial execution order.  The design splits the engine into two planes:
//
//  * Commit plane (serial, bit-exact).  One global clock and one global
//    sequence counter span all shards.  Each step K-way-merges the shard
//    queues' front events by (time, seq) and dispatches the global minimum;
//    since every shard queue pops in exact (time, seq) order, the merge of
//    the K fronts is the global minimum, so the dispatch order is identical
//    to a single queue holding every event.  Results are therefore
//    bit-identical at any shard count — the property the sweep harness
//    already guarantees for thread counts.
//
//  * Maintenance plane (parallel, order-neutral).  When the merged front
//    crosses the current window, the engine opens a new window
//    [T, T + lookahead) — lookahead derived from the failure detect time,
//    the soonest a cross-shard effect can matter — and runs
//    `EventQueue::prepare(window_end)` on every shard, concurrently when the
//    backlog justifies threads.  prepare() only re-primes rungs and
//    pre-sorts buckets, work step() would otherwise do lazily one queue at
//    a time, so parallelism never touches ordering.
//
// Cross-shard traffic: an event scheduled *during a dispatch* whose locus
// lands on a different shard is parked in the per-(src, dst) mailbox and
// flushed — destination-ascending, FIFO within a pair — when the handler
// returns, before the next front selection.  Sequence numbers are assigned
// at schedule time from the global counter, so the parked detour is
// order-equivalent to direct insertion; the mailboxes exist to keep a
// handler from mutating a foreign shard's ladder mid-flight and to expose
// the cross-shard event flow (`cross_shard_events()`) the scaling bench
// reports.
//
// Checkpointing: snapshot() merges the per-shard snapshots into one global
// (time, seq)-ordered list — byte-identical to what a single queue would
// emit — and restore() re-routes each event through the locus function.  A
// checkpoint therefore carries no shard layout at all: it can be written at
// one shard count and resumed at another, bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "topology/partition.hpp"

namespace eqos::sim {

/// Shard layout for one simulation: the node partition plus the
/// conservative window width.
struct ShardPlan {
  topology::Partition partition;
  /// Window width for the barrier protocol (simulated time).  Ignored for
  /// single-shard plans (the window is infinite).
  double lookahead = 1.0;

  [[nodiscard]] std::uint32_t shards() const noexcept {
    return partition.shards == 0 ? 1 : partition.shards;
  }
};

/// Builds the deterministic shard plan for a graph: seeded
/// recursive-bisection partition plus a lookahead of `detect_time` (the
/// failure detection/notification delay — the soonest one shard's failure
/// can affect another's recovery bookkeeping).  A non-positive detect time
/// falls back to 1.0 (documented fallback: the window must be positive for
/// the barrier protocol; correctness never depends on it because the
/// commit plane is serial — lookahead only batches maintenance).
[[nodiscard]] ShardPlan make_shard_plan(const topology::Graph& graph,
                                        std::uint32_t shards, double detect_time,
                                        std::uint64_t seed);

/// Network-config-aware overload: derives the window from the *minimum*
/// possible detection delay — recovery_detect_min when the event-driven
/// recovery protocol is on (its detect delay is drawn from
/// [detect_min, detect_max], so detect_min bounds the soonest cross-shard
/// reaction), else the legacy fixed recovery_detect_time — with the same
/// documented 1.0 fallback for a non-positive delay.
[[nodiscard]] ShardPlan make_shard_plan(const topology::Graph& graph,
                                        std::uint32_t shards,
                                        const net::NetworkConfig& config,
                                        std::uint64_t seed);

/// K-sharded deterministic future-event list.  Drop-in for EventQueue's
/// public surface; a default-constructed engine is a single shard and
/// behaves exactly like one EventQueue.
class ShardedEngine {
 public:
  using Action = EventQueue::Action;
  using Handler = EventQueue::Handler;
  using PendingEvent = EventQueue::PendingEvent;
  using Rebuilder = EventQueue::Rebuilder;
  /// Maps an event's tag to the shard that owns it (in [0, shards)).
  using Locus = std::function<std::uint32_t(const EventTag&)>;

  static constexpr std::uint32_t kMaxKind = EventQueue::kMaxKind;

  ShardedEngine();

  /// Installs the shard layout.  Must run before anything is scheduled
  /// (throws std::logic_error otherwise); registered handlers survive.
  /// `locus` may be null when `shards` == 1.
  void configure(std::uint32_t shards, double lookahead, Locus locus);

  void set_handler(std::uint32_t kind, Handler handler);
  [[nodiscard]] bool has_handler(std::uint32_t kind) const noexcept {
    return kind < handlers_.size() && static_cast<bool>(handlers_[kind]);
  }

  void schedule(double time, Action action) {
    schedule(time, EventTag{}, std::move(action));
  }
  void schedule(double time, EventTag tag, Action action);
  void schedule(double time, EventTag tag);
  void schedule_in(double delay, Action action) {
    schedule_in(delay, EventTag{}, std::move(action));
  }
  void schedule_in(double delay, EventTag tag, Action action);
  void schedule_in(double delay, EventTag tag);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return pending() == 0; }

  /// Pops and runs the globally earliest event.  False when empty.
  bool step();
  /// Runs events with time <= `end_time`; clock finishes at `end_time`.
  std::size_t run_until(double end_time);
  /// Discards pending events (clock and handlers survive).
  void clear();

  // ---- Checkpointing ------------------------------------------------------

  /// Pending events across all shards in global (time, seq) order —
  /// byte-identical to a single EventQueue's snapshot of the same events,
  /// so checkpoints are shard-count-invariant.
  [[nodiscard]] std::vector<PendingEvent> snapshot() const;
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  /// Replaces the engine contents; each event is re-routed to its locus
  /// shard (a checkpoint carries no shard layout).
  void restore(double now, std::uint64_t next_seq,
               const std::vector<PendingEvent>& events, const Rebuilder& rebuild);

  // ---- Introspection (benches, tests) -------------------------------------

  [[nodiscard]] std::uint32_t shards() const noexcept {
    return static_cast<std::uint32_t>(queues_.size());
  }
  [[nodiscard]] double lookahead() const noexcept { return lookahead_; }
  /// Windows opened so far (barrier rounds of the maintenance plane).
  [[nodiscard]] std::uint64_t barrier_rounds() const noexcept { return barrier_rounds_; }
  /// Events that crossed a shard boundary through a mailbox.
  [[nodiscard]] std::uint64_t cross_shard_events() const noexcept {
    return cross_shard_events_;
  }
  [[nodiscard]] std::size_t shard_pending(std::uint32_t shard) const {
    return queues_.at(shard).pending();
  }

 private:
  [[nodiscard]] std::uint64_t take_seq();
  [[nodiscard]] std::uint32_t locus_of(const EventTag& tag) const;
  /// Inserts directly or parks in a mailbox when issued mid-dispatch for a
  /// foreign shard.
  void route(double time, std::uint64_t key, std::uint64_t a, std::uint64_t b);
  void flush_mailboxes(std::uint32_t src);
  /// The globally earliest event (or nullptr), advancing the window first
  /// when the front has crossed it.
  [[nodiscard]] const EventQueue::Event* merge_front(std::uint32_t& shard);
  void open_window(double front_time);
  void dispatch(const EventQueue::Event& ev, std::uint32_t shard);

  std::vector<EventQueue> queues_;
  /// Parked cross-shard events, src-major (src * shards + dst).
  std::vector<std::vector<EventQueue::Event>> mailboxes_;
  Locus locus_;
  double lookahead_ = 0.0;
  double window_end_ = 0.0;
  bool in_dispatch_ = false;
  std::uint32_t dispatching_shard_ = 0;

  std::vector<Handler> handlers_;
  std::unordered_map<std::uint64_t, Action> closures_;

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t barrier_rounds_ = 0;
  std::uint64_t cross_shard_events_ = 0;
};

}  // namespace eqos::sim
