#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace eqos::sim {

void EventQueue::schedule(double time, EventTag tag, Action action) {
  if (time < now_) throw std::invalid_argument("event_queue: scheduling in the past");
  if (!action) throw std::invalid_argument("event_queue: null action");
  heap_.push_back(Entry{time, next_seq_++, tag, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::schedule_in(double delay, EventTag tag, Action action) {
  if (delay < 0.0) throw std::invalid_argument("event_queue: negative delay");
  schedule(now_ + delay, tag, std::move(action));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  now_ = entry.time;
  entry.action();
  return true;
}

std::size_t EventQueue::run_until(double end_time) {
  if (end_time < now_) throw std::invalid_argument("event_queue: end time in the past");
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front().time <= end_time) {
    step();
    ++executed;
  }
  now_ = end_time;
  return executed;
}

void EventQueue::clear() { heap_.clear(); }

std::vector<EventQueue::PendingEvent> EventQueue::snapshot() const {
  std::vector<PendingEvent> events;
  events.reserve(heap_.size());
  for (const Entry& e : heap_) {
    if (e.tag.kind == 0)
      throw std::logic_error(
          "event_queue: cannot snapshot an untagged event (seq " +
          std::to_string(e.seq) + ")");
    events.push_back(PendingEvent{e.time, e.seq, e.tag});
  }
  std::sort(events.begin(), events.end(), [](const PendingEvent& a, const PendingEvent& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  });
  return events;
}

void EventQueue::restore(double now, std::uint64_t next_seq,
                         const std::vector<PendingEvent>& events,
                         const Rebuilder& rebuild) {
  heap_.clear();
  now_ = now;
  next_seq_ = next_seq;
  heap_.reserve(events.size());
  for (const PendingEvent& e : events) {
    Action action = rebuild(e.tag);
    if (!action)
      throw std::invalid_argument("event_queue: restore produced a null action (kind " +
                                  std::to_string(e.tag.kind) + ")");
    heap_.push_back(Entry{e.time, e.seq, e.tag, std::move(action)});
  }
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

}  // namespace eqos::sim
