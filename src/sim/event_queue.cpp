#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace eqos::sim {

void EventQueue::schedule(double time, Action action) {
  if (time < now_) throw std::invalid_argument("event_queue: scheduling in the past");
  if (!action) throw std::invalid_argument("event_queue: null action");
  queue_.push(Entry{time, next_seq_++, std::move(action)});
}

void EventQueue::schedule_in(double delay, Action action) {
  if (delay < 0.0) throw std::invalid_argument("event_queue: negative delay");
  schedule(now_ + delay, std::move(action));
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately — but stay conservative and copy the
  // small struct, moving only the closure.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.time;
  entry.action();
  return true;
}

std::size_t EventQueue::run_until(double end_time) {
  if (end_time < now_) throw std::invalid_argument("event_queue: end time in the past");
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= end_time) {
    step();
    ++executed;
  }
  now_ = end_time;
  return executed;
}

void EventQueue::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace eqos::sim
