#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace eqos::sim {

namespace {

[[noreturn]] void throw_past(double time, double now, std::uint32_t kind) {
  throw std::invalid_argument("event_queue: scheduling in the past (kind " +
                              std::to_string(kind) + ", t=" + std::to_string(time) +
                              " < now=" + std::to_string(now) + ")");
}

}  // namespace

void EventQueue::set_handler(std::uint32_t kind, Handler handler) {
  if (kind == 0 || kind > kMaxKind)
    throw std::invalid_argument("event_queue: handler kind out of range (kind " +
                                std::to_string(kind) + ")");
  if (!handler) throw std::invalid_argument("event_queue: null handler");
  if (handlers_.size() <= kind) handlers_.resize(kind + 1);
  handlers_[kind] = std::move(handler);
}

std::uint64_t EventQueue::take_seq() {
  // Seqs live in the key's high 48 bits; at 10^6 events/s that is ~9 years
  // of continuous simulation before this trips.
  if (next_seq_ >= (std::uint64_t{1} << 48))
    throw std::overflow_error("event_queue: sequence number space exhausted");
  return next_seq_++;
}

std::size_t EventQueue::bucket_index(double time) const noexcept {
  // A pure function of `time` given fixed rung parameters, monotone in
  // `time`, so same-time events share a bucket and bucket order respects
  // time order.  The negated comparisons route non-finite intermediates
  // (inf/NaN widths or offsets) into bucket 0, which is always correct —
  // bucket 0 is fully sorted before its first pop.
  if (!(bucket_width_ > 0.0)) return 0;
  const double d = (time - rung_base_) / bucket_width_;
  if (!(d > 0.0)) return 0;
  if (d >= static_cast<double>(kNumBuckets)) return kNumBuckets - 1;
  return static_cast<std::size_t>(d);
}

void EventQueue::insert(double time, std::uint64_t key, std::uint64_t a, std::uint64_t b) {
  const Event ev{time, key, a, b};
  if (rung_active_ && time <= horizon_) {
    const std::size_t idx = bucket_index(time);
    std::vector<Event>& bucket = buckets_[idx];
    if (bucket_sorted_[idx]) {
      // Keep an already-sorted bucket sorted: binary-insert into the live
      // suffix.  The new event can never land before the consumed prefix —
      // its time is >= now() and its seq exceeds every consumed seq.
      bucket.insert(std::lower_bound(bucket.begin() +
                                         static_cast<std::ptrdiff_t>(bucket_head_[idx]),
                                     bucket.end(), ev, Earlier{}),
                    ev);
    } else {
      bucket.push_back(ev);
    }
    if (idx < cur_bucket_) cur_bucket_ = idx;  // jump back for the new front
    ++rung_count_;
  } else {
    far_.push_back(ev);
  }
  ++size_;
}

void EventQueue::spill() {
  // Pick the new horizon: take the whole overflow when it is small; for a
  // huge overflow, slice off roughly the earliest kMaxSpillEvents by
  // assuming a uniform spread over [tmin, tmax].  Events left behind are
  // all > horizon, so later inserts <= horizon still order correctly.
  double tmin = far_.front().time;
  double tmax = tmin;
  for (const Event& e : far_) {
    if (e.time < tmin) tmin = e.time;
    if (e.time > tmax) tmax = e.time;
  }
  double h = tmax;
  if (far_.size() > kMaxSpillEvents) {
    h = tmin + (tmax - tmin) * (static_cast<double>(kMaxSpillEvents) /
                                static_cast<double>(far_.size()));
    if (!(h >= tmin)) h = tmin;
  }
  rung_base_ = tmin;
  horizon_ = h;
  bucket_width_ = (h - tmin) / static_cast<double>(kNumBuckets);
  rung_active_ = true;
  cur_bucket_ = 0;
  // In-place partition: move events <= horizon into their buckets (every
  // bucket is empty/reset here — the rung only drains through pop, which
  // resets a bucket as it exhausts).
  std::size_t i = 0;
  while (i < far_.size()) {
    if (far_[i].time <= h) {
      buckets_[bucket_index(far_[i].time)].push_back(far_[i]);
      ++rung_count_;
      far_[i] = far_.back();
      far_.pop_back();
    } else {
      ++i;
    }
  }
}

const EventQueue::Event* EventQueue::front_event() {
  if (size_ == 0) return nullptr;
  if (rung_count_ == 0) spill();  // size_ > 0 and rung empty => far_ non-empty
  while (bucket_head_[cur_bucket_] >= buckets_[cur_bucket_].size()) {
    // Exhausted (or never-filled) bucket: reset it for the next rung and
    // move on.  rung_count_ > 0 guarantees a non-empty bucket ahead.
    buckets_[cur_bucket_].clear();
    bucket_head_[cur_bucket_] = 0;
    bucket_sorted_[cur_bucket_] = false;
    ++cur_bucket_;
  }
  std::vector<Event>& bucket = buckets_[cur_bucket_];
  if (!bucket_sorted_[cur_bucket_]) {
    std::sort(bucket.begin() + static_cast<std::ptrdiff_t>(bucket_head_[cur_bucket_]),
              bucket.end(), Earlier{});
    bucket_sorted_[cur_bucket_] = true;
  }
  return &bucket[bucket_head_[cur_bucket_]];
}

void EventQueue::pop_front() {
  std::vector<Event>& bucket = buckets_[cur_bucket_];
  if (++bucket_head_[cur_bucket_] == bucket.size()) {
    bucket.clear();
    bucket_head_[cur_bucket_] = 0;
    bucket_sorted_[cur_bucket_] = false;
  }
  --rung_count_;
  --size_;
}

void EventQueue::dispatch(const Event& ev) {
  if (ev.key & kClosureFlag) {
    const auto it = closures_.find(seq_of(ev.key));
    Action action = std::move(it->second);
    closures_.erase(it);
    action();
  } else {
    handlers_[kind_of(ev.key)](EventTag{kind_of(ev.key), ev.a, ev.b});
  }
}

void EventQueue::schedule(double time, EventTag tag, Action action) {
  if (time < now_) throw_past(time, now_, tag.kind);
  if (!action) throw std::invalid_argument("event_queue: null action");
  if (tag.kind > kMaxKind)
    throw std::invalid_argument("event_queue: event kind out of range (kind " +
                                std::to_string(tag.kind) + ")");
  const std::uint64_t seq = take_seq();
  closures_.emplace(seq, std::move(action));
  insert(time, (seq << kSeqShift) | kClosureFlag | tag.kind, tag.a, tag.b);
}

void EventQueue::schedule(double time, EventTag tag) {
  if (time < now_) throw_past(time, now_, tag.kind);
  if (!has_handler(tag.kind))
    throw std::invalid_argument("event_queue: no handler registered (kind " +
                                std::to_string(tag.kind) + ")");
  insert(time, (take_seq() << kSeqShift) | tag.kind, tag.a, tag.b);
}

void EventQueue::schedule_in(double delay, EventTag tag, Action action) {
  if (delay < 0.0) throw std::invalid_argument("event_queue: negative delay");
  schedule(now_ + delay, tag, std::move(action));
}

void EventQueue::schedule_in(double delay, EventTag tag) {
  if (delay < 0.0) throw std::invalid_argument("event_queue: negative delay");
  schedule(now_ + delay, tag);
}

bool EventQueue::step() {
  const Event* front = front_event();
  if (front == nullptr) return false;
  const Event ev = *front;  // copy before pop: the handler may schedule
  pop_front();
  now_ = ev.time;
  dispatch(ev);
  return true;
}

std::size_t EventQueue::run_until(double end_time) {
  if (end_time < now_) throw std::invalid_argument("event_queue: end time in the past");
  std::size_t executed = 0;
  for (;;) {
    const Event* front = front_event();
    if (front == nullptr || front->time > end_time) break;
    const Event ev = *front;
    pop_front();
    now_ = ev.time;
    dispatch(ev);
    ++executed;
  }
  now_ = end_time;
  return executed;
}

void EventQueue::prepare(double horizon) {
  if (size_ == 0) return;
  if (rung_count_ == 0) spill();
  const std::size_t last =
      horizon >= horizon_ ? kNumBuckets - 1 : bucket_index(horizon);
  for (std::size_t i = cur_bucket_; i <= last; ++i) {
    if (bucket_sorted_[i] || bucket_head_[i] >= buckets_[i].size()) continue;
    std::sort(buckets_[i].begin() + static_cast<std::ptrdiff_t>(bucket_head_[i]),
              buckets_[i].end(), Earlier{});
    bucket_sorted_[i] = true;
  }
}

void EventQueue::clear() {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].clear();
    bucket_head_[i] = 0;
    bucket_sorted_[i] = false;
  }
  far_.clear();
  closures_.clear();
  rung_active_ = false;
  rung_base_ = bucket_width_ = horizon_ = 0.0;
  rung_count_ = 0;
  cur_bucket_ = 0;
  size_ = 0;
}

std::vector<EventQueue::PendingEvent> EventQueue::snapshot() const {
  std::vector<PendingEvent> events;
  events.reserve(size_);
  const auto emit = [&events](const Event& e) {
    if (kind_of(e.key) == 0)
      throw std::logic_error(
          "event_queue: cannot snapshot an untagged event (seq " +
          std::to_string(seq_of(e.key)) + ")");
    events.push_back(PendingEvent{e.time, seq_of(e.key),
                                  EventTag{kind_of(e.key), e.a, e.b}});
  };
  for (std::size_t i = 0; i < kNumBuckets; ++i)
    for (std::size_t j = bucket_head_[i]; j < buckets_[i].size(); ++j)
      emit(buckets_[i][j]);
  for (const Event& e : far_) emit(e);
  std::sort(events.begin(), events.end(), [](const PendingEvent& a, const PendingEvent& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  });
  return events;
}

void EventQueue::restore(double now, std::uint64_t next_seq,
                         const std::vector<PendingEvent>& events,
                         const Rebuilder& rebuild) {
  clear();
  now_ = now;
  next_seq_ = next_seq;
  far_.reserve(events.size());
  for (const PendingEvent& e : events) {
    if (e.tag.kind > kMaxKind)
      throw std::invalid_argument("event_queue: event kind out of range (kind " +
                                  std::to_string(e.tag.kind) + ")");
    // The rebuilt closure doubles as tag validation (owners throw or return
    // null for tags they cannot reconstruct); events whose kind has a
    // registered handler then re-enter the POD fast path and the closure is
    // discarded.
    Action action = rebuild(e.tag);
    if (!action)
      throw std::invalid_argument("event_queue: restore produced a null action (kind " +
                                  std::to_string(e.tag.kind) + ")");
    std::uint64_t key = (e.seq << kSeqShift) | (e.tag.kind & kMaxKind);
    if (!has_handler(e.tag.kind)) {
      key |= kClosureFlag;
      closures_.emplace(e.seq, std::move(action));
    }
    insert(e.time, key, e.tag.a, e.tag.b);
  }
}

}  // namespace eqos::sim
