// Elastic QoS specification (the paper's min-max range model, Section 2.2).
//
// A client asks for a bandwidth range [bmin, bmax] plus a utility weight.
// The network admits the connection based on bmin alone; spare capacity is
// granted at run time in whole multiples of the increment, and reclaimed
// ("retreat") when arrivals or failures need it.  The increment discretizes
// elasticity exactly as Section 3.2 prescribes: a channel's possible
// reservations are bmin + i * increment for i = 0..N-1.
#pragma once

#include <cstddef>
#include <cstdint>

namespace eqos::net {

/// How spare capacity is divided among competing primaries (Section 2.2).
enum class AdaptationScheme : std::uint8_t {
  /// Proportional to utility (the "coefficient" scheme [5]); equal utilities
  /// give the fair distribution used throughout the paper's evaluation.
  kCoefficient,
  /// Highest utility first, each channel filled to bmax before the next (the
  /// "max-utility" scheme [11]).
  kMaxUtility,
};

/// Min-max range QoS of one DR-connection.  Bandwidths in Kbit/s.
struct ElasticQosSpec {
  double bmin_kbps = 100.0;
  double bmax_kbps = 500.0;
  double increment_kbps = 50.0;
  double utility = 1.0;
  /// Per-class recovery deadline (simulated time units): a victim whose
  /// simulated recovery has not completed this long after the failure is
  /// dropped with a deadline_miss loss cause.  0 (the default) defers to
  /// NetworkConfig::recovery_deadline.  Only consulted when the simulated
  /// recovery control plane is enabled (NetworkConfig::recovery_protocol).
  double recovery_deadline = 0.0;

  /// Number of reachable reservation levels N = 1 + (bmax-bmin)/increment.
  [[nodiscard]] std::size_t num_states() const;
  /// Largest number of extra increments a channel can hold (N - 1).
  [[nodiscard]] std::size_t max_extra_quanta() const;
  /// Reservation at `quanta` extra increments.
  [[nodiscard]] double bandwidth_at(std::size_t quanta) const;

  /// Throws std::invalid_argument when the range, increment, or utility is
  /// inconsistent (bmin <= 0, bmax < bmin, non-positive increment, range not
  /// an integral multiple of the increment, utility <= 0).
  void validate() const;
};

}  // namespace eqos::net
