// Bounded-flooding route discovery (Sections 2.1.1 and 3.1).
//
// The paper's distributed establishment: the source floods a request within
// a bounded region; every node forwards each request copy — annotated with
// the bottleneck "bandwidth allowance" of the partial route — to all
// neighbors except the one it came from, discarding copies that exceed the
// flooding bound, cannot be admitted on the next link, or are no better
// than a copy seen earlier.  The destination confirms the first-arriving
// copy (fewest hops), breaking ties by the better allowance.
//
// This module simulates that protocol faithfully in synchronous rounds
// (round k = copies that traveled k hops, matching the "arrived first"
// order) and also reports the message overhead the paper attributes to
// flooding.  `Router`'s centralized widest-shortest search is provably
// equivalent in route quality when the bound covers the distance; the
// equivalence is asserted in tests/test_flooding.cpp.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "net/link_state.hpp"
#include "topology/graph.hpp"
#include "topology/paths.hpp"

namespace eqos::net {

/// Outcome of one flood.
struct FloodResult {
  /// The route the destination confirms; empty when no admissible route
  /// exists within the bound.
  std::optional<topology::Path> route;
  /// Request copies forwarded over links (the protocol's traffic overhead).
  std::size_t messages = 0;
  /// Rounds until the search settled (hops of the confirmed route, or the
  /// bound when nothing was found).
  std::size_t rounds = 0;
};

/// Floods a route request for `bmin` Kb/s from `src` to `dst`, traveling at
/// most `hop_bound` hops.  A copy is forwarded over a link only if that
/// link can admit `bmin` (same admission rule as the centralized router).
/// Copies that reach a node with a worse (hops, allowance) label than one
/// already seen there are discarded, as in the paper.
[[nodiscard]] FloodResult flood_route(const topology::Graph& graph,
                                      const std::vector<LinkState>& links,
                                      topology::NodeId src, topology::NodeId dst,
                                      double bmin, std::size_t hop_bound);

}  // namespace eqos::net
