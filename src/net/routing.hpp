// Route selection for DR-connections.
//
// Centralized equivalent of the paper's bounded-flooding establishment
// (Section 3.1): the primary takes the fewest-hop route whose every link can
// admit bmin, with ties broken by the larger bottleneck headroom (the
// "better bandwidth allowance" rule); the backup takes the route minimizing
// link overlap with the primary — fully link-disjoint when one exists,
// maximally link-disjoint otherwise (footnote 1) — subject to the
// multiplexed backup reservation fitting on every link.
#pragma once

#include <cstdint>
#include <optional>

#include "net/backup.hpp"
#include "net/link_state.hpp"
#include "net/qos.hpp"
#include "topology/goal.hpp"
#include "topology/graph.hpp"
#include "topology/paths.hpp"

namespace eqos::net {

/// Primary route selection policy.
enum class RoutePolicy : std::uint8_t {
  /// Fewest hops, ties broken by the larger bottleneck admission headroom —
  /// the bounded-flooding behavior the paper describes (default).
  kWidestShortest,
  /// Plain fewest hops (BFS order tie-break); ablation baseline showing the
  /// value of the bandwidth-allowance tie-break.
  kShortest,
};

/// Stateless route finder over the network's current ledgers.
class Router {
 public:
  /// Keeps references; the graph, link table, and backup manager must
  /// outlive the router.  `goal`, when non-null, supplies per-destination
  /// hop-distance lower bounds for goal-directed pruning (the owner must
  /// keep its usable-link set a superset of what the admission filters
  /// admit — the network masks exactly the failed links); routes are
  /// bit-identical with or without it.
  Router(const topology::Graph& graph, const std::vector<LinkState>& links,
         const BackupManager& backups, RoutePolicy policy = RoutePolicy::kWidestShortest,
         topology::HopDistanceField* goal = nullptr);

  /// Fewest-hop / widest primary route admitting `bmin` on every link.
  [[nodiscard]] std::optional<topology::Path> find_primary(topology::NodeId src,
                                                           topology::NodeId dst,
                                                           double bmin) const;

  /// Minimum-overlap backup route for a connection whose primary is
  /// `primary` (link set `primary_links`), requiring the admission ledger to
  /// absorb the incremental multiplexed reservation on every link.  When
  /// `require_disjoint` is set, results overlapping the primary are
  /// rejected.
  [[nodiscard]] std::optional<topology::Path> find_backup(
      topology::NodeId src, topology::NodeId dst, double bmin,
      const util::DynamicBitset& primary_links, bool require_disjoint) const;

  /// General backup-channel search (the multi-backup schemes' entry point;
  /// the overload above is the single-backup special case).
  struct BackupQuery {
    topology::NodeId src = 0;
    topology::NodeId dst = 0;
    double bmin = 0.0;
    /// Scenario basis of the channel's multiplexed reservation — the
    /// primary links whose failure will trigger it (whole primary for
    /// full-span channels, the covered segment for segment backups).
    const util::DynamicBitset* trigger = nullptr;
    /// Link set overlap is accounted (and, under require_disjoint,
    /// forbidden) against — the connection's primary.
    const util::DynamicBitset* primary = nullptr;
    /// Optional superset of `primary` the search *minimizes* overlap with
    /// instead (SRLG-avoidance); nullptr = primary.
    const util::DynamicBitset* soft_avoid = nullptr;
    /// Optional hard-inadmissible links (sibling channels' links, SRLG
    /// co-members under SrlgPolicy::kRequire); nullptr = none.
    const util::DynamicBitset* forbidden = nullptr;
    bool require_disjoint = false;
  };
  [[nodiscard]] std::optional<topology::Path> find_backup(const BackupQuery& q) const;

 private:
  /// Hop bound for `dst` (nullptr when no field is attached).
  [[nodiscard]] const std::uint32_t* bound_for(topology::NodeId dst) const {
    return goal_ ? goal_->to_destination(dst) : nullptr;
  }

  const topology::Graph& graph_;
  const std::vector<LinkState>& links_;
  const BackupManager& backups_;
  RoutePolicy policy_;
  topology::HopDistanceField* goal_;
  /// Reused search buffers: route selection runs twice per arrival (primary
  /// + backup), so per-call scratch allocation is churn-loop hot-path cost.
  /// Mutable because the searches are logically const (the workspace is
  /// invisible to callers); makes the router non-thread-safe, which it
  /// already was by way of the mutable ledgers it reads.
  mutable topology::PathSearch search_;
};

}  // namespace eqos::net
