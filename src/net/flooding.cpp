#include "net/flooding.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace eqos::net {
namespace {

/// Label a node remembers for the best request copy seen so far.
struct Label {
  std::size_t hops = std::numeric_limits<std::size_t>::max();
  double allowance = 0.0;  // bottleneck admission headroom of the route
  topology::LinkId via_link = 0;
  bool seen = false;

  /// The paper's preference: earlier arrival (fewer hops) wins; among equal
  /// arrivals, the better bandwidth allowance wins.
  [[nodiscard]] bool better_than(std::size_t h, double a) const {
    if (!seen) return false;
    if (hops != h) return hops < h;
    return allowance >= a;
  }
};

/// Per-thread scratch reused across floods: label, frontier, and
/// frontier-membership storage would otherwise be allocated per call, and a
/// flood runs per establishment when the distributed protocol is simulated.
/// Thread-local (not shared) so parallel sweep workers never contend; each
/// call fully re-initializes what it reads, so reuse cannot change results.
struct FloodScratch {
  std::vector<Label> labels;
  std::vector<topology::NodeId> frontier;
  std::vector<topology::NodeId> next;
  std::vector<char> in_next;  // membership flags for `next` (O(1) dedup)
};

}  // namespace

FloodResult flood_route(const topology::Graph& graph,
                        const std::vector<LinkState>& links, topology::NodeId src,
                        topology::NodeId dst, double bmin, std::size_t hop_bound) {
  if (src >= graph.num_nodes() || dst >= graph.num_nodes())
    throw std::invalid_argument("flood_route: unknown endpoint");
  if (src == dst) throw std::invalid_argument("flood_route: src == dst");
  if (links.size() != graph.num_links())
    throw std::invalid_argument("flood_route: link table size mismatch");

  thread_local FloodScratch scratch;
  FloodResult result;
  std::vector<Label>& labels = scratch.labels;
  labels.assign(graph.num_nodes(), Label{});
  labels[src] = Label{0, std::numeric_limits<double>::infinity(), 0, true};

  // Synchronous rounds: `frontier` holds nodes whose best copy arrived in
  // the previous round and must be forwarded.
  std::vector<topology::NodeId>& frontier = scratch.frontier;
  std::vector<topology::NodeId>& next = scratch.next;
  frontier.assign(1, src);
  scratch.in_next.assign(graph.num_nodes(), 0);
  for (std::size_t round = 1; round <= hop_bound && !frontier.empty(); ++round) {
    result.rounds = round;
    next.clear();
    for (const topology::NodeId u : frontier) {
      const Label& from = labels[u];
      // A copy whose label was superseded after scheduling is stale.
      if (from.hops != round - 1) continue;
      for (const auto& adj : graph.adjacent(u)) {
        const LinkState& link = links[adj.link];
        if (!link.admits_primary(bmin)) continue;  // cannot reserve: discard
        ++result.messages;                          // the copy is forwarded
        const double allowance = std::min(from.allowance, link.admission_headroom());
        Label& at = labels[adj.neighbor];
        if (at.better_than(round, allowance)) continue;  // worse copy: discard
        at = Label{round, allowance, adj.link, true};
        if (adj.neighbor != dst && !scratch.in_next[adj.neighbor]) {
          scratch.in_next[adj.neighbor] = 1;
          next.push_back(adj.neighbor);
        }
      }
    }
    // The destination confirms as soon as any copy arrives; copies still in
    // flight at the same round already competed via better_than above.
    if (labels[dst].seen) break;
    frontier.swap(next);
    for (const topology::NodeId u : frontier) scratch.in_next[u] = 0;
  }

  if (!labels[dst].seen) return result;

  topology::Path path;
  topology::NodeId at = dst;
  while (at != src) {
    const topology::LinkId l = labels[at].via_link;
    path.links.push_back(l);
    path.nodes.push_back(at);
    at = graph.link(l).other(at);
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.links.begin(), path.links.end());
  result.route = std::move(path);
  return result;
}

}  // namespace eqos::net
