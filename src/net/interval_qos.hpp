// Interval QoS: the k-out-of-M run-time model (Section 2.2).
//
// While the min-max range model governs *establishment-time* elasticity, the
// interval model governs *run-time* packet handling: at least k of any M
// consecutive packets of a channel must be delivered within the interval,
// and "the link manager can selectively ignore a packet as long as it can
// satisfy the minimum k-out-of-M requirement" — i.e. under transient
// congestion the manager sheds exactly the packets the contract lets it
// shed.
//
// `IntervalRegulator` tracks one channel's sliding window and says whether
// the next packet is mandatory.  `IntervalLinkScheduler` multiplexes many
// regulated channels over a link with a fixed per-tick packet budget:
// mandatory packets first (a violation is counted if they alone exceed the
// budget), then droppable packets in deterministic round-robin order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace eqos::net {

/// The k-out-of-M contract.
struct IntervalQosSpec {
  std::size_t k = 1;  ///< minimum deliveries per window
  std::size_t m = 1;  ///< window length (consecutive offered packets)

  /// Throws std::invalid_argument unless 1 <= k <= m.
  void validate() const;
  /// Long-run guaranteed delivery fraction k/M.
  [[nodiscard]] double min_delivery_fraction() const;
};

/// Sliding-window enforcement for one channel.
class IntervalRegulator {
 public:
  explicit IntervalRegulator(IntervalQosSpec spec);

  [[nodiscard]] const IntervalQosSpec& spec() const noexcept { return spec_; }

  /// True iff dropping the next packet could violate the contract (the last
  /// M-1 decisions already contain M-k drops).
  [[nodiscard]] bool next_is_mandatory() const;

  /// Records the fate of the next offered packet.  Dropping a mandatory
  /// packet throws std::logic_error (the caller must never do it).
  void record(bool delivered);

  /// Decisions recorded so far.
  [[nodiscard]] std::size_t offered() const noexcept { return offered_; }
  [[nodiscard]] std::size_t delivered() const noexcept { return delivered_; }
  /// Delivered fraction over the whole history (1.0 before any packet).
  [[nodiscard]] double delivery_fraction() const;
  /// Drops among the last min(offered, M-1) decisions.
  [[nodiscard]] std::size_t drops_in_window() const noexcept { return window_drops_; }

 private:
  IntervalQosSpec spec_;
  std::deque<bool> window_;  // last M-1 decisions (true = delivered)
  std::size_t window_drops_ = 0;
  std::size_t offered_ = 0;
  std::size_t delivered_ = 0;
};

/// Outcome counters of one scheduler run.
struct IntervalScheduleStats {
  std::size_t ticks = 0;
  std::size_t offered = 0;
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  /// Ticks on which mandatory packets alone exceeded the budget; the excess
  /// mandatory packets are still delivered (the guarantee is kept) but the
  /// overload is flagged, since the admission control should have prevented
  /// it.
  std::size_t overload_ticks = 0;
};

/// Multiplexes regulated channels over one link.
class IntervalLinkScheduler {
 public:
  /// `packets_per_tick` is the link's per-tick delivery budget.
  explicit IntervalLinkScheduler(std::size_t packets_per_tick);

  /// Adds a channel; returns its index.
  std::size_t add_channel(IntervalQosSpec spec);

  [[nodiscard]] std::size_t num_channels() const noexcept { return channels_.size(); }
  [[nodiscard]] const IntervalRegulator& channel(std::size_t index) const;

  /// Runs one tick in which every channel in `offering` offers one packet.
  /// Mandatory packets are delivered first, then droppable packets in
  /// rotating round-robin order until the budget is exhausted.
  void tick(const std::vector<std::size_t>& offering);

  /// Runs `ticks` ticks with every channel offering each tick (saturation).
  void run_saturated(std::size_t ticks);

  [[nodiscard]] const IntervalScheduleStats& stats() const noexcept { return stats_; }

  /// Smallest per-tick budget that can sustain all channels' guarantees at
  /// saturation: ceil(sum of k_i / M_i) — the admission-control bound.
  [[nodiscard]] double mandatory_load() const;

 private:
  std::size_t budget_;
  std::vector<IntervalRegulator> channels_;
  std::size_t rr_cursor_ = 0;  // round-robin fairness cursor
  IntervalScheduleStats stats_;
};

}  // namespace eqos::net
