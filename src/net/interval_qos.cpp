#include "net/interval_qos.hpp"

#include <algorithm>
#include <stdexcept>

namespace eqos::net {

void IntervalQosSpec::validate() const {
  if (k < 1 || m < 1 || k > m)
    throw std::invalid_argument("interval qos: need 1 <= k <= M");
}

double IntervalQosSpec::min_delivery_fraction() const {
  return static_cast<double>(k) / static_cast<double>(m);
}

IntervalRegulator::IntervalRegulator(IntervalQosSpec spec) : spec_(spec) {
  spec_.validate();
}

bool IntervalRegulator::next_is_mandatory() const {
  // The contract allows at most M-k drops in any M consecutive packets; if
  // the last M-1 already hold that many, the next must go through.
  return window_drops_ >= spec_.m - spec_.k;
}

void IntervalRegulator::record(bool delivered_packet) {
  if (!delivered_packet && next_is_mandatory())
    throw std::logic_error("interval qos: dropped a mandatory packet");
  ++offered_;
  if (delivered_packet) ++delivered_;

  if (spec_.m == 1) return;  // window of M-1 = 0 decisions: nothing to track
  window_.push_back(delivered_packet);
  if (!delivered_packet) ++window_drops_;
  if (window_.size() > spec_.m - 1) {
    if (!window_.front()) --window_drops_;
    window_.pop_front();
  }
}

double IntervalRegulator::delivery_fraction() const {
  if (offered_ == 0) return 1.0;
  return static_cast<double>(delivered_) / static_cast<double>(offered_);
}

IntervalLinkScheduler::IntervalLinkScheduler(std::size_t packets_per_tick)
    : budget_(packets_per_tick) {
  if (packets_per_tick == 0)
    throw std::invalid_argument("interval scheduler: zero budget");
}

std::size_t IntervalLinkScheduler::add_channel(IntervalQosSpec spec) {
  channels_.emplace_back(spec);
  return channels_.size() - 1;
}

const IntervalRegulator& IntervalLinkScheduler::channel(std::size_t index) const {
  if (index >= channels_.size())
    throw std::invalid_argument("interval scheduler: unknown channel");
  return channels_[index];
}

void IntervalLinkScheduler::tick(const std::vector<std::size_t>& offering) {
  for ([[maybe_unused]] std::size_t c : offering)
    if (c >= channels_.size())
      throw std::invalid_argument("interval scheduler: unknown channel in tick");

  ++stats_.ticks;
  stats_.offered += offering.size();

  std::vector<std::size_t> mandatory;
  std::vector<std::size_t> droppable;
  for (std::size_t c : offering)
    (channels_[c].next_is_mandatory() ? mandatory : droppable).push_back(c);

  // Mandatory packets always go through; flag the tick when they alone
  // exceed the budget (admission control failed upstream).
  if (mandatory.size() > budget_) ++stats_.overload_ticks;
  for (std::size_t c : mandatory) {
    channels_[c].record(true);
    ++stats_.delivered;
  }

  std::size_t remaining =
      budget_ > mandatory.size() ? budget_ - mandatory.size() : 0;
  // Rotate the droppable list so spare capacity is shared fairly over time.
  if (!droppable.empty()) {
    const std::size_t shift = rr_cursor_ % droppable.size();
    std::rotate(droppable.begin(),
                droppable.begin() + static_cast<std::ptrdiff_t>(shift),
                droppable.end());
    ++rr_cursor_;
  }
  for (std::size_t c : droppable) {
    const bool deliver = remaining > 0;
    if (deliver) --remaining;
    channels_[c].record(deliver);
    if (deliver)
      ++stats_.delivered;
    else
      ++stats_.dropped;
  }
}

void IntervalLinkScheduler::run_saturated(std::size_t ticks) {
  std::vector<std::size_t> all(channels_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  for (std::size_t t = 0; t < ticks; ++t) tick(all);
}

double IntervalLinkScheduler::mandatory_load() const {
  double load = 0.0;
  for (const auto& c : channels_) load += c.spec().min_delivery_fraction();
  return load;
}

}  // namespace eqos::net
