// Checkpoint serialization of the Network (save_state / load_state).
//
// Kept out of network.cpp so the event-path code stays focused; this file
// only reads and writes state the event paths maintain.
//
// Serialization policy: order-bearing state is stored exactly (active_ids_
// order, per-link registry slots, the backup manager's flat ledgers), while
// derived caches are rebuilt (primary/backup link bitsets from the paths,
// the arena slot assignment with its slot_of_/active_* mirrors and SoA
// ledgers, the hop-distance field's usable mask from the failed flags).  Every floating-point ledger value round-trips as
// its IEEE-754 bit pattern; link ledgers are rebuilt through the public
// mutators, whose "0 + x" accumulation reproduces the stored value exactly.
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "state/serial.hpp"

namespace eqos::net {
namespace {

void put_path(state::Buffer& out, const topology::Path& p) {
  out.put_vec(p.nodes, [&out](topology::NodeId n) { out.put_u64(n); });
  out.put_vec(p.links, [&out](topology::LinkId l) { out.put_u64(l); });
}

topology::Path get_path(state::Buffer& in, std::size_t num_nodes,
                        std::size_t num_links) {
  topology::Path p;
  const std::size_t nn = in.get_count(8);
  p.nodes.reserve(nn);
  for (std::size_t i = 0; i < nn; ++i) {
    const std::uint64_t n = in.get_u64();
    if (n >= num_nodes)
      throw state::CorruptError("checkpoint path node out of range");
    p.nodes.push_back(static_cast<topology::NodeId>(n));
  }
  const std::size_t nl = in.get_count(8);
  p.links.reserve(nl);
  for (std::size_t i = 0; i < nl; ++i) {
    const std::uint64_t l = in.get_u64();
    if (l >= num_links)
      throw state::CorruptError("checkpoint path link out of range");
    p.links.push_back(static_cast<topology::LinkId>(l));
  }
  if (p.nodes.size() != p.links.size() + 1)
    throw state::CorruptError("checkpoint path node/link lengths inconsistent");
  return p;
}

}  // namespace

void Network::save_state(state::Buffer& out) const {
  // Link ledgers (capacity included so a config mismatch is caught).
  out.put_u64(links_.size());
  for (const LinkState& ls : links_) {
    out.put_f64(ls.capacity());
    out.put_f64(ls.committed_min());
    out.put_f64(ls.backup_reserved());
    out.put_f64(ls.elastic_granted());
    out.put_bool(ls.failed());
  }

  out.put_u64(active_ids_.size());
  for (ConnectionId id : active_ids_) {
    const DrConnection& c = conn_at(id);
    out.put_u64(c.id);
    out.put_u64(c.src);
    out.put_u64(c.dst);
    out.put_f64(c.qos.bmin_kbps);
    out.put_f64(c.qos.bmax_kbps);
    out.put_f64(c.qos.increment_kbps);
    out.put_f64(c.qos.utility);
    out.put_f64(c.qos.recovery_deadline);
    put_path(out, c.primary);
    // Backup set, in activation order.  Each channel stores its path and the
    // trigger link list; the link bitset and overlap cache are derived.
    out.put_u64(c.backups.size());
    for (const BackupChannel& ch : c.backups) {
      put_path(out, ch.path);
      std::vector<std::uint64_t> trigger;
      ch.trigger_links.for_each_set_bit(
          [&trigger](std::size_t l) { trigger.push_back(l); });
      out.put_vec(trigger, [&out](std::uint64_t l) { out.put_u64(l); });
    }
    out.put_u8(static_cast<std::uint8_t>(c.backup_status));
    // v3: the recovering flag precedes the registry slots so the reader can
    // validate the slot count against it (a recovering victim is
    // unregistered and stores zero slots).
    out.put_bool(c.recovering);
    out.put_u64(c.recovering_link);
    out.put_vec(c.registry_slots, [&out](std::uint32_t s) { out.put_u32(s); });
    out.put_u64(c.extra_quanta);
    out.put_u64(c.activations);
    out.put_u64(c.rescues);
    out.put_u64(c.siblings_lost);
  }
  out.put_u64(next_id_);

  out.put_u64(stats_.requests);
  out.put_u64(stats_.accepted);
  out.put_u64(stats_.rejected_no_primary);
  out.put_u64(stats_.rejected_no_backup);
  out.put_u64(stats_.terminated);
  out.put_u64(stats_.failures_injected);
  out.put_u64(stats_.repairs);
  out.put_u64(stats_.backups_activated);
  out.put_u64(stats_.connections_dropped);
  out.put_u64(stats_.backups_reestablished);
  out.put_u64(stats_.backups_evicted);
  out.put_u64(stats_.unprotected_victims);
  out.put_u64(stats_.reestablished_pair);
  out.put_u64(stats_.reestablished_degraded);
  out.put_u64(stats_.drop_causes.primary_hit);
  out.put_u64(stats_.drop_causes.backup_hit_while_active);
  out.put_u64(stats_.drop_causes.double_hit);
  out.put_u64(stats_.drop_causes.reestablish_failed);
  out.put_u64(stats_.drop_causes.deadline_miss);
  out.put_u64(stats_.drop_causes.survived_backup_set);
  out.put_u64(stats_.quanta_adjustments);
  out.put_u64(stats_.survived_via_backup_set);
  out.put_vec(stats_.recovery_times, [&out](double t) { out.put_f64(t); });
  out.put_vec(stats_.blackout_times, [&out](double t) { out.put_f64(t); });

  backups_.save_state(out);
}

void Network::load_state(state::Buffer& in) {
  const std::size_t num_links = graph_.num_links();
  const std::size_t num_nodes = graph_.num_nodes();

  if (in.get_u64() != links_.size())
    throw state::CorruptError("checkpoint network link count mismatch");
  for (topology::LinkId l = 0; l < links_.size(); ++l) {
    const double capacity = in.get_f64();
    if (capacity != links_[l].capacity())
      throw state::CorruptError("checkpoint link capacity differs from configuration");
    const double committed = in.get_f64();
    const double backup_reserved = in.get_f64();
    const double elastic = in.get_f64();
    const bool failed = in.get_bool();
    if (!(committed >= 0.0) || !(backup_reserved >= 0.0) || !(elastic >= 0.0))
      throw state::CorruptError("checkpoint link ledger has a negative pool");
    LinkState fresh(capacity);
    fresh.commit_min(committed);
    fresh.set_backup_reserved(backup_reserved);
    fresh.grant_elastic(elastic);
    fresh.set_failed(failed);
    links_[l] = fresh;
    goal_.set_link_usable(l, !failed);
  }

  arena_.clear();
  free_slots_.clear();
  slot_of_.clear();
  active_ids_.clear();
  active_slots_.clear();
  active_conns_.clear();
  soa_extra_quanta_.clear();
  soa_max_extra_.clear();
  soa_increment_.clear();
  soa_utility_.clear();
  for (LinkRegistry& reg : primaries_on_link_) {
    reg.ids.clear();
    reg.slots.clear();
  }

  const std::size_t n_conn = in.get_count(1);
  active_ids_.reserve(n_conn);
  active_conns_.reserve(n_conn);
  for (std::size_t i = 0; i < n_conn; ++i) {
    DrConnection c;
    c.id = in.get_u64();
    if (c.id == 0) throw state::CorruptError("checkpoint connection id 0 is reserved");
    const std::uint64_t src = in.get_u64();
    const std::uint64_t dst = in.get_u64();
    if (src >= num_nodes || dst >= num_nodes)
      throw state::CorruptError("checkpoint connection endpoint out of range");
    c.src = static_cast<topology::NodeId>(src);
    c.dst = static_cast<topology::NodeId>(dst);
    c.qos.bmin_kbps = in.get_f64();
    c.qos.bmax_kbps = in.get_f64();
    c.qos.increment_kbps = in.get_f64();
    c.qos.utility = in.get_f64();
    c.qos.recovery_deadline = in.get_f64();
    c.primary = get_path(in, num_nodes, num_links);
    c.primary_links = path_bits(c.primary);
    const std::size_t n_backups = in.get_count(1);
    c.backups.reserve(n_backups);
    for (std::size_t b = 0; b < n_backups; ++b) {
      BackupChannel ch;
      ch.path = get_path(in, num_nodes, num_links);
      ch.links = path_bits(ch.path);
      ch.trigger_links = util::DynamicBitset(num_links);
      const std::size_t n_trigger = in.get_count(8);
      for (std::size_t t = 0; t < n_trigger; ++t) {
        const std::uint64_t l = in.get_u64();
        if (l >= num_links)
          throw state::CorruptError("checkpoint backup trigger link out of range");
        ch.trigger_links.set(static_cast<std::size_t>(l));
      }
      for (topology::LinkId l : ch.path.links)
        if (c.primary_links.test(l)) ++ch.overlap_links;
      c.backups.push_back(std::move(ch));
    }
    const std::uint8_t status = in.get_u8();
    if (status > static_cast<std::uint8_t>(BackupStatus::kUnprotected))
      throw state::CorruptError("checkpoint connection has unknown backup status");
    c.backup_status = static_cast<BackupStatus>(status);
    c.recovering = in.get_bool();
    const std::uint64_t recovering_link = in.get_u64();
    if (c.recovering && recovering_link >= num_links)
      throw state::CorruptError("checkpoint recovering link out of range");
    c.recovering_link = static_cast<topology::LinkId>(recovering_link);
    const std::size_t n_slots = in.get_count(4);
    // A recovering victim is unregistered (no slots); everyone else's slots
    // must tile its primary path.
    if (n_slots != (c.recovering ? 0 : c.primary.links.size()))
      throw state::CorruptError("checkpoint registry slot count differs from primary path");
    c.registry_slots.reserve(n_slots);
    for (std::size_t s = 0; s < n_slots; ++s) c.registry_slots.push_back(in.get_u32());
    c.extra_quanta = static_cast<std::size_t>(in.get_u64());
    c.activations = static_cast<std::size_t>(in.get_u64());
    c.rescues = static_cast<std::size_t>(in.get_u64());
    c.siblings_lost = static_cast<std::size_t>(in.get_u64());

    const ConnectionId id = c.id;
    if (slot_of_.count(id))
      throw state::CorruptError("checkpoint has duplicate connection id " +
                                std::to_string(id));
    // arena_insert assigns the slot, appends the active mirrors in
    // checkpoint order, and derives the SoA row from the restored qos.
    arena_insert(std::move(c));
  }

  // Per-link primary registries from the serialized slots.  Slots must tile
  // each registry exactly — a hole or collision means the checkpoint and
  // the connection set disagree.
  for (const DrConnection* cp : active_conns_) {
    const DrConnection& c = *cp;
    if (c.recovering) continue;  // unregistered while recovering
    for (std::size_t s = 0; s < c.primary.links.size(); ++s) {
      LinkRegistry& reg = primaries_on_link_[c.primary.links[s]];
      const std::uint32_t slot = c.registry_slots[s];
      if (slot >= reg.ids.size()) {
        reg.ids.resize(slot + 1, 0);
        reg.slots.resize(slot + 1, 0);
      }
      if (reg.ids[slot] != 0)
        throw state::CorruptError("checkpoint registry slot collision on link " +
                                  std::to_string(c.primary.links[s]));
      reg.ids[slot] = c.id;
      reg.slots[slot] = c.arena_slot;
    }
  }
  for (std::size_t l = 0; l < primaries_on_link_.size(); ++l) {
    for (ConnectionId id : primaries_on_link_[l].ids) {
      if (id == 0)
        throw state::CorruptError("checkpoint registry slot hole on link " +
                                  std::to_string(l));
    }
  }

  next_id_ = in.get_u64();
  if (next_id_ < 1)
    throw state::CorruptError("checkpoint connection id allocator invalid");

  stats_.requests = in.get_u64();
  stats_.accepted = in.get_u64();
  stats_.rejected_no_primary = in.get_u64();
  stats_.rejected_no_backup = in.get_u64();
  stats_.terminated = in.get_u64();
  stats_.failures_injected = in.get_u64();
  stats_.repairs = in.get_u64();
  stats_.backups_activated = in.get_u64();
  stats_.connections_dropped = in.get_u64();
  stats_.backups_reestablished = in.get_u64();
  stats_.backups_evicted = in.get_u64();
  stats_.unprotected_victims = in.get_u64();
  stats_.reestablished_pair = in.get_u64();
  stats_.reestablished_degraded = in.get_u64();
  stats_.drop_causes.primary_hit = in.get_u64();
  stats_.drop_causes.backup_hit_while_active = in.get_u64();
  stats_.drop_causes.double_hit = in.get_u64();
  stats_.drop_causes.reestablish_failed = in.get_u64();
  stats_.drop_causes.deadline_miss = in.get_u64();
  stats_.drop_causes.survived_backup_set = in.get_u64();
  stats_.quanta_adjustments = in.get_u64();
  stats_.survived_via_backup_set = in.get_u64();
  stats_.recovery_times.clear();
  const std::size_t n_ttr = in.get_count(8);
  stats_.recovery_times.reserve(n_ttr);
  for (std::size_t i = 0; i < n_ttr; ++i)
    stats_.recovery_times.push_back(in.get_f64());
  stats_.blackout_times.clear();
  const std::size_t n_blackout = in.get_count(8);
  stats_.blackout_times.reserve(n_blackout);
  for (std::size_t i = 0; i < n_blackout; ++i)
    stats_.blackout_times.push_back(in.get_f64());

  backups_.load_state(in);

  // A restored network must satisfy every invariant before it goes live;
  // audit routes failures through obs::annotate_audit_failure.
  audit();
}

}  // namespace eqos::net
