// DR-connection records.
//
// A dependable real-time connection owns a primary channel (carrying
// traffic at bmin + extra) and, whenever the network can provide them, a
// *set* of passive backup channels reserved at bmin.  The paper's baseline
// provisioning keeps exactly one full-span backup; the dual and segment
// schemes (net/network.hpp BackupScheme) keep up to two full-span channels
// or one channel per primary sub-path.  The link sets of every channel are
// cached as bitsets because chaining classification — performed for every
// existing connection on every arrival — reduces to bitset intersection
// tests.
#pragma once

#include <cstdint>
#include <vector>

#include "net/qos.hpp"
#include "topology/paths.hpp"
#include "util/bitset.hpp"

namespace eqos::net {

using ConnectionId = std::uint64_t;

/// Why the connection currently lacks a backup channel.
enum class BackupStatus : std::uint8_t {
  kProtected,     ///< at least one backup channel is reserved
  kUnprotected,   ///< no backup route could be established (yet)
};

/// One passive backup channel of a DR-connection.
struct BackupChannel {
  topology::Path path;
  util::DynamicBitset links;          ///< over the graph's link ids
  /// Primary links whose failure this channel defends against: the whole
  /// primary for full-span channels, the covered sub-path's links for
  /// segment backups.  This is also the trigger set registered with the
  /// BackupManager, i.e. the scenario key of its multiplexed reservation.
  util::DynamicBitset trigger_links;
  /// Links of this channel that also lie on the primary (only non-zero for
  /// maximally — not fully — link-disjoint backups).
  std::size_t overlap_links = 0;
};

/// One established DR-connection.
struct DrConnection {
  ConnectionId id = 0;
  topology::NodeId src = 0;
  topology::NodeId dst = 0;
  ElasticQosSpec qos;

  topology::Path primary;
  util::DynamicBitset primary_links;  ///< over the graph's link ids

  /// Backup channels in activation order (channel 0 is tried first when a
  /// failure hits a link several channels defend).  Sibling channels are
  /// pairwise link-disjoint.
  std::vector<BackupChannel> backups;
  BackupStatus backup_status = BackupStatus::kUnprotected;

  /// Position of this connection's entry in the network's per-link primary
  /// registry (`primaries_on_link_[primary.links[i]][registry_slots[i]] ==
  /// id`), maintained by Network::register_primary / unregister_primary so
  /// deregistration is a swap-erase instead of a per-link linear scan.
  std::vector<std::uint32_t> registry_slots;

  /// Runtime bookkeeping, not serialized (rebuilt on load): the record's
  /// slot in the network's connection arena, and its position in the dense
  /// active-id mirror (Network::active_ids_).  Maintained by the arena
  /// insert/drop paths.
  std::uint32_t arena_slot = 0;
  std::size_t active_pos = 0;

  /// Elastic grant in increments beyond bmin (0 .. qos.max_extra_quanta()).
  std::size_t extra_quanta = 0;
  /// Number of times this connection survived a primary failure by
  /// switching to a backup.
  std::size_t activations = 0;
  /// Number of times this connection survived a failure with no usable
  /// backup by being re-established on fresh routes
  /// (SecondFailurePolicy::kReestablish).
  std::size_t rescues = 0;
  /// Backup channels lost from the current set (died with an earlier
  /// failure, or evicted to settle overbooking debt) since it was last
  /// fully provisioned.  A later activation that still finds a covering
  /// sibling therefore owes its survival to the multi-channel set even
  /// when no channel was consumed in that same call.
  std::size_t siblings_lost = 0;
  /// Simulated recovery control plane: the primary was severed by a failure
  /// and the connection awaits event-driven recovery (detection + signaling
  /// under sim::RecoveryPlane).  While set, the record holds no primary
  /// resources (minimums released, registry slots empty, extra_quanta 0);
  /// `recovering_link` is the failed link that severed it.  Serialized
  /// (checkpoint v3) so in-flight recoveries survive a resume.
  bool recovering = false;
  topology::LinkId recovering_link = 0;

  [[nodiscard]] bool has_backup() const noexcept { return !backups.empty(); }
  /// True iff some backup channel traverses link `l`.
  [[nodiscard]] bool backup_on_link(std::size_t l) const {
    for (const BackupChannel& ch : backups)
      if (ch.links.test(l)) return true;
    return false;
  }
  /// Links of the first backup shared with the primary (the paper's
  /// maximal-disjointness overlap; 0 when unprotected).
  [[nodiscard]] std::size_t backup_overlap_links() const noexcept {
    return backups.empty() ? 0 : backups.front().overlap_links;
  }
  /// Current reserved bandwidth of the primary channel in Kbit/s.
  [[nodiscard]] double reserved_kbps() const { return qos.bandwidth_at(extra_quanta); }
  /// Current elastic grant in Kbit/s.
  [[nodiscard]] double extra_kbps() const {
    return static_cast<double>(extra_quanta) * qos.increment_kbps;
  }
};

}  // namespace eqos::net
