// DR-connection records.
//
// A dependable real-time connection owns a primary channel (carrying
// traffic at bmin + extra) and, whenever the network can provide one, a
// passive backup channel reserved at bmin.  The link sets of both channels
// are cached as bitsets because chaining classification — performed for
// every existing connection on every arrival — reduces to bitset
// intersection tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/qos.hpp"
#include "topology/paths.hpp"
#include "util/bitset.hpp"

namespace eqos::net {

using ConnectionId = std::uint64_t;

/// Why the connection currently lacks a backup channel.
enum class BackupStatus : std::uint8_t {
  kProtected,     ///< a backup channel is reserved
  kUnprotected,   ///< no backup route could be established (yet)
};

/// One established DR-connection.
struct DrConnection {
  ConnectionId id = 0;
  topology::NodeId src = 0;
  topology::NodeId dst = 0;
  ElasticQosSpec qos;

  topology::Path primary;
  util::DynamicBitset primary_links;  ///< over the graph's link ids

  std::optional<topology::Path> backup;
  util::DynamicBitset backup_links;   ///< empty bitset when no backup
  BackupStatus backup_status = BackupStatus::kUnprotected;
  /// Links of the backup that also lie on the primary (only non-zero for
  /// maximally — not fully — link-disjoint backups).
  std::size_t backup_overlap_links = 0;

  /// Position of this connection's entry in the network's per-link primary
  /// registry (`primaries_on_link_[primary.links[i]][registry_slots[i]] ==
  /// id`), maintained by Network::register_primary / unregister_primary so
  /// deregistration is a swap-erase instead of a per-link linear scan.
  std::vector<std::uint32_t> registry_slots;

  /// Elastic grant in increments beyond bmin (0 .. qos.max_extra_quanta()).
  std::size_t extra_quanta = 0;
  /// Number of times this connection survived a primary failure by
  /// switching to its backup.
  std::size_t activations = 0;
  /// Number of times this connection survived a failure with no usable
  /// backup by being re-established on fresh routes
  /// (SecondFailurePolicy::kReestablish).
  std::size_t rescues = 0;

  [[nodiscard]] bool has_backup() const noexcept { return backup.has_value(); }
  /// Current reserved bandwidth of the primary channel in Kbit/s.
  [[nodiscard]] double reserved_kbps() const { return qos.bandwidth_at(extra_quanta); }
  /// Current elastic grant in Kbit/s.
  [[nodiscard]] double extra_kbps() const {
    return static_cast<double>(extra_quanta) * qos.increment_kbps;
  }
};

}  // namespace eqos::net
