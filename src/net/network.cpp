#include "net/network.hpp"

#include "obs/trace.hpp"
#include "topology/disjoint.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace eqos::net {
namespace {

/// Is `v` ascending with no duplicates?  Debug-only precondition check for
/// redistribute (callers merge already-sorted chaining sets).
[[maybe_unused]] bool sorted_unique(const std::vector<ConnectionId>& v) {
  return std::is_sorted(v.begin(), v.end()) &&
         std::adjacent_find(v.begin(), v.end()) == v.end();
}

}  // namespace

Network::Network(topology::Graph graph, NetworkConfig config)
    : graph_(std::move(graph)),
      config_(config),
      links_(graph_.num_links(), LinkState(config.link_capacity_kbps)),
      backups_(graph_.num_links(), config.backup_multiplexing),
      goal_(graph_),
      router_(graph_, links_, backups_, config.route_policy, &goal_),
      primaries_on_link_(graph_.num_links()),
      direct_union_scratch_(graph_.num_links()) {
  if (graph_.num_nodes() < 2)
    throw std::invalid_argument("network: topology needs at least two nodes");
  // Metric names are process-wide: every Network (e.g. a sweep's concurrent
  // instances) aggregates into the same registry entries.  Registration is
  // find-or-create, so repeated construction is cheap and idempotent.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs_.arrivals_admitted = reg.counter("net.arrivals_admitted");
  obs_.arrivals_rejected = reg.counter("net.arrivals_rejected");
  obs_.terminations = reg.counter("net.terminations");
  obs_.retreats = reg.counter("net.retreats");
  obs_.redistributes = reg.counter("net.redistributes");
  obs_.backups_activated = reg.counter("net.backups_activated");
  obs_.backups_lost = reg.counter("net.backups_lost");
  obs_.reroutes = reg.counter("net.reroutes");
  obs_.drops = reg.counter("net.drops");
  obs_.link_failures = reg.counter("net.link_failures");
  obs_.link_repairs = reg.counter("net.link_repairs");
  obs_.active_connections = reg.gauge("net.active_connections");
  obs_.primary_hops = reg.histogram("net.primary_hops", {1, 2, 3, 4, 6, 8, 12, 16});
  obs_.redistribute_gainable =
      reg.histogram("net.redistribute_gainable", {0, 1, 2, 4, 8, 16, 32, 64});
}

const LinkState& Network::link_state(topology::LinkId l) const {
  if (l >= links_.size()) throw std::invalid_argument("network: unknown link");
  return links_[l];
}

const DrConnection& Network::connection(ConnectionId id) const {
  const auto it = connections_.find(id);
  if (it == connections_.end())
    throw std::invalid_argument("network: unknown connection " + std::to_string(id));
  return it->second;
}

DrConnection& Network::mutable_connection(ConnectionId id) {
  const auto it = connections_.find(id);
  if (it == connections_.end())
    throw std::invalid_argument("network: unknown connection " + std::to_string(id));
  return it->second;
}

bool Network::is_active(ConnectionId id) const { return connections_.count(id) != 0; }

util::DynamicBitset Network::path_bits(const topology::Path& p) const {
  return p.link_set(graph_.num_links());
}

// ---- Chaining classification ------------------------------------------------

const Network::ChainSets& Network::classify_against(
    const std::vector<topology::LinkId>& event_path_links,
    const util::DynamicBitset& event_links, ConnectionId exclude) const {
  ChainSets& sets = chain_scratch_;
  sets.direct.clear();
  sets.indirect.clear();

  // Direct members come straight from the per-link registry: only the
  // event's own links are inspected, not the whole active set.  A channel
  // traversing k event links appears k times; sort + unique restores the
  // old full-scan result (sorted ascending, each id once).
  for (topology::LinkId l : event_path_links) {
    const auto& on_link = primaries_on_link_[l];
    sets.direct.insert(sets.direct.end(), on_link.begin(), on_link.end());
  }
  std::sort(sets.direct.begin(), sets.direct.end());
  sets.direct.erase(std::unique(sets.direct.begin(), sets.direct.end()),
                    sets.direct.end());
  if (exclude != 0) {
    const auto it =
        std::lower_bound(sets.direct.begin(), sets.direct.end(), exclude);
    if (it != sets.direct.end() && *it == exclude) sets.direct.erase(it);
  }

  util::DynamicBitset& direct_union = direct_union_scratch_;
  direct_union.clear();
  for (ConnectionId id : sets.direct) direct_union |= connections_.at(id).primary_links;

  // Indirect members (share a link with a direct member but not the event
  // path) still need one pass over the active set — they can sit anywhere.
  // The dense pointer mirror avoids a hash probe per active id, and testing
  // the (superset) direct union first rejects unrelated channels with a
  // single bitset intersect; the event-link test only runs for candidates.
  // Membership is unchanged: indirect = intersects(union) && !intersects(event).
  const std::size_t n_active = active_ids_.size();
  for (std::size_t i = 0; i < n_active; ++i) {
    const ConnectionId id = active_ids_[i];
    if (id == exclude) continue;
    const DrConnection& c = *active_conns_[i];
    if (!c.primary_links.intersects(direct_union)) continue;
    if (c.primary_links.intersects(event_links)) continue;  // already direct
    sets.indirect.push_back(id);
  }
  std::sort(sets.indirect.begin(), sets.indirect.end());
  return sets;
}

// ---- Elastic grant management -----------------------------------------------

void Network::retreat(DrConnection& c) {
  if (c.extra_quanta == 0) return;
  const double extra = c.extra_kbps();
  for (topology::LinkId l : c.primary.links) links_[l].revoke_elastic(extra);
  stats_.quanta_adjustments += c.extra_quanta;
  obs_.retreats.inc();
  obs::trace_event(obs::TraceKind::kRetreat, static_cast<std::uint32_t>(c.id), 0,
                   static_cast<double>(c.extra_quanta));
  c.extra_quanta = 0;
}

bool Network::can_gain(const DrConnection& c) const {
  if (c.extra_quanta >= c.qos.max_extra_quanta()) return false;
  for (topology::LinkId l : c.primary.links)
    if (links_[l].elastic_spare() < c.qos.increment_kbps - LinkState::kEpsilon)
      return false;
  return true;
}

void Network::grant_one(DrConnection& c) {
  for (topology::LinkId l : c.primary.links)
    links_[l].grant_elastic(c.qos.increment_kbps);
  ++c.extra_quanta;
  ++stats_.quanta_adjustments;
}

void Network::redistribute(const std::vector<ConnectionId>& candidates) {
  assert(sorted_unique(candidates));
  // Spare only shrinks while increments are handed out, so a candidate that
  // cannot gain *now* can never gain later in this redistribution.  Seeding
  // with the currently-gainable subset is therefore behavior-identical to
  // queueing everyone — and when the network is saturated (the common case
  // during churn) the subset is empty and we return before any heap or
  // ordering work.
  auto& gainable = gainable_scratch_;
  gainable.clear();
  for (ConnectionId id : candidates)
    if (is_active(id) && can_gain(connections_.at(id))) gainable.push_back(id);
  if (gainable.empty()) return;
  obs_.redistributes.inc();
  obs_.redistribute_gainable.observe(static_cast<double>(gainable.size()));
  obs::trace_event(obs::TraceKind::kRedistribute,
                   static_cast<std::uint32_t>(candidates.size()),
                   static_cast<std::uint32_t>(gainable.size()));

  if (config_.adaptation == AdaptationScheme::kMaxUtility) {
    // Highest utility monopolizes the spare before the next channel gets any.
    std::sort(gainable.begin(), gainable.end(), [&](ConnectionId a, ConnectionId b) {
      const double ua = connections_.at(a).qos.utility;
      const double ub = connections_.at(b).qos.utility;
      return ua != ub ? ua > ub : a < b;
    });
    for (ConnectionId id : gainable) {
      DrConnection& c = mutable_connection(id);
      while (can_gain(c)) grant_one(c);
    }
    return;
  }

  // Coefficient scheme: repeatedly give one increment to the candidate with
  // the lowest (level+1)/utility, ties broken by id.  A popped candidate that
  // can no longer gain is dropped permanently (see above); otherwise it is
  // granted one increment and re-queued with its new level.  Each candidate
  // therefore enters the heap at most (increments gained + 1) times.  The
  // heap lives in a reused member vector driven by push_heap/pop_heap —
  // exactly what std::priority_queue is specified to do, so pop order (and
  // every grant) is unchanged; the comparator's total order makes that order
  // independent of insertion sequence anyway.
  using Key = std::pair<double, ConnectionId>;  // (level+1)/utility, id
  auto& heap = heap_scratch_;
  heap.clear();
  const auto cmp = std::greater<Key>{};  // min-heap on (level, id)
  for (ConnectionId id : gainable) {
    const DrConnection& c = connections_.at(id);
    heap.emplace_back(static_cast<double>(c.extra_quanta + 1) / c.qos.utility, id);
  }
  std::make_heap(heap.begin(), heap.end(), cmp);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const ConnectionId id = heap.back().second;
    heap.pop_back();
    DrConnection& c = mutable_connection(id);
    if (!can_gain(c)) continue;
    grant_one(c);
    heap.emplace_back(static_cast<double>(c.extra_quanta + 1) / c.qos.utility, id);
    std::push_heap(heap.begin(), heap.end(), cmp);
  }
}

// ---- Ledger plumbing ----------------------------------------------------------

void Network::commit_primary_min(const DrConnection& c) {
  for (topology::LinkId l : c.primary.links) links_[l].commit_min(c.qos.bmin_kbps);
}

void Network::release_primary_min(const DrConnection& c) {
  for (topology::LinkId l : c.primary.links) links_[l].release_min(c.qos.bmin_kbps);
}

void Network::register_primary(DrConnection& c) {
  c.registry_slots.resize(c.primary.links.size());
  for (std::size_t i = 0; i < c.primary.links.size(); ++i) {
    auto& list = primaries_on_link_[c.primary.links[i]];
    c.registry_slots[i] = static_cast<std::uint32_t>(list.size());
    list.push_back(c.id);
  }
}

void Network::unregister_primary(const DrConnection& c) {
  // Swap-erase via the cached slot instead of a linear scan per link.
  // Registry order is irrelevant to behavior: every consumer sorts what it
  // gathers (classify_against, fail_link's victim lists), so the swap does
  // not perturb results.
  assert(c.registry_slots.size() == c.primary.links.size());
  for (std::size_t i = 0; i < c.primary.links.size(); ++i) {
    const topology::LinkId l = c.primary.links[i];
    auto& list = primaries_on_link_[l];
    const std::uint32_t slot = c.registry_slots[i];
    assert(slot < list.size() && list[slot] == c.id);
    const ConnectionId moved = list.back();
    list[slot] = moved;
    list.pop_back();
    if (moved == c.id) continue;  // c sat in the last slot of this list
    // Re-point the moved connection's cached slot for this link.  A primary
    // path is simple, so the link appears exactly once in its link list.
    DrConnection& m = connections_.at(moved);
    for (std::size_t j = 0; j < m.primary.links.size(); ++j) {
      if (m.primary.links[j] == l) {
        m.registry_slots[j] = slot;
        break;
      }
    }
  }
}

void Network::sync_backup_reservation(topology::LinkId l) {
  links_[l].set_backup_reserved(backups_.reservation(l));
}

void Network::commit_backup(DrConnection& c, topology::Path path) {
  assert(!c.backup);
  c.backup_links = path_bits(path);
  std::size_t overlap = 0;
  for (topology::LinkId l : path.links)
    if (c.primary_links.test(l)) ++overlap;
  c.backup_overlap_links = overlap;
  for (topology::LinkId l : path.links) {
    backups_.add(l, c.id, c.qos.bmin_kbps, c.primary_links);
    sync_backup_reservation(l);
  }
  c.backup = std::move(path);
  c.backup_status = BackupStatus::kProtected;
}

void Network::remove_backup(DrConnection& c) {
  if (!c.backup) return;
  for (topology::LinkId l : c.backup->links) {
    backups_.remove(l, c.id);
    sync_backup_reservation(l);
  }
  c.backup.reset();
  c.backup_links = util::DynamicBitset(graph_.num_links());
  c.backup_overlap_links = 0;
  c.backup_status = BackupStatus::kUnprotected;
}

bool Network::establish_backup(DrConnection& c) {
  assert(!c.backup);
  auto path = router_.find_backup(c.src, c.dst, c.qos.bmin_kbps, c.primary_links,
                                  config_.require_full_disjoint);
  if (!path) return false;
  commit_backup(c, std::move(*path));
  return true;
}

void Network::drop_active(ConnectionId id) {
  const std::size_t idx = active_index_.at(id);
  active_index_[active_ids_.back()] = idx;
  std::swap(active_ids_[idx], active_ids_.back());
  active_ids_.pop_back();
  active_conns_[idx] = active_conns_.back();
  active_conns_.pop_back();
  active_index_.erase(id);
  connections_.erase(id);
}

Network::RescueOutcome Network::rescue(DrConnection& c) {
  auto primary = router_.find_primary(c.src, c.dst, c.qos.bmin_kbps);
  if (!primary) return RescueOutcome::kFailed;
  c.primary = std::move(*primary);
  c.primary_links = path_bits(c.primary);
  for (topology::LinkId l : c.primary.links) links_[l].commit_min(c.qos.bmin_kbps);
  register_primary(c);
  ++c.rescues;
  return establish_backup(c) ? RescueOutcome::kPair : RescueOutcome::kDegraded;
}

// ---- Arrival --------------------------------------------------------------------

ArrivalOutcome Network::request_connection(topology::NodeId src, topology::NodeId dst,
                                           const ElasticQosSpec& qos) {
  qos.validate();
  if (src == dst) throw std::invalid_argument("network: src == dst");
  if (src >= graph_.num_nodes() || dst >= graph_.num_nodes())
    throw std::invalid_argument("network: unknown endpoint");

  ++stats_.requests;
  ArrivalOutcome outcome;
  outcome.existing_before = active_ids_.size();

  auto primary = router_.find_primary(src, dst, qos.bmin_kbps);
  if (!primary) {
    ++stats_.rejected_no_primary;
    outcome.reject_reason = RejectReason::kNoPrimaryRoute;
    obs_.arrivals_rejected.inc();
    obs::trace_event(obs::TraceKind::kArrivalRejected, src, dst,
                     static_cast<double>(static_cast<int>(outcome.reject_reason)));
    return outcome;
  }
  util::DynamicBitset new_bits = path_bits(*primary);

  // Tentatively commit the primary minimums so the backup search sees the
  // post-admission ledger (elastic grants are irrelevant to admission).
  for (topology::LinkId l : primary->links) links_[l].commit_min(qos.bmin_kbps);

  auto backup = router_.find_backup(src, dst, qos.bmin_kbps, new_bits,
                                    config_.require_full_disjoint);
  if (!backup && config_.require_backup) {
    for (topology::LinkId l : primary->links) links_[l].release_min(qos.bmin_kbps);
    // Sequential establishment failed; optionally re-plan primary and
    // backup jointly (trap topologies).  The admissibility filter is the
    // primary test for both legs — conservative for the backup leg, whose
    // multiplexed incremental need never exceeds bmin.
    if (config_.joint_disjoint_fallback) {
      const topology::LinkFilter admissible = [&](topology::LinkId l) {
        return links_[l].admits_primary(qos.bmin_kbps);
      };
      if (auto pair =
              topology::shortest_disjoint_pair(graph_, src, dst, admissible)) {
        primary = std::move(pair->first);
        backup = std::move(pair->second);
        new_bits = path_bits(*primary);
        for (topology::LinkId l : primary->links) links_[l].commit_min(qos.bmin_kbps);
        // Fall through to normal establishment with the new pair.
      }
    }
    if (!backup) {
      ++stats_.rejected_no_backup;
      outcome.reject_reason = RejectReason::kNoBackupRoute;
      obs_.arrivals_rejected.inc();
      obs::trace_event(obs::TraceKind::kArrivalRejected, src, dst,
                       static_cast<double>(static_cast<int>(outcome.reject_reason)));
      return outcome;
    }
  }

  // Classify existing channels and snapshot their elastic state before the
  // retreat (the paper's S_i -> S_0 -> S_j happens atomically at event time).
  // The newcomer is not yet registered, so no exclusion is needed; the
  // returned sets stay valid through this event (no nested classify).
  const ChainSets& chain = classify_against(primary->links, new_bits, /*exclude=*/0);
  std::unordered_map<ConnectionId, std::size_t> before;
  before.reserve(chain.direct.size() + chain.indirect.size());
  for (ConnectionId id : chain.direct) before[id] = connections_.at(id).extra_quanta;
  for (ConnectionId id : chain.indirect) before[id] = connections_.at(id).extra_quanta;

  for (ConnectionId id : chain.direct) retreat(mutable_connection(id));

  // Register the connection.
  DrConnection c;
  c.id = next_id_++;
  c.src = src;
  c.dst = dst;
  c.qos = qos;
  c.primary = std::move(*primary);
  c.primary_links = new_bits;
  c.backup_links = util::DynamicBitset(graph_.num_links());
  const ConnectionId id = c.id;
  auto [it, inserted] = connections_.emplace(id, std::move(c));
  assert(inserted);
  DrConnection& conn = it->second;
  active_index_[id] = active_ids_.size();
  active_ids_.push_back(id);
  active_conns_.push_back(&conn);
  register_primary(conn);

  if (backup) {
    commit_backup(conn, std::move(*backup));
    outcome.backup_established = true;
    outcome.backup_overlap_links = conn.backup_overlap_links;
  }

  // Redistribute spare capacity among everyone the event touched, the
  // newcomer included.  direct and indirect are sorted and disjoint, so a
  // set_union merge yields the sorted-unique list redistribute expects; the
  // newcomer's id is the largest ever issued, so appending keeps it sorted.
  merge_scratch_.clear();
  std::set_union(chain.direct.begin(), chain.direct.end(), chain.indirect.begin(),
                 chain.indirect.end(), std::back_inserter(merge_scratch_));
  merge_scratch_.push_back(id);
  redistribute(merge_scratch_);

  outcome.accepted = true;
  outcome.id = id;
  outcome.initial_quanta = conn.extra_quanta;
  obs_.arrivals_admitted.inc();
  obs_.active_connections.add(1);
  obs_.primary_hops.observe(static_cast<double>(conn.primary.hops()));
  obs::trace_event(obs::TraceKind::kArrivalAdmitted, static_cast<std::uint32_t>(id),
                   static_cast<std::uint32_t>(conn.primary.hops()),
                   static_cast<double>(conn.extra_quanta));
  outcome.changes.reserve(chain.direct.size() + chain.indirect.size());
  for (ConnectionId cid : chain.direct)
    outcome.changes.push_back(StateChange{cid, Chaining::kDirect, before[cid],
                                          connections_.at(cid).extra_quanta});
  for (ConnectionId cid : chain.indirect)
    outcome.changes.push_back(StateChange{cid, Chaining::kIndirect, before[cid],
                                          connections_.at(cid).extra_quanta});
  ++stats_.accepted;
  return outcome;
}

// ---- Termination ------------------------------------------------------------------

TerminationReport Network::terminate_connection(ConnectionId id) {
  DrConnection& c = mutable_connection(id);
  TerminationReport report;
  report.id = id;

  // Only channels sharing a link with the departing primary can gain
  // (Section 3.2's T transitions).
  const ChainSets& chain = classify_against(c.primary.links, c.primary_links,
                                            /*exclude=*/id);
  std::unordered_map<ConnectionId, std::size_t> before;
  before.reserve(chain.direct.size());
  for (ConnectionId cid : chain.direct) before[cid] = connections_.at(cid).extra_quanta;

  retreat(c);
  release_primary_min(c);
  unregister_primary(c);
  remove_backup(c);
  drop_active(id);

  redistribute(chain.direct);

  report.existing_after = active_ids_.size();
  report.changes.reserve(chain.direct.size());
  for (ConnectionId cid : chain.direct)
    report.changes.push_back(StateChange{cid, Chaining::kDirect, before[cid],
                                         connections_.at(cid).extra_quanta});
  ++stats_.terminated;
  obs_.terminations.inc();
  obs_.active_connections.sub(1);
  obs::trace_event(obs::TraceKind::kTermination, static_cast<std::uint32_t>(id),
                   static_cast<std::uint32_t>(report.existing_after));
  return report;
}

// ---- Failure / repair ----------------------------------------------------------------

FailureReport Network::fail_link(topology::LinkId link) {
  if (link >= links_.size()) throw std::invalid_argument("network: unknown link");
  FailureReport report;
  report.link = link;
  report.existing_before = active_ids_.size();
  if (links_[link].failed()) return report;  // idempotent
  links_[link].set_failed(true);
  goal_.set_link_usable(link, false);
  ++stats_.failures_injected;
  obs_.link_failures.inc();
  obs::trace_event(obs::TraceKind::kFailLink, link,
                   static_cast<std::uint32_t>(primaries_on_link_[link].size()));

  // Victims, deterministic order — read off the per-link registries instead
  // of scanning every active connection.  A connection hit on both channels
  // counts only as a primary victim (the registry difference reproduces the
  // old scan's else-if).
  std::vector<ConnectionId> primary_victims = primaries_on_link_[link];
  std::sort(primary_victims.begin(), primary_victims.end());
  std::vector<ConnectionId> backups_here = backups_.backups_on_link(link);
  std::sort(backups_here.begin(), backups_here.end());
  std::vector<ConnectionId> backup_victims;
  std::set_difference(backups_here.begin(), backups_here.end(),
                      primary_victims.begin(), primary_victims.end(),
                      std::back_inserter(backup_victims));
  report.primaries_hit = primary_victims.size();

  util::DynamicBitset activated_bits(graph_.num_links());
  util::DynamicBitset freed_bits(graph_.num_links());
  std::vector<ConnectionId> activated;
  // Victims whose backup could not seamlessly take over; resolved after the
  // switchover sweep per the configured second-failure policy.
  struct Stranded {
    ConnectionId id;
    bool double_hit;   ///< backup shared the failed link
    bool was_active;   ///< the hit path was an activated former backup
  };
  std::vector<Stranded> stranded;

  for (ConnectionId id : primary_victims) {
    DrConnection& c = mutable_connection(id);
    retreat(c);
    release_primary_min(c);
    unregister_primary(c);
    freed_bits |= c.primary_links;

    // Activation feasibility: the backup must exist, be fully alive, and
    // have room for bmin on every link (its reservation guaranteed this for
    // single failures; overbooking debt from earlier failures may not).
    bool feasible = c.backup.has_value();
    bool double_hit = false;
    if (feasible && c.backup_links.test(link)) {
      // Maximally-disjoint backup shared the failed link (bridge case).
      ++report.backups_died_with_primary;
      double_hit = true;
      feasible = false;
    }
    if (feasible)
      for (topology::LinkId l : c.backup->links)
        if (links_[l].failed()) feasible = false;
    if (feasible) {
      const topology::Path backup_path = *c.backup;  // copy before removal
      // Drop its own reservation first so the headroom test is honest.
      remove_backup(c);
      for (topology::LinkId l : backup_path.links) {
        if (links_[l].capacity() - links_[l].committed_min() <
            c.qos.bmin_kbps - LinkState::kEpsilon) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        c.primary = backup_path;
        c.primary_links = path_bits(backup_path);
        for (topology::LinkId l : backup_path.links) links_[l].commit_min(c.qos.bmin_kbps);
        register_primary(c);
        ++c.activations;
        activated_bits |= c.primary_links;
        activated.push_back(id);
        ++stats_.backups_activated;
        obs_.backups_activated.inc();
        obs::trace_event(obs::TraceKind::kBackupActivated,
                         static_cast<std::uint32_t>(id), link);
        continue;
      }
    } else {
      remove_backup(c);
    }
    // No usable backup: a dependability violation whatever the outcome.
    ++report.unprotected_victims;
    ++stats_.unprotected_victims;
    stranded.push_back(Stranded{id, double_hit, c.activations > 0});
  }
  report.backups_activated = activated.size();
  report.activated_ids = activated;

  // Stranded victims: re-establish (fresh pair, then degraded single path)
  // under kReestablish, else drop — with per-cause accounting either way.
  std::vector<ConnectionId> rescued;
  for (const Stranded& s : stranded) {
    RescueOutcome out = RescueOutcome::kFailed;
    const bool attempt =
        config_.second_failure_policy == SecondFailurePolicy::kReestablish;
    if (attempt) out = rescue(mutable_connection(s.id));
    if (out != RescueOutcome::kFailed) {
      const DrConnection& c = connections_.at(s.id);
      activated_bits |= c.primary_links;
      rescued.push_back(s.id);
      if (out == RescueOutcome::kPair) {
        ++report.reestablished_pair;
        ++stats_.reestablished_pair;
        report.reestablished_ids.push_back(s.id);
      } else {
        ++report.reestablished_degraded;
        ++stats_.reestablished_degraded;
        report.degraded_ids.push_back(s.id);
      }
      obs_.reroutes.inc();
      obs::trace_event(obs::TraceKind::kReroute, static_cast<std::uint32_t>(s.id),
                       out == RescueOutcome::kPair ? 1u : 2u);
      continue;
    }
    if (s.double_hit)
      ++report.drop_causes.double_hit;
    else if (s.was_active)
      ++report.drop_causes.backup_hit_while_active;
    else
      ++report.drop_causes.primary_hit;
    if (attempt) ++report.drop_causes.reestablish_failed;
    report.dropped_ids.push_back(s.id);
    drop_active(s.id);
    ++stats_.connections_dropped;
    ++report.connections_dropped;
    obs_.drops.inc();
    obs_.active_connections.sub(1);
    obs::trace_event(obs::TraceKind::kDrop, static_cast<std::uint32_t>(s.id), link);
  }
  stats_.drop_causes += report.drop_causes;

  // Backups parked on the failed link are gone.
  for (ConnectionId id : backup_victims) {
    if (!is_active(id)) continue;
    DrConnection& c = mutable_connection(id);
    if (!c.backup || !c.backup_links.test(link)) continue;
    remove_backup(c);
    ++report.backups_lost;
    obs_.backups_lost.inc();
    obs::trace_event(obs::TraceKind::kBackupLost, static_cast<std::uint32_t>(id), link);
  }

  // Retreat channels chained to the activated backups and re-established
  // paths (the paper's gamma transitions), then note who can gain from the
  // freed old-primary links.
  std::unordered_set<ConnectionId> activated_set(activated.begin(), activated.end());
  activated_set.insert(rescued.begin(), rescued.end());
  std::vector<ConnectionId> direct;
  std::vector<ConnectionId> gainers;
  util::DynamicBitset direct_union(graph_.num_links());
  for (ConnectionId id : active_ids_) {
    if (activated_set.count(id)) continue;
    const DrConnection& c = connections_.at(id);
    if (c.primary_links.intersects(activated_bits)) {
      direct.push_back(id);
      direct_union |= c.primary_links;
    }
  }
  for (ConnectionId id : active_ids_) {
    if (activated_set.count(id)) continue;
    const DrConnection& c = connections_.at(id);
    if (c.primary_links.intersects(activated_bits)) continue;
    if (c.primary_links.intersects(freed_bits) ||
        c.primary_links.intersects(direct_union))
      gainers.push_back(id);
  }
  std::sort(direct.begin(), direct.end());
  std::sort(gainers.begin(), gainers.end());

  std::unordered_map<ConnectionId, std::size_t> before;
  for (ConnectionId id : direct) before[id] = connections_.at(id).extra_quanta;
  for (ConnectionId id : gainers) before[id] = connections_.at(id).extra_quanta;
  for (ConnectionId id : direct) retreat(mutable_connection(id));

  // Replacement backups for survivors that lost theirs.
  for (ConnectionId id : activated) {
    if (!is_active(id)) continue;
    DrConnection& c = mutable_connection(id);
    if (!c.backup && establish_backup(c)) {
      ++report.backups_reestablished;
      ++stats_.backups_reestablished;
    }
  }
  for (ConnectionId id : backup_victims) {
    if (!is_active(id)) continue;
    DrConnection& c = mutable_connection(id);
    if (!c.backup && establish_backup(c)) {
      ++report.backups_reestablished;
      ++stats_.backups_reestablished;
    }
  }

  const auto [evicted, reestablished] = settle_overbooking_debt();
  report.backups_evicted = evicted;
  report.backups_reestablished += reestablished;

  // The four groups are mutually disjoint (direct/gainers exclude the
  // activated set; rescued victims were never activated), so one sort of the
  // concatenation yields the sorted-unique candidate list.
  std::vector<ConnectionId> candidates = direct;
  candidates.insert(candidates.end(), gainers.begin(), gainers.end());
  candidates.insert(candidates.end(), activated.begin(), activated.end());
  candidates.insert(candidates.end(), rescued.begin(), rescued.end());
  std::sort(candidates.begin(), candidates.end());
  redistribute(candidates);

  report.changes.reserve(direct.size() + gainers.size());
  for (ConnectionId id : direct)
    report.changes.push_back(
        StateChange{id, Chaining::kDirect, before[id], connections_.at(id).extra_quanta});
  for (ConnectionId id : gainers)
    report.changes.push_back(StateChange{id, Chaining::kIndirect, before[id],
                                         connections_.at(id).extra_quanta});
  return report;
}

std::size_t Network::repair_link(topology::LinkId link) {
  if (link >= links_.size()) throw std::invalid_argument("network: unknown link");
  if (!links_[link].failed()) return 0;
  links_[link].set_failed(false);
  goal_.set_link_usable(link, true);
  ++stats_.repairs;
  obs_.link_repairs.inc();

  std::size_t reestablished = 0;
  std::vector<ConnectionId> ids = active_ids_;
  std::sort(ids.begin(), ids.end());
  for (ConnectionId id : ids) {
    DrConnection& c = mutable_connection(id);
    if (c.backup) continue;
    if (establish_backup(c)) {
      ++reestablished;
      ++stats_.backups_reestablished;
    }
  }
  obs::trace_event(obs::TraceKind::kRepairLink, link,
                   static_cast<std::uint32_t>(reestablished));
  return reestablished;
}

std::vector<FailureReport> Network::fail_node(topology::NodeId node) {
  if (node >= graph_.num_nodes()) throw std::invalid_argument("network: unknown node");
  std::vector<FailureReport> reports;
  for (const auto& adj : graph_.adjacent(node)) reports.push_back(fail_link(adj.link));
  return reports;
}

std::size_t Network::repair_node(topology::NodeId node) {
  if (node >= graph_.num_nodes()) throw std::invalid_argument("network: unknown node");
  std::size_t restored = 0;
  for (const auto& adj : graph_.adjacent(node)) restored += repair_link(adj.link);
  return restored;
}

std::size_t Network::preempt_all_elastic() {
  std::size_t preempted = 0;
  for (ConnectionId id : active_ids_) {
    DrConnection& c = mutable_connection(id);
    if (c.extra_quanta > 0) {
      retreat(c);
      ++preempted;
    }
  }
  return preempted;
}

std::pair<std::size_t, std::size_t> Network::settle_overbooking_debt() {
  std::size_t evicted = 0;
  std::vector<ConnectionId> to_rehome;
  for (topology::LinkId l = 0; l < links_.size(); ++l) {
    while (links_[l].committed_min() + backups_.reservation(l) >
               links_[l].capacity() + LinkState::kEpsilon &&
           backups_.count_on_link(l) > 0) {
      auto ids = backups_.backups_on_link(l);
      std::sort(ids.begin(), ids.end());
      DrConnection& c = mutable_connection(ids.front());
      remove_backup(c);
      to_rehome.push_back(c.id);
      ++evicted;
      ++stats_.backups_evicted;
    }
  }
  std::size_t reestablished = 0;
  for (ConnectionId id : to_rehome) {
    if (!is_active(id)) continue;
    DrConnection& c = mutable_connection(id);
    if (!c.backup && establish_backup(c)) {
      ++reestablished;
      ++stats_.backups_reestablished;
    }
  }
  return {evicted, reestablished};
}

// ---- Metrics -----------------------------------------------------------------------

double Network::mean_reserved_kbps() const {
  if (active_ids_.empty()) return 0.0;
  double total = 0.0;
  for (ConnectionId id : active_ids_) total += connections_.at(id).reserved_kbps();
  return total / static_cast<double>(active_ids_.size());
}

double Network::mean_primary_hops() const {
  if (active_ids_.empty()) return 0.0;
  double total = 0.0;
  for (ConnectionId id : active_ids_)
    total += static_cast<double>(connections_.at(id).primary.hops());
  return total / static_cast<double>(active_ids_.size());
}

double Network::protected_fraction() const {
  if (active_ids_.empty()) return 0.0;
  std::size_t n = 0;
  for (ConnectionId id : active_ids_)
    if (connections_.at(id).backup) ++n;
  return static_cast<double>(n) / static_cast<double>(active_ids_.size());
}

// ---- Invariants ----------------------------------------------------------------------

void Network::audit() const {
  try {
    audit_impl();
  } catch (const std::logic_error& e) {
    // With the flight recorder on, the violation message carries the path of
    // a JSON dump of the last-N trace events (obs/trace.hpp).
    throw std::logic_error(obs::annotate_audit_failure(e.what()));
  }
}

void Network::audit_impl() const {
  constexpr double kEps = 1e-6;
  // Per-link ledgers against per-connection ground truth.
  std::vector<double> committed(links_.size(), 0.0);
  std::vector<double> granted(links_.size(), 0.0);
  std::vector<std::size_t> backup_count(links_.size(), 0);
  for (ConnectionId id : active_ids_) {
    const DrConnection& c = connections_.at(id);
    if (c.extra_quanta > c.qos.max_extra_quanta())
      throw std::logic_error("invariant: extra quanta above maximum");
    // Elastic-share bounds: bmin <= reserved <= bmax.
    const double reserved = c.reserved_kbps();
    if (reserved < c.qos.bmin_kbps - kEps || reserved > c.qos.bmax_kbps + kEps)
      throw std::logic_error("invariant: reserved bandwidth outside [bmin, bmax]");
    // Path structure.
    if (c.primary.nodes.empty() || c.primary.nodes.front() != c.src ||
        c.primary.nodes.back() != c.dst)
      throw std::logic_error("invariant: primary endpoints mismatch");
    if (path_bits(c.primary) == c.primary_links) {
      // consistent
    } else {
      throw std::logic_error("invariant: primary bitset mismatch");
    }
    for (topology::LinkId l : c.primary.links) {
      if (links_[l].failed()) throw std::logic_error("invariant: primary on failed link");
      committed[l] += c.qos.bmin_kbps;
      granted[l] += c.extra_kbps();
    }
    // Cached registry slots must round-trip to this connection.
    if (c.registry_slots.size() != c.primary.links.size())
      throw std::logic_error("invariant: registry slot count mismatch");
    for (std::size_t i = 0; i < c.primary.links.size(); ++i) {
      const auto& list = primaries_on_link_[c.primary.links[i]];
      if (c.registry_slots[i] >= list.size() || list[c.registry_slots[i]] != c.id)
        throw std::logic_error("invariant: stale registry slot");
    }
    if (c.backup) {
      if (c.backup->nodes.front() != c.src || c.backup->nodes.back() != c.dst)
        throw std::logic_error("invariant: backup endpoints mismatch");
      if (!(path_bits(*c.backup) == c.backup_links))
        throw std::logic_error("invariant: backup bitset mismatch");
      if (c.backup_status != BackupStatus::kProtected)
        throw std::logic_error("invariant: backup status mismatch");
      // Disjointness per policy, and the cached overlap count.
      std::size_t overlap = 0;
      for (topology::LinkId l : c.backup->links) {
        if (links_[l].failed())
          throw std::logic_error("invariant: backup on failed link");
        ++backup_count[l];
        if (c.primary_links.test(l)) ++overlap;
      }
      if (overlap != c.backup_overlap_links)
        throw std::logic_error("invariant: backup overlap count stale");
      if (config_.require_full_disjoint && overlap > 0)
        throw std::logic_error("invariant: backup overlaps primary under full disjointness");
      if (overlap == c.backup->links.size())
        throw std::logic_error("invariant: backup fully overlaps its primary");
    } else if (c.backup_status == BackupStatus::kProtected) {
      throw std::logic_error("invariant: protected without a backup");
    }
  }
  for (topology::LinkId l = 0; l < links_.size(); ++l) {
    const LinkState& s = links_[l];
    if (std::abs(s.committed_min() - committed[l]) > kEps)
      throw std::logic_error("invariant: committed_min ledger mismatch on link " +
                             std::to_string(l));
    if (std::abs(s.elastic_granted() - granted[l]) > kEps)
      throw std::logic_error("invariant: elastic ledger mismatch on link " +
                             std::to_string(l));
    if (std::abs(s.backup_reserved() - backups_.reservation(l)) > kEps)
      throw std::logic_error("invariant: backup reservation out of sync on link " +
                             std::to_string(l));
    if (std::abs(backups_.reservation(l) - backups_.recompute_reservation(l)) > kEps)
      throw std::logic_error("invariant: cached backup reservation stale on link " +
                             std::to_string(l));
    if (s.committed_min() + s.backup_reserved() > s.capacity() + kEps)
      throw std::logic_error("invariant: admission ledger overflow on link " +
                             std::to_string(l));
    if (s.committed_min() + s.elastic_granted() > s.capacity() + kEps)
      throw std::logic_error("invariant: elastic ledger overflow on link " +
                             std::to_string(l));
    // Registry round-trip.
    double reg_min = 0.0;
    for (ConnectionId id : primaries_on_link_[l]) {
      const auto it = connections_.find(id);
      if (it == connections_.end())
        throw std::logic_error("invariant: stale primary registration");
      if (!it->second.primary_links.test(l))
        throw std::logic_error("invariant: registered primary does not traverse link");
      reg_min += it->second.qos.bmin_kbps;
    }
    if (std::abs(reg_min - committed[l]) > kEps)
      throw std::logic_error("invariant: primary registry mismatch on link " +
                             std::to_string(l));
    // Backup registry round-trip against per-connection backup paths.
    if (backups_.count_on_link(l) != backup_count[l])
      throw std::logic_error("invariant: backup registry count mismatch on link " +
                             std::to_string(l));
    for (ConnectionId id : backups_.backups_on_link(l)) {
      const auto it = connections_.find(id);
      if (it == connections_.end())
        throw std::logic_error("invariant: stale backup registration");
      if (!it->second.backup_links.test(l))
        throw std::logic_error("invariant: registered backup does not traverse link");
    }
    if (s.failed() && backups_.count_on_link(l) != 0)
      throw std::logic_error("invariant: backup parked on failed link " +
                             std::to_string(l));
    // Goal-directed search bound: the distance field must mask exactly the
    // failed links, or its lower bounds could prune a live route.
    if (goal_.link_usable(l) == s.failed())
      throw std::logic_error("invariant: goal-field usable mask stale on link " +
                             std::to_string(l));
  }
  // BackupManager internals: slot caches, flat scenario ledger, interning.
  backups_.audit();
  // Active-id bookkeeping.
  if (active_ids_.size() != connections_.size())
    throw std::logic_error("invariant: active id count mismatch");
  if (active_conns_.size() != active_ids_.size())
    throw std::logic_error("invariant: active pointer mirror size mismatch");
  for (std::size_t i = 0; i < active_ids_.size(); ++i) {
    const auto it = active_index_.find(active_ids_[i]);
    if (it == active_index_.end() || it->second != i)
      throw std::logic_error("invariant: active index mismatch");
    const auto conn = connections_.find(active_ids_[i]);
    if (conn == connections_.end() || active_conns_[i] != &conn->second)
      throw std::logic_error("invariant: active pointer mirror stale");
  }
}

}  // namespace eqos::net
